"""Tests for the ``python -m repro`` CLI: arg parsing, output, exit codes."""

from __future__ import annotations

import json

import pytest

from repro.runtime.cli import main


def test_list_names_all_scenarios(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    for name in ("paper_example", "height", "churn", "baselines"):
        assert name in out
    assert "[E1]" in out
    assert "params:" in out


def test_list_verbose_shows_param_help(capsys):
    assert main(["list", "--verbose"]) == 0
    out = capsys.readouterr().out
    assert "--peers" in out
    assert "--seed" in out


def test_run_with_typed_overrides(capsys):
    assert main(["run", "paper_example", "--peers", "16", "--seed", "3"]) == 0
    out = capsys.readouterr().out
    assert "paper_example" in out
    assert "false_negatives" in out


def test_run_accepts_experiment_id_alias(capsys):
    assert main(["run", "E1", "--quiet"]) == 0
    assert "paper_example: ok" in capsys.readouterr().out


def test_run_help_shows_scenario_flags(capsys):
    assert main(["run", "paper_example", "--help"]) == 0
    out = capsys.readouterr().out
    assert "--peers" in out
    assert "--min-children" in out


def test_run_without_scenario_shows_usage(capsys):
    assert main(["run"]) == 2
    assert "available scenarios" in capsys.readouterr().err
    assert main(["run", "--help"]) == 0
    assert "available scenarios" in capsys.readouterr().out


def test_run_unknown_scenario_fails_cleanly(capsys):
    assert main(["run", "bogus"]) == 2
    err = capsys.readouterr().err
    assert "unknown scenario" in err
    assert "paper_example" in err  # the available list is shown


def test_run_unknown_flag_exits_with_usage_error():
    with pytest.raises(SystemExit) as excinfo:
        main(["run", "paper_example", "--bogus", "1"])
    assert excinfo.value.code == 2


def test_run_rejects_bad_value():
    with pytest.raises(SystemExit) as excinfo:
        main(["run", "paper_example", "--peers", "many"])
    assert excinfo.value.code == 2


def test_run_writes_json(tmp_path, capsys):
    path = tmp_path / "out.json"
    assert main(["run", "paper_example", "--quiet", "--json", str(path)]) == 0
    document = json.loads(path.read_text())
    (run,) = document["runs"]
    assert run["scenario"] == "paper_example"
    assert run["experiment_id"] == "E1"
    assert run["params"]["peers"] == 8
    assert run["error"] is None
    assert {row["event"] for row in run["rows"]} == {"a", "b", "c", "d"}
    assert document["summary"] == {
        "total": 1, "failed": 0,
        "duration_s": document["summary"]["duration_s"],
    }


def test_run_all_subset_with_seed_override(tmp_path, capsys):
    path = tmp_path / "all.json"
    code = main(["run-all", "--only", "paper_example,split_methods",
                 "--seed", "5", "--quiet", "--json", str(path)])
    assert code == 0
    document = json.loads(path.read_text())
    assert [run["scenario"] for run in document["runs"]] == [
        "paper_example", "split_methods"]
    assert all(run["params"]["seed"] == 5 for run in document["runs"])


def test_run_all_unknown_subset_member(capsys):
    assert main(["run-all", "--only", "nope"]) == 2
    assert "unknown scenario" in capsys.readouterr().err

"""Tests for the sequential R-tree substrate."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.rtree import RTree
from repro.spatial.rectangle import Point, Rect


def random_rects(count: int, seed: int = 0, span: float = 100.0):
    rng = random.Random(seed)
    rects = []
    for _ in range(count):
        x0, x1 = sorted((rng.uniform(0, span), rng.uniform(0, span)))
        y0, y1 = sorted((rng.uniform(0, span), rng.uniform(0, span)))
        rects.append(Rect((x0, y0), (x1, y1)))
    return rects


def brute_force_point(rects, payloads, point):
    return [p for r, p in zip(rects, payloads) if r.contains_point(point)]


def brute_force_rect(rects, payloads, query):
    return [p for r, p in zip(rects, payloads) if r.intersects(query)]


# --------------------------------------------------------------------------- #
# Construction and parameters
# --------------------------------------------------------------------------- #


def test_rejects_invalid_parameters():
    with pytest.raises(ValueError):
        RTree(min_entries=0, max_entries=4)
    with pytest.raises(ValueError):
        RTree(min_entries=3, max_entries=5)
    with pytest.raises(ValueError):
        RTree(min_entries=2, max_entries=4, split_method="bogus")


def test_empty_tree():
    tree = RTree()
    assert len(tree) == 0
    assert tree.height() == 1
    assert tree.mbr() is None
    assert tree.search_point(Point(0, 0)) == []
    assert tree.check_invariants() == []


@pytest.mark.parametrize("method", ["linear", "quadratic", "rstar"])
def test_insert_many_keeps_invariants(method):
    tree = RTree(min_entries=2, max_entries=5, split_method=method)
    rects = random_rects(120, seed=3)
    for index, rect in enumerate(rects):
        tree.insert(rect, index)
    assert len(tree) == 120
    assert tree.check_invariants() == []
    assert sorted(tree.payloads()) == list(range(120))


@pytest.mark.parametrize("method", ["linear", "quadratic", "rstar"])
def test_point_queries_match_brute_force(method):
    tree = RTree(min_entries=2, max_entries=6, split_method=method)
    rects = random_rects(80, seed=11)
    payloads = list(range(80))
    for rect, payload in zip(rects, payloads):
        tree.insert(rect, payload)
    rng = random.Random(5)
    for _ in range(30):
        point = Point(rng.uniform(0, 100), rng.uniform(0, 100))
        assert sorted(tree.search_point(point)) == sorted(
            brute_force_point(rects, payloads, point)
        )


def test_rect_queries_match_brute_force():
    tree = RTree(min_entries=2, max_entries=4)
    rects = random_rects(60, seed=17)
    payloads = list(range(60))
    for rect, payload in zip(rects, payloads):
        tree.insert(rect, payload)
    rng = random.Random(23)
    for _ in range(20):
        x0, x1 = sorted((rng.uniform(0, 100), rng.uniform(0, 100)))
        y0, y1 = sorted((rng.uniform(0, 100), rng.uniform(0, 100)))
        query = Rect((x0, y0), (x1, y1))
        assert sorted(tree.search_rect(query)) == sorted(
            brute_force_rect(rects, payloads, query)
        )


def test_height_grows_logarithmically():
    tree = RTree(min_entries=2, max_entries=4)
    rects = random_rects(256, seed=2)
    for index, rect in enumerate(rects):
        tree.insert(rect, index)
    # With M=4 the height of a 256-entry tree is at most log2(256) = 8 and at
    # least log4(256) = 4.
    assert 4 <= tree.height() <= 9


def test_mbr_covers_everything():
    tree = RTree()
    rects = random_rects(40, seed=9)
    for index, rect in enumerate(rects):
        tree.insert(rect, index)
    total = tree.mbr()
    for rect in rects:
        assert total.contains_rect(rect)


# --------------------------------------------------------------------------- #
# Deletion
# --------------------------------------------------------------------------- #


def test_delete_missing_returns_false():
    tree = RTree()
    tree.insert(Rect((0, 0), (1, 1)), "a")
    assert not tree.delete(Rect((0, 0), (1, 1)), "b")
    assert len(tree) == 1


def test_delete_removes_payload():
    tree = RTree(min_entries=2, max_entries=4)
    rects = random_rects(50, seed=31)
    for index, rect in enumerate(rects):
        tree.insert(rect, index)
    assert tree.delete(rects[10], 10)
    assert 10 not in tree.payloads()
    assert len(tree) == 49
    assert tree.check_invariants() == []


def test_delete_many_keeps_invariants_and_queries():
    tree = RTree(min_entries=2, max_entries=4)
    rects = random_rects(100, seed=41)
    for index, rect in enumerate(rects):
        tree.insert(rect, index)
    removed = set(range(0, 100, 2))
    for index in removed:
        assert tree.delete(rects[index], index)
    assert len(tree) == 50
    assert tree.check_invariants() == []
    remaining_rects = [r for i, r in enumerate(rects) if i not in removed]
    remaining_ids = [i for i in range(100) if i not in removed]
    point = Point(50, 50)
    assert sorted(tree.search_point(point)) == sorted(
        brute_force_point(remaining_rects, remaining_ids, point)
    )


def test_delete_down_to_empty():
    tree = RTree(min_entries=2, max_entries=4)
    rects = random_rects(30, seed=5)
    for index, rect in enumerate(rects):
        tree.insert(rect, index)
    for index, rect in enumerate(rects):
        assert tree.delete(rect, index)
    assert len(tree) == 0
    assert tree.payloads() == []
    assert tree.check_invariants() == []


def test_root_collapses_after_deletions():
    tree = RTree(min_entries=2, max_entries=4)
    rects = random_rects(64, seed=8)
    for index, rect in enumerate(rects):
        tree.insert(rect, index)
    tall = tree.height()
    for index in range(54):
        tree.delete(rects[index], index)
    assert tree.height() <= tall
    assert tree.check_invariants() == []


# --------------------------------------------------------------------------- #
# Properties
# --------------------------------------------------------------------------- #

coords = st.floats(min_value=0, max_value=50, allow_nan=False)


@given(st.lists(st.tuples(coords, coords, coords, coords), min_size=1, max_size=60),
       st.sampled_from(["linear", "quadratic", "rstar"]))
@settings(max_examples=60, deadline=None)
def test_property_insert_search_consistency(raw, method):
    tree = RTree(min_entries=2, max_entries=5, split_method=method)
    rects = []
    for index, (a, b, c, d) in enumerate(raw):
        rect = Rect((min(a, b), min(c, d)), (max(a, b), max(c, d)))
        rects.append(rect)
        tree.insert(rect, index)
    assert tree.check_invariants() == []
    assert len(tree) == len(raw)
    probe = Point(25, 25)
    expected = [i for i, r in enumerate(rects) if r.contains_point(probe)]
    assert sorted(tree.search_point(probe)) == expected

"""Tests for the analytical models and statistics helpers."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.churn_model import (
    critical_departure_rate,
    disconnection_probability_bound,
    expected_disconnection_time,
)
from repro.analysis.complexity import (
    height_bound,
    logarithmic_latency_bound,
    memory_bound,
    within_height_bound,
    within_memory_bound,
)
from repro.analysis.stats import describe, growth_ratio, linear_regression, log_fit_slope


# --------------------------------------------------------------------------- #
# Churn model (Lemma 3.7)
# --------------------------------------------------------------------------- #


def test_expected_disconnection_time_matches_formula():
    n, delta, rate = 50, 10.0, 2.0
    expected = (delta / n) * math.exp((n - delta * rate) ** 2 / (4 * delta * rate))
    assert expected_disconnection_time(n, delta, rate) == pytest.approx(expected)


def test_expected_disconnection_time_decreases_with_rate():
    times = [expected_disconnection_time(50, 10.0, rate) for rate in (0.5, 1.0, 2.0, 4.0)]
    assert times == sorted(times, reverse=True)


def test_expected_disconnection_time_zero_rate_is_infinite():
    assert expected_disconnection_time(10, 5.0, 0.0) == math.inf


def test_expected_disconnection_time_overflow_guard():
    assert expected_disconnection_time(10_000, 1.0, 0.001) == math.inf


def test_expected_disconnection_time_validation():
    with pytest.raises(ValueError):
        expected_disconnection_time(0, 1.0, 1.0)
    with pytest.raises(ValueError):
        expected_disconnection_time(10, 0.0, 1.0)
    with pytest.raises(ValueError):
        expected_disconnection_time(10, 1.0, -1.0)


def test_disconnection_probability_bound_behaviour():
    assert disconnection_probability_bound(50, 10.0, 0.0) == 0.0
    assert disconnection_probability_bound(10, 10.0, 5.0) == 1.0
    low_churn = disconnection_probability_bound(100, 10.0, 0.5)
    high_churn = disconnection_probability_bound(100, 10.0, 5.0)
    assert 0.0 < low_churn < high_churn <= 1.0


def test_critical_departure_rate_is_consistent():
    n, delta, target = 60, 10.0, 1000.0
    rate = critical_departure_rate(n, delta, target)
    assert expected_disconnection_time(n, delta, rate) >= target
    assert expected_disconnection_time(n, delta, rate * 1.5) <= target * 10


@given(st.integers(min_value=2, max_value=500),
       st.floats(min_value=0.1, max_value=50.0),
       st.floats(min_value=0.01, max_value=20.0))
@settings(max_examples=100, deadline=None)
def test_expected_disconnection_time_is_positive(n, delta, rate):
    assert expected_disconnection_time(n, delta, rate) > 0


# --------------------------------------------------------------------------- #
# Complexity bounds (Lemma 3.1)
# --------------------------------------------------------------------------- #


def test_height_bound_grows_logarithmically():
    assert height_bound(16, 2) == pytest.approx(math.log2(16) + 2)
    assert height_bound(256, 2) < height_bound(256, 2) + 1
    assert height_bound(256, 4) < height_bound(256, 2)
    assert height_bound(1, 2) == 3


def test_height_bound_validation():
    with pytest.raises(ValueError):
        height_bound(0, 2)
    with pytest.raises(ValueError):
        height_bound(10, 1)


def test_within_height_bound():
    assert within_height_bound(5, 32, 2)
    assert not within_height_bound(50, 32, 2)


def test_memory_bound_polylogarithmic():
    small = memory_bound(16, 2, 4)
    large = memory_bound(1024, 2, 4)
    assert large > small
    # Far below linear growth: 64x more peers, much less than 64x more state.
    assert large / small < 8
    assert memory_bound(1, 2, 4) == 8.0


def test_memory_bound_validation():
    with pytest.raises(ValueError):
        memory_bound(0, 2, 4)
    with pytest.raises(ValueError):
        memory_bound(10, 1, 4)


def test_within_memory_bound():
    assert within_memory_bound(10, 64, 2, 4)
    assert not within_memory_bound(10_000, 64, 2, 4)


def test_latency_bound_is_logarithmic():
    assert logarithmic_latency_bound(64, 2) == pytest.approx(2 * 6 + 3)


# --------------------------------------------------------------------------- #
# Statistics helpers
# --------------------------------------------------------------------------- #


def test_describe_summary():
    stats = describe([1, 2, 3, 4, 5])
    assert stats.count == 5
    assert stats.mean == 3.0
    assert stats.minimum == 1
    assert stats.maximum == 5
    assert stats.p50 == 3.0
    assert stats.as_dict()["count"] == 5.0


def test_describe_empty_and_singleton():
    empty = describe([])
    assert empty.count == 0 and empty.mean == 0.0
    single = describe([7.0])
    assert single.stdev == 0.0
    assert single.p95 == 7.0


def test_linear_regression_recovers_line():
    xs = [1, 2, 3, 4]
    ys = [3, 5, 7, 9]  # y = 2x + 1
    slope, intercept = linear_regression(xs, ys)
    assert slope == pytest.approx(2.0)
    assert intercept == pytest.approx(1.0)


def test_linear_regression_validation():
    with pytest.raises(ValueError):
        linear_regression([1, 2], [1])
    with pytest.raises(ValueError):
        linear_regression([1], [1])
    slope, intercept = linear_regression([2, 2, 2], [1, 2, 3])
    assert slope == 0.0


def test_log_fit_slope_flat_for_logarithmic_data():
    ns = [16, 32, 64, 128, 256]
    heights = [math.log2(n) for n in ns]
    assert log_fit_slope(ns, heights) == pytest.approx(1.0)
    flat = [5.0] * len(ns)
    assert log_fit_slope(ns, flat) == pytest.approx(0.0)


def test_growth_ratio():
    ratios = growth_ratio([4, 16], [2.0, 4.0])
    assert ratios == [1.0, 1.0]

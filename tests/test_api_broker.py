"""The unified Broker protocol: spec, registry, adapters, deprecations.

Covers the `repro.api` package (SystemSpec + backend registry), the
BaselineBroker adapter family, the upfront validation added to the facade
(duplicate subscription names, mismatched attribute spaces), the
single-pass `publish_many` accounting, the typed per-engine option sets,
and the removed `batch=` alias (now a hard error).
"""

from __future__ import annotations

import pytest

from repro.api import (Broker, SystemSpec, UnknownBackendError, backend_names,
                       create_broker, normalize_backend, register_backend)
from repro.baselines import BaselineBroker, FloodingOverlay
from repro.experiments.harness import build_pubsub_system
from repro.pubsub import PubSubSystem
from repro.pubsub.engines import UnknownEngineError, get_engine
from repro.spatial.filters import Event, make_space, subscription_from_rect
from repro.spatial.rectangle import Rect
from repro.workloads.events import targeted_events
from repro.workloads.subscriptions import uniform_subscriptions
from tests.conftest import random_subscriptions

BASELINE_BACKENDS = ("flooding", "centralized", "per-dimension",
                     "containment-tree")
ALL_BACKENDS = (("drtree:classic", "drtree:batched", "drtree:sharded",
                 "drtree:net")
                + BASELINE_BACKENDS)


def _close(broker) -> None:
    """Release engine resources; baselines hold none and expose no close."""
    close = getattr(broker, "close", None)
    if close is not None:
        close()


# --------------------------------------------------------------------------- #
# Backend registry and SystemSpec
# --------------------------------------------------------------------------- #


def test_backend_names_cover_both_families():
    names = backend_names()
    assert set(ALL_BACKENDS) == set(names)
    assert names[0] == "drtree:classic"  # drtree engines lead the listing


@pytest.mark.parametrize("alias,canonical", [
    ("drtree", "drtree:classic"),
    ("DRTree:Batched", "drtree:batched"),
    ("drtree:NET", "drtree:net"),
    ("per_dimension", "per-dimension"),
    ("containment_tree", "containment-tree"),
    ("flooding", "flooding"),
])
def test_normalize_backend_aliases(alias, canonical):
    assert normalize_backend(alias) == canonical


def test_normalize_backend_rejects_unknown_names():
    with pytest.raises(UnknownBackendError, match="available"):
        normalize_backend("gossip")
    with pytest.raises(UnknownBackendError, match="engine"):
        normalize_backend("drtree:quantum")


def test_register_backend_rejects_duplicates_and_drtree_names():
    with pytest.raises(ValueError, match="already registered"):
        register_backend("flooding", lambda spec: None)
    with pytest.raises(ValueError, match="engine registry"):
        register_backend("drtree:custom", lambda spec: None)


def test_spec_build_normalizes_backend(space):
    broker = SystemSpec(space, backend="per_dimension").build()
    assert broker.spec.backend == "per-dimension"
    assert broker.backend == "per-dimension"


@pytest.mark.parametrize("backend", ALL_BACKENDS)
def test_every_backend_satisfies_the_broker_protocol(backend, space):
    broker = create_broker(SystemSpec(space, backend=backend, seed=7))
    try:
        assert isinstance(broker, Broker)
        spec = broker.spec
        assert spec.backend == backend
        assert spec.seed == 7
        assert spec.space.names == space.names
    finally:
        _close(broker)


def test_unknown_engine_is_a_typed_error():
    with pytest.raises(UnknownEngineError, match="registered"):
        get_engine("quantum")


@pytest.mark.parametrize("backend", ["drtree:classic", "flooding"])
def test_retired_ids_raise_keyerror_on_both_families(backend, space):
    """Both families reject unknown/retired ids upfront (Broker contract)."""
    broker = create_broker(SystemSpec(space, backend=backend, seed=3))
    broker.subscribe_all(random_subscriptions(space, 4, seed=5))
    victim = broker.subscribers()[0]
    broker.fail(victim)
    with pytest.raises(KeyError, match="unknown subscriber"):
        broker.fail(victim)
    with pytest.raises(KeyError, match="unknown subscriber"):
        broker.unsubscribe(victim)
    with pytest.raises(KeyError, match="unknown subscriber"):
        broker.unsubscribe("never-subscribed")


@pytest.mark.parametrize("backend", ALL_BACKENDS)
def test_build_pubsub_system_accepts_any_backend(backend):
    workload = uniform_subscriptions(10, seed=4)
    broker = build_pubsub_system(workload, seed=4, backend=backend)
    try:
        assert broker.subscribers() == sorted(sub.name for sub in workload)
        events = targeted_events(workload.space, list(workload), 5, seed=9)
        outcomes = broker.publish_many(events)
        assert all(not outcome.false_negatives for outcome in outcomes)
    finally:
        _close(broker)


# --------------------------------------------------------------------------- #
# BaselineBroker facade semantics
# --------------------------------------------------------------------------- #


@pytest.fixture
def flooding_broker(space):
    broker = SystemSpec(space, backend="flooding", seed=1).build()
    broker.subscribe_all(random_subscriptions(space, 8, seed=12))
    return broker


def test_baseline_broker_publish_audits_deliveries(space):
    broker = SystemSpec(space, backend="flooding", seed=1).build()
    broker.subscribe(subscription_from_rect("in", space, Rect((0, 0), (1, 1))))
    broker.subscribe(subscription_from_rect("out", space, Rect((2, 2), (3, 3))))
    outcome = broker.publish(Event({"x": 0.5, "y": 0.5}, event_id="e"))
    assert outcome.received == {"in", "out"}  # flooding reaches everyone
    assert outcome.intended == {"in"}
    assert outcome.false_positives == {"out"}
    assert outcome.false_negatives == set()
    assert outcome.messages >= 1
    summary = broker.summary()
    assert summary["events"] == 1.0
    assert summary["false_positives"] == 1.0


def test_baseline_broker_assigns_event_ids(flooding_broker):
    outcome = flooding_broker.publish(Event({"x": 0.4, "y": 0.4}))
    assert outcome.event_id.startswith("event-")


def test_baseline_broker_publish_into_empty_system_raises(space):
    broker = SystemSpec(space, backend="centralized").build()
    with pytest.raises(RuntimeError, match="empty system"):
        broker.publish(Event({"x": 0.1, "y": 0.2}, event_id="e"))


def test_baseline_broker_unsubscribe_and_fail(flooding_broker):
    first, second, *_ = flooding_broker.subscribers()
    flooding_broker.unsubscribe(first)
    flooding_broker.fail(second)
    assert first not in flooding_broker.subscribers()
    assert second not in flooding_broker.subscribers()
    with pytest.raises(KeyError, match="unknown subscriber"):
        flooding_broker.unsubscribe(first)
    with pytest.raises(KeyError, match="unknown subscriber"):
        flooding_broker.fail("nobody")


def test_baseline_broker_move_subscription(space, flooding_broker):
    walker = flooding_broker.subscribers()[0]
    moved = subscription_from_rect("walker~1", space,
                                   Rect((0.2, 0.2), (0.5, 0.5)))
    new_id = flooding_broker.move_subscription(walker, moved)
    assert new_id == "walker~1"
    assert walker not in flooding_broker.subscribers()
    assert flooding_broker.subscription_of(new_id) is moved


def test_baseline_broker_stabilize_is_a_noop(flooding_broker):
    before = flooding_broker.subscribers()
    assert flooding_broker.stabilize() is None
    assert flooding_broker.subscribers() == before


def test_baseline_broker_clock_counts_operations(space):
    broker = SystemSpec(space, backend="containment-tree").build()
    assert broker.clock() == 0.0
    broker.subscribe(subscription_from_rect("a", space, Rect((0, 0), (1, 1))))
    broker.publish(Event({"x": 0.5, "y": 0.5}, event_id="e"))
    assert broker.clock() == 2.0


# --------------------------------------------------------------------------- #
# Upfront validation: duplicate names (facade + baselines), space checks
# --------------------------------------------------------------------------- #


def test_move_subscription_rejects_duplicate_name_upfront(space):
    """Regression: a duplicate name used to die deep inside the simulator,
    after the old subscriber had already left the overlay."""
    system = PubSubSystem(space, seed=2)
    system.subscribe_all(random_subscriptions(space, 6, seed=8))
    victim, squatter, *_ = system.subscribers()
    before = system.subscribers()
    taken = subscription_from_rect(squatter, space, Rect((0, 0), (1, 1)))
    with pytest.raises(ValueError, match="duplicate subscription name"):
        system.move_subscription(victim, taken)
    # The upfront check fired before the leave: nothing moved.
    assert system.subscribers() == before


def test_move_subscription_rejects_retired_names_too(space):
    """Peer ids are never reused, so even a crashed subscriber's name is
    permanently taken."""
    system = PubSubSystem(space, seed=2)
    system.subscribe_all(random_subscriptions(space, 6, seed=8))
    crashed, mover, *_ = system.subscribers()
    system.fail(crashed)
    reused = subscription_from_rect(crashed, space, Rect((0, 0), (1, 1)))
    with pytest.raises(ValueError, match="never reused"):
        system.move_subscription(mover, reused)


def test_baseline_broker_never_reuses_names(space, flooding_broker):
    """Regression: names retired by unsubscribe/fail/move stay taken, so
    both broker families accept exactly the same op sequences (a trace
    recorded on a baseline replays on the DR-tree and vice versa)."""
    retired = flooding_broker.subscribers()[0]
    flooding_broker.unsubscribe(retired)
    reused = subscription_from_rect(retired, space, Rect((0, 0), (1, 1)))
    with pytest.raises(ValueError, match="never reused"):
        flooding_broker.subscribe(reused)
    with pytest.raises(ValueError, match="never reused"):
        flooding_broker.subscribe_all([reused])
    with pytest.raises(ValueError, match="never reused"):
        flooding_broker.move_subscription(flooding_broker.subscribers()[0],
                                          reused)


def test_subscribe_all_rejects_in_batch_duplicates_before_mutating(space):
    """Regression: a duplicate *within* the batch used to register the first
    copy and then die inside the simulator, leaving an unreplayable trace."""
    dup = subscription_from_rect("dup", space, Rect((0, 0), (1, 1)))
    other = subscription_from_rect("other", space, Rect((0, 0), (1, 1)))
    system = PubSubSystem(space, seed=1)
    with pytest.raises(ValueError, match="within"):
        system.subscribe_all([other, dup, dup])
    assert system.subscribers() == []  # nothing was registered

    broker = SystemSpec(space, backend="flooding").build()
    with pytest.raises(ValueError, match="within"):
        broker.subscribe_all([other, dup, dup])
    assert broker.subscribers() == []


def test_subscribe_rejects_duplicate_name_upfront(space):
    system = PubSubSystem(space, seed=2)
    system.subscribe(subscription_from_rect("a", space, Rect((0, 0), (1, 1))))
    with pytest.raises(ValueError, match="duplicate subscription name"):
        system.subscribe(subscription_from_rect("a", space,
                                                Rect((2, 2), (3, 3))))


def test_baseline_broker_move_rejects_duplicate_name(space, flooding_broker):
    mover, squatter, *_ = flooding_broker.subscribers()
    before = flooding_broker.subscribers()
    taken = subscription_from_rect(squatter, space, Rect((0, 0), (1, 1)))
    with pytest.raises(ValueError, match="duplicate subscription name"):
        flooding_broker.move_subscription(mover, taken)
    assert flooding_broker.subscribers() == before


@pytest.mark.parametrize("backend", BASELINE_BACKENDS)
def test_baseline_overlays_reject_mismatched_spaces(backend, space):
    """Regression: baselines used to accept foreign-space filters silently;
    now they raise exactly the facade's error."""
    broker = SystemSpec(space, backend=backend).build()
    foreign = subscription_from_rect(
        "f", make_space("foo", "bar"), Rect((0, 0), (1, 1)))
    with pytest.raises(
            ValueError,
            match="subscription attribute space does not match the system's"):
        broker.subscribe(foreign)


def test_bare_overlay_adopts_first_space_then_checks():
    overlay = FloodingOverlay(degree=2, seed=0)
    xy = make_space("x", "y")
    overlay.add_subscriber(
        subscription_from_rect("a", xy, Rect((0, 0), (1, 1))))
    assert overlay.space.names == ("x", "y")
    with pytest.raises(ValueError, match="attribute space"):
        overlay.add_subscriber(subscription_from_rect(
            "b", make_space("p", "q"), Rect((0, 0), (1, 1))))


# --------------------------------------------------------------------------- #
# publish_many: single-pass message accounting
# --------------------------------------------------------------------------- #


def test_publish_many_message_accounting_matches_per_publish_path():
    workload = uniform_subscriptions(14, seed=6)
    events = targeted_events(workload.space, list(workload), 8, seed=21)

    one_by_one = PubSubSystem(workload.space, seed=6)
    one_by_one.subscribe_all(workload)
    for event in events:
        one_by_one.publish(event)

    many = PubSubSystem(workload.space, seed=6)
    many.subscribe_all(workload)
    many.publish_many(events)

    per_event = {eid: o.messages for eid, o in one_by_one.accounting.outcomes.items()}
    batched = {eid: o.messages for eid, o in many.accounting.outcomes.items()}
    assert per_event == batched
    assert one_by_one.summary() == many.summary()


# --------------------------------------------------------------------------- #
# The removed batch= alias (hard error with a migration hint)
# --------------------------------------------------------------------------- #


def test_batch_alias_is_a_hard_error(space):
    with pytest.raises(TypeError, match="engine='batched'"):
        PubSubSystem(space, batch=True)
    with pytest.raises(TypeError, match="was removed"):
        PubSubSystem(space, batch=False)


def test_engine_parameter_keeps_the_legacy_mirror(space):
    system = PubSubSystem(space, engine="batched")
    assert system.batch is True  # the legacy mirror attribute survives


def test_build_pubsub_system_batch_alias_is_a_hard_error():
    workload = uniform_subscriptions(6, seed=1)
    with pytest.raises(TypeError, match="drtree:batched"):
        build_pubsub_system(workload, seed=1, batch=True)


# --------------------------------------------------------------------------- #
# Typed engine options
# --------------------------------------------------------------------------- #


def test_engine_options_unknown_key_names_engine_and_allowed_keys(space):
    with pytest.raises(ValueError, match=r"engine 'sharded'.*known:.*shards"):
        SystemSpec(space, backend="drtree:sharded",
                   engine_options={"bogus": 1})


def test_engine_options_invalid_value_is_rejected_at_spec_time(space):
    with pytest.raises(ValueError, match="shards must be at least 1"):
        SystemSpec(space, backend="drtree:sharded",
                   engine_options={"shards": 0})
    with pytest.raises(ValueError, match="unknown shard transport"):
        SystemSpec(space, backend="drtree:sharded",
                   engine_options={"transport": "postal"})


def test_engine_without_options_rejects_any_mapping(space):
    with pytest.raises(ValueError, match=r"engine 'classic'.*known: \[\]"):
        SystemSpec(space, backend="drtree:classic",
                   engine_options={"shards": 2})


def test_baseline_backend_rejects_engine_options(space):
    with pytest.raises(ValueError, match="takes no engine options"):
        SystemSpec(space, backend="flooding", engine_options={"shards": 2})


def test_with_backend_revalidates_engine_options(space):
    spec = SystemSpec(space, backend="drtree:sharded",
                      engine_options={"shards": 2})
    with pytest.raises(ValueError, match="engine options"):
        spec.with_backend("drtree:classic")


# --------------------------------------------------------------------------- #
# Adapter classes stay reachable directly
# --------------------------------------------------------------------------- #


def test_baseline_broker_direct_construction(space):
    spec = SystemSpec(space, backend="flooding", seed=3)
    broker = BaselineBroker(spec, FloodingOverlay(degree=3, seed=3))
    assert broker.overlay.space.names == space.names
    assert isinstance(broker, Broker)

"""The example scripts must run end-to-end (they are part of the public API)."""

from __future__ import annotations

import pathlib
import subprocess
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parent.parent / "examples"

EXAMPLES = [
    "quickstart.py",
    "stock_alerts.py",
    "churn_and_recovery.py",
    "split_method_comparison.py",
    "large_scale.py",
]


@pytest.mark.parametrize("script", EXAMPLES)
def test_example_runs_cleanly(script):
    path = EXAMPLES_DIR / script
    assert path.exists(), f"missing example {script}"
    completed = subprocess.run(
        [sys.executable, str(path)],
        capture_output=True,
        text=True,
        timeout=600,
    )
    assert completed.returncode == 0, completed.stderr[-2000:]
    assert completed.stdout.strip(), "example produced no output"


def test_quickstart_reports_no_missed_deliveries():
    completed = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / "quickstart.py")],
        capture_output=True,
        text=True,
        timeout=600,
    )
    assert completed.returncode == 0
    assert "false negatives:      0" in completed.stdout

"""Tests for the parallel scenario runner: determinism, ordering, errors."""

from __future__ import annotations

import math

from repro.runtime.runner import (
    ScenarioRequest,
    outcomes_to_json,
    run_many,
    run_one,
)


def _strip_durations(outcomes):
    return [(o.scenario, o.params, o.rows, o.notes, o.error) for o in outcomes]


def test_run_one_returns_rows_and_params():
    outcome = run_one("split_methods", {"peers": 20, "events": 8})
    assert outcome.ok
    assert outcome.experiment_id == "E7"
    assert outcome.params["peers"] == 20
    assert {row["method"] for row in outcome.rows} == {
        "linear", "quadratic", "rstar"}


def test_run_one_captures_scenario_failure():
    # min_children=5 with max_children=4 violates M >= 2m inside the config.
    outcome = run_one("paper_example", {"min_children": 5})
    assert not outcome.ok
    assert outcome.error is not None
    assert outcome.rows == []


def test_parallel_runner_matches_sequential_and_preserves_order():
    requests = [
        ScenarioRequest("split_methods", {"peers": 18, "events": 6}),
        ScenarioRequest("paper_example", {"seed": 2}),
        ScenarioRequest("churn", {"peers": 12, "trials": 1, "rate": 2.0}),
        ScenarioRequest("paper_example", {"seed": 9}),
    ]
    sequential = run_many(requests, jobs=1)
    parallel = run_many(requests, jobs=4)
    assert _strip_durations(sequential) == _strip_durations(parallel)
    assert [o.scenario for o in parallel] == [r.scenario for r in requests]


def test_same_seed_same_metrics_across_repeat_runs():
    first = run_one("paper_example", {"seed": 4, "peers": 24})
    second = run_one("paper_example", {"seed": 4, "peers": 24})
    assert first.rows == second.rows
    assert first.notes == second.notes


def test_outcomes_to_json_sanitizes_non_finite_floats():
    outcome = run_one("paper_example", {})
    outcome.rows.append({"broken": math.inf})
    document = outcomes_to_json([outcome])
    assert document["runs"][0]["rows"][-1]["broken"] == "inf"
    assert document["summary"]["total"] == 1
    assert document["summary"]["failed"] == 0

"""Self-stabilization tests: crashes, corruption, and convergence (Lemmas 3.3-3.6)."""

from __future__ import annotations

import pytest

from repro.overlay import DRTreeConfig, DRTreeSimulation, build_stable_tree
from repro.spatial.rectangle import Rect
from tests.conftest import random_subscriptions


def build(space, count, seed=0, m=2, M=4):
    subs = random_subscriptions(space, count, seed=seed)
    return build_stable_tree(subs, DRTreeConfig(m, M), seed=seed)


# --------------------------------------------------------------------------- #
# Crash recovery (uncontrolled departures, Lemma 3.5)
# --------------------------------------------------------------------------- #


def test_recovery_after_leaf_crash(space):
    sim = build(space, 20, seed=1)
    leaf = next(p for p in sim.live_peers() if p.top_level() == 0)
    sim.crash(leaf.process_id)
    report = sim.stabilize(max_rounds=40)
    assert report.is_legal, report.violations
    assert report.peer_count == 19


def test_recovery_after_internal_crash(space):
    sim = build(space, 25, seed=2)
    internal = next(
        p for p in sim.live_peers()
        if 0 < p.top_level() < p.top_level() or p.top_level() >= 1
    )
    sim.crash(internal.process_id)
    report = sim.stabilize(max_rounds=60)
    assert report.is_legal, report.violations
    assert report.peer_count == 24


def test_recovery_after_root_crash(space):
    sim = build(space, 25, seed=3)
    root = sim.root()
    assert root is not None
    sim.crash(root.process_id)
    report = sim.stabilize(max_rounds=60)
    assert report.is_legal, report.violations
    assert report.peer_count == 24
    new_root = sim.root()
    assert new_root is not None and new_root.process_id != root.process_id


def test_recovery_after_multiple_crashes(space):
    sim = build(space, 40, seed=4)
    victims = [p.process_id for p in sim.live_peers()][::7][:5]
    for victim in victims:
        sim.crash(victim)
    report = sim.stabilize(max_rounds=80)
    assert report.is_legal, report.violations
    assert report.peer_count == 35


# --------------------------------------------------------------------------- #
# Memory corruption (transient faults, Lemma 3.6)
# --------------------------------------------------------------------------- #


@pytest.mark.parametrize("field", ["parent", "children", "mbr", "underloaded"])
def test_recovery_from_single_field_corruption(space, field):
    sim = build(space, 20, seed=5)
    report = sim.corrupt(fraction=0.4, fields=[field])
    assert report.count > 0
    final = sim.stabilize(max_rounds=60)
    assert final.is_legal, final.violations


def test_recovery_from_full_corruption(space):
    sim = build(space, 30, seed=6)
    sim.corrupt(fraction=0.4)
    final = sim.stabilize(max_rounds=80)
    assert final.is_legal, final.violations
    assert final.peer_count == 30


def test_mbr_corruption_is_repaired_in_place(space):
    sim = build(space, 12, seed=7)
    peer = sim.root() or sim.live_peers()[0]
    bogus = Rect((0.0, 0.0), (0.001, 0.001))
    level = peer.top_level()
    peer.corrupt_mbr(level, bogus)
    sim.run_round()
    sim.run_round()
    repaired = peer.mbr_at(level)
    assert repaired is not None and repaired.as_tuple() != bogus.as_tuple()
    assert sim.stabilize(max_rounds=20).is_legal


def test_corrupted_underloaded_flag_reset(space):
    sim = build(space, 15, seed=8)
    victim = next(p for p in sim.live_peers() if p.top_level() >= 1)
    level = victim.top_level()
    truth = len(victim.instances[level].children) < sim.config.min_children
    victim.corrupt_underloaded(level, not truth)
    sim.run_round()
    if level in victim.instances:  # the repair may legitimately reshuffle
        assert victim.instances[level].underloaded == (
            len(victim.instances[level].children) < sim.config.min_children
        )
    assert sim.stabilize(max_rounds=30).is_legal


def test_corrupted_parent_pointer_triggers_rejoin(space):
    sim = build(space, 20, seed=9)
    # Corrupt a leaf-only peer's parent pointer to point at a random peer.
    leaf = next(p for p in sim.live_peers() if p.top_level() == 0)
    other = next(p for p in sim.live_peers()
                 if p.process_id != leaf.process_id and p.top_level() == 0)
    leaf.corrupt_parent(0, other.process_id)
    final = sim.stabilize(max_rounds=40)
    assert final.is_legal, final.violations


# --------------------------------------------------------------------------- #
# Combined faults and repeated convergence
# --------------------------------------------------------------------------- #


def test_combined_crash_and_corruption(space):
    sim = build(space, 30, seed=10, M=5)
    victims = [p.process_id for p in sim.live_peers()][:3]
    for victim in victims:
        sim.crash(victim)
    sim.corrupt(fraction=0.2)
    final = sim.stabilize(max_rounds=80)
    assert final.is_legal, final.violations
    assert final.peer_count == 27


def test_stabilize_is_idempotent_on_legal_configuration(space):
    sim = build(space, 20, seed=11)
    before = sim.verify()
    assert before.is_legal
    messages_before = sim.metrics.counter("network.messages_sent")
    report = sim.stabilize(max_rounds=5)
    assert report.is_legal
    # A legal configuration requires no repair messages beyond the periodic
    # parent queries/acks of at most a few rounds.
    assert sim.metrics.counter("network.messages_sent") - messages_before >= 0


def test_periodic_stabilization_timers(space):
    """The stabilization can also run from per-peer periodic timers."""
    subs = random_subscriptions(space, 10, seed=12)
    sim = DRTreeSimulation(DRTreeConfig(2, 4, stabilization_period=5.0), seed=0)
    sim.join_all(subs)
    for peer in sim.live_peers():
        peer.start_periodic_stabilization()
    sim.engine.run(until=sim.engine.now + 50.0)
    report = sim.verify()
    assert report.is_legal, report.violations
    for peer in sim.live_peers():
        assert peer.round_number >= 5


def test_metrics_record_repairs(space):
    sim = build(space, 25, seed=13)
    sim.corrupt(fraction=0.5, fields=["mbr"])
    sim.stabilize(max_rounds=30)
    assert sim.metrics.counter("stabilization.mbr_repairs") > 0

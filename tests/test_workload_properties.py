"""Property tests for the synthesized-workload generator stages.

The synthesis subsystem (:mod:`repro.workloads.synth`) makes quantitative
promises — Zipf rank shares, exact diurnal mass conservation, balanced
flash-crowd membership, mobility that never leaves the unit cube — and a
structural one: the streamed emission is byte-identical to a materialized
pass over the same spec.  Hypothesis searches the knob space for
violations instead of trusting a few hand-picked cases.
"""

from __future__ import annotations

import hashlib
import math
from random import Random

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.traces.io import dump_record
from repro.workloads.synth import (FAMILY_NAMES, SyntheticWorkload,
                                   iter_ops, iter_records, stream_signature,
                                   write_synth_trace)
from repro.workloads.synth.stages import (bounded_walk, clip01,
                                          correlated_point, diurnal_counts,
                                          diurnal_weights, flash_windows,
                                          uniform_point, zipf_cumulative,
                                          zipf_rank)

_COMMON = dict(deadline=None,
               suppress_health_check=[HealthCheck.too_slow])


# --------------------------------------------------------------------------- #
# Zipf popularity
# --------------------------------------------------------------------------- #


@given(ranks=st.integers(1, 24), exponent=st.floats(0.3, 3.0))
@settings(**_COMMON)
def test_zipf_cumulative_is_monotone_and_covers_every_draw(ranks, exponent):
    cumulative = zipf_cumulative(ranks, exponent)
    assert len(cumulative) == ranks
    assert cumulative[-1] == 1.0
    assert all(later >= earlier for earlier, later
               in zip(cumulative, cumulative[1:]))
    # The first edge is rank 1's analytic share.
    weights = [1.0 / (rank ** exponent) for rank in range(1, ranks + 1)]
    assert math.isclose(cumulative[0], weights[0] / sum(weights),
                        rel_tol=1e-9)


@given(ranks=st.integers(1, 8), exponent=st.floats(0.5, 2.0),
       seed=st.integers(0, 1000))
@settings(max_examples=25, **_COMMON)
def test_zipf_empirical_shares_match_the_analytic_weights(ranks, exponent,
                                                          seed):
    """Sampled rank frequencies track 1/r^exponent within tolerance."""
    draws = 3000
    cumulative = zipf_cumulative(ranks, exponent)
    rng = Random(seed)
    counts = [0] * ranks
    for _ in range(draws):
        counts[zipf_rank(rng, cumulative)] += 1
    weights = [1.0 / (rank ** exponent) for rank in range(1, ranks + 1)]
    total = sum(weights)
    for rank in range(ranks):
        assert abs(counts[rank] / draws - weights[rank] / total) < 0.05


def test_zipf_tail_exponent_recovered_by_log_log_regression():
    """Fixed case: the empirical rank-frequency slope is ≈ -exponent."""
    exponent, ranks, draws = 1.2, 16, 60000
    cumulative = zipf_cumulative(ranks, exponent)
    rng = Random(42)
    counts = [0] * ranks
    for _ in range(draws):
        counts[zipf_rank(rng, cumulative)] += 1
    points = [(math.log(rank + 1), math.log(count))
              for rank, count in enumerate(counts) if count]
    n = len(points)
    mean_x = sum(x for x, _ in points) / n
    mean_y = sum(y for _, y in points) / n
    slope = (sum((x - mean_x) * (y - mean_y) for x, y in points)
             / sum((x - mean_x) ** 2 for x, _ in points))
    assert abs(slope + exponent) < 0.15, slope


# --------------------------------------------------------------------------- #
# Diurnal rate curve
# --------------------------------------------------------------------------- #


@given(total=st.integers(0, 5000), bins=st.integers(1, 96),
       amplitude=st.floats(0.0, 1.0))
@settings(**_COMMON)
def test_diurnal_apportionment_conserves_mass_exactly(total, bins, amplitude):
    counts = diurnal_counts(total, bins, amplitude)
    assert len(counts) == bins
    assert sum(counts) == total
    assert all(count >= 0 for count in counts)


@given(total=st.integers(1, 5000), bins=st.integers(1, 96))
@settings(**_COMMON)
def test_flat_amplitude_apportions_nearly_uniformly(total, bins):
    counts = diurnal_counts(total, bins, 0.0)
    assert max(counts) - min(counts) <= 1


@given(bins=st.integers(2, 96), amplitude=st.floats(0.0, 1.0))
@settings(**_COMMON)
def test_diurnal_weights_are_non_negative_with_trough_first(bins, amplitude):
    weights = diurnal_weights(bins, amplitude)
    assert all(weight >= 0.0 for weight in weights)
    # Phase convention: the period starts at the night-time trough, so the
    # first bin never out-rates the mid-period peak.
    assert weights[0] <= max(weights) + 1e-12


# --------------------------------------------------------------------------- #
# Point stages
# --------------------------------------------------------------------------- #


@given(seed=st.integers(0, 10_000),
       centre=st.lists(st.floats(0.0, 1.0), min_size=1, max_size=4),
       spread=st.floats(0.0, 0.5), correlation=st.floats(0.0, 1.0))
@settings(**_COMMON)
def test_correlated_points_stay_in_the_unit_cube(seed, centre, spread,
                                                 correlation):
    coords = correlated_point(Random(seed), centre, spread, correlation)
    assert len(coords) == len(centre)
    assert all(0.0 <= coord <= 1.0 for coord in coords)


@given(seed=st.integers(0, 10_000), dimensions=st.integers(1, 4))
@settings(**_COMMON)
def test_uniform_points_stay_in_the_unit_cube(seed, dimensions):
    coords = uniform_point(Random(seed), dimensions)
    assert len(coords) == dimensions
    assert all(0.0 <= coord <= 1.0 for coord in coords)


@given(seed=st.integers(0, 10_000),
       rects=st.lists(
           st.tuples(st.floats(0.0, 1.0), st.floats(0.0, 1.0)),
           min_size=1, max_size=4),
       step=st.floats(0.001, 0.8))
@settings(**_COMMON)
def test_bounded_walk_preserves_extent_inside_the_unit_cube(seed, rects,
                                                            step):
    lower = [min(a, b) for a, b in rects]
    upper = [max(a, b) for a, b in rects]
    rng = Random(seed)
    for _ in range(5):
        lower, upper = bounded_walk(rng, lower, upper, step)
        for low, high, old_low, old_high in zip(
                lower, upper,
                [min(a, b) for a, b in rects],
                [max(a, b) for a, b in rects]):
            assert -1e-12 <= low <= high <= 1.0 + 1e-12
            assert math.isclose(high - low, old_high - old_low,
                                abs_tol=1e-9)


@given(seed=st.integers(0, 10_000), crowds=st.integers(0, 6),
       bins=st.integers(1, 96))
@settings(**_COMMON)
def test_flash_windows_land_inside_the_period(seed, crowds, bins):
    windows = flash_windows(Random(seed), crowds, bins)
    assert len(windows) == crowds
    for start, end in windows:
        assert 0 <= start < end <= bins


# --------------------------------------------------------------------------- #
# Whole-stream properties
# --------------------------------------------------------------------------- #

_SPECS = st.builds(
    SyntheticWorkload.from_family,
    st.sampled_from(list(FAMILY_NAMES)),
    subscribers=st.integers(5, 40),
    events=st.integers(0, 80),
    seed=st.integers(0, 50),
)


@given(spec=_SPECS)
@settings(max_examples=25, **_COMMON)
def test_stream_publishes_exactly_the_requested_events(spec):
    ops = list(iter_ops(spec))
    published = [op for op in ops if op.op == "publish"]
    assert len(published) == spec.events
    assert [op.data["event"]["id"] for op in published] == [
        f"synth-{index}" for index in range(spec.events)]


@given(spec=_SPECS)
@settings(max_examples=25, **_COMMON)
def test_flash_crowd_joins_and_leaves_balance(spec):
    """Every flash subscribe is matched by exactly one later unsubscribe."""
    joined = []
    left = []
    for op in iter_ops(spec):
        if op.op == "subscribe":
            joined.append(op.data["subscription"]["name"])
        elif op.op == "unsubscribe":
            left.append(op.data["id"])
    assert sorted(joined) == sorted(left)
    assert len(joined) == len(set(joined))
    seen = set()
    for op in iter_ops(spec):
        if op.op == "subscribe":
            seen.add(op.data["subscription"]["name"])
        elif op.op == "unsubscribe":
            assert op.data["id"] in seen, "leave before its join"


@given(spec=_SPECS)
@settings(max_examples=25, **_COMMON)
def test_mobility_moves_stay_inside_bounds_and_preserve_extent(spec):
    extents = {}
    for op in iter_ops(spec):
        if op.op == "subscribe_all":
            for sub in op.data["subscriptions"]:
                rect = sub["rect"]
                extents[sub["name"]] = [
                    high - low
                    for low, high in zip(rect["lower"], rect["upper"])]
        elif op.op == "move":
            rect = op.data["subscription"]["rect"]
            for low, high, extent in zip(rect["lower"], rect["upper"],
                                         extents[op.data["id"]]):
                assert -1e-12 <= low <= high <= 1.0 + 1e-12
                assert math.isclose(high - low, extent, abs_tol=1e-9)
            extents[op.data["subscription"]["name"]] = extents.pop(
                op.data["id"])


@given(spec=_SPECS)
@settings(max_examples=10, **_COMMON)
def test_streamed_emission_is_byte_identical_to_a_materialized_pass(
        spec, tmp_path_factory):
    """The lazily written trace equals a fully materialized serialization."""
    path = tmp_path_factory.mktemp("synth") / "stream.jsonl"
    write_synth_trace(path, spec)
    materialized = "".join(
        dump_record(record) + "\n"
        for record in list(iter_records(spec)))
    assert path.read_bytes() == materialized.encode("utf-8")
    assert stream_signature(spec) == hashlib.sha256(
        materialized.encode("utf-8")).hexdigest()


@given(spec=_SPECS)
@settings(max_examples=25, **_COMMON)
def test_same_spec_same_signature(spec):
    assert stream_signature(spec) == stream_signature(spec)


@given(spec=_SPECS, other_seed=st.integers(51, 99))
@settings(max_examples=10, **_COMMON)
def test_different_seeds_produce_different_streams(spec, other_seed):
    if not spec.events:
        return  # an empty stream's randomness never surfaces
    reseeded = SyntheticWorkload.from_json(
        dict(spec.to_json(), seed=other_seed))
    assert stream_signature(spec) != stream_signature(reseeded)


@given(seed=st.integers(0, 100))
@settings(max_examples=10, **_COMMON)
def test_stage_isolation_toggling_membership_stages_keeps_event_draws(seed):
    """Flash crowds and mobility must not perturb the event attributes.

    Each stage draws from its own named RNG stream, so enabling the
    membership stages changes the op stream but never the published
    events' coordinates (the topics/points streams are untouched).
    """
    from repro.workloads.synth import iter_events

    plain = SyntheticWorkload.from_family("zipf-diurnal", subscribers=20,
                                          events=30, seed=seed)
    noisy = SyntheticWorkload.from_family(
        "zipf-diurnal", subscribers=20, events=30, seed=seed,
        flash_crowds=2, crowd_size=3, walkers=4, move_every=5)
    assert [event.attributes for event in iter_events(plain)] == [
        event.attributes for event in iter_events(noisy)]


def test_clip01_clamps():
    assert clip01(-0.5) == 0.0
    assert clip01(1.5) == 1.0
    assert clip01(0.25) == 0.25

"""Tests for subscriptions, predicates, events and attribute spaces."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.spatial.filters import (
    AttributeSpace,
    Event,
    Predicate,
    Subscription,
    make_space,
    subscription_from_intervals,
    subscription_from_rect,
)
from repro.spatial.rectangle import Rect


# --------------------------------------------------------------------------- #
# Predicates
# --------------------------------------------------------------------------- #


@pytest.mark.parametrize(
    "operator,value,probe,expected",
    [
        ("=", 5, 5, True),
        ("=", 5, 6, False),
        ("<", 5, 4, True),
        ("<", 5, 5, False),
        (">", 5, 6, True),
        (">", 5, 5, False),
        ("<=", 5, 5, True),
        (">=", 5, 5, True),
        (">=", 5, 4, False),
    ],
)
def test_predicate_matching(operator, value, probe, expected):
    assert Predicate("a", operator, value).matches(probe) is expected


def test_predicate_rejects_unknown_operator():
    with pytest.raises(ValueError):
        Predicate("a", "!=", 3)


def test_predicate_intervals():
    assert Predicate("a", "=", 3).interval() == (3, 3)
    assert Predicate("a", "<", 3).interval() == (-math.inf, 3)
    assert Predicate("a", ">=", 3).interval() == (3, math.inf)


# --------------------------------------------------------------------------- #
# Attribute space
# --------------------------------------------------------------------------- #


def test_attribute_space_basic():
    space = make_space("x", "y", "z")
    assert space.dimensions == 3
    assert space.index("y") == 1


def test_attribute_space_rejects_duplicates():
    with pytest.raises(ValueError):
        AttributeSpace(("x", "x"))


def test_attribute_space_rejects_empty():
    with pytest.raises(ValueError):
        AttributeSpace(())


def test_event_to_point_order(space):
    event = Event({"y": 2.0, "x": 1.0})
    assert event.to_point(space).coords == (1.0, 2.0)


def test_event_to_point_missing_attribute(space):
    event = Event({"x": 1.0})
    with pytest.raises(KeyError):
        event.to_point(space)


def test_rect_for_unbounded_attribute(space):
    rect = space.rect_for({"x": (0.0, 1.0)})
    assert rect.interval(0) == (0.0, 1.0)
    assert rect.interval(1) == (-math.inf, math.inf)


# --------------------------------------------------------------------------- #
# Subscriptions
# --------------------------------------------------------------------------- #


def test_subscription_from_predicates(space):
    sub = Subscription(
        name="S",
        space=space,
        predicates=(
            Predicate("x", ">=", 0.2),
            Predicate("x", "<=", 0.6),
            Predicate("y", ">=", 0.1),
            Predicate("y", "<=", 0.5),
        ),
    )
    assert sub.rect.lower == (0.2, 0.1)
    assert sub.rect.upper == (0.6, 0.5)
    assert sub.matches(Event({"x": 0.3, "y": 0.3}))
    assert not sub.matches(Event({"x": 0.7, "y": 0.3}))


def test_subscription_contradictory_predicates(space):
    with pytest.raises(ValueError):
        Subscription(
            name="S",
            space=space,
            predicates=(Predicate("x", ">=", 0.8), Predicate("x", "<=", 0.2)),
        )


def test_subscription_unknown_attribute(space):
    with pytest.raises(ValueError):
        Subscription(name="S", space=space, predicates=(Predicate("zzz", "=", 1),))


def test_subscription_from_rect_matches_geometrically(space):
    sub = subscription_from_rect("S", space, Rect((0, 0), (1, 1)))
    assert sub.matches(Event({"x": 0.5, "y": 0.5}))
    assert not sub.matches(Event({"x": 2.0, "y": 0.5}))


def test_subscription_from_rect_missing_event_attribute(space):
    sub = subscription_from_rect("S", space, Rect((0, 0), (1, 1)))
    assert not sub.matches(Event({"x": 0.5}))


def test_subscription_from_intervals(space):
    sub = subscription_from_intervals("S", space, {"x": (0.0, 0.5), "y": (0.2, 0.4)})
    assert sub.rect.lower == (0.0, 0.2)
    assert sub.rect.upper == (0.5, 0.4)
    assert sub.matches(Event({"x": 0.25, "y": 0.3}))


def test_subscription_from_intervals_point_value(space):
    sub = subscription_from_intervals("S", space, {"x": (0.5, 0.5)})
    assert sub.matches(Event({"x": 0.5, "y": 99.0}))
    assert not sub.matches(Event({"x": 0.6, "y": 99.0}))


def test_subscription_containment(space):
    big = subscription_from_rect("big", space, Rect((0, 0), (1, 1)))
    small = subscription_from_rect("small", space, Rect((0.2, 0.2), (0.4, 0.4)))
    assert big.contains(small)
    assert not small.contains(big)


def test_subscription_dimension_mismatch():
    space3 = make_space("x", "y", "z")
    with pytest.raises(ValueError):
        subscription_from_rect("S", space3, Rect((0, 0), (1, 1)))


def test_subscription_area(space):
    sub = subscription_from_rect("S", space, Rect((0, 0), (2, 3)))
    assert sub.area() == 6.0


def test_event_hashable():
    a = Event({"x": 1.0}, event_id="e1")
    b = Event({"x": 1.0}, event_id="e1")
    assert hash(a) == hash(b)


# --------------------------------------------------------------------------- #
# Property-based: geometric matching agrees with predicate matching
# --------------------------------------------------------------------------- #

unit = st.floats(min_value=0.0, max_value=1.0, allow_nan=False)


@given(unit, unit, unit, unit, unit, unit)
@settings(max_examples=200, deadline=None)
def test_predicate_and_rect_matching_agree(x0, x1, y0, y1, ex, ey):
    space = make_space("x", "y")
    x_low, x_high = sorted((x0, x1))
    y_low, y_high = sorted((y0, y1))
    by_predicates = subscription_from_intervals(
        "P", space, {"x": (x_low, x_high), "y": (y_low, y_high)}
    )
    by_rect = subscription_from_rect(
        "R", space, Rect((x_low, y_low), (x_high, y_high))
    )
    event = Event({"x": ex, "y": ey})
    assert by_predicates.matches(event) == by_rect.matches(event)


@given(unit, unit, unit, unit)
@settings(max_examples=200, deadline=None)
def test_containment_is_reflexive_and_antisymmetric_on_area(x0, x1, y0, y1):
    space = make_space("x", "y")
    x_low, x_high = sorted((x0, x1))
    y_low, y_high = sorted((y0, y1))
    sub = subscription_from_rect("S", space, Rect((x_low, y_low), (x_high, y_high)))
    assert sub.contains(sub)

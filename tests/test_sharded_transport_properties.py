"""Differential transport parity: random op sequences, classic vs sharded.

The sharded simulator's one contract is *indistinguishability*: whatever
sequence of facade operations a client performs — subscriptions, event
publications, crashes, repairs, late joins, controlled departures — the
observable outcome (summary metrics, every delivery record, every simulator
counter, the surviving subscriber set) must be byte-identical to
``drtree:classic`` on the same seed, for every shard count and every
transport.  This suite enforces that property *differentially*: hypothesis
generates random op sequences, an interpreter replays each sequence through
the classic engine once and then through sharded engines across
{pipe, shm} × {1, 2, 8 shards}, and any divergence anywhere fails with the
op sequence minimized by hypothesis.

The inline transport is covered by ``tests/test_sim_sharded.py``; here the
interesting targets are the two *real* inter-process transports — pickled
pipes and the shared-memory frame rings of :mod:`repro.sim.sharded.shm` —
whose framing, batching and barrier behavior must be invisible.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.api.spec import SystemSpec
from repro.overlay.config import DRTreeConfig
from repro.sim.sharded import shm_available
from repro.spatial.filters import subscription_from_intervals
from repro.workloads.events import targeted_events
from repro.workloads.subscriptions import uniform_subscriptions

CONFIG = DRTreeConfig(min_children=2, max_children=4)

#: The bulk-loaded base population every sequence starts from.  Small
#: enough that one hypothesis example (1 classic + 6 sharded runs) stays
#: fast; large enough that 8 requested shards are all effective.
_WORKLOAD = uniform_subscriptions(120, seed=13)
SPACE = _WORKLOAD.space
BASE_SUBS = list(_WORKLOAD)
EVENTS = targeted_events(SPACE, BASE_SUBS, 40, seed=29)

#: Never shrink the population below this through leaves/crashes, so every
#: generated sequence keeps a publishable, repairable overlay.
MIN_POPULATION = 100

#: (shards, transport) grid the classic outcome is checked against.
TRANSPORT_GRID = [(1, "pipe"), (2, "pipe"), (8, "pipe")]
if shm_available():
    TRANSPORT_GRID += [(1, "shm"), (2, "shm"), (8, "shm")]


def interpret(backend, ops, engine_options=None, seed=13):
    """Replay one op sequence; return everything a client can observe.

    The interpreter is deliberately deterministic given ``ops`` alone —
    victim picks and joiner rectangles derive from the op's integer payload
    and the interpreter's own state, never from the engine under test — so
    the classic and sharded replays see the exact same call sequence.
    """
    spec = SystemSpec(space=SPACE, backend=backend, config=CONFIG, seed=seed,
                      engine_options=engine_options)
    broker = spec.build()
    active = list(broker.subscribe_all(BASE_SUBS))
    joined = 0
    for kind, value in ops:
        if kind == "publish":
            broker.publish_many([EVENTS[value % len(EVENTS)]])
        elif kind == "join":
            low = (value % 60) / 100.0
            sub = subscription_from_intervals(
                f"joiner-{joined}", SPACE,
                {name: (low, low + 0.25) for name in SPACE.names})
            joined += 1
            broker.subscribe(sub)
            active.append(sub.name)
        elif kind == "leave":
            if len(active) <= MIN_POPULATION:
                continue
            broker.unsubscribe(active.pop(value % len(active)))
        elif kind == "crash":
            if len(active) <= MIN_POPULATION:
                continue
            broker.fail(active.pop(value % len(active)))
        else:  # stabilize
            broker.stabilize()
    outcome = (
        broker.summary(),
        sorted(broker.subscribers()),
        sorted((r.event_id, r.subscriber_id, r.matched, r.hops)
               for r in broker.accounting.records),
        {name: count
         for name, count in broker.simulation.metrics.counters().items()
         if not name.startswith("shard.")},
    )
    close = getattr(broker.simulation, "close", None)
    if close is not None:
        close()
    return outcome


_PAYLOAD = st.integers(min_value=0, max_value=10**6)
_OP = st.one_of(
    st.tuples(st.just("publish"), _PAYLOAD),
    st.tuples(st.just("join"), _PAYLOAD),
    st.tuples(st.just("leave"), _PAYLOAD),
    st.tuples(st.just("crash"), _PAYLOAD),
    st.tuples(st.just("stabilize"), st.just(0)),
)


@settings(max_examples=6, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(ops=st.lists(_OP, max_size=10))
def test_random_op_sequences_are_transport_invariant(ops):
    classic = interpret("drtree:classic", ops)
    for shards, transport in TRANSPORT_GRID:
        sharded = interpret(
            "drtree:sharded", ops,
            engine_options={"shards": shards, "transport": transport})
        assert sharded == classic, (
            f"{shards} shards over {transport!r} diverged from classic "
            f"on ops {ops!r}")


@pytest.mark.parametrize("shards,transport", TRANSPORT_GRID)
def test_dense_churn_sequence_is_transport_invariant(shards, transport):
    """One fixed, maximally mixed sequence runs on every grid point.

    Hypothesis explores breadth; this pins one deep interleaving — publish
    bursts between every membership mutation and an explicit repair after a
    crash — so each (shards, transport) pair is exercised on every op kind
    in every CI run, not just when the random sampler happens to visit it.
    """
    ops = [
        ("publish", 0), ("publish", 1),
        ("join", 7), ("publish", 2),
        ("crash", 3), ("stabilize", 0), ("publish", 3),
        ("leave", 11), ("publish", 4),
        ("join", 41), ("publish", 5), ("publish", 6),
        ("leave", 2), ("crash", 17), ("stabilize", 0),
        ("publish", 7), ("publish", 8),
    ]
    classic = interpret("drtree:classic", ops)
    sharded = interpret(
        "drtree:sharded", ops,
        engine_options={"shards": shards, "transport": transport})
    assert sharded == classic

"""Unit and property-based tests for repro.spatial.rectangle."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.spatial.rectangle import Point, Rect


# --------------------------------------------------------------------------- #
# Construction
# --------------------------------------------------------------------------- #


def test_point_holds_coordinates():
    point = Point(1.0, 2.5)
    assert point.coords == (1.0, 2.5)
    assert point.dimensions == 2
    assert point[0] == 1.0
    assert list(point) == [1.0, 2.5]


def test_point_accepts_sequence():
    point = Point((3, 4))
    assert point.coords == (3.0, 4.0)


def test_point_as_rect_is_degenerate():
    rect = Point(1.0, 2.0).as_rect()
    assert rect.lower == rect.upper == (1.0, 2.0)
    assert rect.is_degenerate()


def test_rect_requires_matching_dimensions():
    with pytest.raises(ValueError):
        Rect((0.0,), (1.0, 2.0))


def test_rect_rejects_inverted_bounds():
    with pytest.raises(ValueError):
        Rect((1.0, 0.0), (0.0, 1.0))


def test_rect_rejects_nan():
    with pytest.raises(ValueError):
        Rect((math.nan, 0.0), (1.0, 1.0))


def test_rect_rejects_empty():
    with pytest.raises(ValueError):
        Rect((), ())


def test_rect_from_points():
    rect = Rect.from_points([Point(0, 0), Point(2, 1), Point(1, 3)])
    assert rect.lower == (0.0, 0.0)
    assert rect.upper == (2.0, 3.0)


def test_rect_from_points_empty_raises():
    with pytest.raises(ValueError):
        Rect.from_points([])


def test_rect_from_intervals():
    rect = Rect.from_intervals([(0, 1), (2, 5)])
    assert rect.interval(0) == (0.0, 1.0)
    assert rect.interval(1) == (2.0, 5.0)


def test_unbounded_rect_contains_everything():
    rect = Rect.unbounded(2)
    assert rect.contains_point(Point(1e12, -1e12))
    assert rect.area() == math.inf


# --------------------------------------------------------------------------- #
# Measures
# --------------------------------------------------------------------------- #


def test_area_and_margin():
    rect = Rect((0, 0), (2, 3))
    assert rect.area() == 6.0
    assert rect.margin() == 5.0
    assert rect.extent(0) == 2.0
    assert rect.extent(1) == 3.0


def test_center():
    rect = Rect((0, 0), (2, 4))
    assert rect.center.coords == (1.0, 2.0)


def test_degenerate_rect_has_zero_area():
    rect = Rect((1, 1), (1, 5))
    assert rect.area() == 0.0
    assert not rect.is_degenerate()
    assert Rect((1, 1), (1, 1)).is_degenerate()


# --------------------------------------------------------------------------- #
# Relations
# --------------------------------------------------------------------------- #


def test_contains_point_inclusive_bounds():
    rect = Rect((0, 0), (1, 1))
    assert rect.contains_point(Point(0, 0))
    assert rect.contains_point(Point(1, 1))
    assert rect.contains_point(Point(0.5, 0.5))
    assert not rect.contains_point(Point(1.5, 0.5))


def test_contains_point_dimension_mismatch():
    with pytest.raises(ValueError):
        Rect((0, 0), (1, 1)).contains_point(Point(0.5))


def test_contains_rect():
    outer = Rect((0, 0), (10, 10))
    inner = Rect((2, 2), (5, 5))
    assert outer.contains_rect(inner)
    assert not inner.contains_rect(outer)
    assert outer.contains_rect(outer)


def test_intersects():
    a = Rect((0, 0), (2, 2))
    b = Rect((1, 1), (3, 3))
    c = Rect((5, 5), (6, 6))
    assert a.intersects(b)
    assert b.intersects(a)
    assert not a.intersects(c)
    # Touching boundaries count as intersecting.
    d = Rect((2, 0), (4, 2))
    assert a.intersects(d)


def test_relation_dimension_mismatch():
    with pytest.raises(ValueError):
        Rect((0, 0), (1, 1)).intersects(Rect((0,), (1,)))


# --------------------------------------------------------------------------- #
# Combinations
# --------------------------------------------------------------------------- #


def test_union():
    a = Rect((0, 0), (1, 1))
    b = Rect((2, 2), (3, 3))
    union = a.union(b)
    assert union.lower == (0.0, 0.0)
    assert union.upper == (3.0, 3.0)


def test_union_of_many():
    rects = [Rect((i, i), (i + 1, i + 1)) for i in range(4)]
    union = Rect.union_of(rects)
    assert union.lower == (0.0, 0.0)
    assert union.upper == (4.0, 4.0)


def test_union_of_empty_raises():
    with pytest.raises(ValueError):
        Rect.union_of([])


def test_intersection():
    a = Rect((0, 0), (2, 2))
    b = Rect((1, 1), (3, 3))
    overlap = a.intersection(b)
    assert overlap is not None
    assert overlap.lower == (1.0, 1.0)
    assert overlap.upper == (2.0, 2.0)
    assert a.intersection_area(b) == 1.0


def test_intersection_disjoint_is_none():
    a = Rect((0, 0), (1, 1))
    b = Rect((2, 2), (3, 3))
    assert a.intersection(b) is None
    assert a.intersection_area(b) == 0.0


def test_enlargement():
    a = Rect((0, 0), (1, 1))
    b = Rect((1, 1), (2, 2))
    assert a.enlargement(b) == pytest.approx(3.0)
    assert a.enlargement(Rect((0.2, 0.2), (0.8, 0.8))) == 0.0


def test_waste():
    a = Rect((0, 0), (1, 1))
    b = Rect((2, 2), (3, 3))
    # union area 9, each area 1 => waste 7
    assert a.waste(b) == pytest.approx(7.0)


def test_as_tuple_round_trip():
    rect = Rect((0, 1), (2, 3))
    lower, upper = rect.as_tuple()
    assert Rect(lower, upper) == rect


# --------------------------------------------------------------------------- #
# Property-based tests
# --------------------------------------------------------------------------- #

coords = st.floats(min_value=-1000, max_value=1000, allow_nan=False,
                   allow_infinity=False)


@st.composite
def rects(draw, dims=2):
    lows = [draw(coords) for _ in range(dims)]
    highs = [draw(coords) for _ in range(dims)]
    lower = tuple(min(a, b) for a, b in zip(lows, highs))
    upper = tuple(max(a, b) for a, b in zip(lows, highs))
    return Rect(lower, upper)


@given(rects(), rects())
@settings(max_examples=200, deadline=None)
def test_union_contains_both(a, b):
    union = a.union(b)
    assert union.contains_rect(a)
    assert union.contains_rect(b)


@given(rects(), rects())
@settings(max_examples=200, deadline=None)
def test_union_is_commutative(a, b):
    assert a.union(b) == b.union(a)


@given(rects(), rects())
@settings(max_examples=200, deadline=None)
def test_enlargement_is_non_negative(a, b):
    assert a.enlargement(b) >= 0.0


@given(rects(), rects())
@settings(max_examples=200, deadline=None)
def test_intersection_is_contained_in_both(a, b):
    overlap = a.intersection(b)
    if overlap is not None:
        assert a.contains_rect(overlap)
        assert b.contains_rect(overlap)


@given(rects(), rects())
@settings(max_examples=200, deadline=None)
def test_containment_implies_intersection(a, b):
    if a.contains_rect(b):
        assert a.intersects(b)
        assert a.intersection_area(b) == pytest.approx(b.area())


@given(rects())
@settings(max_examples=100, deadline=None)
def test_union_with_self_is_identity(a):
    assert a.union(a) == a
    assert a.enlargement(a) == 0.0


@given(rects(), rects(), rects())
@settings(max_examples=100, deadline=None)
def test_union_is_associative(a, b, c):
    assert a.union(b).union(c) == a.union(b.union(c))


@given(rects())
@settings(max_examples=100, deadline=None)
def test_center_is_inside(a):
    assert a.contains_point(a.center)

"""Tests for the discrete-event simulation engine."""

from __future__ import annotations

import pytest

from repro.sim.engine import SimulationEngine


def test_events_run_in_time_order():
    engine = SimulationEngine()
    order = []
    engine.schedule(5.0, lambda: order.append("late"))
    engine.schedule(1.0, lambda: order.append("early"))
    engine.schedule(3.0, lambda: order.append("middle"))
    engine.run_until_idle()
    assert order == ["early", "middle", "late"]
    assert engine.now == 5.0


def test_same_time_events_are_fifo():
    engine = SimulationEngine()
    order = []
    for index in range(5):
        engine.schedule(1.0, lambda i=index: order.append(i))
    engine.run_until_idle()
    assert order == [0, 1, 2, 3, 4]


def test_negative_delay_rejected():
    engine = SimulationEngine()
    with pytest.raises(ValueError):
        engine.schedule(-1.0, lambda: None)


def test_schedule_at_absolute_time():
    engine = SimulationEngine()
    seen = []
    engine.schedule_at(4.0, lambda: seen.append(engine.now))
    engine.run_until_idle()
    assert seen == [4.0]
    with pytest.raises(ValueError):
        engine.schedule_at(1.0, lambda: None)


def test_cancelled_events_do_not_run():
    engine = SimulationEngine()
    seen = []
    event = engine.schedule(1.0, lambda: seen.append("cancelled"))
    engine.schedule(2.0, lambda: seen.append("kept"))
    event.cancel()
    engine.run_until_idle()
    assert seen == ["kept"]


def test_callbacks_can_schedule_more_events():
    engine = SimulationEngine()
    seen = []

    def first():
        seen.append("first")
        engine.schedule(1.0, lambda: seen.append("second"))

    engine.schedule(1.0, first)
    engine.run_until_idle()
    assert seen == ["first", "second"]
    assert engine.now == 2.0


def test_run_until_horizon_stops_before_future_events():
    engine = SimulationEngine()
    seen = []
    engine.schedule(1.0, lambda: seen.append(1))
    engine.schedule(10.0, lambda: seen.append(10))
    engine.run(until=5.0)
    assert seen == [1]
    assert engine.now == 5.0
    assert engine.pending() == 1
    engine.run()
    assert seen == [1, 10]


def test_run_max_events():
    engine = SimulationEngine()
    seen = []
    for index in range(10):
        engine.schedule(index, lambda i=index: seen.append(i))
    processed = engine.run(max_events=4)
    assert processed == 4
    assert seen == [0, 1, 2, 3]


def test_run_until_idle_detects_runaway():
    engine = SimulationEngine()

    def perpetual():
        engine.schedule(1.0, perpetual)

    engine.schedule(1.0, perpetual)
    with pytest.raises(RuntimeError):
        engine.run_until_idle(max_events=100)


def test_step_returns_false_when_empty():
    engine = SimulationEngine()
    assert engine.step() is False
    engine.schedule(1.0, lambda: None)
    assert engine.step() is True
    assert engine.step() is False


def test_pending_and_has_pending():
    engine = SimulationEngine()
    assert not engine.has_pending()
    event = engine.schedule(1.0, lambda: None)
    assert engine.has_pending()
    assert engine.pending() == 1
    event.cancel()
    assert engine.pending() == 0
    assert not engine.has_pending()


def test_events_processed_counter():
    engine = SimulationEngine()
    for _ in range(7):
        engine.schedule(1.0, lambda: None)
    engine.run_until_idle()
    assert engine.events_processed == 7

"""Tests for the discrete-event simulation engine."""

from __future__ import annotations

import pytest

from repro.sim.engine import SimulationEngine


def test_events_run_in_time_order():
    engine = SimulationEngine()
    order = []
    engine.schedule(5.0, lambda: order.append("late"))
    engine.schedule(1.0, lambda: order.append("early"))
    engine.schedule(3.0, lambda: order.append("middle"))
    engine.run_until_idle()
    assert order == ["early", "middle", "late"]
    assert engine.now == 5.0


def test_same_time_events_are_fifo():
    engine = SimulationEngine()
    order = []
    for index in range(5):
        engine.schedule(1.0, lambda i=index: order.append(i))
    engine.run_until_idle()
    assert order == [0, 1, 2, 3, 4]


def test_negative_delay_rejected():
    engine = SimulationEngine()
    with pytest.raises(ValueError):
        engine.schedule(-1.0, lambda: None)


def test_schedule_at_absolute_time():
    engine = SimulationEngine()
    seen = []
    engine.schedule_at(4.0, lambda: seen.append(engine.now))
    engine.run_until_idle()
    assert seen == [4.0]
    with pytest.raises(ValueError):
        engine.schedule_at(1.0, lambda: None)


def test_cancelled_events_do_not_run():
    engine = SimulationEngine()
    seen = []
    event = engine.schedule(1.0, lambda: seen.append("cancelled"))
    engine.schedule(2.0, lambda: seen.append("kept"))
    event.cancel()
    engine.run_until_idle()
    assert seen == ["kept"]


def test_callbacks_can_schedule_more_events():
    engine = SimulationEngine()
    seen = []

    def first():
        seen.append("first")
        engine.schedule(1.0, lambda: seen.append("second"))

    engine.schedule(1.0, first)
    engine.run_until_idle()
    assert seen == ["first", "second"]
    assert engine.now == 2.0


def test_run_until_horizon_stops_before_future_events():
    engine = SimulationEngine()
    seen = []
    engine.schedule(1.0, lambda: seen.append(1))
    engine.schedule(10.0, lambda: seen.append(10))
    engine.run(until=5.0)
    assert seen == [1]
    assert engine.now == 5.0
    assert engine.pending() == 1
    engine.run()
    assert seen == [1, 10]


def test_run_max_events():
    engine = SimulationEngine()
    seen = []
    for index in range(10):
        engine.schedule(index, lambda i=index: seen.append(i))
    processed = engine.run(max_events=4)
    assert processed == 4
    assert seen == [0, 1, 2, 3]


def test_run_until_idle_detects_runaway():
    engine = SimulationEngine()

    def perpetual():
        engine.schedule(1.0, perpetual)

    engine.schedule(1.0, perpetual)
    with pytest.raises(RuntimeError):
        engine.run_until_idle(max_events=100)


def test_step_returns_false_when_empty():
    engine = SimulationEngine()
    assert engine.step() is False
    engine.schedule(1.0, lambda: None)
    assert engine.step() is True
    assert engine.step() is False


def test_pending_and_has_pending():
    engine = SimulationEngine()
    assert not engine.has_pending()
    event = engine.schedule(1.0, lambda: None)
    assert engine.has_pending()
    assert engine.pending() == 1
    event.cancel()
    assert engine.pending() == 0
    assert not engine.has_pending()


def test_events_processed_counter():
    engine = SimulationEngine()
    for _ in range(7):
        engine.schedule(1.0, lambda: None)
    engine.run_until_idle()
    assert engine.events_processed == 7


# --------------------------------------------------------------------- #
# Batch mode: per-round delivery queues
# --------------------------------------------------------------------- #


def test_schedule_batch_counts_deliveries():
    engine = SimulationEngine()
    ran = []
    engine.schedule_batch(1.0, lambda: ran.append("batch"), count=5)
    assert engine.pending() == 5
    assert engine.has_pending()
    processed = engine.run()
    assert processed == 5
    assert ran == ["batch"]
    assert engine.events_processed == 5
    assert engine.batches_processed == 1
    assert engine.pending() == 0


def test_batch_and_heap_events_merge_in_schedule_order():
    engine = SimulationEngine()
    order = []
    engine.schedule(1.0, lambda: order.append("event-1"))
    engine.schedule_batch(1.0, lambda: order.append("batch"), count=2)
    engine.schedule(1.0, lambda: order.append("event-2"))
    engine.schedule(0.5, lambda: order.append("earlier"))
    engine.run_until_idle()
    assert order == ["earlier", "event-1", "batch", "event-2"]


def test_batches_at_distinct_times_run_in_time_order():
    engine = SimulationEngine()
    order = []
    engine.schedule_batch(2.0, lambda: order.append("late"))
    engine.schedule_batch(1.0, lambda: order.append("early"))
    engine.run_until_idle()
    assert order == ["early", "late"]
    assert engine.now == 2.0


def test_batch_callbacks_can_schedule_more_batches():
    engine = SimulationEngine()
    times = []

    def cascade():
        times.append(engine.now)
        if len(times) < 3:
            engine.schedule_batch(1.0, cascade, count=2)

    engine.schedule_batch(1.0, cascade, count=2)
    engine.run_until_idle()
    assert times == [1.0, 2.0, 3.0]


def test_grow_batch_extends_pending_and_accounting():
    engine = SimulationEngine()
    ran = []
    entry = engine.schedule_batch(1.0, lambda: ran.append("round"), count=2)
    engine.grow_batch(entry, 3)
    assert engine.pending() == 5
    assert engine.run() == 5
    assert engine.events_processed == 5
    with pytest.raises(ValueError):
        engine.grow_batch(entry, -1)


def test_schedule_batch_validation():
    engine = SimulationEngine()
    with pytest.raises(ValueError):
        engine.schedule_batch(-1.0, lambda: None)
    with pytest.raises(ValueError):
        engine.schedule_batch(1.0, lambda: None, count=0)


def test_run_until_idle_with_batches_reaches_idle():
    engine = SimulationEngine()
    seen = []
    engine.schedule(1.0, lambda: seen.append("event"))
    engine.schedule_batch(2.0, lambda: seen.append("batch"), count=3)
    assert engine.run_until_idle() == 4
    assert seen == ["event", "batch"]


def test_run_rounds_drains_one_round_at_a_time():
    engine = SimulationEngine()
    rounds_seen = []

    def fan_out(depth):
        rounds_seen.append(engine.now)
        if depth > 0:
            engine.schedule_batch(1.0, lambda: fan_out(depth - 1), count=2)

    engine.schedule_batch(1.0, lambda: fan_out(2), count=2)
    rounds = engine.run_rounds()
    assert rounds == 3
    assert rounds_seen == [1.0, 2.0, 3.0]
    assert not engine.has_pending()


def test_run_rounds_raises_when_capped():
    from repro.sim.engine import SimulationStalledError

    engine = SimulationEngine()

    def perpetual():
        engine.schedule_batch(1.0, perpetual)

    engine.schedule_batch(1.0, perpetual)
    with pytest.raises(SimulationStalledError):
        engine.run_rounds(max_rounds=5)


def test_run_until_idle_truncation_warns_and_raises(caplog):
    from repro.sim.engine import SimulationStalledError

    engine = SimulationEngine()

    def perpetual():
        engine.schedule(1.0, perpetual)

    engine.schedule(1.0, perpetual)
    with caplog.at_level("WARNING", logger="repro.sim.engine"):
        with pytest.raises(SimulationStalledError):
            engine.run_until_idle(max_events=50)
    assert any("truncated" in record.message for record in caplog.records)


def test_stalled_error_is_a_runtime_error():
    from repro.sim.engine import SimulationStalledError

    assert issubclass(SimulationStalledError, RuntimeError)


def test_run_rounds_drains_trailing_heap_events():
    engine = SimulationEngine()
    order = []
    engine.schedule_batch(1.0, lambda: engine.schedule(
        1.0, lambda: order.append("heap-tail")), count=2)
    rounds = engine.run_rounds()
    assert order == ["heap-tail"]
    assert rounds == 2  # one batch round, one heap-only round
    assert not engine.has_pending()


def test_run_rounds_detects_zero_delay_cascade():
    from repro.sim.engine import SimulationStalledError

    engine = SimulationEngine()

    def perpetual():
        engine.schedule_batch(0.0, perpetual)

    engine.schedule_batch(0.0, perpetual)
    with pytest.raises(SimulationStalledError):
        engine.run_rounds(max_events_per_round=500)


def test_grow_batch_rejects_executed_entries():
    engine = SimulationEngine()
    entry = engine.schedule_batch(1.0, lambda: None, count=2)
    engine.run_until_idle()
    assert engine.pending() == 0
    with pytest.raises(ValueError):
        engine.grow_batch(entry, 3)
    assert engine.pending() == 0  # accounting unharmed by the rejected call

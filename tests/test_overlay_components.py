"""Unit tests for the DR-tree building blocks: config, state, election, oracle."""

from __future__ import annotations

import pytest

from repro.overlay.config import DRTreeConfig
from repro.overlay.election import (
    best_set_cover,
    choose_best_child,
    elect_group_parent,
    elect_new_root,
    is_better_cover,
)
from repro.overlay.oracle import ContactOracle
from repro.overlay.state import ChildInfo, LevelState, deserialize_children, serialize_children
from repro.spatial.rectangle import Rect


# --------------------------------------------------------------------------- #
# Config
# --------------------------------------------------------------------------- #


def test_config_defaults_are_valid():
    config = DRTreeConfig()
    assert config.min_children >= 2
    assert config.max_children >= 2 * config.min_children


@pytest.mark.parametrize(
    "kwargs",
    [
        {"min_children": 1},
        {"min_children": 3, "max_children": 5},
        {"split_method": "bogus"},
        {"stabilization_period": 0},
        {"child_staleness_rounds": 0},
        {"parent_silence_rounds": 0},
    ],
)
def test_config_rejects_invalid_values(kwargs):
    with pytest.raises(ValueError):
        DRTreeConfig(**kwargs)


# --------------------------------------------------------------------------- #
# LevelState
# --------------------------------------------------------------------------- #


def test_level_state_leaf_mbr_is_filter():
    filter_rect = Rect((0, 0), (1, 1))
    state = LevelState(level=0, mbr=filter_rect)
    assert state.is_leaf
    assert state.computed_mbr(filter_rect) == filter_rect


def test_level_state_internal_mbr_is_children_union():
    filter_rect = Rect((0, 0), (0.1, 0.1))
    state = LevelState(level=1, mbr=filter_rect)
    state.add_child("a", Rect((0, 0), (1, 1)))
    state.add_child("b", Rect((2, 2), (3, 3)))
    union = state.computed_mbr(filter_rect)
    assert union.lower == (0.0, 0.0)
    assert union.upper == (3.0, 3.0)


def test_level_state_internal_without_children_falls_back_to_filter():
    filter_rect = Rect((0, 0), (1, 1))
    state = LevelState(level=2, mbr=Rect((5, 5), (6, 6)))
    assert state.computed_mbr(filter_rect) == filter_rect


def test_level_state_add_refresh_remove_child():
    state = LevelState(level=1, mbr=Rect((0, 0), (1, 1)))
    state.add_child("a", Rect((0, 0), (1, 1)), child_count=2, round_number=1)
    state.add_child("a", Rect((0, 0), (2, 2)), child_count=3, round_number=5)
    assert state.children["a"].child_count == 3
    assert state.children["a"].last_seen_round == 5
    assert state.remove_child("a")
    assert not state.remove_child("a")
    assert state.child_ids() == []


def test_children_serialization_round_trip():
    children = {
        "a": ChildInfo(mbr=Rect((0, 0), (1, 1)), child_count=3, underloaded=True),
        "b": ChildInfo(mbr=Rect((2, 2), (3, 4)), child_count=0),
    }
    payload = serialize_children(children)
    restored = deserialize_children(payload, round_number=7)
    assert set(restored) == {"a", "b"}
    assert restored["a"].mbr == children["a"].mbr
    assert restored["a"].child_count == 3
    assert restored["a"].underloaded is True
    assert restored["b"].underloaded is False
    assert restored["a"].last_seen_round == 7


# --------------------------------------------------------------------------- #
# Election helpers
# --------------------------------------------------------------------------- #


def test_is_better_cover_is_strict():
    assert is_better_cover(2.0, 1.0)
    assert not is_better_cover(1.0, 1.0)
    assert not is_better_cover(0.5, 1.0)


def test_elect_group_parent_prefers_largest_area():
    group = {
        "small": Rect((0, 0), (1, 1)),
        "large": Rect((0, 0), (3, 3)),
        "medium": Rect((0, 0), (2, 2)),
    }
    assert elect_group_parent(group) == "large"


def test_elect_group_parent_breaks_ties_by_id():
    group = {"b": Rect((0, 0), (1, 1)), "a": Rect((5, 5), (6, 6))}
    assert elect_group_parent(group) == "a"


def test_elect_group_parent_empty_raises():
    with pytest.raises(ValueError):
        elect_group_parent({})


def test_elect_new_root():
    left = ("x", Rect((0, 0), (2, 2)))
    right = ("y", Rect((0, 0), (1, 1)))
    assert elect_new_root(left, right) == "x"
    assert elect_new_root(right, left) == "x"


def test_best_set_cover_prefers_covering_candidate():
    merged = Rect((0, 0), (4, 4))
    wide = ("wide", Rect((0, 0), (4, 4)))
    narrow = ("narrow", Rect((0, 0), (1, 1)))
    assert best_set_cover(merged, wide, narrow) == "wide"
    assert best_set_cover(merged, narrow, wide) == "wide"


def test_best_set_cover_tie_breaks_by_id():
    merged = Rect((0, 0), (4, 4))
    a = ("a", Rect((0, 0), (2, 2)))
    b = ("b", Rect((2, 2), (4, 4)))
    assert best_set_cover(merged, a, b) == "a"


def test_choose_best_child_minimizes_enlargement():
    children = {
        "near": Rect((0, 0), (2, 2)),
        "far": Rect((10, 10), (12, 12)),
    }
    target = Rect((1, 1), (1.5, 1.5))
    assert choose_best_child(children, target) == "near"


def test_choose_best_child_tie_breaks_on_area_then_id():
    children = {
        "big": Rect((0, 0), (4, 4)),
        "small": Rect((0, 0), (2, 2)),
    }
    target = Rect((0.5, 0.5), (1, 1))
    # Both need zero enlargement; the smaller area wins.
    assert choose_best_child(children, target) == "small"
    with pytest.raises(ValueError):
        choose_best_child({}, target)


# --------------------------------------------------------------------------- #
# Oracle
# --------------------------------------------------------------------------- #


def test_oracle_contact_empty_is_none():
    oracle = ContactOracle()
    assert oracle.contact() is None


def test_oracle_contact_excludes_requester():
    oracle = ContactOracle()
    oracle.add_member("a")
    assert oracle.contact(exclude="a") is None
    oracle.add_member("b")
    assert oracle.contact(exclude="a") == "b"


def test_oracle_root_policy_prefers_advertised_root():
    oracle = ContactOracle(policy="root")
    oracle.add_member("a")
    oracle.add_member("b")
    oracle.advertise_root("b", area=2.0)
    assert oracle.contact() == "b"
    assert oracle.best_root() == "b"


def test_oracle_best_root_prefers_largest_area_then_id():
    oracle = ContactOracle()
    oracle.add_member("a")
    oracle.add_member("b")
    oracle.advertise_root("a", 1.0)
    oracle.advertise_root("b", 5.0)
    assert oracle.best_root() == "b"
    oracle.advertise_root("a", 5.0)
    assert oracle.best_root() == "a"
    oracle.withdraw_root("a")
    assert oracle.best_root() == "b"


def test_oracle_remove_member_clears_advertisement():
    oracle = ContactOracle()
    oracle.add_member("a")
    oracle.advertise_root("a", 1.0)
    oracle.set_root_hint("a")
    oracle.remove_member("a")
    assert oracle.best_root() is None
    assert oracle.contact() is None
    assert len(oracle) == 0


def test_oracle_random_policy_returns_member():
    oracle = ContactOracle(policy="random")
    for name in ("a", "b", "c"):
        oracle.add_member(name)
    for _ in range(10):
        assert oracle.contact(exclude="a") in {"b", "c"}


def test_oracle_rejects_unknown_policy():
    with pytest.raises(ValueError):
        ContactOracle(policy="bogus")

"""Tests for the publish/subscribe facade, dissemination and accounting."""

from __future__ import annotations

import pytest

from repro.overlay import DRTreeConfig
from repro.pubsub import DeliveryAccounting, PubSubSystem
from repro.pubsub.matching import matching_matrix, matching_subscribers
from repro.spatial.filters import Event, make_space, subscription_from_rect
from repro.spatial.rectangle import Rect
from repro.workloads.events import targeted_events, uniform_events
from repro.workloads.paper_example import (
    expected_matches,
    paper_attribute_space,
    paper_events,
    paper_subscriptions,
)
from tests.conftest import random_subscriptions


@pytest.fixture
def paper_system():
    system = PubSubSystem(paper_attribute_space(), DRTreeConfig(2, 4), seed=1)
    system.subscribe_all(paper_subscriptions().values())
    return system


# --------------------------------------------------------------------------- #
# Matching ground truth
# --------------------------------------------------------------------------- #


def test_matching_subscribers(space):
    subs = {
        "a": subscription_from_rect("a", space, Rect((0, 0), (1, 1))),
        "b": subscription_from_rect("b", space, Rect((2, 2), (3, 3))),
    }
    event = Event({"x": 0.5, "y": 0.5}, event_id="e")
    assert matching_subscribers(event, subs) == ["a"]
    matrix = matching_matrix([event], subs)
    assert matrix == {"e": ["a"]}


def test_paper_example_ground_truth():
    matches = expected_matches()
    assert matches["a"] == ["S1", "S2", "S3", "S4"]
    assert matches["b"] == ["S1"]
    assert matches["c"] == ["S5", "S7", "S8"]
    assert matches["d"] == []


# --------------------------------------------------------------------------- #
# Facade behaviour
# --------------------------------------------------------------------------- #


def test_subscribe_and_publish_delivers_to_interested(paper_system):
    outcome = paper_system.publish(paper_events()["a"])
    assert outcome.intended == {"S1", "S2", "S3", "S4"}
    assert outcome.false_negatives == set()
    assert outcome.true_deliveries == outcome.intended


def test_no_false_negatives_across_all_paper_events(paper_system):
    for event in paper_events().values():
        outcome = paper_system.publish(event)
        assert outcome.false_negatives == set()
    summary = paper_system.summary()
    assert summary["false_negatives"] == 0
    assert summary["delivery_rate"] == 1.0


def test_event_with_no_match_is_not_delivered(paper_system):
    outcome = paper_system.publish(paper_events()["d"])
    assert outcome.intended == set()
    assert outcome.true_deliveries == set()


def test_publish_assigns_event_ids(paper_system):
    event = Event({"attr1": 0.3, "attr2": 0.25})
    outcome = paper_system.publish(event)
    assert outcome.event_id.startswith("event-")


def test_publish_from_specific_publisher(paper_system):
    outcome = paper_system.publish(paper_events()["a"], publisher_id="S2")
    assert outcome.publisher_id == "S2"
    assert outcome.false_negatives == set()


def test_publish_into_empty_system_raises(space):
    system = PubSubSystem(space)
    with pytest.raises(RuntimeError):
        system.publish(Event({"x": 0.1, "y": 0.2}))


def test_subscribe_rejects_wrong_space(space):
    system = PubSubSystem(space)
    other_space = make_space("a", "b")
    sub = subscription_from_rect("s", other_space, Rect((0, 0), (1, 1)))
    with pytest.raises(ValueError):
        system.subscribe(sub)


def test_unsubscribe_stops_delivery(paper_system):
    paper_system.unsubscribe("S4")
    outcome = paper_system.publish(paper_events()["a"])
    assert "S4" not in outcome.received
    assert outcome.intended == {"S1", "S2", "S3"}
    assert outcome.false_negatives == set()


def test_failed_subscriber_does_not_break_delivery(paper_system):
    paper_system.fail("S8")
    outcome = paper_system.publish(paper_events()["c"])
    assert outcome.intended == {"S5", "S7"}
    assert outcome.false_negatives == set()


def test_overlay_height_exposed(paper_system):
    assert 2 <= paper_system.overlay_height() <= 5


def test_subscribers_listing(paper_system):
    assert paper_system.subscribers() == sorted(paper_subscriptions())
    assert paper_system.subscription_of("S3").name == "S3"


# --------------------------------------------------------------------------- #
# Accuracy on random workloads
# --------------------------------------------------------------------------- #


def test_subscribe_all_bulk_validates_attribute_space(space):
    other_space = make_space("foo", "bar")
    foreign = [
        subscription_from_rect(f"F{i}", other_space,
                               Rect((0.1, 0.1), (0.2, 0.2)))
        for i in range(3)
    ]
    system = PubSubSystem(space, DRTreeConfig(2, 4), seed=1)
    with pytest.raises(ValueError, match="attribute space"):
        system.subscribe_all(foreign, bulk=True)


def test_subscribe_all_bulk_rejects_non_empty_system(space):
    subs = random_subscriptions(space, 6, seed=30)
    system = PubSubSystem(space, DRTreeConfig(2, 4), seed=1)
    system.subscribe(subs[0])
    with pytest.raises(ValueError, match="empty system"):
        system.subscribe_all(subs[1:], bulk=True)


def test_subscribe_all_bulk_explicit_small_population(space):
    subs = random_subscriptions(space, 12, seed=31)
    system = PubSubSystem(space, DRTreeConfig(2, 4), seed=2)
    system.subscribe_all(subs, bulk=True)
    report = system.simulation.verify()
    assert report.is_legal, report.violations
    events = targeted_events(space, subs, 10, seed=8)
    outcomes = system.publish_many(events)
    assert all(not outcome.false_negatives for outcome in outcomes)


def test_no_false_negatives_on_random_workload(space):
    subs = random_subscriptions(space, 40, seed=21)
    system = PubSubSystem(space, DRTreeConfig(2, 5), seed=3)
    system.subscribe_all(subs)
    events = targeted_events(space, subs, 25, seed=5)
    outcomes = system.publish_many(events)
    assert all(not outcome.false_negatives for outcome in outcomes)


def test_false_positive_rate_is_moderate(space):
    subs = random_subscriptions(space, 50, seed=22, max_extent=0.15)
    system = PubSubSystem(space, DRTreeConfig(2, 5), seed=4)
    system.subscribe_all(subs)
    events = uniform_events(space, 30, seed=6)
    system.publish_many(events)
    summary = system.summary()
    assert summary["false_negatives"] == 0
    # The paper reports 2-3% for most workloads; allow a generous margin for
    # this small instance but require far less than broadcast (100 %).
    assert summary["false_positive_rate"] < 0.25


def test_delivery_hops_are_bounded(space):
    subs = random_subscriptions(space, 40, seed=23)
    system = PubSubSystem(space, DRTreeConfig(2, 4), seed=5)
    system.subscribe_all(subs)
    events = targeted_events(space, subs, 20, seed=8)
    system.publish_many(events)
    summary = system.summary()
    assert summary["max_delivery_hops"] <= 2 * 7 + 3  # ~2·height + slack


# --------------------------------------------------------------------------- #
# Accounting unit behaviour
# --------------------------------------------------------------------------- #


def test_accounting_counts_false_positive_and_negative(space):
    accounting = DeliveryAccounting()
    subs = {
        "hit": subscription_from_rect("hit", space, Rect((0, 0), (1, 1))),
        "miss": subscription_from_rect("miss", space, Rect((5, 5), (6, 6))),
        "other": subscription_from_rect("other", space, Rect((8, 8), (9, 9))),
    }
    event = Event({"x": 0.5, "y": 0.5}, event_id="e")
    accounting.start_event(event, publisher_id="hit", subscriptions=subs)
    accounting.record_delivery("hit", event, matched=True, hops=2)
    accounting.record_delivery("miss", event, matched=False, hops=3)
    outcome = accounting.outcomes["e"]
    assert outcome.true_deliveries == {"hit"}
    assert outcome.false_positives == {"miss"}
    assert outcome.false_negatives == set()
    assert accounting.total_false_positives() == 1
    assert accounting.mean_delivery_hops() == 2.0
    assert accounting.max_delivery_hops() == 3


def test_accounting_publisher_not_counted_as_false_positive(space):
    accounting = DeliveryAccounting()
    subs = {
        "pub": subscription_from_rect("pub", space, Rect((5, 5), (6, 6))),
    }
    event = Event({"x": 0.5, "y": 0.5}, event_id="e")
    accounting.start_event(event, publisher_id="pub", subscriptions=subs)
    accounting.record_delivery("pub", event, matched=False, hops=0)
    assert accounting.total_false_positives() == 0


def test_accounting_rates_on_empty_history():
    accounting = DeliveryAccounting()
    assert accounting.false_positive_rate(10) == 0.0
    assert accounting.delivery_rate() == 1.0
    assert accounting.mean_messages_per_event() == 0.0

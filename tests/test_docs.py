"""Documentation health: links resolve, docs track the registry, CLI parses.

These checks run in CI's docs job (and in the normal suite) so the docs/
tree cannot silently rot: every relative link must point at a real file,
every registered scenario must be documented in docs/cli.md and
docs/scenarios.md, and every ``python -m repro`` invocation shown in the
documentation must actually parse against the real CLI.
"""

from __future__ import annotations

import re
import shlex
from pathlib import Path

import pytest

from repro.runtime.cli import build_parser
from repro.runtime.registry import REGISTRY, load_scenarios

REPO_ROOT = Path(__file__).resolve().parent.parent
DOC_FILES = sorted(
    [REPO_ROOT / "README.md", *(REPO_ROOT / "docs").glob("*.md")]
)

#: Markdown inline links: [text](target)
_LINK = re.compile(r"\[[^\]]+\]\(([^)\s]+)\)")
#: ATX headings (anchors are derived from these, GitHub style).
_HEADING = re.compile(r"^(#{1,6})\s+(.*?)\s*$")
#: Console-prompt lines that invoke the CLI inside code blocks.
_CLI_LINE = re.compile(
    r"^\$ (?:PYTHONPATH=\S+ )?python -m repro\b([^\n#]*)", re.MULTILINE)


def _doc_ids():
    return [str(path.relative_to(REPO_ROOT)) for path in DOC_FILES]


def _slugify(title: str) -> str:
    """GitHub's heading-anchor slug: drop punctuation, spaces to dashes."""
    text = re.sub(r"\[([^\]]*)\]\([^)]*\)", r"\1", title)  # keep link text
    text = re.sub(r"[*_`]", "", text).strip().lower()
    text = re.sub(r"[^\w\- ]", "", text)
    return text.replace(" ", "-")


def _anchors(path: Path) -> set:
    """Every anchor a markdown file exposes (fenced code is not headings)."""
    seen: dict = {}
    anchors = set()
    in_fence = False
    for line in path.read_text(encoding="utf-8").splitlines():
        if line.lstrip().startswith("```"):
            in_fence = not in_fence
            continue
        match = None if in_fence else _HEADING.match(line)
        if not match:
            continue
        slug = _slugify(match.group(2))
        count = seen.get(slug, 0)
        seen[slug] = count + 1
        anchors.add(slug if count == 0 else f"{slug}-{count}")
    return anchors


@pytest.fixture(scope="module", autouse=True)
def _scenarios_loaded():
    load_scenarios()


@pytest.mark.parametrize("doc", DOC_FILES, ids=_doc_ids())
def test_relative_links_resolve(doc):
    """Every internal link resolves — the file part AND the #anchor part."""
    text = doc.read_text(encoding="utf-8")
    for match in _LINK.finditer(text):
        target = match.group(1)
        if target.startswith(("http://", "https://", "mailto:")):
            continue
        path_part, _, anchor = target.partition("#")
        target_path = (doc.parent / path_part).resolve() if path_part else doc
        assert target_path.exists(), (
            f"{doc.name}: broken link {target!r} (resolved to {target_path})"
        )
        if anchor and target_path.suffix == ".md":
            assert anchor in _anchors(target_path), (
                f"{doc.name}: link {target!r} points at a heading that "
                f"{target_path.name} does not have"
            )


def test_docs_directory_has_the_three_pages():
    names = {path.name for path in (REPO_ROOT / "docs").glob("*.md")}
    assert {"architecture.md", "cli.md", "scenarios.md"} <= names


@pytest.mark.parametrize("page", ["cli.md", "scenarios.md"])
def test_every_scenario_is_documented(page):
    text = (REPO_ROOT / "docs" / page).read_text(encoding="utf-8")
    missing = [scenario.name for scenario in REGISTRY.scenarios()
               if f"`{scenario.name}`" not in text]
    assert not missing, f"docs/{page} does not mention scenarios: {missing}"


def test_every_scenario_has_a_table_row():
    """A mention is not enough: docs/scenarios.md must carry one table row
    (``| `name` | ...``) per registered scenario."""
    text = (REPO_ROOT / "docs" / "scenarios.md").read_text(encoding="utf-8")
    rows = {line.split("`")[1] for line in text.splitlines()
            if line.startswith("| `") and line.count("`") >= 2}
    missing = [scenario.name for scenario in REGISTRY.scenarios()
               if scenario.name not in rows]
    assert not missing, (
        f"docs/scenarios.md has no table row for scenarios: {missing}"
    )


def test_cli_doc_mentions_every_parameter():
    text = (REPO_ROOT / "docs" / "cli.md").read_text(encoding="utf-8")
    missing = []
    for scenario in REGISTRY.scenarios():
        for param in scenario.params:
            if f"`{param.name}=" not in text:
                missing.append(f"{scenario.name}.{param.name}")
    assert not missing, f"docs/cli.md does not list parameters: {missing}"


@pytest.mark.parametrize("doc", DOC_FILES, ids=_doc_ids())
def test_documented_cli_invocations_parse(doc):
    """Every `python -m repro ...` line in the docs is a valid invocation."""
    parser = build_parser()
    for match in _CLI_LINE.finditer(doc.read_text(encoding="utf-8")):
        argv = shlex.split(match.group(1).strip())
        if not argv or argv[0].startswith(("<", "...")):
            continue  # usage placeholder, not a concrete invocation
        args, extra = parser.parse_known_args(argv)
        assert args.command in {"list", "run", "run-all", "resume",
                                "journal", "workload"}
        if args.command == "run" and args.scenario is not None:
            assert args.scenario in REGISTRY, (
                f"{doc.name}: unknown scenario {args.scenario!r} in "
                f"'python -m repro {' '.join(argv)}'"
            )
            scenario = REGISTRY.get(args.scenario)
            declared = {p.name for p in scenario.params}
            for flag in extra:
                if flag.startswith("--"):
                    name = flag[2:].split("=")[0].replace("-", "_")
                    assert name in declared, (
                        f"{doc.name}: scenario {scenario.name!r} has no "
                        f"parameter {name!r}"
                    )


def test_repro_list_smoke(capsys):
    """`python -m repro list` works in-process and shows every scenario."""
    from repro.runtime.cli import main

    assert main(["list"]) == 0
    printed = capsys.readouterr().out
    for scenario in REGISTRY.scenarios():
        assert scenario.name in printed

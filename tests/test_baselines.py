"""Tests for the baseline overlays."""

from __future__ import annotations

import pytest

from repro.baselines import (
    CentralizedBrokerOverlay,
    ContainmentTreeOverlay,
    FloodingOverlay,
    PerDimensionOverlay,
)
from repro.spatial.filters import Event, subscription_from_rect
from repro.spatial.rectangle import Rect
from repro.workloads.events import targeted_events
from repro.workloads.paper_example import paper_events, paper_subscriptions
from tests.conftest import random_subscriptions

ALL_BASELINES = [
    ContainmentTreeOverlay,
    PerDimensionOverlay,
    FloodingOverlay,
    CentralizedBrokerOverlay,
]


@pytest.fixture
def paper_subs():
    return paper_subscriptions()


# --------------------------------------------------------------------------- #
# Interface-level behaviour shared by every baseline
# --------------------------------------------------------------------------- #


@pytest.mark.parametrize("baseline_cls", ALL_BASELINES)
def test_no_false_negatives(baseline_cls, paper_subs):
    overlay = baseline_cls()
    overlay.add_all(list(paper_subs.values()))
    for event in paper_events().values():
        result = overlay.disseminate(event)
        assert result.false_negatives(paper_subs, event) == set()


@pytest.mark.parametrize("baseline_cls", ALL_BASELINES)
def test_duplicate_subscription_rejected(baseline_cls, paper_subs):
    overlay = baseline_cls()
    overlay.add_subscriber(paper_subs["S1"])
    with pytest.raises(ValueError):
        overlay.add_subscriber(paper_subs["S1"])


@pytest.mark.parametrize("baseline_cls", ALL_BASELINES)
def test_remove_subscriber_stops_delivery(baseline_cls, paper_subs):
    overlay = baseline_cls()
    overlay.add_all(list(paper_subs.values()))
    overlay.remove_subscriber("S4")
    event = paper_events()["a"]
    result = overlay.disseminate(event)
    assert "S4" not in result.received
    assert len(overlay) == 7


@pytest.mark.parametrize("baseline_cls", ALL_BASELINES)
def test_empty_overlay_disseminates_nothing(baseline_cls):
    overlay = baseline_cls()
    result = overlay.disseminate(Event({"attr1": 0.5, "attr2": 0.5}, event_id="e"))
    assert result.received == set()


@pytest.mark.parametrize("baseline_cls", ALL_BASELINES)
def test_random_workload_recall(baseline_cls, space):
    subs = {s.name: s for s in random_subscriptions(space, 30, seed=31)}
    overlay = baseline_cls()
    overlay.add_all(list(subs.values()))
    for event in targeted_events(space, list(subs.values()), 15, seed=3):
        result = overlay.disseminate(event)
        assert result.false_negatives(subs, event) == set()


# --------------------------------------------------------------------------- #
# Baseline-specific structure and accuracy characteristics
# --------------------------------------------------------------------------- #


def test_containment_tree_structure(paper_subs):
    overlay = ContainmentTreeOverlay()
    overlay.add_all(list(paper_subs.values()))
    # S1 and S5 are containment roots; they hang off the virtual root.
    assert overlay.root_fanout() == 2
    assert overlay.parent_of("S4") in {"S2", "S3"}
    assert overlay.parent_of("S8") == "S7"
    assert overlay.depth() >= 3


def test_containment_tree_has_no_false_positives(paper_subs):
    overlay = ContainmentTreeOverlay()
    overlay.add_all(list(paper_subs.values()))
    for event in paper_events().values():
        result = overlay.disseminate(event)
        assert result.false_positives(paper_subs, event) == set()


def test_per_dimension_produces_false_positives(space):
    """A filter matching on one attribute only is still reached."""
    subs = {
        "wide_x": subscription_from_rect("wide_x", space, Rect((0, 0), (1, 0.1))),
        "other": subscription_from_rect("other", space, Rect((0.8, 0.8), (1, 1))),
    }
    overlay = PerDimensionOverlay()
    overlay.add_all(list(subs.values()))
    event = Event({"x": 0.5, "y": 0.9}, event_id="e")
    result = overlay.disseminate(event)
    # wide_x matches on x but not on y: the per-dimension routing reaches it.
    assert "wide_x" in result.received
    assert "wide_x" in result.false_positives(subs, event)


def test_per_dimension_tree_fanouts(paper_subs):
    overlay = PerDimensionOverlay()
    overlay.add_all(list(paper_subs.values()))
    fanouts = overlay.tree_fanouts()
    assert set(fanouts) == {"attr1", "attr2"}
    assert all(f >= 1 for f in fanouts.values())


def test_flooding_reaches_everyone(paper_subs):
    overlay = FloodingOverlay(degree=3, seed=1)
    overlay.add_all(list(paper_subs.values()))
    event = paper_events()["d"]  # matches nobody
    result = overlay.disseminate(event)
    assert result.received == set(paper_subs)
    assert len(result.false_positives(paper_subs, event)) == len(paper_subs)


def test_flooding_degree_validation():
    with pytest.raises(ValueError):
        FloodingOverlay(degree=0)


def test_flooding_neighbours_are_symmetric(space):
    overlay = FloodingOverlay(degree=3, seed=2)
    subs = random_subscriptions(space, 15, seed=5)
    overlay.add_all(subs)
    for sub in subs:
        for neighbour in overlay.neighbours_of(sub.name):
            assert sub.name in overlay.neighbours_of(neighbour)


def test_centralized_broker_accuracy_and_cost(paper_subs):
    overlay = CentralizedBrokerOverlay()
    overlay.add_all(list(paper_subs.values()))
    event = paper_events()["a"]
    result = overlay.disseminate(event)
    assert result.received == {"S1", "S2", "S3", "S4"}
    assert result.false_positives(paper_subs, event) == set()
    # 1 message to the broker + 1 per interested subscriber.
    assert result.messages == 1 + 4
    assert overlay.index_height() >= 1


def test_centralized_broker_remove_updates_index(paper_subs):
    overlay = CentralizedBrokerOverlay()
    overlay.add_all(list(paper_subs.values()))
    overlay.remove_subscriber("S1")
    event = paper_events()["b"]  # only S1 matched it
    result = overlay.disseminate(event)
    assert result.received == set()

"""Tests for the three node-splitting algorithms."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.rtree.entry import Entry
from repro.rtree.split import (
    SPLIT_METHODS,
    get_split_function,
    linear_split,
    quadratic_split,
    rstar_split,
)
from repro.spatial.rectangle import Rect


def make_entries(rects):
    return [Entry(rect=rect, payload=index) for index, rect in enumerate(rects)]


def grid_entries(n: int) -> list:
    """Entries on an n x n grid of unit cells."""
    rects = [
        Rect((i, j), (i + 1, j + 1))
        for i in range(n)
        for j in range(n)
    ]
    return make_entries(rects)


@pytest.mark.parametrize("split", [linear_split, quadratic_split, rstar_split])
def test_split_preserves_entries(split):
    entries = grid_entries(3)
    result = split(entries, m=2)
    left_ids = {entry.payload for entry in result.left}
    right_ids = {entry.payload for entry in result.right}
    assert left_ids | right_ids == {entry.payload for entry in entries}
    assert not (left_ids & right_ids)


@pytest.mark.parametrize("split", [linear_split, quadratic_split, rstar_split])
def test_split_respects_minimum_group_size(split):
    entries = grid_entries(3)
    for m in (2, 3, 4):
        result = split(entries, m=m)
        assert len(result.left) >= m
        assert len(result.right) >= m


@pytest.mark.parametrize("split", [linear_split, quadratic_split, rstar_split])
def test_split_separates_two_clusters(split):
    """Two well-separated clusters should end up in different groups."""
    cluster_a = [Rect((i * 0.1, 0), (i * 0.1 + 0.05, 0.05)) for i in range(4)]
    cluster_b = [Rect((10 + i * 0.1, 10), (10 + i * 0.1 + 0.05, 10.05)) for i in range(4)]
    entries = make_entries(cluster_a + cluster_b)
    result = split(entries, m=2)
    groups = [
        {entry.payload for entry in result.left},
        {entry.payload for entry in result.right},
    ]
    assert {0, 1, 2, 3} in groups
    assert {4, 5, 6, 7} in groups


@pytest.mark.parametrize("split", [linear_split, quadratic_split, rstar_split])
def test_split_rejects_too_few_entries(split):
    entries = grid_entries(1)
    with pytest.raises(ValueError):
        split(entries, m=1)
    with pytest.raises(ValueError):
        split(grid_entries(2), m=3)


@pytest.mark.parametrize("split", [linear_split, quadratic_split, rstar_split])
def test_split_rejects_bad_minimum(split):
    with pytest.raises(ValueError):
        split(grid_entries(2), m=0)


def test_get_split_function_lookup():
    for name in SPLIT_METHODS:
        assert callable(get_split_function(name))
    with pytest.raises(ValueError):
        get_split_function("bogus")


def test_rstar_minimizes_overlap_on_stripes():
    """R* should split axis-aligned stripes along the axis with least overlap."""
    rects = [Rect((0, i), (10, i + 0.5)) for i in range(6)]
    entries = make_entries(rects)
    result = rstar_split(entries, m=2)
    left_mbr = Rect.union_of(e.rect for e in result.left)
    right_mbr = Rect.union_of(e.rect for e in result.right)
    assert left_mbr.intersection_area(right_mbr) == pytest.approx(0.0)


coords = st.floats(min_value=0.0, max_value=100.0, allow_nan=False)


@st.composite
def entry_lists(draw):
    count = draw(st.integers(min_value=4, max_value=12))
    entries = []
    for index in range(count):
        x0, x1 = sorted((draw(coords), draw(coords)))
        y0, y1 = sorted((draw(coords), draw(coords)))
        entries.append(Entry(rect=Rect((x0, y0), (x1, y1)), payload=index))
    return entries


@given(entry_lists(), st.sampled_from(list(SPLIT_METHODS)))
@settings(max_examples=150, deadline=None)
def test_split_partition_property(entries, method):
    split = get_split_function(method)
    result = split(entries, m=2)
    all_ids = {entry.payload for entry in entries}
    left_ids = {entry.payload for entry in result.left}
    right_ids = {entry.payload for entry in result.right}
    assert left_ids | right_ids == all_ids
    assert left_ids.isdisjoint(right_ids)
    assert len(result.left) >= 2
    assert len(result.right) >= 2


@given(entry_lists(), st.sampled_from(list(SPLIT_METHODS)))
@settings(max_examples=100, deadline=None)
def test_split_groups_covered_by_original_mbr(entries, method):
    split = get_split_function(method)
    result = split(entries, m=2)
    total = Rect.union_of(entry.rect for entry in entries)
    assert total.contains_rect(Rect.union_of(e.rect for e in result.left))
    assert total.contains_rect(Rect.union_of(e.rect for e in result.right))

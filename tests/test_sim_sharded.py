"""The sharded multi-process simulator: partitioning, parity, failures.

Covers the tentpole contracts of ``repro.sim.sharded``:

* shard partitioning places every peer in exactly one shard (hypothesis
  property over random workloads and shard counts);
* shard counts 1, 2 and 8 reproduce the classic engine's delivery metrics
  byte for byte, on the inline, pipe (``process``) and shared-memory
  (``shm``) transports;
* the single-shard regime delegates the *entire* facade surface (joins,
  unsubscribes, crashes, moves) with byte-identical outcomes, and the
  multi-shard regime routes post-bulk-load joins/leaves to the owning
  shard with the same parity guarantee;
* a crashed worker process surfaces as a typed ``ShardFailedError`` instead
  of a hang, and shard-local stalls/warnings are routed to the parent with
  the shard id attached.
"""

from __future__ import annotations

import logging

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.api.spec import SystemSpec
from repro.overlay.config import DRTreeConfig
from repro.overlay.layout import (compute_layout, partition_layout,
                                  partition_members)
from repro.sim.engine import SimulationStalledError
from repro.sim.sharded import (ShardedSimulation, ShardedUnsupportedError,
                               ShardFailedError, ShardStalledError,
                               shm_available)

needs_shm = pytest.mark.skipif(not shm_available(),
                               reason="multiprocessing.shared_memory "
                                      "unavailable on this platform")
from repro.spatial.filters import subscription_from_intervals
from repro.workloads.events import targeted_events
from repro.workloads.subscriptions import (mixed_subscriptions,
                                           uniform_subscriptions)

CONFIG = DRTreeConfig(min_children=4, max_children=8)


def _drive_backend(backend, subs, space, stream, seed=3, config=CONFIG,
                   engine_options=None):
    """Run one workload through a broker; return its observable outcome."""
    spec = SystemSpec(space=space, backend=backend, config=config, seed=seed,
                      engine_options=engine_options)
    broker = spec.build()
    broker.subscribe_all(subs)
    broker.publish_many(stream)
    outcome = (
        broker.summary(),
        sorted((r.event_id, r.subscriber_id, r.matched, r.hops)
               for r in broker.accounting.records),
        {name: value
         for name, value in broker.simulation.metrics.counters().items()
         if not name.startswith("shard.")},
    )
    close = getattr(broker.simulation, "close", None)
    if close is not None:
        close()
    return outcome


# --------------------------------------------------------------------------- #
# Partitioning
# --------------------------------------------------------------------------- #


@settings(max_examples=30, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(peers=st.integers(min_value=2, max_value=160),
       shards=st.integers(min_value=1, max_value=8),
       seed=st.integers(min_value=0, max_value=50))
def test_every_peer_lands_in_exactly_one_shard(peers, shards, seed):
    subs = list(uniform_subscriptions(peers, seed=seed))
    layout = compute_layout([(sub.name, sub.rect) for sub in subs], CONFIG)
    plan = partition_layout(layout, shards)
    # Exactly-one-shard: the owner map is total over the population...
    assert set(plan.owner) == {sub.name for sub in subs}
    # ...with a single shard id per peer (dict keys are unique by
    # construction; the subtree decomposition must also cover every peer
    # exactly once).
    assert sum(count for _, _, count in plan.subtrees) == peers
    assert all(0 <= shard < shards for shard in plan.owner.values())
    assert 1 <= plan.effective_shards <= min(shards, peers)
    by_shard = partition_members(layout, plan)
    flat = [name for members in by_shard.values() for name in members]
    assert sorted(flat) == sorted(plan.owner)


def test_partition_keeps_subtrees_whole():
    subs = list(uniform_subscriptions(200, seed=1))
    layout = compute_layout([(sub.name, sub.rect) for sub in subs], CONFIG)
    plan = partition_layout(layout, 4)
    # All members of one cut-level group share the owning shard.
    shard_of = plan.owner
    for group in layout.levels[plan.cut_level]:
        shards = set()

        def leaves(node_id, level):
            if level == 0:
                shards.add(shard_of[node_id])
                return
            for inner in layout.levels[level - 1]:
                if inner.parent == node_id:
                    for child, _, _ in inner.members:
                        leaves(child, level - 1)

        leaves(group.parent, plan.cut_level + 1)
        assert len(shards) == 1, f"subtree {group.parent} spans {shards}"


def test_partition_validates_shard_count():
    subs = list(uniform_subscriptions(8, seed=0))
    layout = compute_layout([(sub.name, sub.rect) for sub in subs], CONFIG)
    with pytest.raises(ValueError, match="at least 1"):
        partition_layout(layout, 0)


# --------------------------------------------------------------------------- #
# Metric parity with the classic engine
# --------------------------------------------------------------------------- #


@pytest.fixture(scope="module")
def bulk_workload():
    workload = uniform_subscriptions(560, seed=3)
    subs = list(workload)
    stream = targeted_events(workload.space, subs, 25, seed=11)
    return workload.space, subs, stream


@pytest.fixture(scope="module")
def classic_outcome(bulk_workload):
    space, subs, stream = bulk_workload
    return _drive_backend("drtree:classic", subs, space, stream)


@pytest.mark.parametrize("shards,transport", [
    (1, "inline"),
    (2, "inline"),
    (2, "process"),
    (8, "inline"),
    pytest.param(2, "shm", marks=needs_shm),
    pytest.param(8, "shm", marks=needs_shm),
])
def test_shard_counts_reproduce_classic_metrics(bulk_workload,
                                                classic_outcome, shards,
                                                transport):
    space, subs, stream = bulk_workload
    sharded = _drive_backend(
        "drtree:sharded", subs, space, stream,
        engine_options={"shards": shards, "transport": transport})
    assert sharded[0] == classic_outcome[0]  # summary metrics
    assert sharded[1] == classic_outcome[1]  # every delivery record
    assert sharded[2] == classic_outcome[2]  # every simulator counter


def test_single_shard_regime_delegates_full_facade_surface():
    """Below the bulk threshold every op runs classic code, byte-identically."""
    workload = mixed_subscriptions(36, seed=0)
    subs = list(workload)
    config = DRTreeConfig(min_children=2, max_children=5)
    stream = targeted_events(workload.space, subs, 10, seed=7)

    def drive(backend, engine_options=None):
        spec = SystemSpec(space=workload.space, backend=backend,
                          config=config, seed=0,
                          engine_options=engine_options)
        broker = spec.build()
        ids = broker.subscribe_all(subs)
        broker.publish_many(stream[:5])
        broker.unsubscribe(ids[3])
        broker.fail(ids[7])
        moved = subscription_from_intervals(
            "moved-peer", workload.space,
            {name: (0.1, 0.4) for name in workload.space.names})
        broker.move_subscription(ids[5], moved)
        broker.publish_many(stream[5:])
        outcome = (broker.summary(), broker.overlay_height(),
                   sorted(broker.subscribers()),
                   sorted((r.event_id, r.subscriber_id, r.matched, r.hops)
                          for r in broker.accounting.records))
        close = getattr(broker.simulation, "close", None)
        if close is not None:
            close()
        return outcome

    classic = drive("drtree:classic")
    sharded = drive("drtree:sharded",
                    {"shards": 4, "transport": "process"})
    assert classic == sharded


@pytest.mark.parametrize("victim_kind", ["leaf", "internal-parent"])
def test_multi_shard_crash_reproduces_classic(victim_kind):
    """Crash repair parity for both victim classes.

    A leaf crash needs no re-parenting; an elected *parent's* crash forces
    the orphan-rejoin repair, which only converges when the stabilize loop
    keeps running while the structure is illegal (regression: signature-only
    quiescence used to stop it after one round).
    """
    workload = uniform_subscriptions(560, seed=5)
    subs = list(workload)
    stream = targeted_events(workload.space, subs, 8, seed=9)

    probe = SystemSpec(space=workload.space, backend="drtree:classic",
                       config=CONFIG, seed=5).build()
    probe.subscribe_all(subs)
    peers = probe.simulation.peers
    if victim_kind == "leaf":
        victim = next(pid for pid in sorted(peers)
                      if peers[pid].height() == 1)
    else:
        victim = next(pid for pid in sorted(peers)
                      if peers[pid].height() > 1)

    def drive(backend, engine_options=None):
        spec = SystemSpec(space=workload.space, backend=backend,
                          config=CONFIG, seed=5,
                          engine_options=engine_options)
        broker = spec.build()
        broker.subscribe_all(subs)
        broker.publish_many(stream[:4])
        broker.fail(victim)
        report = broker.stabilize()
        broker.publish_many(stream[4:])
        outcome = (broker.summary(), report.is_legal,
                   sorted((r.event_id, r.subscriber_id, r.matched, r.hops)
                          for r in broker.accounting.records))
        close = getattr(broker.simulation, "close", None)
        if close is not None:
            close()
        return outcome

    classic = drive("drtree:classic")
    sharded = drive("drtree:sharded", {"shards": 3, "transport": "inline"})
    assert classic == sharded
    assert classic[1], "repair must converge back to a legal configuration"


@pytest.mark.parametrize("transport,shards", [
    ("inline", 2),
    pytest.param("shm", 2, marks=needs_shm),
])
def test_multi_shard_membership_churn_matches_classic(bulk_workload,
                                                      transport, shards):
    """Post-bulk-load joins and controlled leaves reproduce classic metrics.

    The joiner is routed to the shard owning the current root (whose oracle
    resolves the join contact exactly like the classic global oracle) and
    its membership is mirrored to the other shards only once the join has
    settled — the same instant the classic oracle learns about the peer.
    """
    space, subs, stream = bulk_workload

    def drive(backend, engine_options=None):
        spec = SystemSpec(space=space, backend=backend, config=CONFIG,
                          seed=3, engine_options=engine_options)
        broker = spec.build()
        ids = broker.subscribe_all(subs)
        broker.publish_many(stream[:10])
        for index in range(2):
            broker.subscribe(subscription_from_intervals(
                f"late-joiner-{index}", space,
                {name: (0.1 * (index + 1), 0.1 * (index + 1) + 0.25)
                 for name in space.names}))
        broker.unsubscribe(ids[5])
        broker.unsubscribe("late-joiner-0")
        broker.publish_many(stream[10:])
        outcome = (broker.summary(), sorted(broker.subscribers()),
                   sorted((r.event_id, r.subscriber_id, r.matched, r.hops)
                          for r in broker.accounting.records))
        close = getattr(broker.simulation, "close", None)
        if close is not None:
            close()
        return outcome

    classic = drive("drtree:classic")
    sharded = drive("drtree:sharded",
                    {"shards": shards, "transport": transport})
    assert sharded == classic


def test_multi_shard_membership_guards(bulk_workload):
    """The narrowed restrictions: aliasing, deferred joins, duplicates."""
    space, subs, _ = bulk_workload
    sim = ShardedSimulation(config=CONFIG, seed=3, shards=2,
                            transport="inline")
    try:
        sim.bulk_load(subs)
        extra = subscription_from_intervals(
            "late-joiner", space,
            {name: (0.2, 0.3) for name in space.names})
        with pytest.raises(ShardedUnsupportedError, match="joins and settles"):
            sim.add_peer(extra, settle=False)
        with pytest.raises(ShardedUnsupportedError, match="names peers"):
            sim.add_peer(extra, peer_id="alias")
        with pytest.raises(ValueError, match="duplicate"):
            sim.add_peer(subscription_from_intervals(
                subs[0].name, space,
                {name: (0.2, 0.3) for name in space.names}))
        with pytest.raises(KeyError):
            sim.leave("never-joined")
        handle = sim.add_peer(extra)
        assert handle.process_id == "late-joiner"
        sim.leave("late-joiner")
        # Handles are never removed, matching classic ``sim.peers``; the
        # departed peer just stops receiving deliveries.
        assert "late-joiner" in sim.peers
    finally:
        sim.close()


# --------------------------------------------------------------------------- #
# Engine options threading
# --------------------------------------------------------------------------- #


def test_engine_options_reach_the_sharded_simulation(bulk_workload):
    space, _, _ = bulk_workload
    spec = SystemSpec(space=space, backend="drtree:sharded",
                      engine_options={"shards": 3, "transport": "inline"})
    broker = spec.build()
    assert broker.simulation.shards_requested == 3
    assert broker.simulation.transport == "inline"
    assert broker.spec.engine_options == {"shards": 3, "transport": "inline"}
    broker.simulation.close()


def test_engine_options_are_rejected_where_meaningless(bulk_workload):
    space, _, _ = bulk_workload
    with pytest.raises(ValueError, match="engine options"):
        SystemSpec(space=space, backend="drtree:classic",
                   engine_options={"shards": 3}).build()
    with pytest.raises(ValueError, match="no engine options"):
        SystemSpec(space=space, backend="flooding",
                   engine_options={"shards": 3}).build()
    with pytest.raises(ValueError, match="engine options"):
        SystemSpec(space=space, backend="drtree:sharded",
                   engine_options={"bogus": 1}).build()


def test_invalid_transport_and_shard_count():
    with pytest.raises(ValueError, match="transport"):
        ShardedSimulation(shards=2, transport="carrier-pigeon")
    with pytest.raises(ValueError, match="at least 1"):
        ShardedSimulation(shards=0)


# --------------------------------------------------------------------------- #
# Worker failure and stall routing
# --------------------------------------------------------------------------- #


def test_crashed_worker_raises_shard_failed_error(bulk_workload):
    space, subs, stream = bulk_workload
    sim = ShardedSimulation(config=CONFIG, seed=3, shards=2,
                            transport="process")
    try:
        sim.bulk_load(subs)
        sim.stabilize(max_rounds=50)
        victim = sim._shards[1]
        victim.process.kill()
        victim.process.join(timeout=5)
        with pytest.raises(ShardFailedError, match="shard 1"):
            for event in stream:
                sim.publish(subs[0].name, event)
    finally:
        sim.close()


def test_worker_stall_is_routed_with_shard_id(caplog):
    """A shard-local SimulationStalledError reaches the parent, shard-tagged."""
    workload = uniform_subscriptions(24, seed=2)
    subs = list(workload)
    stream = targeted_events(workload.space, subs, 6, seed=4)
    sim = ShardedSimulation(config=DRTreeConfig(min_children=2,
                                                max_children=4),
                            seed=2, shards=1, transport="process")
    try:
        for sub in subs:
            sim.add_peer(sub)
        sim.stabilize(max_rounds=50)
        for event in stream:
            sim.publish(subs[0].name, event, settle=False)
        with caplog.at_level(logging.WARNING, logger="repro"):
            with pytest.raises(ShardStalledError) as excinfo:
                sim.settle(max_events=2)
        # The typed error subclasses the single-process stall type and
        # carries the shard id...
        assert isinstance(excinfo.value, SimulationStalledError)
        assert excinfo.value.shard_id == 0
        # ...and the worker's own stall warning was re-logged parent-side
        # with the shard attribution attached.
        routed = [record for record in caplog.records
                  if "[shard 0]" in record.getMessage()]
        assert routed, "worker warning was not routed to the parent"
    finally:
        sim.close()


# --------------------------------------------------------------------------- #
# Scenario integration
# --------------------------------------------------------------------------- #


def test_adversarial_churn_rejects_sharded_with_a_reason():
    """The exclusion is validated at bind time, not by an AttributeError."""
    from repro.runtime.registry import REGISTRY, ScenarioError, load_scenarios

    load_scenarios()
    scenario = REGISTRY.get("adversarial-churn")
    with pytest.raises(ScenarioError, match="in-process overlay"):
        scenario.bind(backend="drtree:sharded")


def test_throughput_scenario_sharded_backend_asserts_parity():
    from repro.experiments import exp_throughput

    result = exp_throughput.run(peers=560, events=20, window=10,
                                backend="drtree:sharded", shards=2)
    by_mode = {row["mode"]: row for row in result.rows}
    assert set(by_mode) == {"drtree:classic", "drtree:sharded"}
    classic, sharded = (by_mode["drtree:classic"], by_mode["drtree:sharded"])
    assert classic["messages"] == sharded["messages"]
    assert classic["deliveries"] == sharded["deliveries"]
    assert any("identical" in note for note in result.notes)


def test_throughput_scenario_baseline_none_runs_target_alone():
    from repro.experiments import exp_throughput

    result = exp_throughput.run(peers=560, events=10, window=10,
                                backend="drtree:sharded", baseline="none",
                                shards=2)
    assert [row["mode"] for row in result.rows] == ["drtree:sharded"]


def test_scale_scenario_reports_per_shard_balance():
    from repro.experiments import exp_scale

    result = exp_scale.run(peers=1200, events=20, window=20, shards=3,
                           parity_peers=560, parity_events=15)
    shard_rows = [row for row in result.rows if row["shard"] != "all"]
    total = next(row for row in result.rows if row["shard"] == "all")
    assert len(shard_rows) == 3
    assert sum(row["peers"] for row in shard_rows) == 1200 == total["peers"]
    assert total["cross_out"] == total["cross_in"] > 0
    assert any("byte-identical" in note for note in result.notes)


def test_close_is_idempotent_and_context_managed(bulk_workload):
    space, subs, _ = bulk_workload
    with ShardedSimulation(config=CONFIG, seed=3, shards=2,
                           transport="process") as sim:
        sim.bulk_load(subs)
        report = sim.shard_report()
        assert sum(row["peers"] for row in report) == len(subs)
        assert all(row["deliveries"] == 0 for row in report)
    sim.close()  # second close is a no-op
    event = targeted_events(space, subs, 1, seed=0)[0]
    with pytest.raises(ShardFailedError):
        sim.publish(subs[0].name, event)

"""Tests for STR bulk loading: R-tree invariants and DR-tree legality."""

from __future__ import annotations

import random

import pytest

from repro.overlay import (
    BULK_THRESHOLD,
    DRTreeConfig,
    DRTreeSimulation,
    bootstrap_overlay,
    build_stable_tree,
)
from repro.rtree.bulk import bulk_load, str_groups
from repro.spatial.filters import Event
from repro.spatial.rectangle import Rect
from repro.workloads.subscriptions import uniform_subscriptions


def _random_items(count: int, seed: int = 0):
    rng = random.Random(seed)
    items = []
    for index in range(count):
        x, y = rng.random(), rng.random()
        rect = Rect((x, y), (min(x + rng.random() * 0.2, 1.0),
                             min(y + rng.random() * 0.2, 1.0)))
        items.append((rect, index))
    return items


# --------------------------------------------------------------------------- #
# STR tiling
# --------------------------------------------------------------------------- #


@pytest.mark.parametrize("count", [1, 4, 5, 17, 100, 1000])
@pytest.mark.parametrize("capacity", [4, 6, 8])
def test_str_groups_cover_everything_within_bounds(count, capacity):
    rects = [rect for rect, _ in _random_items(count)]
    groups = str_groups(rects, capacity)
    flat = sorted(index for group in groups for index in group)
    assert flat == list(range(count))  # a partition: no loss, no duplication
    assert all(len(group) <= capacity for group in groups)
    if len(groups) > 1:
        assert all(len(group) >= capacity // 2 for group in groups)


def test_str_groups_empty_and_invalid_capacity():
    assert str_groups([], 4) == []
    with pytest.raises(ValueError):
        str_groups([Rect((0, 0), (1, 1))], 0)


# --------------------------------------------------------------------------- #
# Sequential R-tree bulk load
# --------------------------------------------------------------------------- #


@pytest.mark.parametrize("count", [0, 1, 3, 17, 500])
@pytest.mark.parametrize("bounds", [(2, 4), (4, 8)])
def test_bulk_load_invariants_and_content(count, bounds):
    items = _random_items(count)
    tree = bulk_load(items, *bounds)
    assert tree.check_invariants() == []
    assert len(tree) == count
    assert sorted(tree.payloads()) == list(range(count))


def test_bulk_load_supports_search_insert_delete():
    items = _random_items(300, seed=2)
    tree = bulk_load(items, 2, 4)
    probe_rect, probe_payload = items[42]
    assert probe_payload in tree.search_point(probe_rect.center)
    extra = _random_items(40, seed=9)
    for rect, payload in extra:
        tree.insert(rect, 1000 + payload)
    for rect, payload in items[:40]:
        assert tree.delete(rect, payload)
    assert tree.check_invariants() == []
    assert len(tree) == 300


def test_bulk_load_matches_incremental_search_results():
    items = _random_items(200, seed=5)
    bulk = bulk_load(items, 2, 4)
    from repro.rtree.rtree import RTree

    incremental = RTree(2, 4)
    for rect, payload in items:
        incremental.insert(rect, payload)
    for rect, _ in items[:25]:
        assert sorted(bulk.search_rect(rect)) == sorted(
            incremental.search_rect(rect))


# --------------------------------------------------------------------------- #
# DR-tree overlay bootstrap
# --------------------------------------------------------------------------- #


@pytest.mark.parametrize("count", [1, 2, 5, 40, 300])
def test_bootstrap_overlay_is_legal(count):
    sim = DRTreeSimulation(DRTreeConfig(2, 4), seed=1)
    bootstrap_overlay(sim, list(uniform_subscriptions(count, seed=1)))
    report = sim.verify()
    assert report.is_legal, report.violations
    assert report.peer_count == count


def test_build_stable_tree_bulk_equivalent_legality():
    subs = list(uniform_subscriptions(120, seed=8))
    joined = build_stable_tree(subs, DRTreeConfig(2, 4), seed=8, bulk=False)
    bulk = build_stable_tree(subs, DRTreeConfig(2, 4), seed=8, bulk=True)
    assert joined.verify().is_legal
    assert bulk.verify().is_legal
    assert len(bulk.live_peers()) == len(joined.live_peers())


def test_bulk_threshold_selects_fast_path_automatically():
    subs = list(uniform_subscriptions(BULK_THRESHOLD, seed=4))
    sim = build_stable_tree(subs, DRTreeConfig(2, 4), seed=4)
    report = sim.verify()
    assert report.is_legal, report.violations
    # The join protocol was never exercised: no join requests were sent.
    assert sim.metrics.counter("join.requests") == 0


def test_bulk_built_tree_disseminates_without_false_negatives():
    subs = list(uniform_subscriptions(400, seed=6))
    sim = build_stable_tree(subs, DRTreeConfig(2, 4), seed=6, bulk=True)
    event = Event({"attr0": 0.31, "attr1": 0.64}, event_id="probe")
    root = sim.root()
    assert root is not None
    sim.publish(root.process_id, event)
    matching = {p.process_id for p in sim.live_peers()
                if p.subscription.matches(event)}
    received = {p.process_id for p in sim.live_peers()
                if "probe" in p.seen_events}
    assert matching <= received


def test_bulk_built_tree_survives_churn():
    subs = list(uniform_subscriptions(200, seed=7))
    sim = build_stable_tree(subs, DRTreeConfig(2, 4), seed=7, bulk=True)
    rng = random.Random(3)
    victims = rng.sample([p.process_id for p in sim.live_peers()], 20)
    for index, victim in enumerate(victims):
        if index % 2:
            sim.crash(victim)
        else:
            sim.leave(victim, settle=False)
    report = sim.stabilize(max_rounds=60)
    assert report.is_legal, report.violations
    assert report.peer_count == 180

"""Tests for the containment graph (Figure 1 of the paper)."""

from __future__ import annotations

import pytest

from repro.spatial.containment import ContainmentGraph, contains, is_comparable
from repro.spatial.filters import subscription_from_rect
from repro.spatial.rectangle import Rect


@pytest.fixture
def nested_subs(space):
    """A chain big ⊒ mid ⊒ small plus an unrelated rectangle."""
    return [
        subscription_from_rect("big", space, Rect((0, 0), (1, 1))),
        subscription_from_rect("mid", space, Rect((0.1, 0.1), (0.6, 0.6))),
        subscription_from_rect("small", space, Rect((0.2, 0.2), (0.3, 0.3))),
        subscription_from_rect("other", space, Rect((2, 2), (3, 3))),
    ]


def test_contains_helpers(nested_subs):
    big, mid, small, other = nested_subs
    assert contains(big, mid)
    assert contains(big, small)
    assert not contains(mid, big)
    assert is_comparable(big, small)
    assert not is_comparable(big, other)


def test_graph_direct_edges(nested_subs):
    graph = ContainmentGraph.build(nested_subs)
    assert graph.edges() == [("big", "mid"), ("mid", "small")]
    assert graph.children("big") == {"mid"}
    assert graph.parents("small") == {"mid"}


def test_graph_roots_and_depth(nested_subs):
    graph = ContainmentGraph.build(nested_subs)
    assert graph.roots() == ["big", "other"]
    assert graph.depth() == 3


def test_graph_transitive_queries(nested_subs):
    graph = ContainmentGraph.build(nested_subs)
    assert graph.ancestors("small") == {"mid", "big"}
    assert graph.descendants("big") == {"mid", "small"}
    assert ("big", "small") in graph.containment_pairs()


def test_graph_incremental_add(space, nested_subs):
    graph = ContainmentGraph.build(nested_subs[:2])
    graph.add(nested_subs[2])
    assert graph.parents("small") == {"mid"}
    assert len(graph) == 3
    assert "small" in graph


def test_graph_duplicate_name_rejected(nested_subs):
    graph = ContainmentGraph.build(nested_subs)
    with pytest.raises(ValueError):
        graph.add(nested_subs[0])


def test_graph_empty():
    graph = ContainmentGraph.build([])
    assert graph.depth() == 0
    assert graph.roots() == []
    assert len(graph) == 0


def test_graph_multiple_containers(space):
    """A containee with two incomparable containers (the paper's S4 case)."""
    a = subscription_from_rect("A", space, Rect((0, 0), (0.6, 1)))
    b = subscription_from_rect("B", space, Rect((0.2, 0), (1, 1)))
    c = subscription_from_rect("C", space, Rect((0.3, 0.3), (0.5, 0.5)))
    graph = ContainmentGraph.build([a, b, c])
    assert graph.parents("C") == {"A", "B"}
    assert graph.roots() == ["A", "B"]


def test_paper_figure1_containment_graph():
    """The containment graph of Figure 1 (right side)."""
    from repro.workloads.paper_example import paper_subscriptions

    subs = paper_subscriptions()
    graph = ContainmentGraph.build(list(subs.values()))
    # From the figure: S1 contains S2 and S3 (directly), S2 and S3 contain S4,
    # S5 contains S6 and S7, S7 contains S8.
    assert graph.children("S1") >= {"S2", "S3"}
    assert "S4" in graph.descendants("S2")
    assert "S4" in graph.descendants("S3")
    assert graph.children("S5") >= {"S6", "S7"}
    assert "S8" in graph.descendants("S7")
    assert set(graph.roots()) == {"S1", "S5"}

"""Cross-backend property tests over the unified Broker protocol.

Hypothesis generates bounded rectangle subscriptions and point events and
drives the identical workload through every registered backend:

* flooding must deliver a *superset* of the matching subscribers for every
  event (perfect recall is its defining property),
* on stable trees, DR-tree classic, DR-tree batched and every baseline must
  report **identical false-negative sets** — all empty — event by event.
"""

from __future__ import annotations

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.api import SystemSpec, backend_names
from repro.spatial.filters import Event, make_space, subscription_from_rect
from repro.spatial.rectangle import Rect

SPACE = make_space("x", "y")


@st.composite
def bounded_subscriptions(draw, min_count=4, max_count=9):
    """A list of uniquely named, bounded rectangles on a 0.1 grid.

    Bounded on every dimension so each subscription participates in every
    per-dimension containment tree (an unbounded filter legitimately
    vanishes from that baseline's routing).
    """
    count = draw(st.integers(min_count, max_count))
    subs = []
    for index in range(count):
        x0 = draw(st.integers(0, 8))
        y0 = draw(st.integers(0, 8))
        width = draw(st.integers(1, 5))
        height = draw(st.integers(1, 5))
        rect = Rect((x0 / 10, y0 / 10),
                    (min((x0 + width) / 10, 1.0), min((y0 + height) / 10, 1.0)))
        subs.append(subscription_from_rect(f"S{index}", SPACE, rect))
    return subs


def _event_stream(subs, draw_points):
    """Events centred on subscriptions (guaranteed matches) plus free points."""
    events = []
    for index, sub in enumerate(subs[:3]):
        cx, cy = sub.rect.center.coords
        events.append(Event({"x": cx, "y": cy}, event_id=f"hit{index}"))
    for index, (px, py) in enumerate(draw_points):
        events.append(Event({"x": px / 10, "y": py / 10},
                            event_id=f"pt{index}"))
    return events


point_lists = st.lists(
    st.tuples(st.integers(0, 10), st.integers(0, 10)), min_size=1, max_size=3)


@settings(max_examples=12, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(subs=bounded_subscriptions(), points=point_lists,
       seed=st.integers(0, 999))
def test_flooding_delivers_a_superset_of_every_matching_audience(subs, points,
                                                                 seed):
    broker = SystemSpec(SPACE, backend="flooding", seed=seed).build()
    broker.subscribe_all(subs)
    for event in _event_stream(subs, points):
        outcome = broker.publish(event)
        assert outcome.intended <= outcome.received
        assert outcome.false_negatives == set()


@settings(max_examples=8, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(subs=bounded_subscriptions(max_count=7), points=point_lists,
       seed=st.integers(0, 999))
def test_all_backends_report_identical_false_negative_sets(subs, points, seed):
    """On a stable (fully stabilized, churn-free) tree, no backend misses a
    matching subscriber — so the per-event false-negative sets agree
    (and are empty) across DR-tree classic, batched and every baseline."""
    events = _event_stream(subs, points)
    per_backend = {}
    for backend in backend_names():
        broker = SystemSpec(SPACE, backend=backend, seed=seed).build()
        try:
            broker.subscribe_all(subs)
            outcomes = broker.publish_many(events)
            per_backend[backend] = [
                (outcome.event_id, frozenset(outcome.false_negatives))
                for outcome in outcomes
            ]
        finally:
            close = getattr(broker, "close", None)
            if close is not None:
                close()
    reference = per_backend["drtree:classic"]
    assert all(fns == frozenset() for _, fns in reference)
    for backend, observed in per_backend.items():
        assert observed == reference, (
            f"{backend} disagrees with drtree:classic on false negatives")

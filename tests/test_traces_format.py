"""Trace format: hypothesis round-trips and typed schema errors."""

from __future__ import annotations

import json
import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.spatial.filters import (Predicate, Subscription, make_space,
                                   subscription_from_intervals,
                                   subscription_from_rect)
from repro.spatial.rectangle import Rect
from repro.traces import (TRACE_FORMAT, TRACE_VERSION, OpRecord, SystemRecord,
                          Trace, TraceFormatError, TraceHeader, dumps_trace,
                          loads_trace, read_trace, write_trace)
from repro.traces.format import (event_from_json, event_to_json,
                                 subscription_from_json, subscription_to_json)

SPACE = make_space("x", "y")

# --------------------------------------------------------------------------- #
# Strategies
# --------------------------------------------------------------------------- #

_coord = st.floats(min_value=0.0, max_value=1.0, allow_nan=False)
_name = st.text(alphabet="abcdefghij", min_size=1, max_size=8)


@st.composite
def _subscription_json(draw):
    name = draw(_name)
    if draw(st.booleans()):
        low_x, low_y = draw(_coord), draw(_coord)
        return subscription_to_json(subscription_from_rect(
            name, SPACE,
            Rect((low_x, low_y),
                 (min(low_x + draw(_coord), 1.0),
                  min(low_y + draw(_coord), 1.0)))))
    low = draw(_coord)
    return subscription_to_json(subscription_from_intervals(
        name, SPACE, {"x": (low, min(low + draw(_coord), 1.0)),
                      "y": (-math.inf, draw(_coord))}))


@st.composite
def _op(draw, seg):
    kind = draw(st.sampled_from(
        ["subscribe", "subscribe_all", "unsubscribe", "crash", "move",
         "publish", "stabilize"]))
    t = draw(st.floats(min_value=0.0, max_value=1e6, allow_nan=False))
    if kind == "subscribe":
        data = {"subscription": draw(_subscription_json()),
                "stabilize": draw(st.booleans())}
    elif kind == "subscribe_all":
        data = {"subscriptions": draw(st.lists(_subscription_json(),
                                               max_size=3)),
                "stabilize": draw(st.booleans()),
                "bulk": draw(st.sampled_from([None, True, False]))}
    elif kind == "unsubscribe":
        data = {"id": draw(_name)}
    elif kind == "crash":
        data = {"id": draw(_name), "stabilize": draw(st.booleans())}
    elif kind == "move":
        data = {"id": draw(_name), "subscription": draw(_subscription_json()),
                "stabilize": draw(st.booleans())}
    elif kind == "publish":
        data = {"event": {"id": draw(_name),
                          "attributes": {"x": draw(_coord), "y": draw(_coord)}},
                "publisher": draw(_name)}
    else:
        data = {"max_rounds": draw(st.sampled_from([None, 1, 30]))}
    return OpRecord(seg=seg, t=t, op=kind, data=data)


@st.composite
def traces(draw):
    header = TraceHeader(
        scenario=draw(st.none() | _name),
        params=draw(st.none() | st.dictionaries(
            _name, st.integers(min_value=0, max_value=10_000), max_size=3)),
    )
    trace = Trace(header=header)
    for seg in range(draw(st.integers(min_value=1, max_value=3))):
        trace.body.append(SystemRecord(
            seg=seg,
            t=draw(st.floats(min_value=0.0, max_value=100.0, allow_nan=False)),
            space=("x", "y"),
            seed=draw(st.integers(min_value=0, max_value=2**31)),
            batch=draw(st.booleans()),
            stabilize_rounds=draw(st.integers(min_value=1, max_value=60)),
            config={"min_children": 2, "max_children": 4},
        ))
        trace.body.extend(draw(st.lists(_op(seg), max_size=4)))
    return trace


# --------------------------------------------------------------------------- #
# Round-trip properties
# --------------------------------------------------------------------------- #


@settings(max_examples=60, deadline=None)
@given(traces())
def test_serialize_parse_reserialize_is_identity(trace):
    text = dumps_trace(trace)
    parsed = loads_trace(text)
    assert dumps_trace(parsed) == text
    assert parsed.header == trace.header
    assert parsed.body == trace.body


@settings(max_examples=60, deadline=None)
@given(_subscription_json())
def test_subscription_round_trip(data):
    rebuilt = subscription_from_json(data, SPACE)
    assert isinstance(rebuilt, Subscription)
    assert subscription_to_json(rebuilt) == data


def test_predicate_subscription_survives_round_trip():
    original = Subscription(
        name="alice", space=SPACE,
        predicates=(Predicate("x", ">=", 0.25), Predicate("y", "<", 0.5)))
    rebuilt = subscription_from_json(subscription_to_json(original), SPACE)
    assert rebuilt.predicates == original.predicates
    assert rebuilt.rect == original.rect


def test_unbounded_rect_serializes_as_inf_strings():
    sub = subscription_from_rect(
        "wide", SPACE, Rect((-math.inf, 0.0), (math.inf, 1.0)))
    data = subscription_to_json(sub)
    assert data["rect"]["lower"][0] == "-inf"
    assert data["rect"]["upper"][0] == "inf"
    assert subscription_from_json(data, SPACE).rect == sub.rect


def test_event_round_trip():
    data = {"id": "e1", "attributes": {"x": 0.25, "y": 1.0}}
    assert event_to_json(event_from_json(data)) == data


def test_file_round_trip_is_byte_identical(tmp_path):
    trace = Trace(header=TraceHeader(scenario="demo"))
    trace.body.append(SystemRecord(seg=0, space=("x", "y"), seed=1,
                                   batch=False, stabilize_rounds=30))
    assert len(trace) == 1
    path = write_trace(tmp_path / "t.jsonl", trace)
    text = path.read_text(encoding="utf-8")
    assert dumps_trace(read_trace(path)) == text


def test_blank_lines_are_tolerated():
    trace = Trace(header=TraceHeader(scenario="demo"))
    text = dumps_trace(trace)
    padded = "\n" + text + "\n   \n"
    assert loads_trace(padded).header == trace.header


def test_system_backend_defaults_from_the_legacy_batch_flag():
    """Version-1 traces without a backend field parse to the engine the
    boolean implies, so pre-Broker traces keep replaying."""
    classic = loads_trace(_header_line() + "\n" + _system_line() + "\n")
    assert classic.systems()[0].backend == "drtree:classic"
    batched = loads_trace(
        _header_line() + "\n" + _system_line(batch=True) + "\n")
    assert batched.systems()[0].backend == "drtree:batched"
    assert SystemRecord(seg=0, space=("x",), seed=0, batch=True,
                        stabilize_rounds=1).backend == "drtree:batched"


def test_system_backend_round_trips():
    line = _system_line(backend="flooding")
    trace = loads_trace(_header_line(backend="flooding") + "\n" + line + "\n")
    assert trace.header.backend == "flooding"
    record = trace.systems()[0]
    assert record.backend == "flooding"
    assert record.to_json()["backend"] == "flooding"


# --------------------------------------------------------------------------- #
# Schema violations raise TraceFormatError (never KeyError)
# --------------------------------------------------------------------------- #


def _header_line(**overrides):
    record = {"record": "header", "format": TRACE_FORMAT,
              "version": TRACE_VERSION, "scenario": None, "params": None}
    record.update(overrides)
    return json.dumps(record)


def _system_line(**overrides):
    record = {"record": "system", "seg": 0, "t": 0.0, "space": ["x", "y"],
              "seed": 0, "batch": False, "stabilize_rounds": 30, "config": {}}
    record.update(overrides)
    return json.dumps(record)


@pytest.mark.parametrize("text, fragment", [
    ("", "empty trace"),
    ("not json\n", "invalid JSON"),
    ("[1, 2]\n", "JSON object"),
    (_system_line() + "\n", "first record must be the trace header"),
    (_header_line(format="other") + "\n", "not a repro-trace file"),
    (_header_line(version=99) + "\n", "unsupported trace version"),
    (_header_line(version="1") + "\n", "unsupported trace version"),
    (_header_line(scenario=7) + "\n", "scenario must be a string"),
    (_header_line(params=[1]) + "\n", "params must be an object"),
    (_header_line(backend=7) + "\n", "backend must be a string"),
    (_header_line() + "\n" + _system_line(backend=5) + "\n",
     "backend must be a string"),
    (_header_line() + "\n" + _header_line() + "\n", "duplicate header"),
    (_header_line() + "\n" + _system_line() + "\n" + _system_line() + "\n",
     "duplicate system record"),
    (_header_line() + "\n" + json.dumps({"record": "bogus"}) + "\n",
     "unknown record type"),
    (_header_line() + "\n" + _system_line(space=[]) + "\n", "space"),
    (_header_line() + "\n" + _system_line(seed="zero") + "\n", "seed"),
    (_header_line() + "\n" + _system_line(batch=1) + "\n", "boolean"),
    (_header_line() + "\n"
     + json.dumps({"record": "op", "seg": 0, "t": 0.0, "op": "subscribe",
                   "subscription": {"name": "a", "rect": {"lower": [0, 0],
                                                          "upper": [1, 1]}},
                   "stabilize": True}) + "\n",
     "before its system record"),
    (_header_line() + "\n" + _system_line() + "\n"
     + json.dumps({"record": "op", "seg": 0, "t": 0.0, "op": "teleport"})
     + "\n", "unknown trace op"),
    (_header_line() + "\n" + _system_line() + "\n"
     + json.dumps({"record": "op", "seg": 0, "t": 0.0, "op": "crash"}) + "\n",
     "missing fields"),
    (_header_line() + "\n" + _system_line() + "\n"
     + json.dumps({"record": "expect", "seg": 5, "row": {}}) + "\n",
     "unknown segment"),
    (_header_line() + "\n" + _system_line() + "\n"
     + json.dumps({"record": "expect", "seg": 0}) + "\n", "missing 'row'"),
])
def test_malformed_traces_raise_typed_errors(text, fragment):
    with pytest.raises(TraceFormatError) as excinfo:
        loads_trace(text)
    assert fragment in str(excinfo.value)


def test_error_reports_line_number():
    text = _header_line() + "\n" + json.dumps({"record": "bogus"}) + "\n"
    with pytest.raises(TraceFormatError) as excinfo:
        loads_trace(text)
    assert excinfo.value.line == 2
    assert "line 2" in str(excinfo.value)


def test_error_line_numbers_account_for_blank_lines():
    text = ("\n" + _header_line() + "\n\n\n"
            + json.dumps({"record": "bogus"}) + "\n")
    with pytest.raises(TraceFormatError) as excinfo:
        loads_trace(text)
    assert excinfo.value.line == 5  # the physical line, not the record index


def test_old_version_is_rejected_not_keyerror():
    text = _header_line(version=0) + "\n"
    try:
        loads_trace(text)
    except TraceFormatError:
        pass
    else:  # pragma: no cover - the assertion documents the contract
        pytest.fail("version 0 must be rejected")


@pytest.mark.parametrize("data, fragment", [
    ("nope", "must be an object"),
    ({"rect": {"lower": [0, 0], "upper": [1, 1]}}, "non-empty name"),
    ({"name": "a"}, "'rect' or 'predicates'"),
    ({"name": "a", "rect": {"lower": [0], "upper": [1, 1]}},
     "equal-length"),
    ({"name": "a", "rect": {"lower": [0, "wide"], "upper": [1, 1]}},
     "must be a number"),
    ({"name": "a", "predicates": "x<1"}, "must be a list"),
    ({"name": "a", "predicates": [["x", "<"]]}, "predicate must be"),
    ({"name": "a", "predicates": [["x", "!!", 1.0]]}, "bad predicate"),
])
def test_bad_subscriptions_raise_typed_errors(data, fragment):
    with pytest.raises(TraceFormatError) as excinfo:
        subscription_from_json(data, SPACE)
    assert fragment in str(excinfo.value)


@pytest.mark.parametrize("data, fragment", [
    (None, "must be an object"),
    ({"attributes": {}}, "non-empty id"),
    ({"id": "e"}, "attributes object"),
    ({"id": "e", "attributes": {"x": True}}, "must be numeric"),
])
def test_bad_events_raise_typed_errors(data, fragment):
    with pytest.raises(TraceFormatError) as excinfo:
        event_from_json(data)
    assert fragment in str(excinfo.value)


def test_read_trace_missing_file_is_typed(tmp_path):
    with pytest.raises(TraceFormatError) as excinfo:
        read_trace(tmp_path / "absent.jsonl")
    assert "cannot read" in str(excinfo.value)


def test_oprecord_rejects_unknown_op_at_construction():
    with pytest.raises(TraceFormatError):
        OpRecord(seg=0, op="teleport")

"""Property tests for the journal: round-trip, tamper, truncation, recovery.

The adversary model is randomized rather than hand-picked:

* any op sequence the writer journals must read back strictly verified and
  structurally identical (round-trip);
* any single content edit anywhere in the file must raise on open (tamper);
* any byte-level truncation must either be tolerated as a torn final write
  (keeping the exact intact prefix) or reported as corruption — never
  silently misread (truncated tail);
* a journaled run truncated after *any* op count must resume to metrics
  identical to an uninterrupted run, re-executing exactly the post-snapshot
  tail (recovery).
"""

from __future__ import annotations

import json
import tempfile
from pathlib import Path

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.journal import (JournalCorruptError, JournalFormatError,
                           JournalWriter, read_journal, resume_journal,
                           verify_journal)
from repro.journal.records import JournalHeader, JournalOp, JournalSystem
from repro.runtime.runner import run_one
from repro.traces.replay import dump_metrics

# --------------------------------------------------------------------------- #
# Generators
# --------------------------------------------------------------------------- #

_NAMES = st.text(alphabet="abcdefghijklmnop-0123456789", min_size=1,
                 max_size=8)


@st.composite
def op_payloads(draw):
    """One (op name, trace-shaped payload) pair the journal can carry."""
    kind = draw(st.sampled_from(
        ["unsubscribe", "crash", "stabilize", "publish"]))
    if kind == "unsubscribe":
        return kind, {"id": draw(_NAMES)}
    if kind == "crash":
        return kind, {"id": draw(_NAMES), "stabilize": draw(st.booleans())}
    if kind == "stabilize":
        return kind, {"max_rounds": draw(st.one_of(st.none(),
                                                   st.integers(0, 5)))}
    attributes = draw(st.dictionaries(st.sampled_from(["x", "y"]),
                                      st.integers(-100, 100),
                                      min_size=1, max_size=2))
    return kind, {"event": {"id": draw(_NAMES), "attributes": attributes},
                  "publisher": draw(_NAMES)}


def write_journal(directory: str, ops) -> Path:
    """A minimal but complete journal: header, one system, the given ops."""
    path = Path(directory) / "prop.journal"
    with JournalWriter(path) as writer:
        writer.append(JournalHeader(snapshot_every=0).to_json())
        writer.append(JournalSystem(seg=0, space=("x", "y"),
                                    backend="drtree:classic", seed=0,
                                    stabilize_rounds=8).to_json())
        for index, (kind, data) in enumerate(ops):
            writer.append(JournalOp(seg=0, n=index, op=kind, data=data,
                                    t=float(index)).to_json())
    return path


# --------------------------------------------------------------------------- #
# Properties
# --------------------------------------------------------------------------- #


@settings(max_examples=12, deadline=None)
@given(ops=st.lists(op_payloads(), min_size=0, max_size=12))
def test_journal_round_trips_any_op_sequence(ops):
    with tempfile.TemporaryDirectory(prefix="repro-prop-") as tmp:
        path = write_journal(tmp, ops)
        journal = verify_journal(path)  # strict: chain + canonical bytes
        assert not journal.sealed and not journal.torn_tail
        assert journal.next_seq == len(ops) + 2
        assert journal.valid_bytes == path.stat().st_size
        assert [(op.op, op.data) for op in journal.ops] == [
            (kind, data) for kind, data in ops]
        assert [op.n for op in journal.ops] == list(range(len(ops)))


@settings(max_examples=12, deadline=None)
@given(ops=st.lists(op_payloads(), min_size=1, max_size=8),
       choice=st.data())
def test_any_content_edit_is_detected(ops, choice):
    """Editing any record — first, middle or last — breaks the chain.

    The edit keeps the line valid, canonical JSON, so the torn-tail
    exemption never applies: the hash check alone must catch it.
    """
    with tempfile.TemporaryDirectory(prefix="repro-prop-") as tmp:
        path = write_journal(tmp, ops)
        lines = path.read_text(encoding="utf-8").splitlines()
        target = choice.draw(st.integers(0, len(lines) - 1), label="line")
        raw = json.loads(lines[target])
        raw["t"] = float(raw.get("t", 0)) + 1.0
        lines[target] = json.dumps(raw, sort_keys=True,
                                   separators=(",", ":"))
        path.write_text("".join(line + "\n" for line in lines),
                        encoding="utf-8")
        with pytest.raises(JournalCorruptError):
            read_journal(path)


@settings(max_examples=12, deadline=None)
@given(ops=st.lists(op_payloads(), min_size=1, max_size=8),
       choice=st.data())
def test_any_byte_flip_is_detected_or_confined_to_the_tail(ops, choice):
    """Flip one byte anywhere: strict verification always fails, and the
    tolerant reader either raises or drops exactly the damaged final line."""
    with tempfile.TemporaryDirectory(prefix="repro-prop-") as tmp:
        path = write_journal(tmp, ops)
        data = bytearray(path.read_bytes())
        positions = [i for i, byte in enumerate(data) if byte != 0x0A]
        where = choice.draw(st.sampled_from(positions), label="byte")
        data[where] ^= 0x01
        path.write_bytes(bytes(data))
        with pytest.raises((JournalCorruptError, JournalFormatError)):
            verify_journal(path)
        total = len(ops) + 2
        try:
            journal = read_journal(path)
        except (JournalCorruptError, JournalFormatError):
            return
        # Tolerated only as a torn *final* line: one record lost, no more.
        assert journal.torn_tail
        assert journal.next_seq == total - 1


@settings(max_examples=12, deadline=None)
@given(ops=st.lists(op_payloads(), min_size=1, max_size=8),
       choice=st.data())
def test_truncation_keeps_exactly_the_intact_prefix(ops, choice):
    """Cut the file at any byte: the tolerant reader recovers precisely the
    records whose bytes are complete, flagging a torn tail iff partial
    bytes remain; strict verification accepts only clean-boundary cuts."""
    with tempfile.TemporaryDirectory(prefix="repro-prop-") as tmp:
        path = write_journal(tmp, ops)
        data = path.read_bytes()
        ends = []  # end offset (incl. newline) of each line
        offset = 0
        for chunk in data.split(b"\n"):
            if chunk:
                ends.append(offset + len(chunk) + 1)
            offset += len(chunk) + 1
        cut = choice.draw(st.integers(ends[0] - 1, len(data) - 1),
                          label="cut")
        path.write_bytes(data[:cut])

        # A line survives when its content is complete (its trailing
        # newline may be the byte the crash ate).
        complete = sum(1 for end in ends if end <= cut + 1)
        torn = cut > (ends[complete - 1] if complete else 0)
        journal = read_journal(path)
        assert journal.next_seq == complete
        assert journal.torn_tail == torn
        assert len(journal.ops) == max(0, complete - 2)
        assert [op.n for op in journal.ops] == list(range(max(0, complete - 2)))
        if torn:
            with pytest.raises(JournalCorruptError):
                verify_journal(path)
        else:
            verify_journal(path)


# --------------------------------------------------------------------------- #
# Recovery property: crash after any op count, resume byte-identically
# --------------------------------------------------------------------------- #

_PARAMS = {"peers": 16, "events": 8, "seed": 11, "backend": "drtree:classic"}
_TOTAL_OPS = 1 + _PARAMS["events"]
_SNAPSHOT_EVERY = 3
_CACHE = {}


def _journaled_hotspot():
    """Journal one small hotspot run (unsealed); cache bytes + reference."""
    if not _CACHE:
        from repro.journal import journaling

        with tempfile.TemporaryDirectory(prefix="repro-prop-") as tmp:
            path = Path(tmp) / "run.journal"
            with journaling(path, scenario="hotspot", params=dict(_PARAMS),
                            snapshot_every=_SNAPSHOT_EVERY):
                outcome = run_one("hotspot", dict(_PARAMS))
                assert outcome.ok, outcome.error
            _CACHE["journal"] = path.read_bytes()
        _CACHE["reference"] = dump_metrics(outcome.scenario, outcome.rows)
    return _CACHE["journal"], _CACHE["reference"]


@settings(max_examples=8, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(keep_ops=st.integers(1, _TOTAL_OPS))
def test_resume_recovers_from_a_crash_after_any_op(keep_ops):
    full, reference = _journaled_hotspot()
    with tempfile.TemporaryDirectory(prefix="repro-prop-") as tmp:
        path = Path(tmp) / "crashed.journal"
        kept, ops = [], 0
        for line in full.decode("utf-8").splitlines():
            kept.append(line)
            if json.loads(line)["rec"] == "op":
                ops += 1
                if ops == keep_ops:
                    break
        path.write_text("".join(line + "\n" for line in kept),
                        encoding="utf-8")

        surviving = read_journal(path)
        snapshot = surviving.snapshot_for(0)
        expected_tail = keep_ops - (snapshot.ops if snapshot else 0)
        outcome, report = resume_journal(path)
        assert outcome.ok, outcome.error
        assert dump_metrics(outcome.scenario, outcome.rows) == reference
        assert report.segments[0].journaled == keep_ops
        assert report.segments[0].reexecuted == expected_tail
        assert verify_journal(path).sealed

"""Property-based tests on the DR-tree's global invariants.

Hypothesis drives randomized (but reproducible) membership histories —
interleaved joins, controlled departures and crashes — and after each history
the overlay must stabilize back to a legal configuration in which

* there is exactly one root and every peer is reachable from it,
* every internal node respects the m/M degree bounds,
* every leaf sits at level 0 (height balance),
* dissemination reaches every interested subscriber (no false negatives).
"""

from __future__ import annotations

from hypothesis import HealthCheck, example, given, settings
from hypothesis import strategies as st

from repro.overlay import DRTreeConfig, DRTreeSimulation
from repro.spatial.filters import Event, make_space, subscription_from_rect
from repro.spatial.rectangle import Rect

SPACE = make_space("x", "y")


def _subscription(index: int, x: float, y: float, w: float, h: float):
    rect = Rect((x, y), (min(x + w, 1.0), min(y + h, 1.0)))
    return subscription_from_rect(f"P{index}", SPACE, rect)


unit = st.floats(min_value=0.0, max_value=1.0, allow_nan=False)
extent = st.floats(min_value=0.01, max_value=0.4, allow_nan=False)

#: A membership action: (kind, payload) where kind selects join/leave/crash.
actions = st.lists(
    st.tuples(st.sampled_from(["join", "leave", "crash"]),
              unit, unit, extent, extent),
    min_size=4,
    max_size=18,
)


def _apply_history(history) -> DRTreeSimulation:
    sim = DRTreeSimulation(DRTreeConfig(2, 4), seed=11)
    counter = 0
    for kind, x, y, w, h in history:
        live = sim.live_peers()
        if kind == "join" or len(live) <= 2:
            sim.add_peer(_subscription(counter, x, y, w, h))
            counter += 1
        elif kind == "leave":
            victim = live[int(x * (len(live) - 1))]
            sim.leave(victim.process_id)
        else:
            victim = live[int(y * (len(live) - 1))]
            sim.crash(victim.process_id)
    sim.stabilize(max_rounds=80)
    return sim


#: Regression history (found by Hypothesis, see ``.hypothesis/patches``): a
#: leave+crash left two un-joined leaves and a stale internal instance whose
#: owner kept ACKing its child while bouncing every JOIN — a deadlock the
#: stabilization rounds never escaped.
DEADLOCK_HISTORY = [
    ("join", 0.0, 0.0, 0.25, 0.25),
    ("join", 0.0, 0.0, 0.25, 0.25),
    ("join", 0.0, 0.0, 0.375, 0.125),
    ("join", 0.0, 1.0, 0.25, 0.25),
    ("join", 0.0, 0.0, 0.25, 0.25),
    ("join", 0.0, 1.0, 0.25, 0.25),
    ("join", 0.0, 1.0, 0.25, 0.25),
    ("join", 0.0, 1.0, 0.25, 0.25),
    ("leave", 0.0, 0.0, 0.25, 0.25),
    ("crash", 0.0, 0.5, 0.25, 0.25),
]


@given(actions)
@settings(max_examples=20, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@example(history=DEADLOCK_HISTORY).via("discovered failure")
def test_random_membership_histories_stabilize_to_legal_trees(history):
    sim = _apply_history(history)
    report = sim.verify()
    assert report.is_legal, report.violations
    live = sim.live_peers()
    assert report.peer_count == len(live)
    # Height balance: every peer owns a leaf instance at level 0.
    for peer in live:
        assert 0 in peer.instances
        assert peer.instances[0].is_leaf
    # Degree bounds are part of legality, but assert the headline explicitly.
    assert report.max_degree <= 4


@given(actions, unit, unit)
@settings(max_examples=15, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@example(history=DEADLOCK_HISTORY, ex=0.1, ey=0.9).via("discovered failure")
def test_random_histories_preserve_zero_false_negatives(history, ex, ey):
    sim = _apply_history(history)
    event = Event({"x": ex, "y": ey}, event_id="probe")
    publisher = sim.root()
    assert publisher is not None
    sim.publish(publisher.process_id, event)
    matching = {p.process_id for p in sim.live_peers()
                if p.subscription.matches(event)}
    received = {p.process_id for p in sim.live_peers()
                if "probe" in p.seen_events}
    assert matching <= received


@given(st.integers(min_value=2, max_value=5), st.integers(min_value=1, max_value=3))
@settings(max_examples=10, deadline=None)
def test_min_max_children_configurations_build_legal_trees(m, factor):
    """Any legal (m, M) pair produces a legal tree over a fixed workload."""
    M = 2 * m + factor
    sim = DRTreeSimulation(DRTreeConfig(m, M), seed=5)
    for index in range(18):
        x = (index * 0.37) % 0.8
        y = (index * 0.53) % 0.8
        sim.add_peer(_subscription(index, x, y, 0.15, 0.15))
    report = sim.stabilize(max_rounds=60)
    assert report.is_legal, report.violations
    assert report.max_degree <= M

"""Tests for the simulated network and process base class."""

from __future__ import annotations

import pytest

from repro.sim.engine import SimulationEngine
from repro.sim.messages import Message
from repro.sim.network import FixedLatency, Network, UniformLatency
from repro.sim.process import Process
from repro.sim.rng import RandomStreams


class EchoProcess(Process):
    """Records everything it receives and can reply."""

    def __init__(self, process_id, network):
        super().__init__(process_id, network)
        self.received = []
        self.on("PING", self.handle_ping)
        self.on("PONG", lambda m: self.received.append(("PONG", m.sender)))

    def handle_ping(self, message):
        self.received.append(("PING", message.sender))
        self.send(message.sender, "PONG")


@pytest.fixture
def net():
    engine = SimulationEngine()
    network = Network(engine, latency=FixedLatency(1.0))
    return engine, network


def test_message_round_trip(net):
    engine, network = net
    a = EchoProcess("a", network)
    b = EchoProcess("b", network)
    a.send("b", "PING")
    engine.run_until_idle()
    assert ("PING", "a") in b.received
    assert ("PONG", "b") in a.received


def test_latency_delays_delivery(net):
    engine, network = net
    a = EchoProcess("a", network)
    b = EchoProcess("b", network)
    a.send("b", "PING")
    engine.run(until=0.5)
    assert b.received == []
    engine.run_until_idle()
    assert b.received


def test_unknown_recipient_dropped(net):
    engine, network = net
    a = EchoProcess("a", network)
    a.send("ghost", "PING")
    engine.run_until_idle()
    assert network.metrics.counter("network.messages_dropped") == 1


def test_crashed_recipient_drops_messages(net):
    engine, network = net
    a = EchoProcess("a", network)
    b = EchoProcess("b", network)
    b.crash()
    a.send("b", "PING")
    engine.run_until_idle()
    assert b.received == []
    assert not network.is_live("b")


def test_crashed_sender_cannot_send(net):
    engine, network = net
    a = EchoProcess("a", network)
    b = EchoProcess("b", network)
    a.crash()
    a.send("b", "PING")
    engine.run_until_idle()
    assert b.received == []


def test_duplicate_registration_rejected(net):
    engine, network = net
    EchoProcess("a", network)
    with pytest.raises(ValueError):
        EchoProcess("a", network)


def test_partition_blocks_cross_group_messages(net):
    engine, network = net
    a = EchoProcess("a", network)
    b = EchoProcess("b", network)
    c = EchoProcess("c", network)
    network.partition([{"a", "b"}, {"c"}])
    a.send("b", "PING")
    a.send("c", "PING")
    engine.run_until_idle()
    assert ("PING", "a") in b.received
    assert c.received == []
    network.heal_partition()
    a.send("c", "PING")
    engine.run_until_idle()
    assert ("PING", "a") in c.received


def test_message_loss(net):
    engine, _ = net
    network = Network(engine, latency=FixedLatency(1.0), loss_rate=0.5,
                      streams=RandomStreams(42))
    a = EchoProcess("a", network)
    EchoProcess("b", network)
    for _ in range(200):
        a.send("b", "PING")
    engine.run_until_idle()
    delivered = network.metrics.counter("network.messages_delivered")
    lost = network.metrics.counter("network.messages_lost")
    # PONG replies also count; just check a substantial share was lost.
    assert lost > 40
    assert delivered > 40


def test_invalid_loss_rate():
    engine = SimulationEngine()
    with pytest.raises(ValueError):
        Network(engine, loss_rate=1.5)


def test_network_tap_sees_all_sends(net):
    engine, network = net
    seen = []
    network.add_tap(lambda m: seen.append(m.kind))
    a = EchoProcess("a", network)
    EchoProcess("b", network)
    a.send("b", "PING")
    engine.run_until_idle()
    assert seen == ["PING", "PONG"]


def test_message_reply_addressing():
    message = Message(sender="a", recipient="b", kind="PING", payload={"x": 1})
    reply = message.reply("PONG", {"y": 2})
    assert reply.sender == "b"
    assert reply.recipient == "a"
    assert reply.hops == message.hops + 1


def test_uniform_latency_bounds():
    latency = UniformLatency(1.0, 3.0, RandomStreams(1))
    samples = [latency.sample() for _ in range(100)]
    assert all(1.0 <= s <= 3.0 for s in samples)
    with pytest.raises(ValueError):
        UniformLatency(3.0, 1.0, RandomStreams(1))


# --------------------------------------------------------------------------- #
# Process timers
# --------------------------------------------------------------------------- #


def test_one_shot_timer(net):
    engine, network = net
    a = EchoProcess("a", network)
    fired = []
    a.set_timer(5.0, lambda: fired.append(engine.now))
    engine.run_until_idle()
    assert fired == [5.0]


def test_timer_suppressed_after_crash(net):
    engine, network = net
    a = EchoProcess("a", network)
    fired = []
    a.set_timer(5.0, lambda: fired.append(engine.now))
    a.crash()
    engine.run_until_idle()
    assert fired == []


def test_periodic_timer_fires_repeatedly(net):
    engine, network = net
    a = EchoProcess("a", network)
    ticks = []
    a.start_periodic("tick", 2.0, lambda: ticks.append(engine.now))
    engine.run(until=9.0)
    assert ticks == [2.0, 4.0, 6.0, 8.0]
    a.stop_periodic("tick")
    engine.run(until=20.0)
    assert len(ticks) == 4


def test_periodic_timer_stops_on_shutdown(net):
    engine, network = net
    a = EchoProcess("a", network)
    ticks = []
    a.start_periodic("tick", 2.0, lambda: ticks.append(engine.now))
    engine.run(until=5.0)
    a.shutdown()
    engine.run(until=20.0)
    assert ticks == [2.0, 4.0]
    assert "a" not in network.processes()


def test_periodic_rejects_bad_period(net):
    _, network = net
    a = EchoProcess("a", network)
    with pytest.raises(ValueError):
        a.start_periodic("bad", 0.0, lambda: None)


def test_unhandled_message_counted(net):
    engine, network = net
    a = EchoProcess("a", network)
    EchoProcess("b", network)
    a.send("b", "UNKNOWN_KIND")
    engine.run_until_idle()
    assert network.metrics.counter("process.unhandled_messages") == 1


# --------------------------------------------------------------------- #
# Batch mode: send_many and the message pool
# --------------------------------------------------------------------- #


@pytest.fixture
def batch_net():
    engine = SimulationEngine()
    network = Network(engine, latency=FixedLatency(1.0), batch=True)
    return engine, network


def _batch_of(network, sender, recipients, kind="PING"):
    return network.pool.acquire_many(sender, recipients, kind, {"n": 1})


def test_send_many_unbatched_falls_back_to_send(net):
    engine, network = net
    a = EchoProcess("a", network)
    b = EchoProcess("b", network)
    c = EchoProcess("c", network)
    network.send_many([
        Message(sender="a", recipient="b", kind="PING"),
        Message(sender="a", recipient="c", kind="PING"),
    ])
    engine.run_until_idle()
    assert ("PING", "a") in b.received
    assert ("PING", "a") in c.received
    assert network.metrics.counter("network.messages_sent") >= 2


def test_send_many_batch_delivers_after_latency(batch_net):
    engine, network = batch_net
    a = EchoProcess("a", network)
    b = EchoProcess("b", network)
    c = EchoProcess("c", network)
    network.send_many(_batch_of(network, "a", ["b", "c"]))
    assert b.received == []
    engine.run_until_idle()
    assert ("PING", "a") in b.received
    assert ("PING", "a") in c.received
    # Replies (PONG) travelled through the normal send() path.
    assert ("PONG", "b") in a.received and ("PONG", "c") in a.received
    assert network.metrics.counter("network.messages_sent") == 4.0
    assert network.metrics.counter("network.messages_delivered") == 4.0
    assert network.metrics.counter("network.messages.PING") == 2.0


def test_send_many_batch_releases_envelopes_to_pool(batch_net):
    engine, network = batch_net
    EchoProcess("a", network)
    EchoProcess("b", network)
    EchoProcess("c", network)
    batch = _batch_of(network, "a", ["b", "c"])
    network.send_many(batch)
    engine.run_until_idle()
    assert len(network.pool) == 2
    assert all(message.payload is None for message in batch)
    # A second batch reuses the recycled envelopes.
    network.send_many(_batch_of(network, "a", ["b", "c"]))
    engine.run_until_idle()
    assert network.pool.reused == 2


def test_send_many_batch_crashed_sender_drops_all(batch_net):
    engine, network = batch_net
    a = EchoProcess("a", network)
    b = EchoProcess("b", network)
    a.crash()
    network.send_many(_batch_of(network, "a", ["b", "b"]))
    engine.run_until_idle()
    assert b.received == []
    assert network.metrics.counter("network.messages_dropped") == 2.0
    assert len(network.pool) == 2  # dropped envelopes are recycled too


def test_send_many_batch_respects_partitions(batch_net):
    engine, network = batch_net
    EchoProcess("a", network)
    b = EchoProcess("b", network)
    c = EchoProcess("c", network)
    network.partition([{"a", "b"}, {"c"}])
    network.send_many(_batch_of(network, "a", ["b", "c"]))
    engine.run_until_idle()
    assert ("PING", "a") in b.received
    assert c.received == []
    assert network.metrics.counter("network.messages_partitioned") == 1.0


def test_send_many_batch_message_loss():
    engine = SimulationEngine()
    network = Network(engine, latency=FixedLatency(1.0), loss_rate=0.5,
                      streams=RandomStreams(7), batch=True)
    EchoProcess("a", network)
    b = EchoProcess("b", network)
    # PONG is recorded without triggering a reply, so the loss counter only
    # ever sees this batch.
    network.send_many(_batch_of(network, "a", ["b"] * 200, kind="PONG"))
    engine.run_until_idle()
    lost = network.metrics.counter("network.messages_lost")
    assert 0 < lost < 200
    assert len(b.received) == 200 - int(lost)


def test_send_many_batch_taps_see_every_message(batch_net):
    engine, network = batch_net
    EchoProcess("a", network)
    EchoProcess("b", network)
    seen = []
    network.add_tap(lambda message: seen.append(message.recipient))
    network.send_many(_batch_of(network, "a", ["b", "b"], kind="PONG"))
    engine.run_until_idle()
    assert seen == ["b", "b"]


def test_same_instant_batches_share_one_round(batch_net):
    engine, network = batch_net
    EchoProcess("a", network)
    b = EchoProcess("b", network)
    c = EchoProcess("c", network)
    network.send_many(_batch_of(network, "a", ["b"]))
    network.send_many(_batch_of(network, "a", ["c"]))
    assert engine.pending() == 2
    engine.run_until_idle()
    # Both fan-outs landed in the same per-round queue: one engine entry.
    assert engine.batches_processed == 1
    assert b.received and c.received

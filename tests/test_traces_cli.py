"""CLI trace flags: the record → replay byte-identity acceptance criterion.

The load-bearing test here is ``test_record_then_replay_is_byte_identical``:
``repro run hotspot --record t.jsonl`` followed by
``repro run --trace t.jsonl`` must produce byte-identical metrics JSON, on
both dissemination engines (selected with ``--backend drtree:<engine>``).
"""

from __future__ import annotations

import json

import pytest

from repro.runtime.cli import main

#: Small-but-nontrivial hotspot invocation used throughout.
HOTSPOT_ARGS = ["run", "hotspot", "--peers", "36", "--events", "25"]


@pytest.fixture(scope="module")
def recorded_hotspot(tmp_path_factory):
    """Record the hotspot scenario once; returns (trace path, metrics path)."""
    root = tmp_path_factory.mktemp("trace")
    trace = root / "hotspot.jsonl"
    metrics = root / "recorded.metrics.json"
    code = main([*HOTSPOT_ARGS, "--quiet", "--record", str(trace),
                 "--metrics", str(metrics)])
    assert code == 0
    return trace, metrics


@pytest.mark.parametrize("backend_flags",
                         [[], ["--backend", "drtree:classic"],
                          ["--backend", "drtree:batched"]])
def test_record_then_replay_is_byte_identical(recorded_hotspot, tmp_path,
                                              backend_flags):
    trace, recorded_metrics = recorded_hotspot
    replayed_metrics = tmp_path / "replayed.metrics.json"
    code = main(["run", "--trace", str(trace), *backend_flags, "--quiet",
                 "--metrics", str(replayed_metrics)])
    assert code == 0
    assert replayed_metrics.read_bytes() == recorded_metrics.read_bytes()


def test_recorded_trace_has_provenance_header(recorded_hotspot):
    trace, _ = recorded_hotspot
    header = json.loads(trace.read_text(encoding="utf-8").splitlines()[0])
    assert header["record"] == "header"
    assert header["scenario"] == "hotspot"
    assert header["params"]["peers"] == 36
    assert header["params"]["events"] == 25


def test_replay_outcome_json_carries_scenario_and_params(recorded_hotspot,
                                                         tmp_path, capsys):
    trace, _ = recorded_hotspot
    out = tmp_path / "replay.json"
    assert main(["run", "--trace", str(trace), "--quiet",
                 "--json", str(out)]) == 0
    (run,) = json.loads(out.read_text())["runs"]
    assert run["scenario"] == "hotspot"
    assert run["params"]["peers"] == 36
    assert run["error"] is None
    assert len(run["rows"]) == 1


def test_record_refused_for_non_replayable_scenario(tmp_path, capsys):
    code = main(["run", "height", "--record", str(tmp_path / "h.jsonl")])
    assert code == 2
    err = capsys.readouterr().err
    assert "not trace-replayable" in err
    assert not (tmp_path / "h.jsonl").exists()


def test_trace_excludes_scenario_name(recorded_hotspot, capsys):
    trace, _ = recorded_hotspot
    assert main(["run", "hotspot", "--trace", str(trace)]) == 2
    assert "cannot be combined" in capsys.readouterr().err


def test_trace_rejects_stray_flags(recorded_hotspot, capsys):
    trace, _ = recorded_hotspot
    assert main(["run", "--trace", str(trace), "--peers=10"]) == 2
    assert "unrecognized arguments" in capsys.readouterr().err


def test_engine_flag_is_a_hard_error_with_migration_hint(capsys):
    assert main(["run", "hotspot", "--engine", "batched"]) == 2
    err = capsys.readouterr().err
    assert "--engine was removed" in err
    assert "--backend drtree:batched" in err


def test_unknown_replay_backend_is_a_usage_error(recorded_hotspot, capsys):
    """Regression: an unknown --backend on a replay used to escape as a raw
    traceback instead of the CLI's clean exit-2 diagnostic."""
    trace, _ = recorded_hotspot
    assert main(["run", "--trace", str(trace), "--backend", "gossip"]) == 2
    err = capsys.readouterr().err
    assert "error:" in err and "unknown backend" in err


def test_engine_flag_rejected_on_replays_too(recorded_hotspot, capsys):
    trace, _ = recorded_hotspot
    assert main(["run", "--trace", str(trace), "--engine", "classic",
                 "--backend", "flooding"]) == 2
    assert "--engine was removed" in capsys.readouterr().err


def test_backend_flag_rejected_for_non_backend_aware_scenario(capsys):
    assert main(["run", "height", "--backend", "flooding"]) == 2
    assert "not backend-aware" in capsys.readouterr().err


def test_replay_on_a_baseline_backend_skips_verification(recorded_hotspot,
                                                         capsys):
    trace, _ = recorded_hotspot
    assert main(["run", "--trace", str(trace), "--backend", "flooding"]) == 0
    assert "verification skipped" in capsys.readouterr().out


def test_missing_trace_file_is_a_usage_error(tmp_path, capsys):
    assert main(["run", "--trace", str(tmp_path / "absent.jsonl")]) == 2
    assert "cannot read" in capsys.readouterr().err


def test_tampered_trace_exits_one(recorded_hotspot, tmp_path, capsys):
    trace, _ = recorded_hotspot
    lines = trace.read_text(encoding="utf-8").splitlines()
    tampered_lines = []
    for line in lines:
        record = json.loads(line)
        if record["record"] == "expect":
            record["row"]["true_deliveries"] += 1.0
        tampered_lines.append(json.dumps(record, sort_keys=True,
                                         separators=(",", ":")))
    tampered = tmp_path / "tampered.jsonl"
    tampered.write_text("\n".join(tampered_lines) + "\n", encoding="utf-8")
    assert main(["run", "--trace", str(tampered)]) == 1
    assert "replay diverged" in capsys.readouterr().err
    # --no-verify turns the divergence check off.
    assert main(["run", "--trace", str(tampered), "--no-verify",
                 "--quiet"]) == 0


def test_failed_run_does_not_write_a_trace(tmp_path, capsys):
    trace = tmp_path / "fail.jsonl"
    # walkers > peers makes the mobility scenario raise before any system
    # exists; the half-recorded (here: empty) trace must not be written.
    code = main(["run", "mobility", "--peers", "4", "--walkers", "9",
                 "--record", str(trace), "--quiet"])
    assert code == 1
    assert not trace.exists()
    assert "not recording" in capsys.readouterr().err


def test_wrong_typed_op_field_is_a_replay_error(recorded_hotspot, tmp_path,
                                                capsys):
    trace, _ = recorded_hotspot
    lines = trace.read_text(encoding="utf-8").splitlines()
    # max_rounds passes the presence check but carries a bogus type; replay
    # must surface a typed divergence, not a raw TypeError traceback.
    lines.insert(2, json.dumps({"record": "op", "seg": 0, "t": 0.0,
                                "op": "stabilize", "max_rounds": "soon"},
                               sort_keys=True, separators=(",", ":")))
    bad = tmp_path / "bad-type.jsonl"
    bad.write_text("\n".join(lines) + "\n", encoding="utf-8")
    assert main(["run", "--trace", str(bad)]) == 1
    err = capsys.readouterr().err
    assert "replay diverged" in err
    assert "failed to apply" in err


def test_replay_prints_result_table(recorded_hotspot, capsys):
    trace, _ = recorded_hotspot
    assert main(["run", "--trace", str(trace)]) == 0
    out = capsys.readouterr().out
    assert "replay of hotspot" in out
    assert "delivery_rate" in out


def test_list_verbose_marks_replayable_scenarios(capsys):
    assert main(["list", "--verbose"]) == 0
    out = capsys.readouterr().out
    assert "replayable: supports --record / --trace" in out

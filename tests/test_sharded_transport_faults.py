"""Fault injection for the shared-memory shard transport.

The parity suites prove the shm transport is invisible when everything
works; this suite proves it is *loud* when something breaks.  The contract
under test (``repro.sim.sharded.shm`` docstring): a torn or corrupt byte
stream raises a typed :class:`ShmProtocolError` instead of resynchronizing
silently; a full ring bounds the writer with :class:`ShmBackpressureError`;
a dead peer surfaces as :class:`ShmPeerGoneError` (and, through the
coordinator, as the usual :class:`ShardFailedError`) instead of a hang; and
no teardown path — polite close, worker SIGKILL, coordinator
KeyboardInterrupt — leaves a ``drtree_*`` segment behind in ``/dev/shm``.
"""

from __future__ import annotations

import os
import pickle
import signal
import struct
import subprocess
import sys
import threading
import time
from zlib import crc32

import pytest

import repro
from repro.overlay.config import DRTreeConfig
from repro.sim.sharded import ShardedSimulation, ShardFailedError, shm_available
from repro.sim.sharded.shm import (FRAME_HEADER, FRAME_MAGIC,
                                   MAX_FRAME_BYTES, RING_HEADER_BYTES,
                                   FrameChannel, ShmBackpressureError,
                                   ShmPeerGoneError, ShmProtocolError,
                                   ShmRing, leaked_segments)
from repro.workloads.events import targeted_events
from repro.workloads.subscriptions import uniform_subscriptions

pytestmark = pytest.mark.skipif(not shm_available(),
                                reason="multiprocessing.shared_memory "
                                       "unavailable on this platform")

CONFIG = DRTreeConfig(min_children=4, max_children=8)


def make_pair(capacity=4096, send_timeout=120.0):
    """A loopback channel pair over plain bytearrays (no real segments).

    The ring protocol only needs a shared buffer; backing it with process
    memory lets every protocol-level fault be injected deterministically.
    """
    a = memoryview(bytearray(RING_HEADER_BYTES + capacity))
    b = memoryview(bytearray(RING_HEADER_BYTES + capacity))
    left = FrameChannel(ShmRing(a, reset=True), ShmRing(b, reset=True),
                        send_timeout=send_timeout)
    right = FrameChannel(ShmRing(b, reset=False), ShmRing(a, reset=False),
                         send_timeout=send_timeout)
    return left, right


def _write_raw(channel, data):
    """Push raw bytes into a channel's tx ring, bypassing framing."""
    view = memoryview(data)
    sent = 0
    while sent < len(view):
        wrote = channel._tx.write_some(view[sent:])
        assert wrote > 0, "raw write overran the ring"
        sent += wrote


# --------------------------------------------------------------------------- #
# Protocol-level faults
# --------------------------------------------------------------------------- #


def test_frames_round_trip_in_both_directions():
    left, right = make_pair()
    left.send(("cmd", 1, {"a": [1.5, None]}))
    right.send({"reply": "ok"})
    assert right.poll(1.0)
    assert right.recv() == ("cmd", 1, {"a": [1.5, None]})
    assert left.recv() == {"reply": "ok"}
    assert not right.poll(0.0)


def test_bad_magic_raises_protocol_error():
    left, right = make_pair()
    _write_raw(left, FRAME_HEADER.pack(0xDEADBEEF, 4, 0) + b"junk")
    with pytest.raises(ShmProtocolError, match="bad magic"):
        right.poll(0.5)


def test_implausible_length_raises_protocol_error():
    left, right = make_pair()
    _write_raw(left, FRAME_HEADER.pack(FRAME_MAGIC, MAX_FRAME_BYTES + 1, 0))
    with pytest.raises(ShmProtocolError, match="implausible"):
        right.poll(0.5)


def test_crc_mismatch_raises_protocol_error():
    left, right = make_pair()
    payload = pickle.dumps("payload")
    _write_raw(left, FRAME_HEADER.pack(FRAME_MAGIC, len(payload),
                                       crc32(payload) ^ 0xFFFFFFFF) + payload)
    with pytest.raises(ShmProtocolError, match="CRC"):
        right.poll(0.5)


def test_truncated_frame_waits_instead_of_desyncing():
    """An incomplete frame is pending bytes, not an error — and completing
    it later yields the object, so a slow writer can never desync a reader."""
    left, right = make_pair()
    payload = pickle.dumps(["slow", "frame"])
    frame = FRAME_HEADER.pack(FRAME_MAGIC, len(payload),
                              crc32(payload)) + payload
    _write_raw(left, frame[:FRAME_HEADER.size + 3])
    assert not right.poll(0.05)
    _write_raw(left, frame[FRAME_HEADER.size + 3:])
    assert right.poll(1.0)
    assert right.recv() == ["slow", "frame"]


def test_corruption_after_good_frames_is_still_caught():
    """The stream offset in the error proves parsing got past valid frames."""
    left, right = make_pair()
    left.send("good-1")
    left.send("good-2")
    _write_raw(left, struct.pack("<I", 0x01020304) * 3)
    with pytest.raises(ShmProtocolError):
        while True:
            right.recv()


# --------------------------------------------------------------------------- #
# Backpressure and liveness
# --------------------------------------------------------------------------- #


def test_ring_full_backpressure_raises_after_timeout():
    left, _right = make_pair(capacity=64, send_timeout=0.05)
    with pytest.raises(ShmBackpressureError, match="stayed full"):
        left.send(b"x" * 4096)  # nobody drains the 64-byte ring


def test_blocked_send_notices_dead_peer():
    left, _right = make_pair(capacity=64, send_timeout=30.0)
    left.set_peer_alive(lambda: False)
    start = time.monotonic()
    with pytest.raises(ShmPeerGoneError):
        left.send(b"x" * 4096)
    assert time.monotonic() - start < 5.0, "liveness check did not short-cut"


def test_blocked_recv_notices_dead_peer():
    left, _right = make_pair()
    left.set_peer_alive(lambda: False)
    with pytest.raises(ShmPeerGoneError):
        left.recv()


def test_frames_larger_than_the_ring_stream_through():
    """A frame bigger than the ring is streamed, not rejected: the writer
    parks on the full ring while the reader's batched drains free space."""
    left, right = make_pair(capacity=1024, send_timeout=30.0)
    big = os.urandom(200_000)
    received = []
    reader = threading.Thread(target=lambda: received.append(right.recv()))
    reader.start()
    left.send(big)
    reader.join(timeout=30.0)
    assert not reader.is_alive()
    assert received == [big]


def test_send_on_closed_channel_raises():
    left, _right = make_pair()
    left.close()
    left.close()  # idempotent
    with pytest.raises(OSError, match="closed"):
        left.send("anything")


# --------------------------------------------------------------------------- #
# Worker death and segment hygiene, end to end
# --------------------------------------------------------------------------- #


@pytest.fixture(scope="module")
def bulk_workload():
    workload = uniform_subscriptions(560, seed=3)
    subs = list(workload)
    stream = targeted_events(workload.space, subs, 12, seed=11)
    return workload.space, subs, stream


def test_sigkilled_worker_raises_shard_failed_not_hang(bulk_workload):
    _space, subs, stream = bulk_workload
    sim = ShardedSimulation(config=CONFIG, seed=3, shards=2, transport="shm")
    try:
        sim.bulk_load(subs)
        sim.stabilize(max_rounds=50)
        victim = sim._shards[1]
        victim.process.kill()
        victim.process.join(timeout=5)
        with pytest.raises(ShardFailedError, match="shard 1"):
            for event in stream:
                sim.publish(subs[0].name, event)
    finally:
        sim.close()
    assert leaked_segments(os.getpid()) == []


def test_polite_close_unlinks_every_segment(bulk_workload):
    _space, subs, _stream = bulk_workload
    sim = ShardedSimulation(config=CONFIG, seed=3, shards=4, transport="shm")
    try:
        sim.bulk_load(subs)
        assert leaked_segments(os.getpid()), "expected live segments mid-run"
    finally:
        sim.close()
    assert leaked_segments(os.getpid()) == []
    sim.close()  # idempotent, must not raise on already-unlinked segments


_INTERRUPT_SCRIPT = """
import signal
from repro.overlay.config import DRTreeConfig
from repro.sim.sharded import ShardedSimulation
from repro.workloads.subscriptions import uniform_subscriptions

sim = ShardedSimulation(config=DRTreeConfig(min_children=4, max_children=8),
                        seed=3, shards=2, transport="shm")
sim.bulk_load(list(uniform_subscriptions(560, seed=3)))
print("READY", flush=True)
signal.pause()
"""


def test_keyboard_interrupt_run_leaves_no_segments(tmp_path):
    """SIGINT with no cleanup handler anywhere must not leak ``/dev/shm``.

    The interrupted coordinator never reaches ``close()``; the segments it
    created must still disappear once the process is gone (its resource
    tracker reaps what teardown could not).  The scan keys on the dead
    coordinator's pid, so concurrent tests cannot interfere.
    """
    src_root = str(os.path.dirname(os.path.dirname(
        os.path.abspath(repro.__file__))))
    env = dict(os.environ)
    env["PYTHONPATH"] = src_root + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else "")
    proc = subprocess.Popen([sys.executable, "-c", _INTERRUPT_SCRIPT],
                            env=env, stdout=subprocess.PIPE,
                            stderr=subprocess.DEVNULL, text=True)
    try:
        assert proc.stdout.readline().strip() == "READY"
        assert leaked_segments(proc.pid), \
            "expected live segments before the interrupt"
        proc.send_signal(signal.SIGINT)
        proc.wait(timeout=30)
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait()
    deadline = time.monotonic() + 30.0
    while leaked_segments(proc.pid) and time.monotonic() < deadline:
        time.sleep(0.05)
    assert leaked_segments(proc.pid) == []

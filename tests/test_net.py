"""The real-network backend (``drtree:net``): codec, faults, convergence.

Covers the `repro.net` package: the length-prefixed CRC-checked frame
codec (hypothesis round-trip under arbitrary chunking, any-single-byte
tamper detection), the typed fault hierarchy, capability flags (no
snapshot), delivered-set parity with the simulated engines — including
the golden-trace replay gate — the deterministic driven re-attach of an
orphaned peer, and a small crash-churn soak through the background
stabilizers.
"""

from __future__ import annotations

from pathlib import Path

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import digests
from repro.api import SystemSpec, backend_metrics_identical
from repro.api.capabilities import SnapshotUnsupportedError, capabilities_of
from repro.experiments import exp_net_soak
from repro.net import (FRAME_HEADER, FrameDecoder, NetError, NetProtocolError,
                       NetTimeoutError, PeerUnreachableError, encode_frame)
from repro.net.codec import decode_frames
from repro.sim.messages import Message
from repro.traces import replay_trace
from repro.workloads import synth
from repro.workloads.events import targeted_events
from repro.workloads.subscriptions import uniform_subscriptions
from tests.conftest import random_subscriptions

GOLDEN_TRACE = Path(__file__).parent / "golden" / "synth-mixed.jsonl"


# --------------------------------------------------------------------------- #
# Frame codec properties
# --------------------------------------------------------------------------- #


_payload_values = st.one_of(
    st.integers(min_value=-2**31, max_value=2**31),
    st.floats(allow_nan=False, allow_infinity=False, width=32),
    st.text(max_size=12),
    st.lists(st.integers(min_value=0, max_value=255), max_size=4),
)

_messages = st.builds(
    Message,
    sender=st.text(min_size=1, max_size=8),
    recipient=st.text(min_size=1, max_size=8),
    kind=st.sampled_from(["JOIN", "CHECK_MBR", "EVENT", "PARENT_QUERY"]),
    payload=st.dictionaries(st.text(max_size=6), _payload_values, max_size=4),
    hops=st.integers(min_value=0, max_value=9),
)


@given(data=st.data())
@settings(max_examples=12, deadline=None)
def test_codec_round_trips_under_arbitrary_chunking(data):
    """Any split of the byte stream reassembles the exact message list."""
    messages = data.draw(st.lists(_messages, min_size=1, max_size=5))
    blob = b"".join(encode_frame(message) for message in messages)
    decoder = FrameDecoder()
    decoded = []
    cursor = 0
    while cursor < len(blob):
        size = data.draw(st.integers(min_value=1, max_value=len(blob) - cursor),
                         label="chunk")
        decoded.extend(decoder.feed(blob[cursor:cursor + size]))
        cursor += size
    assert decoded == messages
    assert decoder.pending() == 0


@given(data=st.data())
@settings(max_examples=12, deadline=None)
def test_any_single_byte_flip_tears_the_stream(data):
    """Flipping any one byte anywhere raises a typed protocol fault."""
    messages = data.draw(st.lists(_messages, min_size=1, max_size=3))
    blob = bytearray(b"".join(encode_frame(message) for message in messages))
    where = data.draw(st.integers(min_value=0, max_value=len(blob) - 1),
                      label="where")
    blob[where] ^= 0x01
    with pytest.raises(NetProtocolError):
        decode_frames(bytes(blob))


def test_decoder_rejects_trailing_bytes_and_bad_magic():
    frame = encode_frame(Message("a", "b", "EVENT"))
    with pytest.raises(NetProtocolError, match="trailing"):
        decode_frames(frame + b"\x01")
    with pytest.raises(NetProtocolError, match="magic"):
        decode_frames(b"\x00" * FRAME_HEADER.size)


def test_fault_hierarchy_roots_at_net_error():
    for leaf in (NetTimeoutError, PeerUnreachableError, NetProtocolError):
        assert issubclass(leaf, NetError)
    assert issubclass(NetError, RuntimeError)


# --------------------------------------------------------------------------- #
# Capabilities, options, typed transport faults
# --------------------------------------------------------------------------- #


def test_net_capabilities_exclude_snapshot(space):
    broker = SystemSpec(space, backend="drtree:net", seed=3).build()
    try:
        assert "snapshot" not in capabilities_of(broker)
        with pytest.raises(SnapshotUnsupportedError):
            broker.snapshot()
    finally:
        broker.close()
    assert backend_metrics_identical("drtree:net") is False
    assert backend_metrics_identical("drtree:classic") is True
    assert backend_metrics_identical("flooding") is True


def test_net_options_validated_at_spec_time(space):
    with pytest.raises(ValueError, match="time_scale"):
        SystemSpec(space, backend="drtree:net",
                   engine_options={"time_scale": 0})
    with pytest.raises(ValueError, match="stabilizer"):
        SystemSpec(space, backend="drtree:net",
                   engine_options={"stabilizer": "sometimes"})
    with pytest.raises(ValueError, match="net"):
        SystemSpec(space, backend="drtree:net",
                   engine_options={"bogus": 1})


def test_unreachable_peer_raises_typed_fault(space):
    broker = SystemSpec(
        space, backend="drtree:net", seed=0,
        engine_options={"send_retries": 0, "retry_backoff": 0.001}).build()
    try:
        runtime = broker.simulation.runtime
        with pytest.raises(PeerUnreachableError, match="ghost"):
            runtime.call(runtime.connect("ghost"), op=False)
    finally:
        broker.close()


def test_digest_helpers_are_shared_single_source():
    """Satellite: one digest implementation serves synth and analysis."""
    assert synth.delivered_digest is digests.delivered_digest
    assert synth.stream_signature is digests.stream_signature


# --------------------------------------------------------------------------- #
# Delivered-set parity with the simulated engines
# --------------------------------------------------------------------------- #


def test_net_delivers_byte_identical_to_classic():
    workload = uniform_subscriptions(16, seed=2)
    subscriptions = list(workload)
    events = targeted_events(workload.space, subscriptions, 6, seed=9)
    spec = SystemSpec(space=workload.space, seed=2)
    net = spec.with_backend("drtree:net").build()
    classic = spec.with_backend("drtree:classic").build()
    try:
        net.subscribe_all(subscriptions)
        classic.subscribe_all(subscriptions)
        net.publish_many(events)
        classic.publish_many(events)
        assert digests.delivered_digest(net) == \
            digests.delivered_digest(classic)
    finally:
        net.close()
        classic.close()


def test_golden_replay_on_net_is_digest_verified():
    """The recorded golden trace replays on drtree:net byte for byte."""
    result = replay_trace(GOLDEN_TRACE, backend="drtree:net")
    assert any(note.startswith("digest-verified")
               for note in result.notes), result.notes


# --------------------------------------------------------------------------- #
# Stabilization: driven re-attach and background convergence
# --------------------------------------------------------------------------- #


def _drive_cycle(sim) -> None:
    """One deterministic stabilizer cycle: every live peer, then settle."""
    async def one_cycle():
        for peer in list(sim.live_peers()):
            peer.run_stabilization_round()
        await sim.runtime.wait_idle()
    sim.runtime.call(one_cycle())


def test_orphan_reattaches_within_k_driven_cycles(space):
    """A peer whose parent crashed rejoins within K stabilizer cycles.

    Background stabilizers are off, so every cycle is driven explicitly —
    the count is deterministic, not wall-clock dependent.
    """
    broker = SystemSpec(space, backend="drtree:net", seed=11,
                        engine_options={"stabilizer": "off"}).build()
    try:
        broker.subscribe_all(random_subscriptions(space, 14, seed=11))
        sim = broker.simulation
        victim = next(peer for peer in sim.live_peers()
                      if peer.top_level() >= 1 and peer is not sim.root())
        orphans = [peer.process_id for peer in sim.live_peers()
                   if peer is not victim
                   and peer.instances[0].parent == victim.process_id]
        assert orphans, "picked an internal peer without children"
        broker.fail(victim.process_id, stabilize=False)

        for cycles in range(1, 9):
            _drive_cycle(sim)
            reattached = all(
                sim.peer(orphan).instances[0].parent
                not in (None, victim.process_id)
                for orphan in orphans if orphan in sim.peers)
            if reattached and sim.verify().is_legal:
                break
        else:
            pytest.fail("orphans did not re-attach within 8 driven cycles")
        assert cycles <= 8
        probe_events = targeted_events(
            space, [broker.subscription_of(orphans[0])], 2, seed=5)
        for event in probe_events:
            outcome = broker.publish(event)
            assert orphans[0] in outcome.received
    finally:
        broker.close()


def test_net_soak_converges_and_delivers():
    result = exp_net_soak.run(subscribers=36, events_count=4, waves=1,
                              crash_fraction=0.1, timeout=30.0, seed=1)
    assert len(result.rows) == 1
    row = result.rows[0]
    assert row["crashed"] >= 1
    assert row["net_legal"] is True
    assert row["net_cycles_max"] >= 1
    assert row["net_missed"] == 0
    assert row["sim_missed"] == 0
    assert any("crash wave" in note for note in result.notes)
    assert any("legal after every wave" in note for note in result.notes)

"""Tests for the scenario registry: typed params, lookup, duplicate names."""

from __future__ import annotations

import pytest

from repro.experiments.harness import ExperimentResult, size_ladder
from repro.runtime.registry import (
    REGISTRY,
    DuplicateScenarioError,
    Param,
    Scenario,
    ScenarioError,
    ScenarioRegistry,
    UnknownParameterError,
    UnknownScenarioError,
    load_scenarios,
    register_scenario,
)


def _dummy(peers: int = 4, seed: int = 0) -> ExperimentResult:
    result = ExperimentResult("T", "dummy")
    result.add_row(peers=peers, seed=seed)
    return result


def _make(registry: ScenarioRegistry, name: str = "dummy",
          experiment_id: str | None = None) -> Scenario:
    return register_scenario(
        name, "A dummy scenario",
        params=(Param("peers", int, 4, "population"),
                Param("seed", int, 0, "RNG seed")),
        experiment_id=experiment_id,
        registry=registry,
    )(_dummy)


# --------------------------------------------------------------------------- #
# Registration and lookup
# --------------------------------------------------------------------------- #


def test_register_and_get():
    registry = ScenarioRegistry()
    scenario = _make(registry)
    assert registry.get("dummy") is scenario
    assert registry.names() == ["dummy"]
    assert "dummy" in registry
    assert len(registry) == 1


def test_duplicate_name_rejected():
    registry = ScenarioRegistry()
    _make(registry)
    with pytest.raises(DuplicateScenarioError):
        _make(registry)


def test_duplicate_experiment_id_rejected():
    registry = ScenarioRegistry()
    _make(registry, "first", experiment_id="E99")
    with pytest.raises(DuplicateScenarioError):
        _make(registry, "second", experiment_id="E99")


def test_unknown_scenario_lists_available():
    registry = ScenarioRegistry()
    _make(registry)
    with pytest.raises(UnknownScenarioError, match="dummy"):
        registry.get("nope")


def test_lookup_by_experiment_id():
    registry = ScenarioRegistry()
    scenario = _make(registry, experiment_id="E42")
    assert registry.get("E42") is scenario
    assert "E42" in registry


# --------------------------------------------------------------------------- #
# Typed parameters
# --------------------------------------------------------------------------- #


def test_bind_fills_defaults_and_coerces():
    registry = ScenarioRegistry()
    scenario = _make(registry)
    assert scenario.bind() == {"peers": 4, "seed": 0}
    assert scenario.bind(peers="12") == {"peers": 12, "seed": 0}


def test_bind_rejects_unknown_parameter():
    registry = ScenarioRegistry()
    scenario = _make(registry)
    with pytest.raises(UnknownParameterError, match="bogus"):
        scenario.bind(bogus=1)


def test_bind_rejects_uncoercible_value():
    registry = ScenarioRegistry()
    scenario = _make(registry)
    with pytest.raises(ScenarioError, match="peers"):
        scenario.bind(peers="not-a-number")


def test_param_choices_enforced():
    param = Param("method", str, "linear", choices=("linear", "quadratic"))
    assert param.coerce("quadratic") == "quadratic"
    with pytest.raises(ScenarioError, match="method"):
        param.coerce("bogus")


def test_scenario_run_applies_overrides():
    registry = ScenarioRegistry()
    scenario = _make(registry)
    result = scenario.run(peers=7)
    assert result.rows == [{"peers": 7, "seed": 0}]


# --------------------------------------------------------------------------- #
# The real registry
# --------------------------------------------------------------------------- #


def test_all_ten_experiments_registered():
    registry = load_scenarios()
    ids = {scenario.experiment_id for scenario in registry.scenarios()}
    assert {f"E{i}" for i in range(1, 11)} <= ids
    assert {"paper_example", "height", "memory", "join_cost", "latency",
            "false_positives", "split_methods", "recovery", "churn",
            "baselines"} <= set(registry.names())


def test_registered_scenarios_declare_typed_seeds():
    load_scenarios()
    for scenario in REGISTRY.scenarios():
        names = [param.name for param in scenario.params]
        assert "seed" in names, scenario.name
        assert "peers" in names, scenario.name


def test_backend_param_coerces_and_normalizes():
    from repro.runtime.registry import backend_param

    param = backend_param()
    assert param.name == "backend"
    assert param.default == "drtree:classic"
    # Coercion runs repro.api.normalize_backend: aliases canonicalize...
    assert param.coerce("drtree") == "drtree:classic"
    assert param.coerce("per_dimension") == "per-dimension"
    assert param.coerce("flooding") == "flooding"
    # ... and unknown names fail with the registry's typed error.
    with pytest.raises(ScenarioError):
        param.coerce("gossip")


def test_backend_param_validates_against_the_live_registry(monkeypatch):
    """Regression: choices used to be frozen at scenario-registration time,
    so a backend registered later was rejected by --backend."""
    from repro.api import registry as api_registry
    from repro.runtime.registry import backend_param

    param = backend_param()
    with pytest.raises(ScenarioError):
        param.coerce("gossipx")
    monkeypatch.setitem(api_registry._BACKENDS, "gossipx", lambda spec: None)
    assert param.coerce("gossipx") == "gossipx"


def test_backend_param_family_restriction():
    from repro.runtime.registry import backend_param

    param = backend_param(family="drtree")
    assert param.coerce("drtree:batched") == "drtree:batched"
    with pytest.raises(ScenarioError):
        param.coerce("flooding")


def test_backend_aware_scenarios_declare_the_backend_param():
    load_scenarios()
    aware = {scenario.name for scenario in REGISTRY.scenarios()
             if scenario.backend_aware}
    assert {"hotspot", "latency", "mobility", "adversarial-churn"} <= aware
    assert "height" not in aware
    # backend_matrix sweeps every backend itself; no parameter needed.
    assert "backend_matrix" in REGISTRY
    assert not REGISTRY.get("backend_matrix").backend_aware


def test_size_ladder_matches_historical_defaults():
    assert size_ladder(256) == (16, 32, 64, 128, 256)
    assert size_ladder(128, steps=3, floor=32) == (32, 64, 128)
    assert size_ladder(8) == (16,)
    assert size_ladder(5000)[-1] == 5000
    with pytest.raises(ValueError):
        size_ladder(0)

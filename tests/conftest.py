"""Shared fixtures for the test suite."""

from __future__ import annotations

import random

import pytest

from repro.overlay.config import DRTreeConfig
from repro.spatial.filters import AttributeSpace, Subscription, make_space, subscription_from_rect
from repro.spatial.rectangle import Rect


@pytest.fixture
def space() -> AttributeSpace:
    """The two-dimensional attribute space used throughout the paper."""
    return make_space("x", "y")


@pytest.fixture
def small_config() -> DRTreeConfig:
    """The smallest legal DR-tree configuration (m=2, M=4)."""
    return DRTreeConfig(min_children=2, max_children=4)


def random_subscriptions(space: AttributeSpace, count: int, seed: int = 0,
                         max_extent: float = 0.3) -> list[Subscription]:
    """Generate ``count`` random rectangle subscriptions in the unit square."""
    rng = random.Random(seed)
    subs = []
    for index in range(count):
        x, y = rng.random(), rng.random()
        width = rng.random() * max_extent
        height = rng.random() * max_extent
        rect = Rect((x, y), (min(x + width, 1.0), min(y + height, 1.0)))
        subs.append(subscription_from_rect(f"S{index}", space, rect))
    return subs


@pytest.fixture
def rand_subs(space):
    """Factory fixture returning random subscription lists."""

    def factory(count: int, seed: int = 0, max_extent: float = 0.3):
        return random_subscriptions(space, count, seed=seed, max_extent=max_extent)

    return factory

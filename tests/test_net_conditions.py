"""Deterministic network-condition injection (``repro.net.conditions``).

Covers the spec forms (mapping / compact string / round-trip), the pure
per-link decision pipeline (hypothesis: same seed + same spec ⇒
byte-identical decisions; transparent spec ⇒ no frame altered; partition
windows never shift neighbouring RNG draws), and the conditioned
``drtree:net`` backend end to end — the join retry timer actually firing
under ``drop_first``, blackout joins failing with a typed timeout,
duplicate dedup and delayed frames preserving the delivered digest, and
the ``net-lossy`` scenario's acceptance row.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import digests
from repro.api import SystemSpec
from repro.experiments import exp_net_lossy
from repro.net import (ConditionPipeline, ConditionSpecError, NetConditions,
                       NetError, NetTimeoutError, PartitionWindow)
from repro.net.conditions import LATENCY_MODELS, LOSS_MODELS
from repro.sim.rng import RandomStreams
from repro.workloads.events import targeted_events
from repro.workloads.subscriptions import uniform_subscriptions
from tests.conftest import random_subscriptions

#: Engine options shared by the conditioned integration tests: background
#: stabilizers off (every repair below is driven or retry-timer based) and
#: a fast clock so the join retry timer (2x stabilization period) fires in
#: ~0.1 real seconds instead of ~0.4.
FAST = {"stabilizer": "off", "time_scale": 0.005}


# --------------------------------------------------------------------------- #
# Spec forms: mapping, compact string, round-trip, rejection
# --------------------------------------------------------------------------- #


def test_compact_string_round_trips_through_mapping():
    spec = NetConditions.parse(
        "loss=0.05,latency=uniform:0.5:2,reorder=0.01:2,duplicate=0.01,"
        "drop_first=1,partition=10:25:2")
    assert spec.loss == 0.05
    assert spec.latency == "uniform"
    assert spec.delay_low == 0.5 and spec.delay_high == 2.0
    assert spec.reorder == 0.01 and spec.reorder_window == 2.0
    assert spec.partitions[0].start == 10.0
    assert NetConditions.from_mapping(spec.to_mapping()) == spec


def test_gilbert_and_latency_string_forms():
    spec = NetConditions.parse("gilbert=0.05:0.4:0.9,latency=lognormal:0:0.5")
    assert spec.loss_model == "gilbert"
    assert (spec.gilbert_p, spec.gilbert_r, spec.gilbert_loss) == \
        (0.05, 0.4, 0.9)
    assert spec.latency == "lognormal" and spec.delay_sigma == 0.5
    assert NetConditions.parse("latency=fixed:1").delay == 1.0


def test_coerce_accepts_every_form_and_none():
    assert NetConditions.coerce(None) is None
    spec = NetConditions(loss=0.1)
    assert NetConditions.coerce(spec) is spec
    assert NetConditions.coerce("loss=0.1") == spec
    assert NetConditions.coerce({"loss": 0.1}) == spec
    with pytest.raises(ConditionSpecError, match="mapping"):
        NetConditions.coerce(3.14)


@pytest.mark.parametrize("bad", [
    {"bogus": 1},
    {"loss": 1.5},
    {"loss_model": "weibull"},
    {"latency": "gaussian"},
    {"latency": "uniform", "delay_low": 2.0, "delay_high": 1.0},
    {"delay": -1.0},
    {"reorder_window": 0.0},
    {"drop_first": -1},
])
def test_malformed_mappings_raise_condition_spec_error(bad):
    with pytest.raises(ConditionSpecError):
        NetConditions.from_mapping(bad)


@pytest.mark.parametrize("bad", [
    "loss", "loss=much", "latency=uniform:0.5", "blorp=1", "partition=5"])
def test_malformed_strings_raise_condition_spec_error(bad):
    with pytest.raises(ConditionSpecError):
        NetConditions.parse(bad)


def test_condition_spec_error_is_net_error_and_value_error():
    """Engine-option validation reports it through the ValueError path."""
    assert issubclass(ConditionSpecError, NetError)
    assert issubclass(ConditionSpecError, ValueError)


def test_conditions_validated_at_spec_time(space):
    with pytest.raises(ValueError, match="condition"):
        SystemSpec(space, backend="drtree:net",
                   engine_options={"conditions": {"bogus": 1}})
    with pytest.raises(ValueError, match="loss"):
        SystemSpec(space, backend="drtree:net",
                   engine_options={"conditions": "loss=2"})


def test_transparency_flag():
    assert NetConditions().is_transparent
    assert NetConditions(loss=0.0, latency="none").is_transparent
    assert not NetConditions(loss=0.01).is_transparent
    assert not NetConditions(drop_first=1).is_transparent
    assert not NetConditions(
        partitions=(PartitionWindow(0, 5),)).is_transparent


# --------------------------------------------------------------------------- #
# The pure pipeline: hypothesis properties
# --------------------------------------------------------------------------- #


_probability = st.floats(min_value=0.0, max_value=1.0)

_specs = st.builds(
    NetConditions,
    loss=_probability,
    loss_model=st.sampled_from(LOSS_MODELS),
    gilbert_p=_probability,
    gilbert_r=_probability,
    gilbert_loss=_probability,
    latency=st.sampled_from(LATENCY_MODELS),
    delay=st.floats(min_value=0.0, max_value=2.0),
    delay_low=st.floats(min_value=0.0, max_value=1.0),
    delay_high=st.floats(min_value=1.0, max_value=2.0),
    delay_mu=st.floats(min_value=-1.0, max_value=1.0),
    delay_sigma=st.floats(min_value=0.0, max_value=1.0),
    reorder=_probability,
    duplicate=_probability,
    drop_first=st.integers(min_value=0, max_value=3),
)

_frames = st.lists(
    st.tuples(st.sampled_from(["a", "b", "c"]),
              st.sampled_from(["a", "b", "c"]),
              st.floats(min_value=0.0, max_value=50.0)),
    min_size=1, max_size=40)


@given(spec=_specs, seed=st.integers(min_value=0, max_value=2**16),
       frames=_frames)
@settings(max_examples=25, deadline=None)
def test_same_seed_and_spec_give_identical_decisions(spec, seed, frames):
    """The determinism contract: decisions are a pure function of
    (seed, spec, link frame sequence, submission times)."""
    first = ConditionPipeline(spec, RandomStreams(seed))
    second = ConditionPipeline(spec, RandomStreams(seed))
    assert [d.key() for d in first.decide_sequence(frames)] == \
        [d.key() for d in second.decide_sequence(frames)]


@given(seed=st.integers(min_value=0, max_value=2**16), frames=_frames)
@settings(max_examples=25, deadline=None)
def test_transparent_spec_never_alters_a_frame(seed, frames):
    pipeline = ConditionPipeline(NetConditions(), RandomStreams(seed))
    for decision in pipeline.decide_sequence(frames):
        assert decision.key() == (None, 0.0, 1, False)


@given(seed=st.integers(min_value=0, max_value=2**16),
       times=st.lists(st.floats(min_value=0.0, max_value=30.0),
                      min_size=1, max_size=40))
@settings(max_examples=25, deadline=None)
def test_partition_windows_never_shift_neighbouring_draws(seed, times):
    """Draw-order discipline: adding a partition changes only the frames
    inside the window — every other decision stays byte-identical."""
    lossy = NetConditions(loss=0.3, latency="uniform",
                          delay_low=0.1, delay_high=1.0, duplicate=0.2)
    cut = NetConditions.from_mapping({
        **lossy.to_mapping(),
        "partitions": [{"start": 10.0, "duration": 10.0,
                        "sets": [["a"], ["b"]]}]})
    frames = [("a", "b", now) for now in times]
    plain = ConditionPipeline(lossy, RandomStreams(seed)) \
        .decide_sequence(frames)
    walled = ConditionPipeline(cut, RandomStreams(seed)) \
        .decide_sequence(frames)
    for now, base, gated in zip(times, plain, walled):
        if 10.0 <= now < 20.0:
            assert gated.drop == "partitioned"
        else:
            assert gated.key() == base.key()


def test_partition_sets_and_hash_groups():
    window = PartitionWindow(start=0.0, duration=10.0,
                             sets=(("a",), ("b",)))
    pipeline = ConditionPipeline(
        NetConditions(partitions=(window,)), RandomStreams(0))
    assert pipeline.decide("a", "b", 5.0).drop == "partitioned"
    assert pipeline.decide("a", "b", 15.0).drop is None   # window closed
    assert pipeline.decide("a", "c", 5.0).drop is None    # c outside sets
    # Hash-group form: some pair lands on opposite sides of the cut.
    hashed = PartitionWindow(start=0.0, duration=10.0, groups=2)
    peers = [f"S{i}" for i in range(8)]
    assert any(hashed.separates(a, b) for a in peers for b in peers)
    assert not any(hashed.separates(p, p) for p in peers)


def test_gilbert_chain_extremes_are_deterministic():
    always_bad = NetConditions(loss_model="gilbert", gilbert_p=1.0,
                               gilbert_r=0.0, gilbert_loss=1.0)
    pipeline = ConditionPipeline(always_bad, RandomStreams(1))
    frames = [("a", "b", float(i)) for i in range(10)]
    assert all(d.drop == "lost" for d in pipeline.decide_sequence(frames))
    never_bad = NetConditions(loss_model="gilbert", gilbert_p=0.0)
    assert never_bad.is_transparent
    pipeline = ConditionPipeline(never_bad, RandomStreams(1))
    assert all(d.drop is None for d in pipeline.decide_sequence(frames))


def test_drop_first_eats_exactly_the_link_prefix():
    pipeline = ConditionPipeline(NetConditions(drop_first=2),
                                 RandomStreams(0))
    verdicts = [pipeline.decide("a", "b", 0.0).drop for _ in range(4)]
    assert verdicts == ["drop_first", "drop_first", None, None]
    # Each link counts its own prefix.
    assert pipeline.decide("b", "a", 0.0).drop == "drop_first"


# --------------------------------------------------------------------------- #
# Conditioned drtree:net, end to end
# --------------------------------------------------------------------------- #


def _delivered(engine_options):
    """Build/publish one small population under the given net options."""
    workload = uniform_subscriptions(12, seed=4)
    subscriptions = list(workload)
    events = targeted_events(workload.space, subscriptions, 4, seed=7)
    broker = SystemSpec(space=workload.space, seed=4, backend="drtree:net",
                        engine_options=engine_options).build()
    try:
        broker.subscribe_all(subscriptions)
        broker.publish_many(events)
        return digests.delivered_digest(broker), broker.summary()
    finally:
        broker.close()


def test_loss_zero_pipeline_is_byte_transparent():
    """Satellite: a loss=0 conditioned run is frame-for-frame identical to
    a condition-free run — full delivered digest, not just matching sets."""
    clean, _ = _delivered(dict(FAST))
    conditioned, summary = _delivered({**FAST, "conditions": {"loss": 0.0}})
    assert conditioned == clean
    assert summary["net_frames_lost"] == 0
    assert summary["net_frames_delayed"] == 0


def test_duplicates_and_delays_preserve_the_delivered_digest():
    """Settle stays sound when frames are doubled and delayed: the dedup
    guard drops redundant copies and delayed frames hold the ledger."""
    clean, _ = _delivered(dict(FAST))
    noisy, summary = _delivered(
        {**FAST, "conditions": {"duplicate": 1.0,
                                "latency": "fixed", "delay": 0.5}})
    assert noisy == clean
    assert summary["net_duplicates_dropped"] > 0
    assert summary["net_frames_delayed"] > 0


def test_join_retry_timer_fires_and_recovers(space):
    """Satellite: ``drop_first=1`` eats every link's first frame — which is
    each joiner's JOIN — so the retry timer is *guaranteed* to fire and the
    build must still converge to a legal overlay (this path was dead code
    at loss 0)."""
    broker = SystemSpec(
        space, backend="drtree:net", seed=6,
        engine_options={**FAST, "conditions": {"drop_first": 1}}).build()
    try:
        broker.subscribe_all(random_subscriptions(space, 12, seed=6))
        metrics = broker.simulation.metrics
        assert metrics.counter("join.retries") >= 1
        assert metrics.counter("net.conditions.drop_first") > 0
        assert broker.simulation.verify().is_legal
        assert broker.summary()["net_frames_lost"] > 0
    finally:
        broker.close()


def test_blackout_join_times_out_with_typed_fault(space):
    """Total loss exhausts the retry budget: a typed NetTimeoutError, not a
    hang (the settle loop's deadline is the idle_timeout)."""
    broker = SystemSpec(
        space, backend="drtree:net", seed=6,
        engine_options={**FAST, "idle_timeout": 1.0,
                        "conditions": {"loss": 1.0}}).build()
    try:
        subscriptions = random_subscriptions(space, 2, seed=6)
        broker.subscribe(subscriptions[0])      # the root: no frames needed
        with pytest.raises(NetTimeoutError, match="retry budget"):
            broker.subscribe(subscriptions[1])  # its JOIN never arrives
    finally:
        broker.close()


def test_set_conditions_installs_replaces_and_removes(space):
    broker = SystemSpec(space, backend="drtree:net", seed=2,
                        engine_options=FAST).build()
    try:
        sim = broker.simulation
        assert sim.conditions is None
        sim.set_conditions("loss=0.5")
        assert sim.conditions.loss == 0.5
        sim.set_conditions({"drop_first": 1})
        assert sim.conditions.drop_first == 1 and sim.conditions.loss == 0.0
        sim.set_conditions(None)
        assert sim.conditions is None
        broker.subscribe_all(random_subscriptions(space, 6, seed=2))
        assert sim.verify().is_legal
    finally:
        broker.close()


def test_net_lossy_scenario_meets_acceptance():
    """The acceptance row: at 5% loss the background stabilizers restore a
    legal overlay with zero probe false negatives, and the loss=0 row's
    matching digest equals the condition-free reference."""
    result = exp_net_lossy.run(subscribers=24, events_count=3,
                               crash_fraction=0.1, losses="0,0.05",
                               partition="", timeout=30.0, seed=3)
    rows = {row["condition"]: row for row in result.rows}
    zero, lossy = rows["loss=0"], rows["loss=0.05"]
    assert zero["digest_match"] is True and zero["missed"] == 0
    assert lossy["converged"] and lossy["legal"]
    assert lossy["probe_missed"] == 0 and lossy["missed"] == 0
    assert lossy["frames_lost"] > 0

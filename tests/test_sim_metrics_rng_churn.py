"""Tests for metrics, RNG streams, churn traces and fault injection."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.churn import PoissonChurnGenerator
from repro.sim.engine import SimulationEngine
from repro.sim.failures import CorruptionReport, MemoryCorruptor, crash_process
from repro.sim.metrics import Histogram, MetricsRegistry, mean_and_confidence
from repro.sim.network import Network
from repro.sim.rng import RandomStreams


# --------------------------------------------------------------------------- #
# Metrics
# --------------------------------------------------------------------------- #


def test_counters_accumulate():
    metrics = MetricsRegistry()
    metrics.increment("x")
    metrics.increment("x", 2.5)
    assert metrics.counter("x") == 3.5
    assert metrics.counter("missing") == 0.0
    assert metrics.counters()["x"] == 3.5


def test_histogram_statistics():
    histogram = Histogram()
    for value in [1, 2, 3, 4, 5]:
        histogram.record(value)
    assert histogram.count == 5
    assert histogram.mean == 3.0
    assert histogram.minimum == 1
    assert histogram.maximum == 5
    assert histogram.percentile(0.5) == 3.0
    assert histogram.percentile(0.0) == 1.0
    assert histogram.percentile(1.0) == 5.0
    assert histogram.stdev == pytest.approx(math.sqrt(2.5))


def test_histogram_empty_and_single():
    histogram = Histogram()
    assert histogram.mean == 0.0
    assert histogram.percentile(0.5) == 0.0
    histogram.record(7.0)
    assert histogram.percentile(0.9) == 7.0
    assert histogram.stdev == 0.0
    with pytest.raises(ValueError):
        histogram.percentile(1.5)


def test_registry_observe_and_snapshot():
    metrics = MetricsRegistry()
    metrics.observe("lat", 1.0)
    metrics.observe("lat", 3.0)
    snapshot = metrics.snapshot()
    assert snapshot["lat.mean"] == 2.0
    assert snapshot["lat.count"] == 2


def test_registry_merge():
    a = MetricsRegistry()
    b = MetricsRegistry()
    a.increment("c", 1)
    b.increment("c", 2)
    b.observe("h", 5.0)
    a.merge(b)
    assert a.counter("c") == 3
    assert a.histogram("h").count == 1


def test_mean_and_confidence():
    mean, half = mean_and_confidence([2.0, 2.0, 2.0])
    assert mean == 2.0
    assert half == 0.0
    mean, half = mean_and_confidence([])
    assert mean == 0.0
    mean, half = mean_and_confidence([1.0, 3.0])
    assert mean == 2.0
    assert half > 0.0


# --------------------------------------------------------------------------- #
# RNG streams
# --------------------------------------------------------------------------- #


def test_streams_are_deterministic():
    a = RandomStreams(7).stream("x")
    b = RandomStreams(7).stream("x")
    assert [a.random() for _ in range(5)] == [b.random() for _ in range(5)]


def test_streams_differ_by_name_and_seed():
    streams = RandomStreams(7)
    x = [streams.stream("x").random() for _ in range(3)]
    y = [streams.stream("y").random() for _ in range(3)]
    assert x != y
    other = RandomStreams(8).stream("x")
    assert [other.random() for _ in range(3)] != x


def test_stream_is_cached():
    streams = RandomStreams(1)
    assert streams.stream("a") is streams.stream("a")


def test_spawn_creates_independent_factory():
    parent = RandomStreams(3)
    child_a = parent.spawn("rep1")
    child_b = parent.spawn("rep2")
    assert child_a.master_seed != child_b.master_seed
    assert child_a.stream("x").random() != child_b.stream("x").random()


# --------------------------------------------------------------------------- #
# Churn traces
# --------------------------------------------------------------------------- #


def test_poisson_trace_is_sorted_and_bounded():
    generator = PoissonChurnGenerator(join_rate=2.0, leave_rate=1.0,
                                      streams=RandomStreams(5))
    trace = generator.generate(horizon=50.0)
    times = [action.time for action in trace.actions]
    assert times == sorted(times)
    assert all(0 < t <= 50.0 for t in times)
    assert len(trace.joins()) + len(trace.departures()) == len(trace)


def test_poisson_rates_are_roughly_respected():
    generator = PoissonChurnGenerator(join_rate=0.0, leave_rate=2.0,
                                      streams=RandomStreams(11))
    trace = generator.generate(horizon=500.0)
    # Expect about 1000 departures; allow generous slack.
    assert 800 <= len(trace.departures()) <= 1200
    assert trace.joins() == []


def test_zero_rates_produce_empty_trace():
    generator = PoissonChurnGenerator(0.0, 0.0)
    trace = generator.generate(horizon=10.0)
    assert len(trace) == 0


def test_invalid_parameters():
    with pytest.raises(ValueError):
        PoissonChurnGenerator(-1.0, 0.0)
    generator = PoissonChurnGenerator(1.0, 1.0)
    with pytest.raises(ValueError):
        generator.generate(horizon=0.0)


@given(st.floats(min_value=0.1, max_value=5.0), st.integers(min_value=1, max_value=50))
@settings(max_examples=30, deadline=None)
def test_trace_determinism_property(rate, seed):
    first = PoissonChurnGenerator(0.0, rate, streams=RandomStreams(seed)).generate(20.0)
    second = PoissonChurnGenerator(0.0, rate, streams=RandomStreams(seed)).generate(20.0)
    assert [a.time for a in first.actions] == [a.time for a in second.actions]


# --------------------------------------------------------------------------- #
# Fault injection plumbing
# --------------------------------------------------------------------------- #


class _FakePeer:
    """Minimal object satisfying the corruptor's structural interface."""

    def __init__(self, process_id):
        self.process_id = process_id
        self.calls = []

    def levels(self):
        return [0, 1]

    def corrupt_parent(self, level, value):
        self.calls.append(("parent", level, value))

    def corrupt_children(self, level, values):
        self.calls.append(("children", level, list(values)))

    def corrupt_mbr(self, level, rect):
        self.calls.append(("mbr", level, rect))

    def corrupt_underloaded(self, level, flag):
        self.calls.append(("underloaded", level, flag))


def test_corruptor_touches_requested_fields():
    engine = SimulationEngine()
    network = Network(engine)
    peer = _FakePeer("p1")
    corruptor = MemoryCorruptor(network, RandomStreams(3))
    report = corruptor.corrupt_peer(peer, fields=("parent", "mbr"))
    assert report.count == 2
    kinds = {call[0] for call in peer.calls}
    assert kinds == {"parent", "mbr"}


def test_corruptor_rejects_unknown_field():
    engine = SimulationEngine()
    network = Network(engine)
    corruptor = MemoryCorruptor(network)
    with pytest.raises(ValueError):
        corruptor.corrupt_peer(_FakePeer("p"), fields=("bogus",))


def test_corruptor_fraction_bounds():
    engine = SimulationEngine()
    network = Network(engine)
    corruptor = MemoryCorruptor(network)
    with pytest.raises(ValueError):
        corruptor.corrupt_random_peers([_FakePeer("p")], fraction=1.5)
    report = corruptor.corrupt_random_peers([], fraction=0.5)
    assert isinstance(report, CorruptionReport)
    assert report.count == 0


def test_crash_process_marks_network():
    engine = SimulationEngine()
    network = Network(engine)
    crash_process(network, "ghost")
    assert "ghost" in network.crashed_ids()

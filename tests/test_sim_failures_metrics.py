"""Coverage for sim/failures.py (failure windows, targeted victims) and the
metric-merge path used by sharded runs."""

from __future__ import annotations

import pytest

from repro.overlay.builder import build_stable_tree
from repro.overlay.config import DRTreeConfig
from repro.sim.failures import (FailureWindow, MemoryCorruptor,
                                targeted_victims, victims_per_round)
from repro.sim.metrics import MetricsRegistry
from repro.sim.network import Network
from repro.sim.engine import SimulationEngine
from repro.sim.rng import RandomStreams
from repro.workloads.subscriptions import uniform_subscriptions


# --------------------------------------------------------------------------- #
# Failure windows
# --------------------------------------------------------------------------- #


def test_window_validation():
    with pytest.raises(ValueError):
        FailureWindow(-1, 2)
    with pytest.raises(ValueError):
        FailureWindow(2, 2)
    with pytest.raises(ValueError):
        FailureWindow(0, 2, count=0)
    assert list(FailureWindow(1, 4).rounds()) == [1, 2, 3]


def test_disjoint_windows_keep_their_counts():
    plan = victims_per_round([FailureWindow(0, 2, 1), FailureWindow(4, 6, 2)])
    assert plan == {0: 1, 1: 1, 4: 2, 5: 2}


def test_overlapping_windows_add_up():
    plan = victims_per_round([
        FailureWindow(0, 4, 1),          # baseline: one victim per round
        FailureWindow(2, 3, 2),          # surge: two extra in round 2
        FailureWindow(1, 3, 1),          # a third layer over rounds 1-2
    ])
    assert plan == {0: 1, 1: 2, 2: 4, 3: 1}


def test_identical_windows_stack():
    window = FailureWindow(0, 2, 3)
    assert victims_per_round([window, window]) == {0: 6, 1: 6}


def test_empty_window_list():
    assert victims_per_round([]) == {}


# --------------------------------------------------------------------------- #
# Targeted victims
# --------------------------------------------------------------------------- #


@pytest.fixture(scope="module")
def stable_tree():
    workload = uniform_subscriptions(40, seed=2)
    return build_stable_tree(list(workload),
                             DRTreeConfig(min_children=2, max_children=4),
                             seed=2)


def test_root_target_picks_the_root_first(stable_tree):
    victims = targeted_victims(stable_tree, target="root", count=1)
    root = stable_tree.root()
    assert root is not None
    assert victims == [root.process_id]


def test_root_target_orders_by_level_descending(stable_tree):
    victims = targeted_victims(stable_tree, target="root", count=5)
    levels = [stable_tree.peer(victim).top_level() for victim in victims]
    assert levels == sorted(levels, reverse=True)
    assert all(level >= 1 for level in levels)


def test_parent_target_starts_at_the_bottom_tier(stable_tree):
    victims = targeted_victims(stable_tree, target="parent", count=5)
    levels = [stable_tree.peer(victim).top_level() for victim in victims]
    assert levels == sorted(levels)
    assert levels[0] == 1  # a leaf's parent holds a level-1 instance


def test_victims_are_deterministic(stable_tree):
    first = targeted_victims(stable_tree, target="parent", count=4)
    second = targeted_victims(stable_tree, target="parent", count=4)
    assert first == second


def test_victim_edge_cases(stable_tree):
    assert targeted_victims(stable_tree, count=0) == []
    with pytest.raises(ValueError):
        targeted_victims(stable_tree, target="everything")
    # asking for more victims than internal peers returns what exists
    many = targeted_victims(stable_tree, target="root", count=10_000)
    assert len(many) < 40
    assert len(set(many)) == len(many)


# --------------------------------------------------------------------------- #
# Metric merge across shards-of-one
# --------------------------------------------------------------------------- #


def _shard(counter_value: float, observations) -> MetricsRegistry:
    registry = MetricsRegistry()
    registry.increment("network.messages_sent", counter_value)
    for value in observations:
        registry.observe("hops", value)
    return registry


def test_merge_of_single_shard_into_empty_is_identity():
    shard = _shard(7, [1.0, 3.0])
    merged = MetricsRegistry()
    merged.merge(shard)
    assert merged.snapshot() == shard.snapshot()


def test_merge_accumulates_counters_and_histograms_across_shards():
    shards = [_shard(2, [1.0]), _shard(3, [2.0, 4.0]), _shard(0, [])]
    merged = MetricsRegistry()
    for shard in shards:
        merged.merge(shard)
    assert merged.counter("network.messages_sent") == 5
    histogram = merged.histogram("hops")
    assert sorted(histogram.values) == [1.0, 2.0, 4.0]
    assert histogram.mean == pytest.approx(7.0 / 3.0)


def test_merge_is_order_independent():
    shards = [_shard(1, [1.0, 5.0]), _shard(4, [2.0])]
    forward = MetricsRegistry()
    backward = MetricsRegistry()
    for shard in shards:
        forward.merge(shard)
    for shard in reversed(shards):
        backward.merge(shard)
    assert forward.counters() == backward.counters()
    assert (sorted(forward.histogram("hops").values)
            == sorted(backward.histogram("hops").values))


def test_merge_does_not_alias_source_histograms():
    shard = _shard(1, [1.0])
    merged = MetricsRegistry()
    merged.merge(shard)
    merged.observe("hops", 9.0)
    assert shard.histogram("hops").values == [1.0]


# --------------------------------------------------------------------------- #
# Corruptor fallbacks not exercised elsewhere
# --------------------------------------------------------------------------- #


class _BareLeaf:
    """Minimal structural peer: no levels -> nothing to corrupt."""

    process_id = "bare"

    def levels(self):
        return []


def test_corrupting_a_peer_without_state_is_a_noop():
    network = Network(SimulationEngine())
    corruptor = MemoryCorruptor(network, RandomStreams(0))
    report = corruptor.corrupt_peer(_BareLeaf())
    assert report.count == 0
    assert report.corrupted_peers == []

"""Golden-trace regression tests.

Small recorded traces are committed under ``tests/golden/``; replaying them
must reproduce the committed delivery metrics byte-for-byte in **both**
dissemination engines, and re-running the recorded scenario from the
parameters stored in the trace header must regenerate the trace file itself
byte-for-byte.  Together the two checks lock down the workload generators,
the overlay protocols, both engines and the trace format: any behavioural
drift fails here as an explicit diff against the goldens.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.runtime.registry import load_scenarios
from repro.runtime.runner import run_one
from repro.traces import (dump_metrics, dumps_trace, execute_trace,
                          read_trace, recording)

GOLDEN_DIR = Path(__file__).resolve().parent / "golden"
SCENARIOS = ("hotspot", "adversarial-churn", "mobility")


@pytest.fixture(scope="module", autouse=True)
def _scenarios_loaded():
    load_scenarios()


def _golden(scenario: str):
    trace_path = GOLDEN_DIR / f"{scenario}.jsonl"
    metrics_path = GOLDEN_DIR / f"{scenario}.metrics.json"
    assert trace_path.exists(), f"missing golden trace {trace_path}"
    assert metrics_path.exists(), f"missing golden metrics {metrics_path}"
    return trace_path, metrics_path


@pytest.mark.parametrize("scenario", SCENARIOS)
@pytest.mark.parametrize("engine", ["classic", "batched"])
def test_golden_replay_metrics_are_byte_identical(scenario, engine):
    trace_path, metrics_path = _golden(scenario)
    trace = read_trace(trace_path)
    result = execute_trace(trace, engine=engine)  # verify=True cross-checks
    document = dump_metrics(trace.header.scenario, result.rows)
    assert document.encode("utf-8") == metrics_path.read_bytes(), (
        f"{scenario} replay on the {engine} engine no longer matches "
        f"{metrics_path.name}; see tests/golden/README.md before "
        "regenerating")


@pytest.mark.parametrize("scenario", SCENARIOS)
def test_golden_traces_verify_and_cover_every_op_kind(scenario):
    trace = read_trace(_golden(scenario)[0])
    assert trace.header.scenario == scenario
    assert trace.header.params, "golden traces must carry bound parameters"
    assert len(trace.systems()) == 1
    assert len(trace.expects) == 1
    ops = {op.op for op in trace.ops()}
    assert "subscribe_all" in ops and "publish" in ops
    if scenario == "adversarial-churn":
        assert "crash" in ops
    if scenario == "mobility":
        assert "move" in ops


@pytest.mark.parametrize("scenario", SCENARIOS)
def test_rerecording_regenerates_the_golden_trace_exactly(scenario):
    """Record-side determinism: same params → byte-identical trace file."""
    trace_path, _ = _golden(scenario)
    golden_text = trace_path.read_text(encoding="utf-8")
    params = read_trace(trace_path).header.params
    with recording(scenario=scenario) as recorder:
        outcome = run_one(scenario, dict(params))
        recorder.set_provenance(outcome.scenario, outcome.params)
    assert outcome.ok, outcome.error
    assert dumps_trace(recorder.build()) == golden_text

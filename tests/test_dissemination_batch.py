"""Batched-vs-unbatched dissemination equivalence and pool regressions.

The batched engine promises *identical delivery outcomes*: for every
published event, the set of receiving subscribers, their matched flags and
their hop counts must agree with the classical one-callback-per-message
engine.  These tests drive randomized workloads through both modes and
compare everything observable, plus regression tests for the pooled-Message
reset path and the exact-equivalence helpers the fast path relies on.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.pubsub.api import PubSubSystem
from repro.sim.messages import Message, MessagePool
from repro.spatial.containment import child_ids_containing_point
from repro.spatial.filters import (Event, make_space, subscription_from_intervals,
                                   subscription_from_rect)
from repro.spatial.rectangle import Point, Rect
from repro.workloads.events import targeted_events
from repro.workloads.subscriptions import uniform_subscriptions


def _publish_and_snapshot(workload, events, seed, engine):
    """Run one mode end to end; return everything observable about it."""
    system = PubSubSystem(workload.space, seed=seed, engine=engine)
    system.subscribe_all(workload)
    subscribers = system.subscribers()
    for index, event in enumerate(events):
        system.publish(event, publisher_id=subscribers[index % len(subscribers)])
    records = sorted(
        (record.event_id, record.subscriber_id, record.matched, record.hops)
        for record in system.accounting.records
    )
    outcomes = {
        event_id: (sorted(outcome.received), sorted(outcome.false_positives),
                   outcome.messages, outcome.max_hops)
        for event_id, outcome in system.accounting.outcomes.items()
    }
    counters = system.simulation.metrics
    return {
        "records": records,
        "outcomes": outcomes,
        "summary": system.summary(),
        "receptions": counters.counter("pubsub.receptions"),
        "messages": counters.counter("pubsub.messages"),
        "false_positives": counters.counter("pubsub.false_positives"),
    }


def _assert_modes_equivalent(workload, events, seed):
    unbatched = _publish_and_snapshot(workload, events, seed, engine="classic")
    batched = _publish_and_snapshot(workload, events, seed, engine="batched")
    assert unbatched == batched


@settings(max_examples=10, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(seed=st.integers(min_value=0, max_value=10_000),
       size=st.integers(min_value=6, max_value=24),
       count=st.integers(min_value=3, max_value=10))
def test_batched_equals_unbatched_on_random_workloads(seed, size, count):
    workload = uniform_subscriptions(size, seed=seed)
    events = targeted_events(workload.space, list(workload), count,
                             seed=seed + 13)
    _assert_modes_equivalent(workload, events, seed)


def test_batched_equals_unbatched_past_bulk_threshold():
    """A 600-peer overlay takes the STR fast path and still agrees."""
    workload = uniform_subscriptions(600, seed=3)
    events = targeted_events(workload.space, list(workload), 40, seed=11)
    _assert_modes_equivalent(workload, events, seed=3)


def test_batched_mode_actually_batches():
    workload = uniform_subscriptions(64, seed=1)
    events = targeted_events(workload.space, list(workload), 10, seed=2)
    system = PubSubSystem(workload.space, seed=1, engine="batched")
    system.subscribe_all(workload)
    subscribers = system.subscribers()
    for index, event in enumerate(events):
        system.publish(event, publisher_id=subscribers[index % len(subscribers)])
    engine = system.simulation.engine
    pool = system.simulation.network.pool
    assert engine.batches_processed > 0
    assert pool.allocated > 0
    assert pool.reused > 0  # envelopes were recycled across publications


# --------------------------------------------------------------------- #
# MessagePool reset path
# --------------------------------------------------------------------- #


def test_pool_acquire_release_resets_state():
    pool = MessagePool()
    first = pool.acquire("a", "b", "KIND", {"k": 1}, hops=3)
    first_id = first.message_id
    pool.release(first)
    assert first.payload is None
    recycled = pool.acquire("c", "d", "OTHER", {"fresh": True})
    assert recycled is first  # the free list handed the same envelope back
    assert recycled.sender == "c"
    assert recycled.recipient == "d"
    assert recycled.kind == "OTHER"
    assert recycled.payload == {"fresh": True}
    assert recycled.hops == 0
    assert recycled.sent_at == 0.0
    assert recycled.message_id != first_id
    assert pool.allocated == 1
    assert pool.reused == 1


def test_pool_double_release_rejected():
    pool = MessagePool()
    message = pool.acquire("a", "b", "KIND", {})
    pool.release(message)
    with pytest.raises(ValueError):
        pool.release(message)


def test_pool_release_does_not_mutate_shared_payload():
    pool = MessagePool()
    shared = {"event": {"attributes": {"x": 1.0}}}
    batch = pool.acquire_many("a", ["b", "c", "d"], "KIND", shared)
    assert all(message.payload is shared for message in batch)
    for message in batch:
        pool.release(message)
    # Releasing drops the envelopes' references but leaves the dict intact
    # for any handler that retained values out of it.
    assert shared == {"event": {"attributes": {"x": 1.0}}}
    assert len(pool) == 3


def test_pool_acquire_many_counts():
    pool = MessagePool()
    batch = pool.acquire_many("a", ["b", "c"], "KIND", {})
    for message in batch:
        pool.release(message)
    again = pool.acquire_many("a", ["x", "y"], "KIND", {})
    assert pool.allocated == 2
    assert pool.reused == 2
    assert {message.recipient for message in again} == {"x", "y"}
    assert isinstance(again[0], Message)


# --------------------------------------------------------------------- #
# Exact-equivalence helpers used by the fast path
# --------------------------------------------------------------------- #


def test_matches_point_agrees_with_matches():
    space = make_space("x", "y")
    rect_sub = subscription_from_rect("R", space, Rect((0.2, 0.2), (0.6, 0.6)))
    pred_sub = subscription_from_intervals("P", space,
                                           {"x": (0.2, 0.6), "y": (0.2, 0.6)})
    samples = [(0.3, 0.3), (0.2, 0.2), (0.6, 0.6), (0.61, 0.3), (0.0, 0.9)]
    for x, y in samples:
        event = Event({"x": x, "y": y}, event_id=f"{x},{y}")
        point = event.to_point(space)
        for sub in (rect_sub, pred_sub):
            assert sub.matches_point(event, point) == sub.matches(event)


def test_matches_point_generic_dimensions():
    space = make_space("x", "y", "z")
    sub = subscription_from_rect(
        "R3", space, Rect((0.0, 0.0, 0.0), (0.5, 0.5, 0.5)))
    inside = Event({"x": 0.1, "y": 0.2, "z": 0.3})
    outside = Event({"x": 0.1, "y": 0.2, "z": 0.7})
    assert sub.matches_point(inside, inside.to_point(space))
    assert not sub.matches_point(outside, outside.to_point(space))


class _Child:
    def __init__(self, rect):
        self.mbr = rect


@pytest.mark.parametrize("dims", [2, 3])
def test_child_ids_containing_point_matches_contains_point(dims):
    import random

    rng = random.Random(42 + dims)
    children = {}
    for index in range(30):
        lower = tuple(rng.random() * 0.8 for _ in range(dims))
        upper = tuple(low + rng.random() * 0.2 for low in lower)
        children[f"c{index}"] = _Child(Rect(lower, upper))
    for _ in range(50):
        point = Point(*(rng.random() for _ in range(dims)))
        expected = [name for name, child in children.items()
                    if child.mbr.contains_point(point)]
        assert child_ids_containing_point(children, point) == expected


def test_child_ids_containing_point_excludes():
    children = {
        "a": _Child(Rect((0.0, 0.0), (1.0, 1.0))),
        "b": _Child(Rect((0.0, 0.0), (1.0, 1.0))),
    }
    point = Point(0.5, 0.5)
    assert child_ids_containing_point(children, point) == ["a", "b"]
    assert child_ids_containing_point(children, point, exclude="a") == ["b"]


def _lossy_records(seed, size, loss, batch, window=1):
    from repro.overlay.bootstrap import bootstrap_overlay
    from repro.overlay.builder import DRTreeSimulation

    workload = uniform_subscriptions(size, seed=seed)
    sim = DRTreeSimulation(seed=seed, loss_rate=loss, batch=batch)
    bootstrap_overlay(sim, list(workload))
    sim.stabilize(max_rounds=50)
    records = []
    for peer in sim.peers.values():
        peer.delivery_listener = (
            lambda pid, e, m, h: records.append((e.event_id, pid, m, h)))
    events = targeted_events(workload.space, list(workload), 12, seed=seed + 1)
    publishers = sorted(sim.peers)
    for base in range(0, len(events), window):
        for offset, event in enumerate(events[base:base + window]):
            sim.publish(publishers[(base + offset) % len(publishers)], event,
                        settle=False)
        sim.settle()
    return sorted(records)


@pytest.mark.parametrize("seed,loss,window", [
    (0, 0.3, 1), (3, 0.3, 1), (5, 0.1, 1),
    # Windowed (pipelined) publishing is the throughput scenario's driving
    # pattern and the regression case for the round-aggregation reordering.
    (0, 0.2, 6), (4, 0.3, 6), (7, 0.2, 4),
])
def test_batched_equals_unbatched_under_message_loss(seed, loss, window):
    """Lossy networks: both modes must drop exactly the same messages.

    Regression for two review findings: the batched fan-out used to reorder
    the loss-RNG draws — first by deferring the local descent behind the
    remote sends (fixed by flushing the pending batch at the local-descent
    boundary), then by merging same-instant fan-outs from different senders
    into one round entry (fixed by keeping one entry per fan-out whenever
    the network consumes RNG at send time).
    """
    unbatched = _lossy_records(seed, 70, loss, batch=False, window=window)
    batched = _lossy_records(seed, 70, loss, batch=True, window=window)
    assert unbatched == batched

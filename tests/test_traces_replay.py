"""Recorder + replay engine: bit-identity, tamper detection, engine override."""

from __future__ import annotations

import pytest

from repro.pubsub.api import PubSubSystem
from repro.spatial.filters import subscription_from_rect
from repro.spatial.rectangle import Rect
from repro.traces import (ExpectRecord, TraceReplayError, active_recorder,
                          delivery_metrics_row, dump_metrics, dumps_trace,
                          execute_trace, loads_trace, recording, replay_trace,
                          write_trace)
from repro.workloads.events import targeted_events
from repro.workloads.subscriptions import uniform_subscriptions


def _drive_small_run():
    """A run exercising every recordable op; returns (trace, live row)."""
    workload = uniform_subscriptions(18, seed=3)
    with recording(scenario="unit") as recorder:
        system = PubSubSystem(workload.space, seed=3)
        system.subscribe_all(workload)
        system.subscribe(subscription_from_rect(
            "late", workload.space, Rect((0.6, 0.6), (0.8, 0.8))))
        events = targeted_events(workload.space, list(workload), 8, seed=11)
        system.publish_many(events[:4])
        subscribers = system.subscribers()
        system.fail(subscribers[0])
        system.unsubscribe(subscribers[1])
        system.move_subscription(
            subscribers[2],
            subscription_from_rect("mover~1", workload.space,
                                   Rect((0.1, 0.1), (0.4, 0.4))))
        system.stabilize()
        system.publish_many(events[4:])
        row = delivery_metrics_row(system, 0)
    return recorder.build(), row


@pytest.fixture(scope="module")
def recorded():
    return _drive_small_run()


def test_recording_is_passive(recorded):
    """The same run without a recorder produces the same metrics row."""
    workload = uniform_subscriptions(18, seed=3)
    system = PubSubSystem(workload.space, seed=3)
    system.subscribe_all(workload)
    system.subscribe(subscription_from_rect(
        "late", workload.space, Rect((0.6, 0.6), (0.8, 0.8))))
    events = targeted_events(workload.space, list(workload), 8, seed=11)
    system.publish_many(events[:4])
    subscribers = system.subscribers()
    system.fail(subscribers[0])
    system.unsubscribe(subscribers[1])
    system.move_subscription(
        subscribers[2],
        subscription_from_rect("mover~1", workload.space,
                               Rect((0.1, 0.1), (0.4, 0.4))))
    system.stabilize()
    system.publish_many(events[4:])
    assert delivery_metrics_row(system, 0) == recorded[1]


def test_replay_reproduces_recorded_metrics(recorded):
    trace, row = recorded
    result = execute_trace(trace)
    assert result.rows == [row]
    assert any("reproduced exactly" in note for note in result.notes)


def test_replay_is_engine_independent(recorded):
    trace, row = recorded
    classic = execute_trace(trace, engine="classic")
    batched = execute_trace(trace, engine="batched")
    assert classic.rows == batched.rows == [row]
    assert (dump_metrics("unit", classic.rows)
            == dump_metrics("unit", batched.rows))


def test_replay_survives_serialization(recorded, tmp_path):
    trace, row = recorded
    path = write_trace(tmp_path / "run.jsonl", trace)
    assert replay_trace(path).rows == [row]
    assert replay_trace(path, engine="batched").rows == [row]


def test_replay_backend_override_is_the_engine_override(recorded):
    trace, row = recorded
    assert execute_trace(trace, backend="drtree:batched").rows == [row]
    with pytest.raises(ValueError, match="not both"):
        execute_trace(trace, engine="classic", backend="drtree:batched")
    with pytest.raises(Exception, match="unknown backend"):
        execute_trace(trace, backend="gossip")


def test_replay_on_a_foreign_family_skips_expect_verification(recorded):
    """Replaying a DR-tree trace on a baseline backend runs the workload
    there; different delivery accuracy is expected, so the bit-identity
    check is skipped (and noted) instead of failing."""
    trace, row = recorded
    result = execute_trace(trace, backend="flooding")  # verify=True
    (replayed,) = result.rows
    assert replayed["subscribers"] == row["subscribers"]
    assert replayed["events"] == row["events"]
    assert any("verification skipped" in note for note in result.notes)


def test_recorded_trace_carries_the_backend(recorded):
    trace, _ = recorded
    assert trace.header.backend == "drtree:classic"
    assert trace.systems()[0].backend == "drtree:classic"


def test_legacy_batch_flag_follows_the_engine_registry(monkeypatch):
    """The trace format's batch boolean mirrors EngineSpec.batch, so a
    future batch-built engine records batch=true for old readers."""
    from repro.pubsub import engines
    from repro.traces.recorder import _legacy_batch_flag

    monkeypatch.setitem(
        engines._ENGINES, "sharded",
        engines.EngineSpec(name="sharded", description="test stub",
                           factory=None, batch=True))
    assert _legacy_batch_flag("drtree:sharded") is True
    assert _legacy_batch_flag("drtree:classic") is False
    assert _legacy_batch_flag("drtree:batched") is True
    assert _legacy_batch_flag("flooding") is False


def test_baseline_broker_runs_record_and_replay_too(tmp_path):
    """The recorder and replay engine treat both broker families alike."""
    from repro.api import SystemSpec

    workload = uniform_subscriptions(10, seed=4)
    events = targeted_events(workload.space, list(workload), 5, seed=9)
    with recording(scenario="baseline-unit") as recorder:
        broker = SystemSpec(workload.space, backend="flooding", seed=4).build()
        broker.subscribe_all(workload)
        broker.publish_many(events)
        row = delivery_metrics_row(broker, 0)
    trace = recorder.build()
    assert trace.header.backend == "flooding"
    assert trace.systems()[0].backend == "flooding"
    result = execute_trace(trace)  # rebuilds the BaselineBroker and verifies
    assert result.rows == [row]
    path = write_trace(tmp_path / "flood.jsonl", trace)
    assert replay_trace(path).rows == [row]


def test_expect_records_cover_every_segment(recorded):
    trace, row = recorded
    assert [expect.seg for expect in trace.expects] == [0]
    assert trace.expects[0].row == row


def test_tampered_expectation_is_detected(recorded):
    trace, _ = recorded
    tampered = loads_trace(dumps_trace(trace))
    row = dict(tampered.expects[0].row)
    row["true_deliveries"] = row["true_deliveries"] + 1.0
    tampered.expects[0] = ExpectRecord(seg=0, row=row)
    with pytest.raises(TraceReplayError) as excinfo:
        execute_trace(tampered)
    assert "true_deliveries" in str(excinfo.value)
    # verify=False skips the check and still replays.
    assert execute_trace(tampered, verify=False).rows


def test_replay_of_unknown_subscriber_is_typed(recorded):
    trace, _ = recorded
    broken = loads_trace(dumps_trace(trace))
    crash = next(op for op in broken.ops() if op.op == "crash")
    index = broken.body.index(crash)
    broken.body[index] = type(crash)(seg=crash.seg, t=crash.t, op="crash",
                                     data={"id": "ghost", "stabilize": True})
    with pytest.raises(TraceReplayError) as excinfo:
        execute_trace(broken, verify=False)
    assert "ghost" in str(excinfo.value)


def test_unknown_engine_rejected(recorded):
    with pytest.raises(ValueError):
        execute_trace(recorded[0], engine="warp")


def test_multi_system_runs_record_one_segment_each():
    with recording() as recorder:
        for seed in (1, 2):
            workload = uniform_subscriptions(10, seed=seed)
            system = PubSubSystem(workload.space, seed=seed)
            system.subscribe_all(workload)
            system.publish_many(
                targeted_events(workload.space, list(workload), 3,
                                seed=seed + 5))
    trace = recorder.build()
    assert len(trace.systems()) == 2
    result = execute_trace(trace)
    assert [row["segment"] for row in result.rows] == [0, 1]
    assert len(trace.expects) == 2


def test_nested_recording_contexts_are_rejected():
    with recording():
        assert active_recorder() is not None
        with pytest.raises(RuntimeError):
            with recording():
                pass  # pragma: no cover - never reached
    assert active_recorder() is None


def test_tape_detaches_when_the_recording_context_exits():
    workload = uniform_subscriptions(10, seed=1)
    with recording() as recorder:
        system = PubSubSystem(workload.space, seed=1)
        system.subscribe_all(workload)
    ops_at_exit = len(recorder.build().ops())
    # Post-context facade ops must not leak into the closed recorder.
    system.publish_many(
        targeted_events(workload.space, list(workload), 2, seed=9))
    assert len(recorder.build().ops()) == ops_at_exit
    # ...and a closed recorder refuses new systems.
    with pytest.raises(RuntimeError):
        recorder.attach(system)


def test_recorder_clears_even_on_error():
    with pytest.raises(RuntimeError):
        with recording():
            raise RuntimeError("scenario blew up")
    assert active_recorder() is None


def test_bad_recorded_config_is_a_format_error():
    from repro.traces import SystemRecord, Trace, TraceFormatError, TraceHeader

    trace = Trace(header=TraceHeader())
    trace.body.append(SystemRecord(
        seg=0, space=("x", "y"), seed=0, batch=False, stabilize_rounds=30,
        config={"min_children": 9, "max_children": 4}))  # M < 2m is illegal
    with pytest.raises(TraceFormatError) as excinfo:
        execute_trace(trace)
    assert "bad DR-tree config" in str(excinfo.value)


def test_op_without_system_record_is_a_replay_error():
    from repro.traces import OpRecord, Trace, TraceHeader

    trace = Trace(header=TraceHeader())
    trace.body.append(OpRecord(seg=0, op="unsubscribe", data={"id": "S0"}))
    with pytest.raises(TraceReplayError):
        execute_trace(trace)


def test_trace_without_expectations_replays_without_verification():
    trace, row = _drive_small_run()
    trace.expects = []
    result = execute_trace(trace)  # verify=True with nothing to verify
    assert result.rows == [row]
    assert not any("reproduced exactly" in note for note in result.notes)


def test_failed_facade_calls_are_not_taped():
    workload = uniform_subscriptions(6, seed=0)
    with recording() as recorder:
        system = PubSubSystem(workload.space, seed=0)
        system.subscribe_all(workload)
        ops_before = len(recorder.build().ops())
        with pytest.raises(ValueError):
            system.subscribe(list(workload)[0])  # duplicate subscriber id
        with pytest.raises(KeyError):
            system.move_subscription(
                "ghost",
                subscription_from_rect("g2", workload.space,
                                       Rect((0.0, 0.0), (0.1, 0.1))))
        trace = recorder.build()
    assert len(trace.ops()) == ops_before  # no phantom records
    execute_trace(trace)  # and the trace still replays cleanly


def test_ops_are_taped_with_their_issue_time():
    workload = uniform_subscriptions(6, seed=0)
    with recording() as recorder:
        system = PubSubSystem(workload.space, seed=0)
        system.subscribe_all(workload)
        issued = system.simulation.engine.now
        system.publish_many(
            targeted_events(workload.space, list(workload), 1, seed=2))
    publish = next(op for op in recorder.build().ops() if op.op == "publish")
    assert publish.t == issued  # not the post-dissemination clock


def test_move_requires_known_subscriber():
    workload = uniform_subscriptions(6, seed=0)
    system = PubSubSystem(workload.space, seed=0)
    system.subscribe_all(workload)
    replacement = subscription_from_rect("new", workload.space,
                                         Rect((0.0, 0.0), (0.2, 0.2)))
    with pytest.raises(KeyError):
        system.move_subscription("ghost", replacement)

"""Tests for streamed workload synthesis: determinism, goldens, capture.

Four contracts of :mod:`repro.workloads.synth`:

* **Determinism** — the same spec yields a byte-identical record stream in
  the same process, across processes, and across ``--workload``
  re-invocations; the named RNG streams are pinned.
* **Goldens** — the committed synthesized trace replays to byte-identical
  metrics on every DR-tree engine (and to its own committed metrics on a
  baseline backend), and regenerates byte-for-byte from the spec embedded
  in its own header.
* **Streaming** — trace and journal writers run in bounded memory no
  matter the op count (the million-op campaign is CI-gated).
* **Wiring** — the ``repro workload`` CLI verb and the ``--workload``
  scenario parameters drive the same generator.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import tracemalloc
from pathlib import Path

import pytest

from repro.journal import journal_to_trace, read_journal, verify_journal
from repro.journal.recorder import journaling
from repro.runtime.cli import main
from repro.runtime.registry import load_scenarios
from repro.runtime.runner import run_one
from repro.traces.io import read_trace
from repro.traces.replay import dump_metrics, execute_trace
from repro.workloads.errors import (UnknownWorkloadFamilyError,
                                    WorkloadParameterError)
from repro.workloads.synth import (FAMILY_NAMES, FAMILY_PRESETS,
                                   SYNTH_SCENARIO, SYNTH_STREAMS,
                                   SyntheticWorkload, coerce_spec_override,
                                   delivered_digest, iter_ops, run_workload,
                                   stream_signature, write_synth_journal,
                                   write_synth_trace)

REPO_ROOT = Path(__file__).resolve().parent.parent
GOLDEN_DIR = Path(__file__).resolve().parent / "golden"
GOLDEN_TRACE = GOLDEN_DIR / "synth-mixed.jsonl"

#: The spec of the committed golden (tests/golden/README.md).
GOLDEN_SPEC = dict(subscribers=24, events=30, seed=3)

SMALL = dict(subscribers=20, events=24, seed=5)


@pytest.fixture(scope="module", autouse=True)
def _scenarios_loaded():
    load_scenarios()


# --------------------------------------------------------------------------- #
# Determinism regression
# --------------------------------------------------------------------------- #


def test_synth_stream_names_are_pinned():
    """The named RNG streams are part of the determinism contract.

    Renaming one reshuffles every derived byte stream (the stream name is
    hashed into the RNG seed), so a rename must be a conscious,
    golden-regenerating change — this pin makes it one.
    """
    assert SYNTH_STREAMS == (
        "workload.synth.topics",
        "workload.synth.points",
        "workload.synth.flash",
        "workload.synth.mobility",
        "workload.synth.publishers",
    )


@pytest.mark.parametrize("family", FAMILY_NAMES)
def test_same_seed_same_bytes_within_a_process(family, tmp_path):
    spec = SyntheticWorkload.from_family(family, **SMALL)
    first, second = tmp_path / "a.jsonl", tmp_path / "b.jsonl"
    write_synth_trace(first, spec)
    write_synth_trace(second, spec)
    assert first.read_bytes() == second.read_bytes()
    assert stream_signature(spec) == stream_signature(spec)


def _synth_cli(tmp_path: Path, name: str) -> Path:
    out = tmp_path / name
    env = dict(os.environ, PYTHONPATH=str(REPO_ROOT / "src"))
    subprocess.run(
        [sys.executable, "-m", "repro", "workload", "synth", "flash-crowd",
         "--subscribers", "18", "--events", "20", "--seed", "11",
         "-o", str(out)],
        check=True, capture_output=True, env=env, cwd=str(tmp_path))
    return out


def test_same_seed_byte_identical_across_processes(tmp_path):
    """Two fresh interpreters and the in-process writer agree byte-wise."""
    first = _synth_cli(tmp_path, "one.jsonl")
    second = _synth_cli(tmp_path, "two.jsonl")
    assert first.read_bytes() == second.read_bytes()
    spec = SyntheticWorkload.from_family("flash-crowd", subscribers=18,
                                         events=20, seed=11)
    local = tmp_path / "local.jsonl"
    write_synth_trace(local, spec)
    assert local.read_bytes() == first.read_bytes()


def test_different_seeds_diverge():
    base = SyntheticWorkload.from_family("zipf-diurnal", **SMALL)
    other = SyntheticWorkload.from_family("zipf-diurnal",
                                          **dict(SMALL, seed=6))
    assert stream_signature(base) != stream_signature(other)


def test_workload_reinvocation_produces_identical_scenario_rows():
    """``--workload`` runs are a pure function of their parameters."""
    params = dict(peers=30, events=24, seed=2, workload="zipf-diurnal",
                  backends="drtree:classic,drtree:batched")
    first = run_one("backend_matrix", dict(params))
    second = run_one("backend_matrix", dict(params))
    assert first.ok and second.ok, (first.error, second.error)
    assert first.rows == second.rows
    assert first.notes == second.notes


# --------------------------------------------------------------------------- #
# Golden synthesized trace
# --------------------------------------------------------------------------- #


def _golden_metrics(suffix: str = "") -> Path:
    path = GOLDEN_DIR / f"synth-mixed{suffix}.metrics.json"
    assert path.exists(), f"missing golden metrics {path}"
    return path


@pytest.mark.parametrize("backend",
                         ["drtree:classic", "drtree:batched",
                          "drtree:sharded"])
def test_golden_synth_replay_is_byte_identical_across_engines(
        backend, monkeypatch):
    monkeypatch.setenv("REPRO_SHARD_TRANSPORT", "shm")
    trace = read_trace(GOLDEN_TRACE)
    result = execute_trace(trace, backend=backend)
    document = dump_metrics(trace.header.scenario, result.rows)
    assert document.encode("utf-8") == _golden_metrics().read_bytes(), (
        f"synthesized golden no longer replays identically on {backend}; "
        "see tests/golden/README.md before regenerating")


def test_golden_synth_replays_on_a_baseline_backend():
    trace = read_trace(GOLDEN_TRACE)
    result = execute_trace(trace, backend="flooding")
    document = dump_metrics(trace.header.scenario, result.rows)
    assert document.encode("utf-8") == _golden_metrics(
        ".flooding").read_bytes()


def test_golden_synth_regenerates_from_its_own_header(tmp_path):
    """The header-embedded spec re-derives the exact committed file."""
    trace = read_trace(GOLDEN_TRACE)
    spec = SyntheticWorkload.from_trace_header(trace.header)
    assert spec.family == "mixed-production"
    assert (spec.subscribers, spec.events, spec.seed) == (
        GOLDEN_SPEC["subscribers"], GOLDEN_SPEC["events"],
        GOLDEN_SPEC["seed"])
    regenerated = tmp_path / "regen.jsonl"
    write_synth_trace(regenerated, spec, backend=trace.header.backend)
    assert regenerated.read_bytes() == GOLDEN_TRACE.read_bytes()


def test_golden_synth_trace_covers_every_membership_op_kind():
    trace = read_trace(GOLDEN_TRACE)
    assert trace.header.scenario == SYNTH_SCENARIO
    assert trace.header.version == 2
    assert not trace.expects  # a workload capture, not a completed run
    ops = {op.op for op in trace.ops()}
    assert {"subscribe_all", "subscribe", "stabilize", "move", "publish",
            "unsubscribe"} <= ops


def test_delivered_sets_are_identical_across_live_engines():
    spec = SyntheticWorkload.from_family("mixed-production", **GOLDEN_SPEC)
    digests = {backend: delivered_digest(run_workload(spec, backend=backend))
               for backend in ("drtree:classic", "drtree:batched")}
    assert len(set(digests.values())) == 1, digests


# --------------------------------------------------------------------------- #
# Journal capture
# --------------------------------------------------------------------------- #


def test_synth_journal_verifies_and_exports_the_same_ops(tmp_path):
    spec = SyntheticWorkload.from_family("mixed-production", **SMALL,
                                         walkers=3, move_every=7)
    journal_path = tmp_path / "synth.journal"
    report = write_synth_journal(journal_path, spec)
    journal = verify_journal(journal_path)
    assert not journal.sealed  # resumable capture, no final metrics
    assert len(journal.ops) == report.ops
    assert SyntheticWorkload.from_json(
        journal.header.params["workload"]) == spec
    exported = journal_to_trace(journal)
    assert [(op.op, op.data, op.t) for op in exported.ops()] == [
        (op.op, op.data, op.t) for op in iter_ops(spec)]


def test_live_run_under_journaling_captures_the_stream(tmp_path):
    """A facade-driven run inside ``journaling()`` journals every op."""
    spec = SyntheticWorkload.from_family("flash-crowd", **SMALL)
    journal_path = tmp_path / "live.journal"
    with journaling(str(journal_path), scenario=SYNTH_SCENARIO,
                    params={"workload": spec.to_json()}, snapshot_every=0):
        broker = run_workload(spec)
    assert broker.summary()["events"] == spec.events
    captured = journal_to_trace(read_journal(journal_path))
    assert [(op.op, op.data) for op in captured.ops()] == [
        (op.op, op.data) for op in iter_ops(spec)]


# --------------------------------------------------------------------------- #
# Bounded-memory streaming
# --------------------------------------------------------------------------- #


def test_streaming_writer_runs_in_bounded_memory(tmp_path):
    """15k ops stream through a working set that never holds the op list.

    The peak traced allocation stays within a few megabytes — materializing
    the op list would take an order of magnitude more — which pins the
    writers' O(subscribers) memory contract.
    """
    spec = SyntheticWorkload.from_family("mixed-production",
                                         subscribers=200, events=15_000,
                                         seed=1)
    path = tmp_path / "big.jsonl"
    tracemalloc.start()
    try:
        report = write_synth_trace(path, spec)
        _, peak = tracemalloc.get_traced_memory()
    finally:
        tracemalloc.stop()
    assert report.ops >= spec.events
    assert path.stat().st_size == report.bytes
    assert peak < 16 * 1024 * 1024, f"peak {peak} bytes"


@pytest.mark.skipif(not os.environ.get("REPRO_BIG_WORKLOAD"),
                    reason="million-op campaign only runs where "
                           "REPRO_BIG_WORKLOAD is set (CI workloads job)")
def test_million_op_campaign_journals_in_bounded_memory(tmp_path):
    """The acceptance-scale run: 1M synthesized ops under the journal."""
    spec = SyntheticWorkload.from_family("zipf-diurnal", subscribers=2000,
                                         events=1_000_000, seed=9)
    path = tmp_path / "million.journal"
    tracemalloc.start()
    try:
        report = write_synth_journal(path, spec, fsync_every=4096)
        _, peak = tracemalloc.get_traced_memory()
    finally:
        tracemalloc.stop()
    assert report.ops > 1_000_000
    assert path.stat().st_size == report.bytes
    assert peak < 64 * 1024 * 1024, f"peak {peak} bytes"


# --------------------------------------------------------------------------- #
# Scenario wiring
# --------------------------------------------------------------------------- #


def test_backend_matrix_workload_asserts_drtree_identity():
    outcome = run_one("backend_matrix", dict(
        peers=40, events=30, seed=0, workload="zipf-diurnal",
        backends="drtree:classic,drtree:batched,flooding"))
    assert outcome.ok, outcome.error
    assert len(outcome.rows) == 3
    digests = {row["backend"]: row["delivered"] for row in outcome.rows}
    assert digests["drtree:classic"] == digests["drtree:batched"]
    assert any("identical delivered-event sets" in note
               for note in outcome.notes)


def test_throughput_accepts_a_workload_family():
    outcome = run_one("throughput", dict(
        peers=80, events=30, window=10, seed=1,
        workload="mobility-hotspot"))
    assert outcome.ok, outcome.error
    assert any("synthesized workload 'mobility-hotspot'" in note
               for note in outcome.notes)
    assert any("delivery outcomes identical across engines" in note
               for note in outcome.notes)


def test_scale_threads_the_workload_through_both_phases():
    outcome = run_one("scale", dict(
        peers=240, events=24, window=12, shards=2, parity_peers=100,
        parity_events=16, seed=0, transport="inline",
        workload="flash-crowd"))
    assert outcome.ok, outcome.error
    assert any("byte-identical between drtree:classic and drtree:sharded"
               in note for note in outcome.notes)
    assert any("synthesized workload 'flash-crowd'" in note
               for note in outcome.notes)


# --------------------------------------------------------------------------- #
# CLI verb
# --------------------------------------------------------------------------- #


def test_cli_synth_writes_trace_and_journal_then_replays(tmp_path, capsys):
    trace_path = tmp_path / "cli.jsonl"
    journal_path = tmp_path / "cli.journal"
    assert main(["workload", "synth", "mixed-production",
                 "--subscribers", "20", "--events", "24", "--seed", "5",
                 "-o", str(trace_path), "--journal", str(journal_path),
                 "--set", "correlation=0.25"]) == 0
    out = capsys.readouterr().out
    assert "synthesized" in out and "journaled" in out
    spec = SyntheticWorkload.from_trace_header(read_trace(trace_path).header)
    assert spec.correlation == 0.25
    assert main(["run", "--trace", str(trace_path), "--quiet"]) == 0
    assert main(["journal", "verify", str(journal_path)]) == 0
    exported = tmp_path / "exported.jsonl"
    assert main(["journal", "export", str(journal_path),
                 "-o", str(exported)]) == 0
    assert [op.to_json() for op in read_trace(exported).ops()] == [
        op.to_json() for op in read_trace(trace_path).ops()]


def test_cli_describe_family_and_trace(tmp_path, capsys):
    assert main(["workload", "describe", "zipf-diurnal"]) == 0
    printed = capsys.readouterr().out
    assert FAMILY_PRESETS["zipf-diurnal"].description in printed
    assert "exponent" in printed
    trace_path = tmp_path / "d.jsonl"
    write_synth_trace(trace_path,
                      SyntheticWorkload.from_family("flash-crowd", **SMALL))
    assert main(["workload", "describe", str(trace_path)]) == 0
    printed = capsys.readouterr().out
    assert "flash-crowd" in printed and "crowd_size" in printed


def test_cli_error_exits(tmp_path, capsys):
    assert main(["workload", "synth", "zipf-diurnal"]) == 2  # no destination
    assert main(["workload", "describe", "no-such-family"]) == 2
    assert main(["workload", "synth", "zipf-diurnal",
                 "-o", str(tmp_path / "x.jsonl"),
                 "--set", "bogus=1"]) == 2
    assert main(["workload", "synth", "zipf-diurnal",
                 "-o", str(tmp_path / "x.jsonl"),
                 "--set", "exponent"]) == 2  # malformed KNOB=VALUE
    with pytest.raises(SystemExit):  # argparse rejects unknown families
        main(["workload", "synth", "not-a-family", "-o", "x.jsonl"])
    capsys.readouterr()


# --------------------------------------------------------------------------- #
# Spec validation and (de)serialization
# --------------------------------------------------------------------------- #


def test_family_presets_are_registered_and_buildable():
    assert FAMILY_NAMES == ("zipf-diurnal", "flash-crowd",
                            "mobility-hotspot", "mixed-production")
    for family in FAMILY_NAMES:
        spec = SyntheticWorkload.from_family(family, **SMALL)
        assert spec.family == family


def test_unknown_family_raises_the_typed_error():
    with pytest.raises(UnknownWorkloadFamilyError) as excinfo:
        SyntheticWorkload.from_family("nope", **SMALL)
    assert "nope" in str(excinfo.value)
    assert isinstance(excinfo.value, ValueError)


def test_unknown_knob_raises():
    with pytest.raises(WorkloadParameterError):
        SyntheticWorkload.from_family("zipf-diurnal", **SMALL, bogus=1)


@pytest.mark.parametrize("overrides", [
    dict(subscribers=0),
    dict(events=-1),
    dict(dimensions=0),
    dict(subscription_family="nope"),
    dict(hotspots=0),
    dict(exponent=0.0),
    dict(hot_fraction=1.5),
    dict(spread=-0.1),
    dict(correlation=2.0),
    dict(bins=0),
    dict(period=0.0),
    dict(amplitude=1.5),
    dict(flash_crowds=-1),
    dict(flash_crowds=1, crowd_size=0),
    dict(crowd_spread=-0.5),
    dict(walkers=-1),
    dict(walkers=100),
    dict(walkers=2, move_every=0),
    dict(walkers=2, move_every=3, step=0.0),
])
def test_spec_rejects_out_of_range_knobs(overrides):
    knobs = dict(family="zipf-diurnal", subscribers=10, events=5, seed=0)
    knobs.update(overrides)
    with pytest.raises((WorkloadParameterError,
                        UnknownWorkloadFamilyError)):
        SyntheticWorkload(**knobs)


def test_spec_json_round_trip_is_exact():
    spec = SyntheticWorkload.from_family("mixed-production", **SMALL)
    assert SyntheticWorkload.from_json(
        json.loads(json.dumps(spec.to_json()))) == spec


@pytest.mark.parametrize("mutate", [
    lambda data: data.update(format="other"),
    lambda data: data.update(version=99),
    lambda data: data.update(mystery=1),
    lambda data: data.pop("family"),
])
def test_spec_from_json_rejects_malformed_documents(mutate):
    data = SyntheticWorkload.from_family("zipf-diurnal", **SMALL).to_json()
    mutate(data)
    with pytest.raises(WorkloadParameterError):
        SyntheticWorkload.from_json(data)


def test_from_trace_header_requires_an_embedded_spec():
    class Header:
        params = {"peers": 3}

    with pytest.raises(WorkloadParameterError):
        SyntheticWorkload.from_trace_header(Header())


def test_coerce_spec_override_types():
    assert coerce_spec_override("bins", "12") == 12
    assert coerce_spec_override("exponent", "1.4") == 1.4
    assert coerce_spec_override("subscription_family", "uniform") == "uniform"
    with pytest.raises(WorkloadParameterError):
        coerce_spec_override("bogus", "1")

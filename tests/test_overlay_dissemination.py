"""Dissemination-level tests on the raw overlay (below the pub/sub facade)."""

from __future__ import annotations

import pytest

from repro.overlay import DRTreeConfig, build_stable_tree
from repro.spatial.filters import Event
from repro.workloads.events import targeted_events, uniform_events
from tests.conftest import random_subscriptions


@pytest.fixture
def sim(space):
    subs = random_subscriptions(space, 30, seed=77)
    return build_stable_tree(subs, DRTreeConfig(2, 4), seed=7)


def _receivers(sim, event_id):
    return {p.process_id for p in sim.live_peers() if event_id in p.seen_events}


def test_publish_reaches_every_matching_peer(sim, space):
    subs = [p.subscription for p in sim.live_peers()]
    for index, event in enumerate(targeted_events(space, subs, 10, seed=1)):
        publisher = sim.live_peers()[index % len(sim.live_peers())]
        sim.publish(publisher.process_id, event)
        matching = {p.process_id for p in sim.live_peers()
                    if p.subscription.matches(event)}
        assert matching <= _receivers(sim, event.event_id)


def test_publish_from_leaf_and_from_root(sim, space):
    event = Event({"x": 0.5, "y": 0.5}, event_id="from-both")
    leaf = next(p for p in sim.live_peers() if p.top_level() == 0)
    sim.publish(leaf.process_id, event)
    matching = {p.process_id for p in sim.live_peers()
                if p.subscription.matches(event)}
    assert matching <= _receivers(sim, "from-both")

    event2 = Event({"x": 0.5, "y": 0.5}, event_id="from-root")
    sim.publish(sim.root().process_id, event2)
    assert matching <= _receivers(sim, "from-root")


def test_duplicate_event_ids_are_not_redelivered(sim):
    event = Event({"x": 0.4, "y": 0.4}, event_id="dup")
    publisher = sim.root().process_id
    sim.publish(publisher, event)
    first = sim.metrics.counter("pubsub.receptions")
    sim.publish(publisher, event)
    # The second publication of the same id is absorbed by the dedup guard.
    assert sim.metrics.counter("pubsub.receptions") == first


def test_dissemination_message_cost_is_sublinear(sim, space):
    """Each publication costs far fewer messages than a broadcast."""
    peers = len(sim.live_peers())
    before = sim.metrics.counter("network.messages_sent")
    events = uniform_events(space, 20, seed=3, prefix="cost")
    for event in events:
        sim.publish(sim.root().process_id, event)
    total = sim.metrics.counter("network.messages_sent") - before
    assert total < 20 * peers  # strictly better than flooding every peer


def test_uninterested_subtrees_are_pruned(sim, space):
    """An event matching nobody generates almost no traffic."""
    event = Event({"x": 5.0, "y": 5.0}, event_id="nowhere")
    before = sim.metrics.counter("network.messages_sent")
    sim.publish(sim.root().process_id, event)
    sent = sim.metrics.counter("network.messages_sent") - before
    assert sent <= len(sim.live_peers()) // 2


def test_delivery_listener_hook(sim):
    calls = []

    def listener(pid, ev, matched, hops):
        calls.append((pid, ev.event_id, matched))

    for peer in sim.live_peers():
        peer.delivery_listener = listener
    event = Event({"x": 0.5, "y": 0.5}, event_id="hooked")
    sim.publish(sim.root().process_id, event)
    assert any(entry[1] == "hooked" for entry in calls)


def test_crashed_peer_does_not_receive(sim, space):
    victim = next(p for p in sim.live_peers() if p.top_level() == 0)
    sim.crash(victim.process_id)
    sim.stabilize(max_rounds=40)
    event = Event({"x": 0.5, "y": 0.5}, event_id="after-crash")
    sim.publish(sim.root().process_id, event)
    assert victim.process_id not in _receivers(sim, "after-crash")

"""Scenario tests for the DR-tree join/leave protocols and structure legality."""

from __future__ import annotations

import pytest

from repro.overlay import DRTreeConfig, DRTreeSimulation, build_stable_tree
from repro.spatial.filters import subscription_from_rect
from repro.spatial.rectangle import Rect
from tests.conftest import random_subscriptions


def build(subs, m=2, M=4, seed=0):
    return build_stable_tree(list(subs), DRTreeConfig(m, M), seed=seed)


# --------------------------------------------------------------------------- #
# Single peer and bootstrap
# --------------------------------------------------------------------------- #


def test_single_peer_is_root_and_leaf(space):
    sub = subscription_from_rect("only", space, Rect((0, 0), (1, 1)))
    sim = build([sub])
    peer = sim.peer("only")
    assert peer.joined
    assert peer.is_overlay_root()
    assert peer.top_level() == 0
    assert sim.verify().is_legal


def test_two_peers_form_one_root_one_tree(space):
    subs = [
        subscription_from_rect("a", space, Rect((0, 0), (1, 1))),
        subscription_from_rect("b", space, Rect((2, 2), (3, 3))),
    ]
    sim = build(subs)
    report = sim.verify()
    assert report.is_legal
    assert report.height == 2
    root = sim.root()
    assert root is not None
    assert set(root.children_at(1)) == {"a", "b"}


def test_joiner_with_larger_filter_becomes_root(space):
    """Root election promotes the filter with the best coverage (Figure 6)."""
    small = subscription_from_rect("small", space, Rect((0.4, 0.4), (0.6, 0.6)))
    big = subscription_from_rect("big", space, Rect((0, 0), (1, 1)))
    sim = DRTreeSimulation(DRTreeConfig(2, 4), seed=0)
    sim.add_peer(small)
    sim.add_peer(big)
    sim.stabilize()
    root = sim.root()
    assert root is not None
    assert root.process_id == "big"


# --------------------------------------------------------------------------- #
# Larger builds stay legal and balanced
# --------------------------------------------------------------------------- #


@pytest.mark.parametrize("count", [8, 20, 50])
def test_build_is_legal(space, count):
    subs = random_subscriptions(space, count, seed=count)
    sim = build(subs)
    report = sim.verify()
    assert report.is_legal, report.violations
    assert report.root is not None
    assert report.max_degree <= 4


def test_all_peers_joined_and_reachable(space, rand_subs):
    sim = build(rand_subs(30, seed=3))
    assert all(peer.joined for peer in sim.live_peers())
    report = sim.verify()
    assert report.is_legal
    assert report.peer_count == 30


def test_height_is_logarithmic(space, rand_subs):
    sim = build(rand_subs(64, seed=9), m=2, M=4)
    # log_2(64) = 6; allow the verifier's slack of a couple of levels.
    assert sim.height() <= 9


def test_leaf_levels_all_zero(space, rand_subs):
    """Every peer owns a leaf instance at level 0 (height balance)."""
    sim = build(rand_subs(25, seed=4))
    for peer in sim.live_peers():
        assert 0 in peer.instances
        assert peer.instances[0].is_leaf


def test_split_method_variants_build_legal_trees(space, rand_subs):
    subs = rand_subs(30, seed=12)
    for method in ("linear", "quadratic", "rstar"):
        sim = build_stable_tree(
            list(subs), DRTreeConfig(2, 4, split_method=method), seed=1
        )
        assert sim.verify().is_legal


# --------------------------------------------------------------------------- #
# Controlled departures
# --------------------------------------------------------------------------- #


def test_leaf_peer_leave(space, rand_subs):
    sim = build(rand_subs(20, seed=5))
    # Pick a pure-leaf peer (active only at level 0).
    leaf = next(p for p in sim.live_peers() if p.top_level() == 0)
    sim.leave(leaf.process_id)
    report = sim.stabilize(max_rounds=40)
    assert report.is_legal, report.violations
    assert report.peer_count == 19
    assert not leaf.alive


def test_internal_peer_leave(space, rand_subs):
    sim = build(rand_subs(20, seed=6))
    internal = max(sim.live_peers(), key=lambda p: p.top_level())
    sim.leave(internal.process_id)
    report = sim.stabilize(max_rounds=60)
    assert report.is_legal, report.violations
    assert report.peer_count == 19


def test_many_leaves_shrink_tree(space, rand_subs):
    sim = build(rand_subs(30, seed=7))
    initial_height = sim.height()
    for peer_id in [p.process_id for p in sim.live_peers()][:20]:
        sim.leave(peer_id)
        sim.stabilize(max_rounds=40)
    report = sim.stabilize(max_rounds=60)
    assert report.is_legal, report.violations
    assert report.peer_count == 10
    assert sim.height() <= initial_height


def test_leave_everyone_but_one(space, rand_subs):
    sim = build(rand_subs(8, seed=8))
    ids = [p.process_id for p in sim.live_peers()]
    for peer_id in ids[:-1]:
        sim.leave(peer_id)
        sim.stabilize(max_rounds=40)
    survivors = sim.live_peers()
    assert len(survivors) == 1
    assert survivors[0].is_overlay_root()


# --------------------------------------------------------------------------- #
# Join cost accounting
# --------------------------------------------------------------------------- #


def test_join_hops_are_recorded(space, rand_subs):
    sim = build(rand_subs(40, seed=10))
    hops = sim.metrics.histogram("join.hops")
    assert hops.count >= 39  # every join after the first records its hops
    assert hops.maximum <= 20


def test_oracle_tracks_members(space, rand_subs):
    sim = build(rand_subs(10, seed=11))
    assert len(sim.oracle.members()) == 10
    sim.leave(sim.live_peers()[0].process_id)
    assert len(sim.oracle.members()) == 9

"""The durable op journal: capture, verification, crash recovery, interop.

The load-bearing tests here enforce the journal subsystem's contract
(``docs/journal.md``):

* ``test_resume_reexecutes_exactly_the_post_snapshot_tail`` — a journal
  truncated mid-run (the in-process stand-in for a SIGKILL) resumes to
  metrics byte-identical to an uninterrupted run, and the resume re-executes
  *exactly* the ops after the last snapshot — snapshots are actually used,
  and nothing is skipped without gate validation.
* ``test_tampered_record_is_detected`` / ``test_torn_tail_*`` — the hash
  chain catches content edits anywhere, while a torn final write (the only
  damage a crash can legitimately cause) is tolerated and truncated away.
* ``test_resume_raises_on_diverging_rerun`` — a journal whose chain is
  *valid* but whose ops no longer match what the scenario re-issues is a
  divergence error, never a silent partial replay.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.journal import (JournalCorruptError, JournalFormatError,
                           JournalResumeError, JournalWriter, bisect_journal,
                           journal_to_trace, journaling, read_journal,
                           resume_journal, verify_journal)
from repro.journal.records import CHAIN_FIELDS
from repro.runtime.cli import main
from repro.runtime.runner import run_one
from repro.traces.replay import dump_metrics

#: Small-but-nontrivial hotspot invocation used throughout: one bulk
#: subscribe_all op plus one publish per event.
PARAMS = {"peers": 24, "events": 12, "seed": 7, "backend": "drtree:classic"}
TOTAL_OPS = 1 + PARAMS["events"]
SNAPSHOT_EVERY = 5


def journaled_run(path: Path, seal: bool, snapshot_every: int = SNAPSHOT_EVERY):
    """Run hotspot under journaling(); seal only when asked."""
    with journaling(path, scenario="hotspot", params=dict(PARAMS),
                    snapshot_every=snapshot_every) as recorder:
        outcome = run_one("hotspot", dict(PARAMS))
        assert outcome.ok, outcome.error
        if seal:
            recorder.seal()
    return outcome


def truncate_to_ops(src: Path, dst: Path, keep_ops: int) -> None:
    """Keep the journal prefix up to (and including) the ``keep_ops``-th op.

    Cutting at a line boundary leaves an intact chain prefix — the same
    artifact a crash leaves behind after its last durable write.
    """
    kept, ops = [], 0
    for line in src.read_text(encoding="utf-8").splitlines():
        record = json.loads(line)
        if record["rec"] in ("final", "close"):
            break
        kept.append(line)
        if record["rec"] == "op":
            ops += 1
            if ops == keep_ops:
                break
    assert ops == keep_ops
    dst.write_text("".join(part + "\n" for part in kept), encoding="utf-8")


def rechain(lines, dst: Path) -> None:
    """Re-seal edited payload records into a fresh, *valid* hash chain."""
    with JournalWriter(dst) as writer:
        for raw in lines:
            writer.append({key: value for key, value in raw.items()
                           if key not in CHAIN_FIELDS})


@pytest.fixture(scope="module")
def reference_doc():
    """Canonical metrics document of the uninterrupted run."""
    outcome = run_one("hotspot", dict(PARAMS))
    assert outcome.ok, outcome.error
    return dump_metrics(outcome.scenario, outcome.rows)


@pytest.fixture(scope="module")
def sealed_journal(tmp_path_factory):
    path = tmp_path_factory.mktemp("journal") / "sealed.journal"
    journaled_run(path, seal=True)
    return path


# --------------------------------------------------------------------------- #
# Capture and verification
# --------------------------------------------------------------------------- #


def test_sealed_journal_round_trip(sealed_journal):
    journal = verify_journal(sealed_journal)  # strict: canonical bytes too
    assert journal.sealed and not journal.torn_tail
    assert journal.header.scenario == "hotspot"
    assert journal.header.params == PARAMS
    assert journal.header.snapshot_every == SNAPSHOT_EVERY
    assert [system.seg for system in journal.systems] == [0]
    assert journal.systems[0].backend == "drtree:classic"
    assert len(journal.ops) == TOTAL_OPS
    assert [op.n for op in journal.ops] == list(range(TOTAL_OPS))
    # Snapshots land every SNAPSHOT_EVERY ops; the latest one wins.
    assert [snap.ops for snap in journal.snapshots] == [5, 10]
    assert journal.snapshot_for(0).ops == 10
    assert 0 in journal.finals
    assert journal.valid_bytes == sealed_journal.stat().st_size


def test_ops_carry_auto_id_markers(sealed_journal):
    journal = read_journal(sealed_journal)
    publishes = [op for op in journal.ops if op.op == "publish"]
    assert len(publishes) == PARAMS["events"]
    # hotspot names its events up front, so none of the ids were
    # facade-assigned (the auto path is covered by the manual-drive test).
    assert not any(op.auto for op in publishes)
    assert [op.data["event"]["id"] for op in publishes] == [
        f"e{index}" for index in range(len(publishes))]


def test_tampered_record_is_detected(sealed_journal, tmp_path):
    lines = sealed_journal.read_text(encoding="utf-8").splitlines()
    raw = json.loads(lines[3])
    raw["t"] = raw["t"] + 1.0  # a content edit, canonical form preserved
    lines[3] = json.dumps(raw, sort_keys=True, separators=(",", ":"))
    tampered = tmp_path / "tampered.journal"
    tampered.write_text("".join(line + "\n" for line in lines),
                        encoding="utf-8")
    with pytest.raises(JournalCorruptError, match="hash does not match"):
        read_journal(tampered)


def test_dropped_record_is_a_sequence_break(sealed_journal, tmp_path):
    lines = sealed_journal.read_text(encoding="utf-8").splitlines()
    del lines[4]
    gapped = tmp_path / "gapped.journal"
    gapped.write_text("".join(line + "\n" for line in lines),
                      encoding="utf-8")
    with pytest.raises(JournalCorruptError, match="sequence break"):
        read_journal(gapped)


def test_non_canonical_bytes_fail_only_strict_verification(sealed_journal,
                                                           tmp_path):
    lines = sealed_journal.read_text(encoding="utf-8").splitlines()
    # Same record content, different serialization: the chain still holds
    # (hashes cover the canonical re-dump), so only strict mode objects.
    lines[2] = json.dumps(json.loads(lines[2]), sort_keys=True,
                          separators=(", ", ": "))
    cosmetic = tmp_path / "cosmetic.journal"
    cosmetic.write_text("".join(line + "\n" for line in lines),
                        encoding="utf-8")
    assert len(read_journal(cosmetic).ops) == TOTAL_OPS
    with pytest.raises(JournalCorruptError, match="canonical form"):
        verify_journal(cosmetic)


def test_torn_tail_is_tolerated_but_fails_strict(sealed_journal, tmp_path):
    data = sealed_journal.read_bytes()
    cut = data.rstrip(b"\n").rfind(b"\n") + 1 + 7  # mid-final-line
    torn = tmp_path / "torn.journal"
    torn.write_bytes(data[:cut])
    journal = read_journal(torn)
    assert journal.torn_tail
    assert not journal.sealed  # the close record was the torn line
    assert journal.valid_bytes < torn.stat().st_size
    with pytest.raises(JournalCorruptError, match="torn final line"):
        verify_journal(torn)


def test_mid_file_damage_is_never_a_torn_write(sealed_journal, tmp_path):
    lines = sealed_journal.read_text(encoding="utf-8").splitlines()
    lines[5] = lines[5][: len(lines[5]) // 2]  # half a line, mid-file
    damaged = tmp_path / "damaged.journal"
    damaged.write_text("".join(line + "\n" for line in lines),
                       encoding="utf-8")
    with pytest.raises(JournalCorruptError, match="mid-file damage"):
        read_journal(damaged)


# --------------------------------------------------------------------------- #
# Crash recovery
# --------------------------------------------------------------------------- #


def test_resume_reexecutes_exactly_the_post_snapshot_tail(tmp_path,
                                                          reference_doc):
    """The ISSUE's acceptance assertion, in-process.

    Truncate a journal to 8 ops (snapshot at 5): the resume must restore
    from the snapshot, re-execute exactly ops 5..7, and finish the run with
    metrics byte-identical to the uninterrupted reference.
    """
    full = tmp_path / "full.journal"
    journaled_run(full, seal=False)
    crashed = tmp_path / "crashed.journal"
    truncate_to_ops(full, crashed, keep_ops=8)

    surviving = read_journal(crashed)
    assert len(surviving.ops) == 8 and not surviving.sealed
    assert surviving.snapshot_for(0).ops == 5

    outcome, report = resume_journal(crashed)
    assert outcome.ok, outcome.error
    assert dump_metrics(outcome.scenario, outcome.rows) == reference_doc
    stats = report.segments[0]
    assert stats.journaled == 8
    assert stats.snapshot_ops == 5
    assert stats.reexecuted == len(surviving.ops) - surviving.snapshot_for(0).ops == 3
    # The resumed run sealed the journal in place, chain intact throughout.
    assert verify_journal(crashed).sealed


def test_resume_without_snapshots_replays_everything(tmp_path, reference_doc):
    full = tmp_path / "full.journal"
    journaled_run(full, seal=False, snapshot_every=0)
    crashed = tmp_path / "crashed.journal"
    truncate_to_ops(full, crashed, keep_ops=6)
    outcome, report = resume_journal(crashed)
    assert outcome.ok, outcome.error
    assert dump_metrics(outcome.scenario, outcome.rows) == reference_doc
    assert report.segments[0].snapshot_ops == 0
    assert report.segments[0].reexecuted == 6


def test_resume_truncates_a_torn_tail_and_continues(tmp_path, reference_doc):
    full = tmp_path / "full.journal"
    journaled_run(full, seal=False)
    crashed = tmp_path / "crashed.journal"
    truncate_to_ops(full, crashed, keep_ops=7)
    with crashed.open("ab") as handle:
        handle.write(b'{"rec":"op","seg":0')  # the torn final write
    outcome, report = resume_journal(crashed)
    assert outcome.ok, outcome.error
    assert report.torn_tail
    assert report.segments[0].journaled == 7
    assert dump_metrics(outcome.scenario, outcome.rows) == reference_doc
    assert verify_journal(crashed).sealed  # torn bytes truncated away


def test_resume_on_sharded_shm_transport(tmp_path, monkeypatch):
    """Crash recovery is engine- and transport-agnostic.

    A journaled ``drtree:sharded`` run whose shard traffic moves over the
    shared-memory transport (pinned via ``REPRO_SHARD_TRANSPORT``, the same
    knob the J1 scenario and the CI recovery matrix use) truncates and
    resumes to metrics byte-identical to its own uninterrupted run — the
    transport must be invisible to the replay gate too.
    """
    from repro.sim.sharded import TRANSPORT_ENV_VAR, shm_available

    if not shm_available():
        pytest.skip("multiprocessing.shared_memory unavailable")
    monkeypatch.setenv(TRANSPORT_ENV_VAR, "shm")
    params = dict(PARAMS, backend="drtree:sharded")

    reference = run_one("hotspot", dict(params))
    assert reference.ok, reference.error
    sharded_doc = dump_metrics(reference.scenario, reference.rows)

    full = tmp_path / "full.journal"
    with journaling(full, scenario="hotspot", params=dict(params),
                    snapshot_every=SNAPSHOT_EVERY):
        outcome = run_one("hotspot", dict(params))
        assert outcome.ok, outcome.error
    crashed = tmp_path / "crashed.journal"
    truncate_to_ops(full, crashed, keep_ops=8)

    resumed, report = resume_journal(crashed)
    assert resumed.ok, resumed.error
    assert dump_metrics(resumed.scenario, resumed.rows) == sharded_doc
    assert report.segments[0].snapshot_ops == 5
    assert report.segments[0].reexecuted == 3
    assert verify_journal(crashed).sealed


def test_unsealed_complete_journal_resumes_and_seals(tmp_path, reference_doc):
    """A run that finished but died before sealing: nothing to re-execute
    past the tail, and the resume's only real work is the seal."""
    path = tmp_path / "unsealed.journal"
    journaled_run(path, seal=False)
    outcome, report = resume_journal(path)
    assert outcome.ok, outcome.error
    assert report.segments[0].journaled == TOTAL_OPS
    assert report.segments[0].reexecuted == TOTAL_OPS - 10
    assert dump_metrics(outcome.scenario, outcome.rows) == reference_doc
    assert verify_journal(path).sealed


def test_manual_resume_keeps_auto_event_ids_in_lockstep(tmp_path):
    """Facade-assigned event ids survive a crash/resume cycle.

    The journaled prefix holds unnamed (``auto``) publishes: the tail
    replay must re-draw each id from the counter and verify it against the
    journal, while the gate adopts journaled ids *without* consuming — so
    post-resume publishes continue the id sequence exactly.
    """
    from tests.conftest import random_subscriptions

    from repro.api import SystemSpec
    from repro.spatial.filters import Event, make_space

    space = make_space("x", "y")
    subscriptions = random_subscriptions(space, 6, seed=2)
    points = [((31.0 * index) % 97, (17.0 * index) % 89)
              for index in range(6)]

    def build():
        return SystemSpec(space=make_space("x", "y"),
                          backend="drtree:classic", seed=3).build()

    def drive(system):
        system.subscribe_all(subscriptions)
        return [system.publish(Event({"x": x, "y": y})) for x, y in points]

    reference = drive(build())

    path = tmp_path / "manual.journal"
    with journaling(path, snapshot_every=3):
        victim = build()
        victim.subscribe_all(subscriptions)
        for x, y in points[:4]:
            victim.publish(Event({"x": x, "y": y}))
        # The crash: the context exits with the run incomplete, unsealed.

    journal = read_journal(path)
    publishes = [op for op in journal.ops if op.op == "publish"]
    assert all(op.auto for op in publishes)
    assert [op.data["event"]["id"] for op in publishes] == [
        f"event-{index}" for index in range(4)]
    assert journal.snapshot_for(0).ops == 3  # tail replay covers ops 3..4

    with journaling(resume=journal) as recorder:
        outcomes = drive(build())
        recorder.seal()
    assert [sorted(outcome.received) for outcome in outcomes] == [
        sorted(outcome.received) for outcome in reference]
    assert [outcome.messages for outcome in outcomes] == [
        outcome.messages for outcome in reference]
    resumed = verify_journal(path)
    assert resumed.sealed
    assert [op.data["event"]["id"] for op in resumed.ops
            if op.op == "publish"] == [f"event-{index}" for index in range(6)]


def test_sealed_journal_refuses_resume(sealed_journal):
    with pytest.raises(JournalResumeError, match="sealed"):
        resume_journal(sealed_journal)
    with pytest.raises(JournalFormatError, match="sealed"):
        JournalWriter.resume(read_journal(sealed_journal))


def test_resume_raises_on_diverging_rerun(tmp_path):
    """A validly-chained journal whose ops the scenario does not re-issue.

    The hash chain cannot catch a wholesale rewrite (the forger re-seals the
    chain); the replay gate must — by comparing every re-issued op against
    the journal and refusing to continue past the first mismatch.
    """
    full = tmp_path / "full.journal"
    journaled_run(full, seal=False, snapshot_every=0)
    crashed = tmp_path / "crashed.journal"
    truncate_to_ops(full, crashed, keep_ops=6)
    lines = [json.loads(line)
             for line in crashed.read_text(encoding="utf-8").splitlines()]
    publish = next(raw for raw in lines if raw.get("op") == "publish")
    attribute = sorted(publish["event"]["attributes"])[0]
    publish["event"]["attributes"][attribute] += 1.0
    forged = tmp_path / "forged.journal"
    rechain(lines, forged)
    verify_journal(forged)  # the forgery is chain-valid...
    with pytest.raises(JournalResumeError, match="diverged"):
        resume_journal(forged)  # ...and the gate still rejects it


# --------------------------------------------------------------------------- #
# Interop: export to trace, bisect across backends
# --------------------------------------------------------------------------- #


def test_sealed_journal_exports_a_verifying_trace(sealed_journal):
    trace = journal_to_trace(read_journal(sealed_journal))
    assert trace.header.scenario == "hotspot"
    ops = [record for record in trace.body
           if type(record).__name__ == "OpRecord"]
    assert len(ops) == TOTAL_OPS
    assert len(trace.expects) == 1  # sealed -> final rows become expects


def test_unsealed_journal_exports_without_expect_rows(tmp_path):
    path = tmp_path / "unsealed.journal"
    journaled_run(path, seal=False)
    trace = journal_to_trace(read_journal(path))
    assert trace.expects == []


def test_bisect_agreeing_backends(sealed_journal):
    result = bisect_journal(read_journal(sealed_journal),
                            "drtree:classic", "drtree:batched")
    assert result.identical
    assert result.publishes_compared == PARAMS["events"]
    assert "agree on all" in result.describe()


def test_bisect_finds_the_first_divergence(sealed_journal):
    # Flooding reaches the same subscribers but pays a different message
    # bill — exactly the outcome-level divergence bisect exists to localize.
    result = bisect_journal(read_journal(sealed_journal),
                            "drtree:classic", "flooding")
    assert not result.identical
    assert result.divergence.fields  # e.g. ['messages']
    assert "first divergence" in result.describe()


# --------------------------------------------------------------------------- #
# CLI surface
# --------------------------------------------------------------------------- #

CLI_ARGS = ["run", "hotspot", "--peers", str(PARAMS["peers"]),
            "--events", str(PARAMS["events"]), "--seed", str(PARAMS["seed"]),
            "--quiet"]


def test_cli_journaled_run_seals_and_verifies(tmp_path, capsys,
                                              reference_doc):
    journal = tmp_path / "run.journal"
    metrics = tmp_path / "run.metrics.json"
    loud = [arg for arg in CLI_ARGS if arg != "--quiet"]
    assert main([*loud, "--journal", str(journal), "--snapshot-every",
                 str(SNAPSHOT_EVERY), "--metrics", str(metrics)]) == 0
    assert "journaled and sealed" in capsys.readouterr().out
    assert metrics.read_text(encoding="utf-8") == reference_doc
    assert main(["journal", "verify", str(journal)]) == 0
    out = capsys.readouterr().out
    assert "OK" in out and "sealed" in out


def test_cli_failed_run_leaves_resumable_journal_then_resumes(tmp_path,
                                                              capsys):
    journal = tmp_path / "run.journal"
    journaled_run(journal, seal=False)
    assert main(["journal", "verify", str(journal)]) == 0
    assert "unsealed (resumable)" in capsys.readouterr().out
    metrics = tmp_path / "resumed.metrics.json"
    assert main(["resume", str(journal), "--quiet",
                 "--metrics", str(metrics)]) == 0
    out = capsys.readouterr().out
    assert "resumed hotspot" in out
    assert json.loads(metrics.read_text(encoding="utf-8"))


def test_cli_resume_of_sealed_journal_fails_cleanly(sealed_journal, capsys):
    assert main(["resume", str(sealed_journal)]) == 1
    assert "resume failed:" in capsys.readouterr().err


def test_cli_verify_reports_corruption(sealed_journal, tmp_path, capsys):
    lines = sealed_journal.read_text(encoding="utf-8").splitlines()
    del lines[3]
    bad = tmp_path / "bad.journal"
    bad.write_text("".join(line + "\n" for line in lines), encoding="utf-8")
    assert main(["journal", "verify", str(bad)]) == 1
    assert "journal corrupt:" in capsys.readouterr().err


def test_cli_export_then_trace_replay_is_byte_identical(sealed_journal,
                                                        tmp_path,
                                                        reference_doc):
    trace = tmp_path / "exported.jsonl"
    assert main(["journal", "export", str(sealed_journal),
                 "-o", str(trace)]) == 0
    metrics = tmp_path / "replayed.metrics.json"
    assert main(["run", "--trace", str(trace), "--quiet",
                 "--metrics", str(metrics)]) == 0
    assert metrics.read_text(encoding="utf-8") == reference_doc


def test_cli_bisect_exit_codes(sealed_journal):
    assert main(["journal", "bisect", str(sealed_journal),
                 "drtree:classic", "drtree:batched"]) == 0
    assert main(["journal", "bisect", str(sealed_journal),
                 "drtree:classic", "flooding"]) == 1


def test_cli_journal_flag_conflicts(tmp_path, capsys):
    journal = tmp_path / "run.journal"
    assert main(["run", "--trace", str(tmp_path / "t.jsonl"),
                 "--journal", str(journal)]) == 2
    assert "cannot be combined" in capsys.readouterr().err
    assert main([*CLI_ARGS, "--snapshot-every", "5"]) == 2
    assert "--snapshot-every only applies with --journal" \
        in capsys.readouterr().err

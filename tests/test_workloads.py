"""Tests for the workload generators."""

from __future__ import annotations

import pytest

from repro.spatial.containment import ContainmentGraph
from repro.spatial.rectangle import Rect
from repro.workloads.events import (
    biased_events,
    events_matching_rate,
    targeted_events,
    uniform_events,
    zipf_events,
)
from repro.workloads.paper_example import (
    expected_matches,
    paper_events,
    paper_subscriptions,
)
from repro.workloads.errors import (
    UnknownWorkloadFamilyError,
    WorkloadError,
    WorkloadParameterError,
)
from repro.workloads.subscriptions import (
    WORKLOAD_GENERATORS,
    clustered_subscriptions,
    containment_chain_subscriptions,
    mixed_subscriptions,
    uniform_subscriptions,
    zipf_subscriptions,
)


UNIT = Rect((0.0, 0.0), (1.0, 1.0))


# --------------------------------------------------------------------------- #
# Subscription generators
# --------------------------------------------------------------------------- #


@pytest.mark.parametrize("generator", list(WORKLOAD_GENERATORS.values()))
def test_generators_produce_requested_count_in_unit_square(generator):
    workload = generator(40, seed=3)
    assert len(workload) == 40
    names = [sub.name for sub in workload]
    assert len(set(names)) == 40
    for sub in workload:
        assert UNIT.contains_rect(sub.rect)


@pytest.mark.parametrize("generator", list(WORKLOAD_GENERATORS.values()))
def test_generators_are_deterministic(generator):
    first = generator(20, seed=9)
    second = generator(20, seed=9)
    assert [s.rect.as_tuple() for s in first] == [s.rect.as_tuple() for s in second]
    different = generator(20, seed=10)
    assert [s.rect.as_tuple() for s in first] != [
        s.rect.as_tuple() for s in different
    ]


def test_uniform_extent_bound():
    workload = uniform_subscriptions(60, seed=1, max_extent=0.1)
    for sub in workload:
        assert sub.rect.extent(0) <= 0.1 + 1e-9
        assert sub.rect.extent(1) <= 0.1 + 1e-9


def test_clustered_subscriptions_cluster(space):
    workload = clustered_subscriptions(60, seed=2, clusters=2,
                                       cluster_spread=0.01, max_extent=0.05)
    centres = [sub.rect.center for sub in workload]
    # With two tight clusters, the spread of centre coordinates is bimodal:
    # most pairwise distances are either tiny (same cluster) or large.
    small = sum(
        1
        for i in range(0, len(centres), 2)
        for j in range(i + 2, len(centres), 2)
        if abs(centres[i][0] - centres[j][0]) < 0.2
    )
    assert small > 0


def test_zipf_subscriptions_have_heavy_tail():
    workload = zipf_subscriptions(100, seed=4)
    areas = sorted((sub.area() for sub in workload), reverse=True)
    assert areas[0] > areas[-1]
    assert areas[0] > 10 * max(areas[-1], 1e-9) or areas[-1] == 0.0


def test_containment_chain_creates_nested_families():
    workload = containment_chain_subscriptions(24, seed=5, families=3)
    graph = ContainmentGraph.build(list(workload))
    # Every family is a chain, so the containment depth is count/families.
    assert graph.depth() >= 24 // 3 - 1
    assert len(graph.roots()) <= 3


def test_mixed_subscriptions_counts():
    workload = mixed_subscriptions(41, seed=6)
    assert len(workload) == 41


def test_generator_invalid_parameters():
    with pytest.raises(ValueError):
        clustered_subscriptions(10, clusters=0)
    with pytest.raises(ValueError):
        containment_chain_subscriptions(10, families=0)
    with pytest.raises(ValueError):
        containment_chain_subscriptions(10, shrink=1.5)
    with pytest.raises(ValueError):
        zipf_subscriptions(10, exponent=0)


# --------------------------------------------------------------------------- #
# Event generators
# --------------------------------------------------------------------------- #


def test_uniform_events_in_unit_cube(space):
    events = uniform_events(space, 50, seed=1)
    assert len(events) == 50
    assert len({e.event_id for e in events}) == 50
    for event in events:
        assert all(0.0 <= v <= 1.0 for v in event.attributes.values())
        assert set(event.attributes) == {"x", "y"}


def test_biased_events_concentrate(space):
    events = biased_events(space, 200, seed=2, hotspots=1, spread=0.01,
                           hot_fraction=1.0)
    xs = [event.attributes["x"] for event in events]
    mean = sum(xs) / len(xs)
    variance = sum((x - mean) ** 2 for x in xs) / len(xs)
    assert variance < 0.01


def test_biased_events_validation(space):
    with pytest.raises(ValueError):
        biased_events(space, 10, hot_fraction=2.0)
    with pytest.raises(ValueError):
        biased_events(space, 10, hotspots=0)


def test_biased_events_hotspot_assignment_is_sorted_and_deterministic(space):
    """Hotspot centres are sorted before any event draws from them.

    The centre ↔ rank mapping is then a function of the centres' positions
    only, not of the sampling loop's iteration order, so the exact stream is
    reproducible across runs (and Python versions) — the property the
    replayable-trace goldens rely on.
    """
    first = biased_events(space, 120, seed=9, hotspots=4, spread=0.005,
                          hot_fraction=1.0)
    second = biased_events(space, 120, seed=9, hotspots=4, spread=0.005,
                           hot_fraction=1.0)
    assert [e.attributes for e in first] == [e.attributes for e in second]
    # With cycling assignment (index % hotspots) and a tiny spread, events
    # index, index+4, index+8, ... share a hotspot: their x-coordinates are
    # near-constant per residue class and ascending across classes (sorted
    # centres, 2-D lexicographic order makes x non-decreasing).
    per_class = [[e.attributes["x"] for e in first[residue::4]]
                 for residue in range(4)]
    class_means = [sum(xs) / len(xs) for xs in per_class]
    assert class_means == sorted(class_means)
    for mean, xs in zip(class_means, per_class):
        assert all(abs(x - mean) < 0.05 for x in xs)


def test_zipf_events_follow_the_popularity_law(space):
    """Distribution shape: hotspot r receives ~1/r^exponent of hot traffic."""
    hotspots, exponent = 3, 1.2
    events = zipf_events(space, 3000, seed=4, hotspots=hotspots,
                         exponent=exponent, spread=0.002, hot_fraction=1.0)
    # Tiny spread: greedy clustering (any representative within 0.1)
    # recovers the hotspot centres from the stream itself.
    representatives = []
    counts = []
    for event in events:
        point = (event.attributes["x"], event.attributes["y"])
        for index, rep in enumerate(representatives):
            if (rep[0] - point[0]) ** 2 + (rep[1] - point[1]) ** 2 < 0.01:
                counts[index] += 1
                break
        else:
            representatives.append(point)
            counts.append(1)
    assert len(representatives) == hotspots
    weights = [1.0 / (rank ** exponent) for rank in range(1, hotspots + 1)]
    total = sum(weights)
    observed = sorted((count / len(events) for count in counts), reverse=True)
    expected = [weight / total for weight in weights]
    for obs, exp in zip(observed, expected):
        assert abs(obs - exp) < 0.05, (observed, expected)


def test_zipf_events_background_fraction(space):
    events = zipf_events(space, 400, seed=6, hotspots=2, spread=0.01,
                         hot_fraction=0.0)
    # hot_fraction=0: pure uniform background, no clustering.
    xs = [event.attributes["x"] for event in events]
    mean = sum(xs) / len(xs)
    variance = sum((x - mean) ** 2 for x in xs) / len(xs)
    assert variance > 0.04  # uniform variance is 1/12 ≈ 0.083


def test_zipf_events_honour_pinned_centres(space):
    centres = [{"x": 0.9, "y": 0.9}, {"x": 0.2, "y": 0.2}]
    events = zipf_events(space, 300, seed=3, hotspots=2, spread=0.005,
                         hot_fraction=1.0, centres=centres)
    near_a = sum(1 for e in events
                 if abs(e.attributes["x"] - 0.2) < 0.05
                 and abs(e.attributes["y"] - 0.2) < 0.05)
    near_b = sum(1 for e in events
                 if abs(e.attributes["x"] - 0.9) < 0.05
                 and abs(e.attributes["y"] - 0.9) < 0.05)
    assert near_a + near_b == len(events)
    # centres are sorted before ranking: (0.2, 0.2) is rank 1 -> most popular
    assert near_a > near_b


def test_zipf_events_survive_many_flat_hotspots(space):
    """The cumulative rank distribution must cover every possible draw.

    With many near-equal weights the float cumulative sum can end a few ulps
    below 1.0; a draw in that gap used to escape the rank lookup.
    """
    events = zipf_events(space, 5000, seed=8, hotspots=12, exponent=0.8,
                         spread=0.01, hot_fraction=1.0)
    assert len(events) == 5000


def test_zipf_events_validation(space):
    with pytest.raises(ValueError):
        zipf_events(space, 10, hot_fraction=1.5)
    with pytest.raises(ValueError):
        zipf_events(space, 10, hotspots=0)
    with pytest.raises(ValueError):
        zipf_events(space, 10, exponent=0.0)
    with pytest.raises(ValueError):
        zipf_events(space, 10, spread=-0.1)
    with pytest.raises(ValueError):
        zipf_events(space, 10, hotspots=3, centres=[{"x": 0.5, "y": 0.5}])


def test_targeted_events_always_match(space, rand_subs):
    subs = rand_subs(20, seed=3)
    events = targeted_events(space, subs, 40, seed=4)
    assert events_matching_rate(events, subs) == 1.0


def test_targeted_events_need_subscriptions(space):
    with pytest.raises(ValueError):
        targeted_events(space, [], 5)


def test_events_matching_rate_empty():
    assert events_matching_rate([], []) == 0.0


# --------------------------------------------------------------------------- #
# Typed parameter errors
# --------------------------------------------------------------------------- #


def test_workload_errors_are_value_errors():
    """The typed hierarchy stays catchable as plain ValueError."""
    assert issubclass(WorkloadError, ValueError)
    assert issubclass(WorkloadParameterError, WorkloadError)
    assert issubclass(UnknownWorkloadFamilyError, WorkloadError)


def test_event_generators_raise_typed_errors_on_bad_parameters(space):
    for bad in (
        lambda: uniform_events(space, -1),
        lambda: biased_events(space, -1),
        lambda: biased_events(space, 10, hot_fraction=-0.1),
        lambda: biased_events(space, 10, spread=-0.5),
        lambda: zipf_events(space, -1),
        lambda: zipf_events(space, 10, exponent=-1.0),
        lambda: zipf_events(space, 10, hotspots=2,
                            centres=[{"x": 0.1, "y": 0.1}]),
    ):
        with pytest.raises(WorkloadParameterError):
            bad()


def test_subscription_generators_raise_typed_errors_on_bad_parameters():
    for bad in (
        lambda: uniform_subscriptions(-1),
        lambda: uniform_subscriptions(5, max_extent=-0.1),
        lambda: clustered_subscriptions(5, clusters=0),
        lambda: clustered_subscriptions(5, cluster_spread=-0.1),
        lambda: zipf_subscriptions(5, exponent=0.0),
        lambda: zipf_subscriptions(5, min_extent=0.0),
        lambda: zipf_subscriptions(5, min_extent=0.5, max_extent=0.1),
        lambda: containment_chain_subscriptions(5, families=0),
        lambda: containment_chain_subscriptions(5, shrink=0.0),
        lambda: mixed_subscriptions(-1),
    ):
        with pytest.raises(WorkloadParameterError):
            bad()


def test_typed_error_messages_name_the_offending_value(space):
    with pytest.raises(WorkloadParameterError, match="-3"):
        zipf_events(space, -3)
    with pytest.raises(WorkloadParameterError, match="1.5"):
        biased_events(space, 10, hot_fraction=1.5)
    with pytest.raises(WorkloadParameterError, match="0"):
        clustered_subscriptions(10, clusters=0)


# --------------------------------------------------------------------------- #
# Paper example
# --------------------------------------------------------------------------- #


def test_paper_subscriptions_containment_structure():
    subs = paper_subscriptions()
    assert subs["S1"].contains(subs["S2"])
    assert subs["S1"].contains(subs["S3"])
    assert subs["S2"].contains(subs["S4"])
    assert subs["S3"].contains(subs["S4"])
    assert subs["S5"].contains(subs["S6"])
    assert subs["S5"].contains(subs["S7"])
    assert subs["S7"].contains(subs["S8"])
    assert not subs["S1"].contains(subs["S5"])
    assert not subs["S5"].contains(subs["S1"])


def test_paper_events_memberships():
    matches = expected_matches()
    assert matches == {
        "a": ["S1", "S2", "S3", "S4"],
        "b": ["S1"],
        "c": ["S5", "S7", "S8"],
        "d": [],
    }


def test_paper_events_are_in_unit_square():
    for event in paper_events().values():
        assert all(0.0 <= value <= 1.0 for value in event.attributes.values())

"""Smoke and shape tests for the experiment harness (small-scale runs)."""

from __future__ import annotations

from repro.experiments import (
    exp_adversarial_churn,
    exp_backend_matrix,
    exp_baselines,
    exp_churn,
    exp_false_positives,
    exp_height,
    exp_hotspot,
    exp_join_cost,
    exp_latency,
    exp_memory,
    exp_mobility,
    exp_paper_example,
    exp_recovery,
    exp_split_methods,
)
from repro.experiments.harness import ExperimentResult, format_table
from repro.experiments.run_all import EXPERIMENTS, main as run_all_main


# --------------------------------------------------------------------------- #
# Harness plumbing
# --------------------------------------------------------------------------- #


def test_experiment_result_table_rendering():
    result = ExperimentResult("EX", "demo")
    result.add_row(a=1, b=2.5)
    result.add_row(a=2, b=0.001)
    result.add_note("a note")
    table = result.to_table()
    assert "EX: demo" in table
    assert "a note" in table
    assert result.column("a") == [1, 2]


def test_format_table_empty():
    assert "(no rows)" in format_table([])


def test_run_all_registry_and_unknown():
    assert set(EXPERIMENTS) == {f"E{i}" for i in range(1, 11)}
    assert run_all_main(["BOGUS"]) == 2


# --------------------------------------------------------------------------- #
# E1 — running example
# --------------------------------------------------------------------------- #


def test_e1_paper_example_reproduces_claims():
    result = exp_paper_example.run()
    rows = {row["event"]: row for row in result.rows}
    assert set(rows) == {"a", "b", "c", "d"}
    assert all(row["false_negatives"] == 0 for row in result.rows)
    assert rows["a"]["delivered"] == 4
    assert rows["a"]["false_positives"] <= 1
    assert rows["d"]["delivered"] == 0
    assert any("height" in note for note in result.notes)


# --------------------------------------------------------------------------- #
# E2-E5 — structural/latency scaling (reduced sizes)
# --------------------------------------------------------------------------- #


def test_e2_height_within_bounds():
    result = exp_height.run(sizes=(16, 48), configs=((2, 4),))
    assert len(result.rows) == 2
    assert all(row["legal"] and row["within_bound"] for row in result.rows)
    heights = result.column("height")
    assert heights[0] <= heights[1] + 1  # no shrinking with N


def test_e3_memory_within_bounds():
    result = exp_memory.run(sizes=(16, 48))
    assert all(row["legal"] and row["within_bound"] for row in result.rows)


def test_e4_join_cost_logarithmic():
    result = exp_join_cost.run(sizes=(16, 48), probes=5)
    assert all(row["legal"] for row in result.rows)
    assert all(row["mean_hops"] <= row["bound"] for row in result.rows)


def test_e5_latency_bounded_and_lossless():
    result = exp_latency.run(sizes=(16, 48), events_per_size=10)
    assert all(row["false_negatives"] == 0 for row in result.rows)
    assert all(row["mean_hops"] <= row["bound"] for row in result.rows)


# --------------------------------------------------------------------------- #
# E6-E7 — accuracy
# --------------------------------------------------------------------------- #


def test_e6_accuracy_cells():
    result = exp_false_positives.run(
        subscribers=30, events_per_cell=10,
        workloads=("uniform", "containment_chain"),
        event_kinds=("targeted",),
    )
    assert len(result.rows) == 2
    assert all(row["false_negatives"] == 0 for row in result.rows)
    assert all(row["fp_rate_pct"] < 50.0 for row in result.rows)


def test_e7_split_methods_rows():
    result = exp_split_methods.run(subscribers=25, events=10)
    methods = {row["method"] for row in result.rows}
    assert methods == {"linear", "quadratic", "rstar"}
    assert all(row["false_negatives"] == 0 for row in result.rows)


# --------------------------------------------------------------------------- #
# E8-E10 — faults, churn, baselines
# --------------------------------------------------------------------------- #


def test_e8_recovery_all_fault_classes():
    result = exp_recovery.run(sizes=(24,), fraction=0.15, max_rounds=80)
    assert {row["fault"] for row in result.rows} == {
        "controlled_leave", "crash", "corruption", "combined"
    }
    assert all(row["recovered"] for row in result.rows)


def test_e9_churn_shape():
    result = exp_churn.run(n_peers=20, rates=(1.0, 4.0), trials=2)
    assert len(result.rows) == 2
    finite = [row["simulated_mean"] for row in result.rows
              if row["simulated_mean"] != float("inf")]
    assert finite == sorted(finite, reverse=True)


# --------------------------------------------------------------------------- #
# W1-W3 — adversarial workload scenarios (trace-replayable)
# --------------------------------------------------------------------------- #


def test_w1_hotspot_delivers_losslessly():
    result = exp_hotspot.run(subscribers=30, events=20, seed=1)
    (row,) = result.rows
    assert row["false_negatives"] == 0.0
    assert row["delivery_rate"] == 1.0
    assert row["events"] == 20.0
    assert row["subscribers"] == 30


def test_w1_hotspot_engine_equivalence():
    classic = exp_hotspot.run(subscribers=30, events=20, seed=1,
                              backend="drtree:classic")
    batched = exp_hotspot.run(subscribers=30, events=20, seed=1,
                              backend="drtree:batched")
    assert classic.rows == batched.rows


def test_w2_adversarial_churn_crashes_targets_and_recovers():
    result = exp_adversarial_churn.run(subscribers=30, rounds=3,
                                       events_per_round=6, seed=1)
    (row,) = result.rows
    # 3 baseline crashes + 1 surge victim in the middle round.
    assert row["subscribers"] == 30 - 4
    assert row["events"] == 18.0
    # survivors still get almost everything between repairs
    assert row["delivery_rate"] >= 0.8
    assert any("crashed 4 root-targeted peers" in note
               for note in result.notes)


def test_w2_adversarial_churn_parent_target():
    result = exp_adversarial_churn.run(subscribers=30, rounds=2,
                                       events_per_round=5, surge=0,
                                       target="parent", seed=1)
    (row,) = result.rows
    assert row["subscribers"] == 28
    assert result.rows == exp_adversarial_churn.run(
        subscribers=30, rounds=2, events_per_round=5, surge=0,
        target="parent", seed=1).rows  # deterministic


def test_w2_adversarial_churn_surge_only_configuration():
    # crashes_per_round=0 disables the baseline window, like surge=0 does.
    result = exp_adversarial_churn.run(subscribers=24, rounds=2,
                                       events_per_round=5,
                                       crashes_per_round=0, surge=1, seed=1)
    (row,) = result.rows
    assert row["subscribers"] == 23  # only the single surge victim crashed


def test_w3_mobility_moves_walkers_without_losses():
    result = exp_mobility.run(subscribers=24, walkers=3, steps=2,
                              events_per_step=6, seed=1)
    (row,) = result.rows
    assert row["subscribers"] == 24  # moves preserve the population
    assert row["false_negatives"] == 0.0
    assert row["events"] == 12.0
    assert any("3 walkers x 2 steps = 6 subscription moves" in note
               for note in result.notes)


def test_w3_mobility_validation():
    import pytest

    with pytest.raises(ValueError):
        exp_mobility.run(subscribers=2, walkers=5)
    with pytest.raises(ValueError):
        exp_mobility.run(walkers=0)
    with pytest.raises(ValueError):
        exp_mobility.run(steps=0)


def test_e10_baselines_comparison():
    result = exp_baselines.run(subscribers=30, events_count=12)
    systems = {row["system"] for row in result.rows}
    assert systems == {"dr_tree", "containment_tree", "per_dimension",
                       "flooding", "centralized"}
    by_system = {row["system"]: row for row in result.rows}
    assert all(row["false_negatives"] == 0 for row in result.rows)
    assert (by_system["dr_tree"]["fp_rate_pct"]
            <= by_system["flooding"]["fp_rate_pct"])


# --------------------------------------------------------------------------- #
# BM — the backend matrix (every broker, one workload)
# --------------------------------------------------------------------------- #


def test_backend_matrix_covers_every_registered_backend():
    from repro.api import backend_names

    result = exp_backend_matrix.run(subscribers=24, events_count=10, seed=2)
    assert [row["backend"] for row in result.rows] == backend_names()
    assert all(row["false_negatives"] == 0 for row in result.rows)
    assert all(row["subscribers"] == 24 for row in result.rows)


def test_backend_matrix_drtree_engines_agree():
    result = exp_backend_matrix.run(subscribers=24, events_count=10, seed=2)
    by_backend = {row["backend"]: dict(row) for row in result.rows}
    classic = by_backend.pop("drtree:classic")
    batched = by_backend.pop("drtree:batched")
    sharded = by_backend.pop("drtree:sharded")
    net = by_backend.pop("drtree:net")
    for row in (classic, batched, sharded, net):
        row.pop("backend")
    assert classic == batched
    assert classic == sharded
    # drtree:net delivers the same events over real sockets, but its
    # message counter may include background-stabilizer traffic — compare
    # every column except the message cost (see docs/net.md).
    net.pop("msgs_per_event")
    assert net == {key: value for key, value in classic.items()
                   if key != "msgs_per_event"}
    # Flooding reaches everyone: its false-positive rate tops the matrix.
    assert by_backend["flooding"]["fp_rate_pct"] == 100.0

"""Tests for the omniscient legality verifier (Definitions 3.1 / 3.2)."""

from __future__ import annotations

import pytest

from repro.overlay import DRTreeConfig, build_stable_tree
from repro.overlay.verifier import OverlayVerifier, VerificationReport
from repro.spatial.rectangle import Rect
from tests.conftest import random_subscriptions


@pytest.fixture
def stable_sim(space):
    subs = random_subscriptions(space, 18, seed=42)
    return build_stable_tree(subs, DRTreeConfig(2, 4), seed=42)


def test_report_of_stable_tree_is_legal(stable_sim):
    report = stable_sim.verify()
    assert report.is_legal
    assert report.peer_count == 18
    assert report.root is not None
    assert report.height >= 2
    assert report.max_degree <= 4
    assert report.min_internal_degree >= 2
    assert report.mean_state_size > 0
    assert "LEGAL" in report.summary()


def test_empty_report():
    verifier = OverlayVerifier(2, 4)
    report = verifier.verify([])
    assert report.peer_count == 0
    assert report.is_legal


def test_detects_corrupted_mbr(stable_sim):
    peer = next(p for p in stable_sim.live_peers() if p.top_level() >= 1)
    peer.corrupt_mbr(peer.top_level(), Rect((0, 0), (0.0001, 0.0001)))
    report = stable_sim.verify()
    assert not report.is_legal
    assert any("MBR" in violation for violation in report.violations)


def test_detects_corrupted_children(stable_sim):
    root = stable_sim.root()
    level = root.top_level()
    root.corrupt_children(level, [])
    report = stable_sim.verify()
    assert not report.is_legal


def test_detects_corrupted_parent(stable_sim):
    leaf = next(p for p in stable_sim.live_peers() if p.top_level() == 0)
    other = next(p for p in stable_sim.live_peers()
                 if p.top_level() == 0 and p is not leaf)
    leaf.corrupt_parent(0, other.process_id)
    report = stable_sim.verify()
    assert not report.is_legal
    assert any("parent" in violation.lower() or "child" in violation.lower()
               for violation in report.violations)


def test_detects_crashed_peer_left_in_children(stable_sim):
    leaf = next(p for p in stable_sim.live_peers() if p.top_level() == 0)
    leaf.crash()  # crash without telling the simulation driver
    report = stable_sim.verify()
    assert not report.is_legal


def test_detects_overfull_node(stable_sim):
    root = stable_sim.root()
    level = root.top_level()
    live_leaf_ids = [p.process_id for p in stable_sim.live_peers()
                     if p.top_level() == 0][:6]
    root.corrupt_children(level, live_leaf_ids)
    report = stable_sim.verify()
    assert not report.is_legal
    assert any("children" in v or "child" in v for v in report.violations)


def test_containment_awareness_report(stable_sim):
    report = stable_sim.verify(check_containment=True)
    # The weak property must hold on a stabilized overlay built through the
    # ordinary join path; the strong property may be occasionally violated
    # (the paper says so) and is only reported.
    assert report.weak_containment_violations == []
    assert isinstance(report.strong_containment_violations, list)


def test_verification_report_dataclass_defaults():
    report = VerificationReport()
    assert report.is_legal
    assert report.peer_count == 0
    assert "status=LEGAL" in report.summary()

#!/usr/bin/env python3
"""Domain example: surviving churn, crashes and memory corruption.

The DR-tree's distinguishing feature is self-stabilization: it repairs itself
after controlled departures, crashes (uncontrolled departures) and arbitrary
corruption of its soft state (Lemmas 3.3-3.6), and it tolerates sustained
Poisson churn (Lemma 3.7).

This script builds a 80-peer overlay and then subjects it to an escalating
sequence of faults, printing after each phase how many stabilization rounds
the overlay needed to return to a legal configuration and confirming that
publications remain loss-free throughout.

Run with::

    python examples/churn_and_recovery.py
"""

from __future__ import annotations

from repro.analysis.churn_model import expected_disconnection_time
from repro.overlay import DRTreeConfig, DRTreeSimulation
from repro.pubsub import PubSubSystem
from repro.workloads.events import targeted_events
from repro.workloads.subscriptions import clustered_subscriptions


def check_delivery(system: PubSubSystem, tag: str, seed: int) -> None:
    """Publish a batch of events and report delivery accuracy."""
    live_subs = [system.subscription_of(sid) for sid in system.subscribers()]
    events = targeted_events(live_subs[0].space, live_subs, 20, seed=seed,
                             prefix=f"{tag}-")
    outcomes = system.publish_many(events)
    missed = sum(len(outcome.false_negatives) for outcome in outcomes)
    print(f"  publications after {tag}: 20 events, missed deliveries = {missed}")


def rounds_used(system: PubSubSystem) -> float:
    return system.simulation.metrics.histogram("stabilize.rounds").values[-1]


def main() -> None:
    workload = clustered_subscriptions(80, seed=11)
    system = PubSubSystem(workload.space,
                          DRTreeConfig(min_children=2, max_children=5),
                          seed=5)
    print("Building an 80-peer DR-tree...")
    system.subscribe_all(workload)
    print(f"  height={system.overlay_height()} "
          f"legal={system.simulation.verify().is_legal}")
    check_delivery(system, "build", seed=1)

    # Phase 1: a wave of controlled departures.
    print("\nPhase 1: 12 controlled departures")
    for peer_id in system.subscribers()[::7][:12]:
        system.unsubscribe(peer_id)
    print(f"  legal={system.simulation.verify().is_legal} "
          f"(last repair took {rounds_used(system):.0f} rounds)")
    check_delivery(system, "departures", seed=2)

    # Phase 2: simultaneous crashes.
    print("\nPhase 2: 8 simultaneous crashes")
    for peer_id in system.subscribers()[::5][:8]:
        system.fail(peer_id, stabilize=False)
    report = system.stabilize(max_rounds=80)
    print(f"  legal={report.is_legal} "
          f"(repair took {rounds_used(system):.0f} rounds)")
    check_delivery(system, "crashes", seed=3)

    # Phase 3: memory corruption of a third of the peers.
    print("\nPhase 3: corrupting parents/children/MBRs of 30% of the peers")
    corruption = system.simulation.corrupt(fraction=0.3)
    report = system.stabilize(max_rounds=80)
    print(f"  corrupted fields: {corruption.count}, legal={report.is_legal} "
          f"(repair took {rounds_used(system):.0f} rounds)")
    check_delivery(system, "corruption", seed=4)

    # Phase 4: what churn rate can the overlay withstand? (Lemma 3.7)
    print("\nPhase 4: analytic churn resistance (Lemma 3.7)")
    population = len(system.subscribers())
    delta = system.simulation.config.stabilization_period
    for rate in (0.5, 1.0, 2.0, 4.0):
        expected = expected_disconnection_time(population, delta, rate)
        shown = f"{expected:.2e}" if expected != float("inf") else "practically never"
        print(f"  departure rate λ={rate:>4.1f}/s  →  expected disconnection "
              f"time ≈ {shown}")


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Domain example: peer-to-peer stock alert dissemination.

The paper motivates content-based publish/subscribe with selective
dissemination of information: consumers register *complex filters* spanning
multi-dimensional intervals and producers publish events matched against
them.  This example models a classic instance of that workload:

* every trader subscribes to a price/volume window for a stock index
  ("tell me about trades between $40 and $60 with volume above 10k"),
* trades (price, volume) are published by the traders themselves,
* the DR-tree routes each trade to exactly the interested traders.

The script builds a 60-trader overlay with three behavioural groups
(retail, institutional, momentum), replays a synthetic trading session and
prints accuracy and cost statistics, comparing them against a flooding
baseline.

Run with::

    python examples/stock_alerts.py
"""

from __future__ import annotations

from repro.baselines import FloodingOverlay
from repro.overlay import DRTreeConfig
from repro.pubsub import PubSubSystem
from repro.sim.rng import RandomStreams
from repro.spatial.filters import Event, make_space, subscription_from_intervals


def build_traders(count: int, seed: int = 7):
    """Create price/volume window subscriptions for three trader profiles."""
    rng = RandomStreams(seed).stream("stock.subscriptions")
    space = make_space("price", "volume")
    subscriptions = []
    for index in range(count):
        profile = index % 3
        if profile == 0:
            # Retail traders: narrow price bands, any volume.
            low = rng.uniform(10, 90)
            intervals = {"price": (low, low + rng.uniform(2, 8)),
                         "volume": (0.0, 100_000.0)}
        elif profile == 1:
            # Institutional desks: broad price range, large volumes only.
            intervals = {"price": (rng.uniform(0, 30), rng.uniform(60, 100)),
                         "volume": (rng.uniform(20_000, 50_000), 100_000.0)}
        else:
            # Momentum traders: the hot region around the current price.
            centre = rng.uniform(40, 60)
            intervals = {"price": (centre - 5, centre + 5),
                         "volume": (rng.uniform(0, 5_000), rng.uniform(30_000, 80_000))}
        subscriptions.append(
            subscription_from_intervals(f"trader{index:03d}", space, intervals)
        )
    return space, subscriptions


def trading_session(space, count: int, seed: int = 13):
    """A synthetic stream of trades drifting around $50."""
    rng = RandomStreams(seed).stream("stock.trades")
    price = 50.0
    for index in range(count):
        price = min(max(price + rng.gauss(0.0, 1.5), 1.0), 99.0)
        volume = abs(rng.gauss(15_000, 20_000)) % 100_000
        yield Event({"price": price, "volume": volume}, event_id=f"trade{index}")


def main() -> None:
    space, subscriptions = build_traders(60)
    system = PubSubSystem(space, DRTreeConfig(min_children=2, max_children=5),
                          seed=3)
    print(f"Registering {len(subscriptions)} traders...")
    system.subscribe_all(subscriptions)
    print(f"Overlay height: {system.overlay_height()}  "
          f"legal: {system.simulation.verify().is_legal}\n")

    flooding = FloodingOverlay(degree=4, seed=3)
    flooding.add_all(subscriptions)
    subs_by_id = {sub.name: sub for sub in subscriptions}

    trades = list(trading_session(space, 150))
    flooding_messages = 0
    flooding_false_positives = 0
    for trade in trades:
        system.publish(trade)
        result = flooding.disseminate(trade)
        flooding_messages += result.messages
        flooding_false_positives += len(result.false_positives(subs_by_id, trade))

    summary = system.summary()
    print("DR-tree results over the trading session:")
    print(f"  trades published:       {summary['events']:.0f}")
    print(f"  alerts delivered:       {summary['true_deliveries']:.0f}")
    print(f"  missed alerts:          {summary['false_negatives']:.0f}")
    print(f"  false positive rate:    {summary['false_positive_rate']:.1%}")
    print(f"  messages per trade:     {summary['mean_messages_per_event']:.1f}")
    print(f"  mean delivery hops:     {summary['mean_delivery_hops']:.1f}")
    print("\nFlooding baseline over the same session:")
    print(f"  messages per trade:     {flooding_messages / len(trades):.1f}")
    print(f"  false positives/trade:  {flooding_false_positives / len(trades):.1f}")


if __name__ == "__main__":
    main()

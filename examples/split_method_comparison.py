#!/usr/bin/env python3
"""Domain example: choosing a split method for a clustered workload.

Section 3.2 lists three node-splitting policies the DR-tree supports —
linear, quadratic and R* — inherited from the classical R-tree literature.
The policy determines how tight the internal MBRs are, and therefore how many
false positives the embedded publish/subscribe system produces.

This example builds the same clustered subscription workload with each policy
and prints the resulting structural quality and routing accuracy, together
with the centralized R-tree baseline for reference.

Run with::

    python examples/split_method_comparison.py
"""

from __future__ import annotations

from repro.baselines import CentralizedBrokerOverlay
from repro.experiments.exp_split_methods import run as run_split_comparison
from repro.rtree import RTree
from repro.workloads.subscriptions import clustered_subscriptions


def main() -> None:
    print("Comparing DR-tree split methods on a clustered workload "
          "(60 subscribers, 40 probe events)...\n")
    result = run_split_comparison(subscribers=60, events=40, seed=2)
    print(result.to_table())

    print("\nSequential R-tree reference (centralized broker):")
    workload = clustered_subscriptions(60, seed=2)
    for method in ("linear", "quadratic", "rstar"):
        index = RTree(min_entries=2, max_entries=5, split_method=method)
        for sub in workload:
            index.insert(sub.rect, sub.name)
        print(f"  {method:<10} height={index.height()}  "
              f"splits={index.stats.splits}")

    broker = CentralizedBrokerOverlay(min_entries=2, max_entries=5)
    broker.add_all(list(workload))
    print(f"\nCentralized broker R-tree height: {broker.index_height()} "
          "(single point of failure — the problem the DR-tree removes)")


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Large scale: 5000 subscribers through the STR bulk-load fast path.

Joining thousands of peers one protocol cascade at a time is impractical;
``build_stable_tree`` (and ``PubSubSystem.subscribe_all``) switch to the STR
bulk bootstrap past :data:`repro.overlay.BULK_THRESHOLD` peers, laying out a
legal DR-tree directly in ``O(n log n)``.  The script builds a 5000-peer
overlay, publishes a batch of events and prints structure and accuracy.

The command-line equivalent::

    python -m repro run paper_example --peers 5000

Run with::

    python examples/large_scale.py [peers]
"""

from __future__ import annotations

import sys
import time

from repro.overlay import DRTreeConfig
from repro.pubsub import PubSubSystem
from repro.workloads.events import targeted_events
from repro.workloads.subscriptions import uniform_subscriptions


def main() -> None:
    peers = int(sys.argv[1]) if len(sys.argv) > 1 else 5000
    workload = uniform_subscriptions(peers, seed=11)

    start = time.perf_counter()
    system = PubSubSystem(workload.space, DRTreeConfig(2, 4), seed=11)
    system.subscribe_all(workload)
    build_seconds = time.perf_counter() - start

    report = system.simulation.verify()
    print(f"built a DR-tree over {peers} subscribers "
          f"in {build_seconds:.2f}s (bulk fast path)")
    print(f"  legal: {report.is_legal}   height: {report.height}   "
          f"max degree: {report.max_degree}")

    events = targeted_events(workload.space, list(workload), 20, seed=42)
    start = time.perf_counter()
    system.publish_many(events)
    publish_seconds = time.perf_counter() - start

    summary = system.summary()
    print(f"published {len(events)} events in {publish_seconds:.2f}s")
    print(f"  false negatives:  {summary['false_negatives']:.0f} (must be 0)")
    print(f"  false positive rate: {summary['false_positive_rate']:.4f}")
    print(f"  mean messages/event: {summary['mean_messages_per_event']:.1f}")
    print(f"  mean delivery hops:  {summary['mean_delivery_hops']:.2f} "
          f"(height bound: {report.height})")


if __name__ == "__main__":
    main()

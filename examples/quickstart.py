#!/usr/bin/env python3
"""Quickstart: a content-based publish/subscribe service on a DR-tree.

Reproduces the paper's running example (Figures 1-5): eight subscribers with
two-attribute range filters self-organize into a DR-tree overlay; four events
are published and routed through the tree.  The script prints the overlay
structure, the per-event delivery outcome, and the accuracy summary
(no false negatives, very few false positives).

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro.overlay import DRTreeConfig
from repro.pubsub import PubSubSystem
from repro.workloads.paper_example import (
    paper_attribute_space,
    paper_events,
    paper_subscriptions,
)


def describe_overlay(system: PubSubSystem) -> None:
    """Print every peer's role at every level of the DR-tree."""
    print("DR-tree structure (level 0 = leaves):")
    simulation = system.simulation
    root = simulation.root()
    print(f"  root: {root.process_id if root else '??'}   "
          f"height: {simulation.height()}")
    for peer in sorted(simulation.live_peers(), key=lambda p: p.process_id):
        for level in sorted(peer.instances, reverse=True):
            instance = peer.instances[level]
            children = [c for c in instance.child_ids() if c != peer.process_id]
            role = "leaf" if level == 0 else f"internal, children={children}"
            print(f"  {peer.process_id}@{level}: {role}")
    print()


def main() -> None:
    subscriptions = paper_subscriptions()
    system = PubSubSystem(
        paper_attribute_space(),
        config=DRTreeConfig(min_children=2, max_children=4),
        seed=1,
    )

    print(f"Subscribing {len(subscriptions)} peers (S1..S8)...")
    system.subscribe_all(subscriptions.values())
    report = system.simulation.verify(check_containment=True)
    print(f"Overlay legal: {report.is_legal}   height: {report.height}\n")

    describe_overlay(system)

    print("Publishing the paper's events a..d:")
    for event_id, event in paper_events().items():
        outcome = system.publish(event)
        print(
            f"  event {event_id}: intended={sorted(outcome.intended)} "
            f"delivered={sorted(outcome.true_deliveries)} "
            f"false_positives={sorted(outcome.false_positives)} "
            f"messages={outcome.messages}"
        )

    summary = system.summary()
    print("\nAccuracy summary:")
    print(f"  false negatives:      {summary['false_negatives']:.0f}")
    print(f"  false positive rate:  {summary['false_positive_rate']:.1%}")
    print(f"  messages per event:   {summary['mean_messages_per_event']:.1f}")


if __name__ == "__main__":
    main()

"""Setuptools shim.

The offline environment ships a setuptools build backend without wheel
support, so editable installs go through the legacy ``setup.py develop``
path (``pip install -e . --no-build-isolation --no-use-pep517``).  All the
project metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()

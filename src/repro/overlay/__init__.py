"""The DR-tree overlay — the paper's primary contribution.

A DR-tree is a distributed, self-stabilizing R-tree whose nodes are owned by
the subscribers themselves: a subscriber responsible for an internal node of
the tree filters events for all subscribers in its subtree, and a subscriber
is recursively its own child in the subtree it roots (Section 3).

Level numbering
---------------
The paper numbers levels from the root downward (the root is level 0 and a
node at level ``l`` has children at level ``l + 1``).  That numbering shifts
every time the tree grows a level, which is awkward for a long-lived
distributed structure, so this implementation numbers levels from the leaves
upward: every leaf instance is at level 0 and a node at level ``l`` has
children at level ``l - 1`` and a parent at level ``l + 1``.  The protocol
logic is unchanged; only the arithmetic on level indices is mirrored.

Public entry points
-------------------
* :class:`~repro.overlay.peer.DRTreePeer` — the peer process implementing the
  join, leave, dissemination and stabilization protocols,
* :class:`~repro.overlay.builder.DRTreeSimulation` — builds a network of
  peers, drives joins/leaves/stabilization rounds and exposes the verifier,
* :class:`~repro.overlay.verifier.OverlayVerifier` — checks Definition 3.1
  (legal state) and the containment-awareness properties 3.1 / 3.2.
"""

from repro.overlay.config import DRTreeConfig
from repro.overlay.peer import DRTreePeer
from repro.overlay.oracle import ContactOracle
from repro.overlay.builder import DRTreeSimulation, build_stable_tree
from repro.overlay.bootstrap import BULK_THRESHOLD, bootstrap_overlay
from repro.overlay.verifier import OverlayVerifier, VerificationReport

__all__ = [
    "DRTreeConfig",
    "DRTreePeer",
    "ContactOracle",
    "DRTreeSimulation",
    "build_stable_tree",
    "BULK_THRESHOLD",
    "bootstrap_overlay",
    "OverlayVerifier",
    "VerificationReport",
]

"""Structure repair: underload handling and compaction (Figure 14).

A node whose children set drops below ``m`` is *underloaded*.  The parent of
underloaded nodes periodically runs CHECK_STRUCTURE: it tries to merge an
underloaded child with a sibling whose combined children sets still fit in
``M`` (``Search_Compaction_Candidate`` / ``Compact``); when no candidate
exists, the underloaded child's subtree is dismantled and its members re-join
through the oracle (``INITIATE_NEW_CONNECTION``).
"""

from __future__ import annotations

from typing import Optional

from repro.overlay import messages as msg
from repro.overlay.election import best_set_cover
from repro.overlay.state import serialize_children, deserialize_children
from repro.sim.messages import Message


class StructureMixin:
    """Compaction behaviour of :class:`~repro.overlay.peer.DRTreePeer`."""

    # ------------------------------------------------------------------ #
    # Instance dissolution
    # ------------------------------------------------------------------ #

    def reset_to_unjoined_leaf(self) -> None:
        """Dismantle every internal instance and fall back to a bare leaf.

        A peer told to re-join must not keep *any* internal role: a stale
        internal instance keeps other peers attached to a node that is no
        longer part of the structure (it still ACKs their PARENT_QUERYs), and
        a stale root advertisement makes the oracle hand out the un-joined
        peer as a contact — two un-joined peers can then bounce their JOIN
        requests off each other forever.  Children of the dismantled levels
        are told to re-join themselves; the peer withdraws from root
        arbitration and from the oracle's contact pool until it has re-joined.
        """
        self.ensure_leaf_instance()
        for level in sorted(self.instances, reverse=True):
            if level == 0:
                continue
            instance = self.instances.pop(level)
            parent = instance.parent
            if parent and parent != self.process_id:
                self.local_or_send(parent, msg.REMOVE_CHILD,
                                   level=level + 1, child=self.process_id)
            for child_id in instance.child_ids():
                if child_id == self.process_id:
                    continue
                self.local_or_send(child_id, msg.INITIATE_NEW_CONNECTION,
                                   level=level - 1)
        leaf = self.instances[0]
        leaf.parent = self.process_id
        leaf.parent_confirmed = True
        leaf.missed_parent_acks = 0
        leaf.root_distance = 0
        self.joined = False
        self.oracle.withdraw_root(self.process_id)
        self.oracle.remove_member(self.process_id)

    def dissolve_instance(self, level: int) -> None:
        """Drop this peer's instance at ``level`` and detach it from its parent."""
        instance = self.instances.pop(level, None)
        if instance is None or level == 0:
            if instance is not None:
                self.instances[0] = instance  # never drop the leaf instance
            return
        self.metrics.increment("structure.instances_dissolved")
        parent = instance.parent
        if parent and parent != self.process_id:
            self.local_or_send(parent, msg.REMOVE_CHILD,
                               level=level + 1, child=self.process_id)
        higher = self.instances.get(level + 1)
        if higher is not None and self.process_id in higher.children:
            higher.remove_child(self.process_id)
        below = self.instances.get(level - 1)
        if below is not None and below.parent == self.process_id:
            # The lower instance lost its parent; it will re-join on its own
            # if no surviving ancestor claims it.
            below.parent = self.process_id

    def handle_remove_child(self, message: Message) -> None:
        """Forget a child that dissolved or was compacted away."""
        level = int(message.payload["level"])
        child = message.payload["child"]
        instance = self.instances.get(level)
        if instance is None:
            return
        if instance.remove_child(child):
            instance.mbr = instance.computed_mbr(self.filter_rect)
            instance.underloaded = (
                len(instance.children) < self.config.min_children
            )

    # ------------------------------------------------------------------ #
    # CHECK_STRUCTURE (Figure 14)
    # ------------------------------------------------------------------ #

    def check_structure(self) -> None:
        """Run the compaction module at every level that has underloaded children."""
        for level in sorted(self.instances, reverse=True):
            instance = self.instances.get(level)
            if instance is None or instance.is_leaf or level - 1 == 0:
                # Children are leaves: leaves cannot be underloaded.
                continue
            self._compact_level(level)

    def handle_check_structure(self, message: Message) -> None:
        """Explicit CHECK_STRUCTURE trigger from an underloaded child (Figure 9)."""
        level = int(message.payload.get("level", 0))
        if level in self.instances and level - 1 > 0:
            self._compact_level(level)

    def _compact_level(self, level: int) -> None:
        instance = self.instances.get(level)
        if instance is None:
            return
        underloaded = [
            child_id
            for child_id, info in instance.children.items()
            if info.underloaded
        ]
        for child_id in underloaded:
            if child_id not in instance.children:
                continue  # already merged during this pass
            candidate = self._search_compaction_candidate(level, child_id)
            if candidate is None:
                self.metrics.increment("structure.reinsertions")
                self.local_or_send(child_id, msg.INITIATE_NEW_CONNECTION,
                                   level=level - 1)
                continue
            self.metrics.increment("structure.compactions")
            self._compact(level, child_id, candidate)

    def _search_compaction_candidate(self, level: int, child_id: str
                                     ) -> Optional[str]:
        """Figure 14's ``Search_Compaction_Candidate``: closest mergeable sibling."""
        instance = self.instances[level]
        target = instance.children[child_id]
        best: Optional[str] = None
        best_area = float("inf")
        for other_id, info in instance.children.items():
            if other_id == child_id:
                continue
            if info.child_count + target.child_count > self.config.max_children:
                continue
            union_area = info.mbr.union(target.mbr).area()
            if union_area < best_area or (union_area == best_area
                                          and (best is None or other_id < best)):
                best_area = union_area
                best = other_id
        return best

    def _compact(self, level: int, first: str, second: str) -> None:
        """Figure 14's ``Compact``: merge two children, the better cover leads."""
        instance = self.instances[level]
        first_info = instance.children[first]
        second_info = instance.children[second]
        merged_mbr = first_info.mbr.union(second_info.mbr)
        winner = best_set_cover(merged_mbr, (first, first_info.mbr),
                                (second, second_info.mbr))
        loser = second if winner == first else first
        loser_info = instance.children[loser]
        winner_info = instance.children[winner]
        # The loser hands its children to the winner and dissolves.
        if loser == self.process_id:
            self._dissolve_into(level - 1, winner)
        else:
            self.local_or_send(loser, msg.DISSOLVE,
                               level=level - 1, new_parent=winner)
        # Optimistically update the local bookkeeping; PARENT_QUERY refreshes it.
        instance.remove_child(loser)
        winner_info.mbr = merged_mbr
        winner_info.child_count = winner_info.child_count + loser_info.child_count
        winner_info.underloaded = (
            winner_info.child_count < self.config.min_children
        )
        instance.mbr = instance.computed_mbr(self.filter_rect)
        instance.underloaded = len(instance.children) < self.config.min_children

    # ------------------------------------------------------------------ #
    # DISSOLVE / ADOPT_CHILDREN
    # ------------------------------------------------------------------ #

    def handle_dissolve(self, message: Message) -> None:
        """Merge this peer's instance at ``level`` into ``new_parent``."""
        level = int(message.payload["level"])
        new_parent = message.payload["new_parent"]
        self._dissolve_into(level, new_parent)

    def _dissolve_into(self, level: int, new_parent: str) -> None:
        instance = self.instances.get(level)
        if instance is None or level == 0 or new_parent == self.process_id:
            return
        self.metrics.increment("structure.dissolved_into_sibling")
        children_payload = serialize_children(instance.children)
        del self.instances[level]
        self.local_or_send(new_parent, msg.ADOPT_CHILDREN,
                           level=level, children=children_payload)
        below = self.instances.get(level - 1)
        if below is not None:
            below.parent = new_parent

    def handle_adopt_children(self, message: Message) -> None:
        """Absorb the children of a sibling that dissolved during compaction."""
        level = int(message.payload["level"])
        children = deserialize_children(message.payload["children"],
                                        self.probation_round())
        self.ensure_leaf_instance()
        if level <= 0:
            return
        if level not in self.instances:
            # We are expected to hold this level (we were the compaction
            # winner); create the instance with ourselves as first child.
            self._fill_levels_below(level + 1)
        instance = self.instances.get(level)
        if instance is None:
            return
        for child_id, info in children.items():
            if child_id == self.process_id:
                continue
            instance.add_child(child_id, info.mbr, info.child_count,
                               info.last_seen_round)
            self.local_or_send(child_id, msg.SET_PARENT,
                               level=level - 1, parent=self.process_id)
        instance.mbr = instance.computed_mbr(self.filter_rect)
        instance.underloaded = len(instance.children) < self.config.min_children
        # Compaction decisions are based on cached child counts, which may be
        # stale; if the merge overshot the M bound, split it back down.
        self._maybe_split_overflow(level)

    # ------------------------------------------------------------------ #
    # INITIATE_NEW_CONNECTION (Figure 14, bottom)
    # ------------------------------------------------------------------ #

    def handle_initiate_new_connection(self, message: Message) -> None:
        """Dismantle the instance at ``level`` and make its members re-join.

        Leaves do not re-join immediately: they are marked as un-joined and
        re-enter through the oracle at their next stabilization round.  The
        deferral bounds the number of messages a single dismantling can
        trigger (an immediate re-join could split the very node that caused
        the dismantling and loop).
        """
        level = int(message.payload.get("level", 0))
        self.metrics.increment("structure.new_connections")
        if level <= 0 or level not in self.instances:
            # Leaf (or already gone): re-join at the next stabilization round.
            self.reset_to_unjoined_leaf()
            return
        instance = self.instances.pop(level)
        parent = instance.parent
        if parent and parent != self.process_id:
            self.local_or_send(parent, msg.REMOVE_CHILD,
                               level=level + 1, child=self.process_id)
        for child_id in instance.child_ids():
            if child_id == self.process_id:
                continue
            self.local_or_send(child_id, msg.INITIATE_NEW_CONNECTION,
                               level=level - 1)
        # This peer's own lower instance must also find a new place; defer
        # leaf re-joins, re-insert higher subtrees right away.
        if level - 1 in self.instances:
            if level - 1 == 0:
                # The whole chain above the leaf is gone with it.
                self.reset_to_unjoined_leaf()
            else:
                self.rejoin_subtree(level - 1)

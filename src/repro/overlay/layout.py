"""Pure DR-tree layout computation and shard partitioning.

The STR bulk bootstrap (:mod:`repro.overlay.bootstrap`) lays out a legal
DR-tree bottom-up: tile the current level's MBRs with
:func:`repro.rtree.bulk.str_groups`, elect each group's parent with the
paper's election rule, recurse on the parents.  This module factors the
*computation* of that layout out of the peer wiring, as plain data:

* :func:`compute_layout` runs the grouping/election loop over
  ``(peer id, rectangle)`` pairs only — no simulation objects — and returns
  a :class:`TreeLayout` describing every group, elected parent and MBR.
* :func:`repro.overlay.bootstrap.wire_layout` applies a layout to real
  :class:`~repro.overlay.peer.DRTreePeer` objects (optionally only a subset
  of them).

Separating the two is what makes the sharded simulator
(:mod:`repro.sim.sharded`) possible: the coordinator computes one global
layout, :func:`partition_layout` cuts it into subtrees along the STR tiling,
and each worker process wires *its* peers from the same layout — so the
distributed overlay is, node for node, the tree the single-process bootstrap
would have built.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Set, Tuple, TYPE_CHECKING

from repro.overlay.election import elect_group_parent
from repro.rtree.bulk import str_groups
from repro.spatial.rectangle import Rect

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.overlay.config import DRTreeConfig


@dataclass(frozen=True)
class LayoutGroup:
    """One STR group: a parent instance and the children it was elected over.

    ``members`` are ``(child id, child MBR, child's own child count)`` in
    group order — exactly the values the bootstrap feeds to
    :meth:`~repro.overlay.state.LevelState.add_child`.  The parent's new
    instance lives at ``child_level + 1``.
    """

    parent: str
    child_level: int
    members: Tuple[Tuple[str, Rect, int], ...]
    mbr: Rect


@dataclass(frozen=True)
class TreeLayout:
    """The complete shape of a bulk-loaded DR-tree, as plain data.

    ``levels[i]`` holds the groups whose children sit at level ``i`` (their
    parents therefore at level ``i + 1``); ``leaves`` are the original
    ``(peer id, filter rect)`` pairs.  A single-peer population has no
    levels and ``root_id`` is that peer.
    """

    root_id: str
    levels: Tuple[Tuple[LayoutGroup, ...], ...]
    leaves: Tuple[Tuple[str, Rect], ...]

    @property
    def height(self) -> int:
        """Number of levels of the laid-out tree (a lone leaf has height 1)."""
        return len(self.levels) + 1

    def root_distances(self) -> Dict[Tuple[str, int], int]:
        """Hop distance from the root instance to every ``(peer, level)``.

        Mirrors the walk the bootstrap seeds into
        ``LevelState.root_distance`` so cycle detection starts accurate.
        """
        children_of: Dict[Tuple[str, int], List[str]] = {
            (group.parent, group.child_level + 1):
                [child_id for child_id, _, _ in group.members]
            for level in self.levels for group in level
        }
        distances: Dict[Tuple[str, int], int] = {}
        stack = [(self.root_id, len(self.levels), 0)]
        seen: Set[Tuple[str, int]] = set()
        while stack:
            peer_id, level, distance = stack.pop()
            if (peer_id, level) in seen or level < 0:
                continue
            seen.add((peer_id, level))
            kids = children_of.get((peer_id, level))
            if level > 0 and kids is None:
                continue
            distances[(peer_id, level)] = distance
            for child_id in kids or ():
                stack.append((child_id, level - 1, distance + 1))
        return distances


def compute_layout(leaves: Sequence[Tuple[str, Rect]],
                   config: "DRTreeConfig") -> TreeLayout:
    """Lay out a legal DR-tree over ``(peer id, rect)`` pairs, as data.

    Runs exactly the loop of the bulk bootstrap — STR-tile the current
    level's MBRs into groups of at most ``config.max_children``, elect each
    group's parent with the paper's rule (largest MBR wins), recurse on the
    parents — but against ids and rectangles only.  The returned layout is
    deterministic in its inputs.
    """
    members: List[Tuple[str, Rect]] = list(leaves)
    if not members:
        raise ValueError("cannot lay out a DR-tree over zero subscriptions")
    # Child count of each member's instance at the current level: leaves
    # have none; a parent elected at the previous iteration has one child
    # per member of the group it won.
    child_counts: Dict[str, int] = {name: 0 for name, _ in members}
    levels: List[Tuple[LayoutGroup, ...]] = []
    level = 0
    while len(members) > 1:
        next_members: List[Tuple[str, Rect]] = []
        level_groups: List[LayoutGroup] = []
        groups = str_groups([mbr for _, mbr in members], config.max_children)
        for group in groups:
            chosen: Dict[str, Rect] = {members[i][0]: members[i][1]
                                       for i in group}
            parent_id = elect_group_parent(chosen)
            mbr = Rect.union_of(chosen.values())
            level_groups.append(LayoutGroup(
                parent=parent_id,
                child_level=level,
                members=tuple((child_id, child_mbr, child_counts[child_id])
                              for child_id, child_mbr in chosen.items()),
                mbr=mbr,
            ))
            next_members.append((parent_id, mbr))
        child_counts = {group.parent: len(group.members)
                        for group in level_groups}
        levels.append(tuple(level_groups))
        members = next_members
        level += 1
    return TreeLayout(root_id=members[0][0], levels=tuple(levels),
                      leaves=tuple(leaves))


@dataclass(frozen=True)
class ShardPlan:
    """An assignment of every leaf peer to one shard.

    ``cut_level`` is the STR transition whose groups became the shard
    subtrees (their parents are nodes at ``cut_level + 1``); ``subtrees``
    records ``(subtree parent id, shard, leaf count)`` per group.
    ``effective_shards`` can be smaller than the requested shard count when
    the tree has fewer subtrees at the cut than shards were asked for.
    """

    shards: int
    cut_level: int
    owner: Dict[str, int]
    subtrees: Tuple[Tuple[str, int, int], ...]

    @property
    def effective_shards(self) -> int:
        """Number of shards that actually own at least one peer."""
        return len(set(self.owner.values())) if self.owner else 0


def partition_layout(layout: TreeLayout, shards: int) -> ShardPlan:
    """Cut a layout into ``shards`` spatially coherent subtree shards.

    Chooses the *highest* STR transition with at least ``shards`` groups
    (falling back to the leaf transition), so each shard is a union of
    whole DR-tree subtrees; subtrees are then packed onto shards greedily,
    largest first, onto the least-loaded shard.  Every leaf peer lands in
    exactly one shard, and all peers of one subtree share a shard — only
    tree edges *above* the cut cross shard boundaries.
    """
    if shards < 1:
        raise ValueError("shards must be at least 1")
    leaf_ids = [name for name, _ in layout.leaves]
    if shards == 1 or not layout.levels:
        return ShardPlan(
            shards=1, cut_level=0,
            owner={peer_id: 0 for peer_id in leaf_ids},
            subtrees=((layout.root_id, 0, len(leaf_ids)),),
        )
    cut = 0
    for index in range(len(layout.levels) - 1, -1, -1):
        if len(layout.levels[index]) >= shards:
            cut = index
            break
    group_of: Dict[Tuple[str, int], LayoutGroup] = {
        (group.parent, group.child_level): group
        for level in layout.levels for group in level
    }

    def leaves_under(node_id: str, level: int) -> List[str]:
        out: List[str] = []
        stack = [(node_id, level)]
        while stack:
            current, current_level = stack.pop()
            if current_level == 0:
                out.append(current)
                continue
            group = group_of[(current, current_level - 1)]
            stack.extend((child_id, current_level - 1)
                         for child_id, _, _ in group.members)
        return out

    subtree_leaves = [
        (group.parent, leaves_under(group.parent, cut + 1))
        for group in layout.levels[cut]
    ]
    # Deterministic greedy packing: biggest subtree first onto the shard
    # with the fewest leaves so far (ties: lowest shard index).
    order = sorted(subtree_leaves, key=lambda item: (-len(item[1]), item[0]))
    loads = [0] * shards
    owner: Dict[str, int] = {}
    subtrees: List[Tuple[str, int, int]] = []
    for parent_id, leaf_list in order:
        shard = min(range(shards), key=lambda index: (loads[index], index))
        loads[shard] += len(leaf_list)
        subtrees.append((parent_id, shard, len(leaf_list)))
        for leaf in leaf_list:
            owner[leaf] = shard
    if len(owner) != len(leaf_ids):  # pragma: no cover - structural invariant
        raise RuntimeError(
            f"shard partition covered {len(owner)} of {len(leaf_ids)} peers")
    return ShardPlan(shards=shards, cut_level=cut, owner=owner,
                     subtrees=tuple(subtrees))


def partition_members(layout: TreeLayout,
                      plan: ShardPlan) -> Dict[int, List[str]]:
    """Leaf peer ids per shard, in the layout's leaf order."""
    by_shard: Dict[int, List[str]] = {}
    for name, _ in layout.leaves:
        by_shard.setdefault(plan.owner[name], []).append(name)
    return by_shard


__all__ = [
    "LayoutGroup",
    "TreeLayout",
    "ShardPlan",
    "compute_layout",
    "partition_layout",
    "partition_members",
]

"""Per-level soft state of a DR-tree peer.

Section 3.2 ("Data Structures"): each process maintains, for every level
where it is active, a children set, the level's MBR, a parent pointer and an
``underloaded`` flag.  All of this state is *soft* — it can be corrupted by
transient faults and is repaired by the stabilization modules.  The only
non-corruptible datum is the peer's own filter, which lives on the peer
object itself.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.spatial.rectangle import Rect


@dataclass
class ChildInfo:
    """What a parent knows about one of its children at a given level."""

    mbr: Rect
    #: Number of children the child itself has (used by compaction to decide
    #: whether two underloaded children can merge within the M bound).
    child_count: int = 0
    #: True when the child reported itself underloaded.
    underloaded: bool = False
    #: Stabilization round at which the child last refreshed itself; parents
    #: discard children that stay silent for too long.
    last_seen_round: int = 0


@dataclass
class LevelState:
    """The state of one node instance (one peer at one level).

    Level 0 instances are leaves: their MBR equals the peer's filter and the
    children mapping stays empty.  Instances at level ``l > 0`` have children
    at level ``l - 1``.
    """

    level: int
    mbr: Rect
    parent: Optional[str] = None
    children: Dict[str, ChildInfo] = field(default_factory=dict)
    underloaded: bool = False
    #: Set by a PARENT_ACK; cleared at the start of each stabilization round.
    #: An instance whose flag stays false re-joins through the oracle.
    parent_confirmed: bool = True
    #: Consecutive stabilization rounds without parent confirmation.
    missed_parent_acks: int = 0
    #: Believed number of hops from the DR-tree root to this instance,
    #: refreshed by PARENT_ACKs.  A distance that keeps growing past the
    #: plausible tree height reveals that the instance hangs off a detached
    #: cycle rather than the real root, and triggers a re-join.
    root_distance: int = 0

    @property
    def is_leaf(self) -> bool:
        """True for level-0 instances."""
        return self.level == 0

    def child_ids(self) -> list[str]:
        """Sorted ids of the children known at this level."""
        return sorted(self.children)

    def child_mbrs(self) -> Dict[str, Rect]:
        """Mapping child id → cached MBR."""
        return {child: info.mbr for child, info in self.children.items()}

    def computed_mbr(self, own_filter_rect: Rect) -> Rect:
        """The MBR this instance *should* have (Figure 7, ``Compute_MBR``).

        Leaves return the peer's filter rectangle; internal instances return
        the union of the cached children MBRs (falling back to the filter when
        the children set is empty, which only happens transiently).
        """
        if self.is_leaf or not self.children:
            return own_filter_rect
        return Rect.union_of(info.mbr for info in self.children.values())

    def add_child(self, child_id: str, mbr: Rect, child_count: int = 0,
                  round_number: int = 0) -> None:
        """Insert or refresh a child entry."""
        existing = self.children.get(child_id)
        if existing is None:
            self.children[child_id] = ChildInfo(
                mbr=mbr, child_count=child_count, last_seen_round=round_number
            )
        else:
            existing.mbr = mbr
            existing.child_count = child_count
            existing.last_seen_round = round_number

    def remove_child(self, child_id: str) -> bool:
        """Drop a child entry; returns True when it existed."""
        return self.children.pop(child_id, None) is not None

    def __repr__(self) -> str:  # pragma: no cover - debugging convenience
        return (
            f"LevelState(level={self.level}, parent={self.parent!r}, "
            f"children={sorted(self.children)}, underloaded={self.underloaded})"
        )


def serialize_children(children: Dict[str, ChildInfo]) -> Dict[str, dict]:
    """Turn a children mapping into plain data suitable for a message payload."""
    return {
        child_id: {
            "lower": list(info.mbr.lower),
            "upper": list(info.mbr.upper),
            "child_count": info.child_count,
            "underloaded": info.underloaded,
        }
        for child_id, info in children.items()
    }


def deserialize_children(payload: Dict[str, dict], round_number: int = 0
                         ) -> Dict[str, ChildInfo]:
    """Inverse of :func:`serialize_children`."""
    result: Dict[str, ChildInfo] = {}
    for child_id, data in payload.items():
        result[child_id] = ChildInfo(
            mbr=Rect(tuple(data["lower"]), tuple(data["upper"])),
            child_count=int(data.get("child_count", 0)),
            underloaded=bool(data.get("underloaded", False)),
            last_seen_round=round_number,
        )
    return result

"""Controlled departures (Figure 9).

A subscriber that leaves properly sends a LEAVE message to the parent of its
topmost instance and shuts down.  The parent removes the subscriber from its
children set, recomputes its MBR and — if the removal pushed the children set
below the ``m`` limit — asks its own parent to run the structure check
(compaction).  The subtree that hung below the departing subscriber is
repaired by the stabilization mechanisms: the orphaned children notice that
their parent no longer acknowledges them and re-join.
"""

from __future__ import annotations

from repro.overlay import messages as msg
from repro.sim.messages import Message


class LeaveMixin:
    """Controlled-departure behaviour of :class:`~repro.overlay.peer.DRTreePeer`."""

    def leave(self) -> None:
        """Leave the overlay gracefully (controlled departure)."""
        self.metrics.increment("leave.controlled")
        top = self.top_level() if self.instances else None
        if top is not None:
            instance = self.instances[top]
            parent = instance.parent
            if parent and parent != self.process_id:
                self.send(parent, msg.LEAVE,
                          child=self.process_id, child_level=top)
        self.oracle.remove_member(self.process_id)
        if self.oracle.contact(exclude=self.process_id) is None:
            self.oracle.set_root_hint(None)
        self.shutdown()

    def handle_leave(self, message: Message) -> None:
        """Remove a departing child from the children set (Figure 9)."""
        child = message.payload["child"]
        child_level = int(message.payload.get("child_level", 0))
        level = child_level + 1
        instance = self.instances.get(level)
        if instance is None or child not in instance.children:
            # Look for the child at any level (the hint may be stale).
            for candidate in sorted(self.instances):
                if child in self.instances[candidate].children:
                    instance = self.instances[candidate]
                    level = candidate
                    break
            else:
                return
        instance.remove_child(child)
        instance.mbr = instance.computed_mbr(self.filter_rect)
        was_underloaded = instance.underloaded
        instance.underloaded = len(instance.children) < self.config.min_children
        self.metrics.increment("leave.children_removed")
        if (instance.underloaded and not was_underloaded
                and instance.parent
                and instance.parent != self.process_id):
            # Figure 9: ask the parent to run the structure check.
            self.send(instance.parent, msg.CHECK_STRUCTURE, level=level + 1)
        if not instance.children and level > 0:
            # The instance lost every child; dissolve it.
            self.dissolve_instance(level)

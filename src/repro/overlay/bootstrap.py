"""Bulk bootstrap: lay out a legal DR-tree directly (STR fast path).

Joining ``N`` subscribers one at a time through the join protocol costs
``O(N)`` message cascades and makes multi-thousand-peer scenarios
impractically slow.  For *initial construction* nothing in the paper requires
the join protocol: any legal configuration (Definition 3.1) is a valid
starting point, and the protocols only have to maintain/repair it.

This module builds such a configuration in ``O(N log N)``:

1. tile the subscription rectangles with STR
   (:func:`repro.rtree.bulk.str_groups`) into groups of at most ``M``
   (and, because groups are balanced, at least ``m``) members,
2. elect each group's parent with the paper's election rule (largest MBR
   wins, Figure 6) so the result matches what the protocol itself would
   elect, and give the elected peer the corresponding higher-level instance,
3. repeat on the group parents until a single root remains.

The peers come out fully wired — parent pointers, children sets with fresh
cached MBRs/counts, ``joined`` flags, oracle membership and root hint — so
dissemination works immediately and the first stabilization round is a pure
refresh.  The verifier accepts the configuration by construction.

Callers normally do not use this module directly:
:func:`repro.overlay.builder.build_stable_tree` and
:meth:`repro.pubsub.api.PubSubSystem.subscribe_all` switch to it
automatically at :data:`BULK_THRESHOLD` peers (``bulk=True`` forces it,
``bulk=False`` forces the join protocol).  The fast path requires an empty
simulation — it lays a tree out from scratch and cannot graft onto an
existing one.  See ``docs/architecture.md`` ("Construction paths").
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple, TYPE_CHECKING

from repro.overlay.election import elect_group_parent
from repro.overlay.state import LevelState
from repro.rtree.bulk import str_groups
from repro.spatial.filters import Subscription
from repro.spatial.rectangle import Rect

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.overlay.builder import DRTreeSimulation

#: ``build_stable_tree`` switches to the bulk path at this population.
BULK_THRESHOLD = 512


def bootstrap_overlay(sim: "DRTreeSimulation",
                      subscriptions: Sequence[Subscription]) -> None:
    """Create one peer per subscription and wire them into a legal DR-tree."""
    peers = [sim.add_peer(subscription, join=False)
             for subscription in subscriptions]
    if not peers:
        return
    for peer in peers:
        peer.ensure_leaf_instance()
    if len(peers) == 1:
        # Degenerate overlay: a single-leaf root.
        peers[0].start_join()
        return

    config = sim.config
    #: (peer id, MBR of the peer's instance at the current level).
    members: List[Tuple[str, Rect]] = [
        (peer.process_id, peer.filter_rect) for peer in peers
    ]
    level = 0
    while len(members) > 1:
        next_members: List[Tuple[str, Rect]] = []
        groups = str_groups([mbr for _, mbr in members], config.max_children)
        for group in groups:
            chosen: Dict[str, Rect] = {members[i][0]: members[i][1]
                                       for i in group}
            parent_id = elect_group_parent(chosen)
            parent = sim.peers[parent_id]
            state = LevelState(level=level + 1,
                               mbr=Rect.union_of(chosen.values()))
            for child_id, child_mbr in chosen.items():
                child_instance = sim.peers[child_id].instances[level]
                state.add_child(child_id, child_mbr,
                                len(child_instance.children),
                                parent.round_number)
                child_instance.parent = parent_id
                child_instance.parent_confirmed = True
                child_instance.missed_parent_acks = 0
            state.underloaded = len(state.children) < config.min_children
            state.parent = parent_id
            parent.instances[level + 1] = state
            next_members.append((parent_id, state.mbr))
        members = next_members
        level += 1

    root_id = members[0][0]
    for peer in peers:
        peer.joined = True
        sim.oracle.add_member(peer.process_id)
    sim.oracle.set_root_hint(root_id)
    _assign_root_distances(sim, root_id)


def _assign_root_distances(sim: "DRTreeSimulation", root_id: str) -> None:
    """Seed the believed root distances so cycle detection starts accurate."""
    root = sim.peers[root_id]
    stack = [(root_id, root.top_level(), 0)]
    seen = set()
    while stack:
        peer_id, level, distance = stack.pop()
        if (peer_id, level) in seen or level < 0:
            continue
        seen.add((peer_id, level))
        instance = sim.peers[peer_id].instances.get(level)
        if instance is None:
            continue
        instance.root_distance = distance
        for child_id in instance.children:
            stack.append((child_id, level - 1, distance + 1))

"""Bulk bootstrap: lay out a legal DR-tree directly (STR fast path).

Joining ``N`` subscribers one at a time through the join protocol costs
``O(N)`` message cascades and makes multi-thousand-peer scenarios
impractically slow.  For *initial construction* nothing in the paper requires
the join protocol: any legal configuration (Definition 3.1) is a valid
starting point, and the protocols only have to maintain/repair it.

This module builds such a configuration in ``O(N log N)``:

1. compute the tree's shape with :func:`repro.overlay.layout.compute_layout`
   — STR-tile the subscription rectangles
   (:func:`repro.rtree.bulk.str_groups`) into groups of at most ``M`` (and,
   because groups are balanced, at least ``m``) members, elect each group's
   parent with the paper's election rule (largest MBR wins, Figure 6), and
   repeat on the group parents until a single root remains;
2. wire the peers from that layout with :func:`wire_layout` — parent
   pointers, children sets with fresh cached MBRs/counts, ``joined`` flags,
   oracle membership and root hint.

The peers come out fully wired, so dissemination works immediately and the
first stabilization round is a pure refresh.  The verifier accepts the
configuration by construction.  Because the layout is plain data computed
from ``(id, rectangle)`` pairs alone, the sharded simulator
(:mod:`repro.sim.sharded`) reuses the exact same two steps with the wiring
split across worker processes — every shard wires its slice of the one
global layout, so the distributed overlay is node-for-node identical to the
single-process one.

Callers normally do not use this module directly:
:func:`repro.overlay.builder.build_stable_tree` and
:meth:`repro.pubsub.api.PubSubSystem.subscribe_all` switch to it
automatically at :data:`BULK_THRESHOLD` peers (``bulk=True`` forces it,
``bulk=False`` forces the join protocol).  The fast path requires an empty
simulation — it lays a tree out from scratch and cannot graft onto an
existing one.  See ``docs/architecture.md`` ("Construction paths").
"""

from __future__ import annotations

from typing import Mapping, Optional, Sequence, Set, TYPE_CHECKING

from repro.overlay.layout import TreeLayout, compute_layout
from repro.overlay.state import LevelState
from repro.spatial.filters import Subscription

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.overlay.builder import DRTreeSimulation
    from repro.overlay.config import DRTreeConfig
    from repro.overlay.peer import DRTreePeer

#: ``build_stable_tree`` switches to the bulk path at this population.
BULK_THRESHOLD = 512


def bootstrap_overlay(sim: "DRTreeSimulation",
                      subscriptions: Sequence[Subscription]) -> None:
    """Create one peer per subscription and wire them into a legal DR-tree."""
    peers = [sim.add_peer(subscription, join=False)
             for subscription in subscriptions]
    if not peers:
        return
    for peer in peers:
        peer.ensure_leaf_instance()
    if len(peers) == 1:
        # Degenerate overlay: a single-leaf root.
        peers[0].start_join()
        return

    layout = compute_layout(
        [(peer.process_id, peer.filter_rect) for peer in peers], sim.config)
    wire_layout(sim.peers, layout, sim.config)
    for peer in peers:
        peer.joined = True
        sim.oracle.add_member(peer.process_id)
    sim.oracle.set_root_hint(layout.root_id)


def wire_layout(peers: Mapping[str, "DRTreePeer"], layout: TreeLayout,
                config: "DRTreeConfig",
                only: Optional[Set[str]] = None) -> None:
    """Apply a computed layout to live peer objects.

    ``only`` restricts the wiring to a subset of peer ids (the sharded
    simulator passes each worker's local peers); with the default ``None``
    every peer named by the layout is wired.  Peers outside ``only`` are
    never touched — a group whose parent is remote still wires its local
    children's parent pointers, and vice versa, so the union of the per-
    shard wirings equals the full single-process wiring.
    """
    local = set(peers) if only is None else set(only)
    for level_groups in layout.levels:
        for group in level_groups:
            level = group.child_level
            if group.parent in local:
                parent = peers[group.parent]
                state = LevelState(level=level + 1, mbr=group.mbr)
                for child_id, child_mbr, child_count in group.members:
                    state.add_child(child_id, child_mbr, child_count,
                                    parent.round_number)
                state.underloaded = len(state.children) < config.min_children
                state.parent = group.parent
                parent.instances[level + 1] = state
            for child_id, _, _ in group.members:
                if child_id in local:
                    child_instance = peers[child_id].instances[level]
                    child_instance.parent = group.parent
                    child_instance.parent_confirmed = True
                    child_instance.missed_parent_acks = 0
    for (peer_id, level), distance in layout.root_distances().items():
        if peer_id in local:
            instance = peers[peer_id].instances.get(level)
            if instance is not None:
                instance.root_distance = distance

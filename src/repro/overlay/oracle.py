"""The connection oracle.

Section 3.2 (Joins): "we assume that, at connection time, a subscriber
invokes an oracle that accurately provides a subscriber already in the
structure".  The stabilization modules re-use the same oracle whenever an
orphaned peer must re-join (``Get_Contact_Node`` in Figures 11 and 14).

The oracle is deliberately simple: it tracks the set of live members and
hands out a contact.  Two policies are provided:

* ``"root"`` — return the peer currently believed to be the root (best odds
  of finding a good position, per the paper),
* ``"random"`` — return a uniformly random live member (exercises the
  upward-redirection path of the join protocol).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.sim.rng import RandomStreams


class ContactOracle:
    """Provides joining/re-joining peers with a live member of the overlay."""

    def __init__(self, policy: str = "root", streams: Optional[RandomStreams] = None):
        if policy not in ("root", "random"):
            raise ValueError(f"unknown oracle policy {policy!r}")
        self.policy = policy
        self._rng = (streams if streams is not None else RandomStreams(0)).stream("oracle")
        self._members: Dict[str, bool] = {}
        self._root_hint: Optional[str] = None
        #: Self-proclaimed roots and the area of their advertised MBR.  Several
        #: roots can coexist transiently (after partitions, crashes of the
        #: root, or concurrent re-joins); the overlay converges to a single
        #: tree because every root defers to the best advertised root.
        self._advertised_roots: Dict[str, float] = {}

    # ------------------------------------------------------------------ #
    # Membership maintenance (driven by the simulation/builder)
    # ------------------------------------------------------------------ #

    def add_member(self, peer_id: str) -> None:
        """Record that ``peer_id`` is part of the overlay."""
        self._members[peer_id] = True

    def remove_member(self, peer_id: str) -> None:
        """Record that ``peer_id`` left or crashed."""
        self._members.pop(peer_id, None)
        self._advertised_roots.pop(peer_id, None)
        if self._root_hint == peer_id:
            self._root_hint = None

    def set_root_hint(self, peer_id: Optional[str]) -> None:
        """Update the oracle's belief about the current root."""
        self._root_hint = peer_id

    # ------------------------------------------------------------------ #
    # Root arbitration
    # ------------------------------------------------------------------ #

    def advertise_root(self, peer_id: str, area: float) -> None:
        """A peer declares itself the root of (a fragment of) the DR-tree.

        The paper assumes the oracle "accurately provides a subscriber
        already in the structure"; this registry is the mechanism that makes
        the oracle accurate when several fragments exist — every fragment
        root advertises itself, and all but the best one re-join under it.
        """
        self._advertised_roots[peer_id] = area

    def withdraw_root(self, peer_id: str) -> None:
        """A peer stops being (or claiming to be) a root."""
        self._advertised_roots.pop(peer_id, None)

    def best_root(self) -> Optional[str]:
        """The advertised root with the largest MBR (ties: smallest id)."""
        if not self._advertised_roots:
            return self._root_hint
        return min(
            self._advertised_roots,
            key=lambda pid: (-self._advertised_roots[pid], pid),
        )

    def advertised_roots(self) -> Dict[str, float]:
        """A copy of the advertised-roots registry (for tests/diagnostics)."""
        return dict(self._advertised_roots)

    def members(self) -> List[str]:
        """Sorted list of known members."""
        return sorted(self._members)

    # ------------------------------------------------------------------ #
    # Contact selection
    # ------------------------------------------------------------------ #

    def contact(self, exclude: Optional[str] = None) -> Optional[str]:
        """A live member to contact, or ``None`` when the overlay is empty.

        ``exclude`` prevents a re-joining peer from being given itself.
        """
        candidates = [pid for pid in sorted(self._members) if pid != exclude]
        if not candidates:
            return None
        if self.policy == "root":
            best = self.best_root()
            if best in candidates:
                return best
            if self._root_hint in candidates:
                return self._root_hint
            return candidates[0]
        return self._rng.choice(candidates)

    def __len__(self) -> int:
        return len(self._members)

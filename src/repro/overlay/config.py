"""Protocol configuration for the DR-tree overlay."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class DRTreeConfig:
    """Tuning knobs of the DR-tree protocol.

    Attributes
    ----------
    min_children:
        The paper's ``m`` — minimum number of children of a non-root internal
        node.
    max_children:
        The paper's ``M`` — maximum number of children of an internal node.
        The paper requires ``M >= 2 m`` so that a split always produces two
        valid groups.
    split_method:
        ``"linear"``, ``"quadratic"`` or ``"rstar"`` (Section 3.2).
    stabilization_period:
        Interval between two periodic stabilization rounds at a peer, in
        simulated time units (the paper's "timeout").
    child_staleness_rounds:
        Number of stabilization rounds without hearing from a child before the
        parent discards it (implements the paper's discard of children whose
        parent variable points elsewhere, plus crash detection).
    parent_silence_rounds:
        The child-side mirror of ``child_staleness_rounds``: number of
        consecutive unanswered PARENT_QUERY rounds before an instance declares
        itself orphaned and re-joins.  Both silence budgets trade repair
        latency against false alarms — on a lossy network a round-trip fails
        with probability ``q``, so spurious re-joins arrive at roughly
        ``N * q**k`` per round across ``N`` links; raise ``k`` when sustained
        loss would otherwise out-churn the repairs.
    message_latency:
        Default network latency used by the convenience builder.
    """

    min_children: int = 2
    max_children: int = 4
    split_method: str = "quadratic"
    stabilization_period: float = 10.0
    child_staleness_rounds: int = 3
    parent_silence_rounds: int = 2
    message_latency: float = 1.0

    def __post_init__(self) -> None:
        if self.min_children < 2:
            raise ValueError("min_children (m) must be at least 2")
        if self.max_children < 2 * self.min_children:
            raise ValueError(
                f"max_children (M={self.max_children}) must be at least twice "
                f"min_children (m={self.min_children})"
            )
        if self.split_method not in ("linear", "quadratic", "rstar"):
            raise ValueError(f"unknown split method {self.split_method!r}")
        if self.stabilization_period <= 0:
            raise ValueError("stabilization_period must be positive")
        if self.child_staleness_rounds < 1:
            raise ValueError("child_staleness_rounds must be at least 1")
        if self.parent_silence_rounds < 1:
            raise ValueError("parent_silence_rounds must be at least 1")

"""Join phase of the DR-tree protocol (Figure 8).

A joining subscriber obtains a contact from the oracle and sends it a JOIN
request.  The request is first redirected upward until it reaches the root,
then routed downward: at every internal instance the request follows the
child whose MBR needs the least enlargement (``Choose_Best_Child``), the MBR
of every traversed instance being enlarged on the way.  The descent stops at
the lowest internal level, where the new subscriber is adopted as a child —
possibly triggering a split and, at the root, the election of a new root.

The same machinery re-inserts *subtrees*: a re-joining orphaned instance at
level ``h`` carries ``subtree_level=h`` in its JOIN request, and the descent
stops at level ``h + 1`` so that the height balance of the tree is preserved.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.overlay import messages as msg
from repro.overlay.election import choose_best_child, elect_group_parent, is_better_cover
from repro.overlay.state import ChildInfo, LevelState, serialize_children, deserialize_children
from repro.rtree.entry import Entry
from repro.rtree.split import get_split_function
from repro.sim.messages import Message
from repro.spatial.rectangle import Rect


class JoinMixin:
    """Join-phase behaviour of :class:`~repro.overlay.peer.DRTreePeer`."""

    # ------------------------------------------------------------------ #
    # Outgoing side: starting a join
    # ------------------------------------------------------------------ #

    #: A join request is retried at most this many times back-to-back; after
    #: that the peer waits for the next stabilization round to try again (the
    #: round also repairs whatever routing anomaly made the join fail).
    MAX_JOIN_RETRIES = 3

    def start_join(self) -> None:
        """Join the overlay through the oracle's contact node."""
        self.ensure_leaf_instance()
        if self.joined:
            return
        contact = self.oracle.contact(exclude=self.process_id)
        if contact is None:
            # First peer of the overlay: it is the root of a single-leaf tree.
            self._become_single_root()
            return
        self.metrics.increment("join.requests")
        self.send(
            contact,
            msg.JOIN,
            joiner=self.process_id,
            lower=list(self.filter_rect.lower),
            upper=list(self.filter_rect.upper),
            subtree_level=0,
            child_count=0,
            hops=0,
        )
        # Retry if the request is lost (e.g. the contact crashed meanwhile).
        self.set_timer(self.config.stabilization_period * 2, self._retry_join)

    def _retry_join(self) -> None:
        if self.joined or not self.alive:
            self._join_retries = 0
            return
        self._join_retries = getattr(self, "_join_retries", 0) + 1
        if self._join_retries > self.MAX_JOIN_RETRIES:
            # Give up for now; the next stabilization round re-initiates the
            # join once the structure has had a chance to repair itself.
            self.metrics.increment("join.retry_budget_exhausted")
            return
        self.metrics.increment("join.retries")
        self.start_join()

    def _become_single_root(self) -> None:
        leaf = self.instances[0]
        leaf.parent = self.process_id
        self.joined = True
        self.oracle.add_member(self.process_id)
        self.oracle.set_root_hint(self.process_id)

    def rejoin_subtree(self, level: int) -> None:
        """Re-insert the whole subtree rooted at this peer's ``level`` instance.

        Used by the stabilization modules when an instance becomes orphaned
        (its parent disappeared or disowned it).  The subtree is re-inserted
        at the height that keeps all leaves at level 0.  Re-joins are
        rate-limited to one every couple of rounds so that a subtree whose
        adoption is still being processed does not get re-inserted a second
        time elsewhere.
        """
        instance = self.instances.get(level)
        if instance is None:
            return
        last = getattr(self, "_last_rejoin_round", None)
        if last is not None and self.round_number - last < 2:
            self.metrics.increment("join.rejoin_rate_limited")
            return
        self._last_rejoin_round = self.round_number
        contact = self.oracle.contact(exclude=self.process_id)
        if contact is None:
            # Nobody else is alive: this peer becomes the root of what it has.
            instance.parent = self.process_id
            self.joined = True
            self.oracle.add_member(self.process_id)
            self.oracle.set_root_hint(self.process_id)
            return
        self.metrics.increment("join.subtree_rejoins")
        self.send(
            contact,
            msg.JOIN,
            joiner=self.process_id,
            lower=list(instance.mbr.lower),
            upper=list(instance.mbr.upper),
            subtree_level=level,
            child_count=len(instance.children),
            hops=0,
        )

    # ------------------------------------------------------------------ #
    # Incoming side: routing JOIN requests
    # ------------------------------------------------------------------ #

    def handle_join(self, message: Message) -> None:
        """Route a JOIN request (Figure 8, upper half)."""
        payload = message.payload
        joiner = payload["joiner"]
        if joiner == self.process_id:
            # Our own request was routed back to us: some peer already links
            # to us, so we *are* part of the structure.  Mark the join as
            # complete — the periodic checks repair whatever made us doubt it
            # (e.g. an INITIATE_NEW_CONNECTION that reached the current root).
            if not self.joined and self.instances:
                self.metrics.increment("join.self_loop_completed")
                self.joined = True
                self.oracle.add_member(self.process_id)
            return
        rect = Rect(tuple(payload["lower"]), tuple(payload["upper"]))
        subtree_level = int(payload.get("subtree_level", 0))
        child_count = int(payload.get("child_count", 0))
        hops = int(payload.get("hops", 0))
        descend_level = payload.get("descend_level")

        if not self.joined or not self.instances:
            # We cannot help; the joiner will retry through the oracle.
            self.metrics.increment("join.bounced")
            return
        if hops > 64:
            # Corrupted parent pointers can form routing cycles; drop the
            # request and let the joiner retry once stabilization has run.
            self.metrics.increment("join.dropped_cycles")
            return

        target_level = subtree_level + 1

        if descend_level is None:
            # Phase 1: redirect upward until the root is reached.
            if not self.is_overlay_root():
                parent = self.instances[self.top_level()].parent
                if parent and parent != self.process_id:
                    self._forward_join(parent, payload, hops + 1, descend_level=None)
                    return
            descend_level = self.top_level()

        descend_level = int(descend_level)
        self._descend_join(joiner, rect, subtree_level, child_count,
                           hops, descend_level, target_level)

    def _forward_join(self, recipient: str, payload: Dict, hops: int,
                      descend_level: Optional[int]) -> None:
        forwarded = dict(payload)
        forwarded["hops"] = hops
        if descend_level is None:
            forwarded.pop("descend_level", None)
        else:
            forwarded["descend_level"] = descend_level
        self.send(recipient, msg.JOIN, **forwarded)

    def _descend_join(self, joiner: str, rect: Rect, subtree_level: int,
                      child_count: int, hops: int, level: int,
                      target_level: int) -> None:
        """Phase 2: walk down, enlarging MBRs, until the adoption level."""
        if level not in self.instances:
            # Stale routing information: start from the lowest instance we do
            # hold that is still above the target (or adopt at the target).
            candidates = [lvl for lvl in self.instances if lvl >= target_level]
            if not candidates:
                self._adopt_child(target_level, joiner, rect, child_count, hops)
                return
            level = min(candidates)
        while True:
            instance = self.instances[level]
            if level <= target_level or instance.is_leaf:
                self._adopt_child(max(level, target_level), joiner, rect,
                                  child_count, hops)
                return
            # Enlarge the MBR on the way down (Figure 8).
            instance.mbr = instance.mbr.union(rect)
            # Never route a request towards the joiner itself: a re-joining
            # peer can still appear as an internal node on the path, and
            # forwarding the request to it would loop forever.
            candidates_mbrs = {
                cid: mbr
                for cid, mbr in instance.child_mbrs().items()
                if cid != joiner
            }
            if not candidates_mbrs:
                self._adopt_child(max(level, target_level), joiner, rect,
                                  child_count, hops)
                return
            best = choose_best_child(candidates_mbrs, rect)
            # Enlarge the cached MBR of the branch the request descends into:
            # dissemination consults these cached copies, and waiting for the
            # next PARENT_QUERY refresh would open a window of false negatives
            # for events that only interest the new subscriber.
            best_info = instance.children.get(best)
            if best_info is not None:
                best_info.mbr = best_info.mbr.union(rect)
            if best == self.process_id:
                if level - 1 in self.instances:
                    level -= 1
                    continue
                # Our own chain is broken below this level: adopt here rather
                # than looping back to the top.
                self._adopt_child(max(level, target_level), joiner, rect,
                                  child_count, hops)
                return
            payload = {
                "joiner": joiner,
                "lower": list(rect.lower),
                "upper": list(rect.upper),
                "subtree_level": subtree_level,
                "child_count": child_count,
            }
            self._forward_join(best, payload, hops + 1, descend_level=level - 1)
            return

    # ------------------------------------------------------------------ #
    # Adoption (ADD_CHILD, Figure 8 lower half)
    # ------------------------------------------------------------------ #

    def handle_add_child(self, message: Message) -> None:
        """Adopt a child pushed back up by a splitting descendant.

        If this peer no longer holds the requested level (the sender's parent
        pointer was stale), the child is adopted at the closest level this
        peer does hold.  The resulting local imbalance is repaired by the
        stabilization modules; refusing the child here would orphan a whole
        subtree and trigger an avalanche of re-joins.
        """
        payload = message.payload
        level = int(payload["level"])
        child = payload["child"]
        rect = Rect(tuple(payload["lower"]), tuple(payload["upper"]))
        child_count = int(payload.get("child_count", 0))
        if level not in self.instances:
            level = max(self.top_level(), 1)
            self.metrics.increment("join.add_child_redirected")
        self._adopt_child(level, child, rect, child_count, hops=message.hops)

    def _adopt_child(self, level: int, child: str, rect: Rect,
                     child_count: int, hops: int) -> None:
        """Add ``child`` to the instance at ``level``, splitting if needed."""
        if child == self.process_id:
            return
        self._ensure_internal_instance(level)
        instance = self.instances[level]
        if child in instance.children or len(instance.children) < self.config.max_children:
            instance.add_child(child, rect, child_count, self.round_number)
            instance.mbr = instance.computed_mbr(self.filter_rect)
            instance.underloaded = len(instance.children) < self.config.min_children
            self.local_or_send(child, msg.SET_PARENT,
                               level=level - 1, parent=self.process_id)
            self.local_or_send(child, msg.JOIN_ACK, level=level - 1, hops=hops)
            self.metrics.observe("join.hops", hops)
            self.metrics.increment("join.completed")
            self._maybe_promote_child(level)
            return
        self.metrics.increment("join.splits")
        self._split_children(level, child, rect, child_count, hops)

    def _ensure_internal_instance(self, level: int) -> None:
        """Create the instance at ``level`` if this peer lacks it.

        This covers the bootstrap case (a single-leaf root adopting its first
        child) and stale-routing races: the missing levels between the current
        top and ``level`` are created with this peer as its own child, so the
        "a subscriber is present in all levels of its subtree" rule holds.
        """
        self.ensure_leaf_instance()
        top = self.top_level()
        while top < level:
            below = self.instances[top]
            was_root = below.parent == self.process_id or below.parent is None
            new_state = LevelState(level=top + 1, mbr=below.mbr)
            new_state.add_child(self.process_id, below.mbr,
                                len(below.children), self.round_number)
            new_state.parent = self.process_id if was_root else below.parent
            below.parent = self.process_id
            self.instances[top + 1] = new_state
            if was_root:
                self.oracle.set_root_hint(self.process_id)
            top += 1

    # ------------------------------------------------------------------ #
    # Splits
    # ------------------------------------------------------------------ #

    def _maybe_split_overflow(self, level: int) -> None:
        """Split the instance at ``level`` if its children set exceeds ``M``.

        Overflow can appear outside the join path: compaction merges based on
        stale child counts, and transient faults can inject arbitrary children
        sets.  The repair re-uses the ordinary split machinery by popping one
        child and re-adding it through ``_split_children``.
        """
        instance = self.instances.get(level)
        if instance is None or len(instance.children) <= self.config.max_children:
            return
        candidates = [cid for cid in instance.children if cid != self.process_id]
        if not candidates:
            return
        popped_id = candidates[-1]
        popped = instance.children.pop(popped_id)
        self.metrics.increment("stabilization.overflow_splits")
        self._split_children(level, popped_id, popped.mbr, popped.child_count,
                             hops=0)

    def _split_children(self, level: int, new_child: str, new_rect: Rect,
                        new_child_count: int, hops: int) -> None:
        """Split an overfull children set in two groups (Section 3.2)."""
        instance = self.instances[level]
        entries = [
            Entry(rect=info.mbr, payload=(cid, info.child_count))
            for cid, info in instance.children.items()
        ]
        entries.append(Entry(rect=new_rect, payload=(new_child, new_child_count)))
        split = get_split_function(self.config.split_method)(
            entries, self.config.min_children
        )
        keep, give = (split.left, split.right)
        if self.process_id in {entry.payload[0] for entry in split.right}:
            keep, give = split.right, split.left

        keep_children = {
            entry.payload[0]: ChildInfo(
                mbr=entry.rect, child_count=entry.payload[1],
                last_seen_round=self.round_number,
            )
            for entry in keep
        }
        give_children = {
            entry.payload[0]: ChildInfo(
                mbr=entry.rect, child_count=entry.payload[1],
                last_seen_round=self.round_number,
            )
            for entry in give
        }

        instance.children = keep_children
        instance.mbr = instance.computed_mbr(self.filter_rect)
        instance.underloaded = len(instance.children) < self.config.min_children

        give_mbr = Rect.union_of(info.mbr for info in give_children.values())
        sibling = elect_group_parent({cid: info.mbr for cid, info in give_children.items()})

        # Children that stayed with us but are new (the joiner may be in `keep`).
        if new_child in keep_children:
            self.local_or_send(new_child, msg.SET_PARENT,
                               level=level - 1, parent=self.process_id)
            self.local_or_send(new_child, msg.JOIN_ACK, level=level - 1, hops=hops)
            self.metrics.observe("join.hops", hops)
            self.metrics.increment("join.completed")

        is_root_here = (instance.parent == self.process_id
                        and level == self.top_level())
        if not is_root_here and instance.parent is not None:
            parent_id = instance.parent
            self.local_or_send(
                sibling, msg.PROMOTE,
                level=level,
                children=serialize_children(give_children),
                parent=parent_id,
                joiner=new_child if new_child in give_children else None,
                hops=hops,
            )
            self.local_or_send(
                parent_id, msg.ADD_CHILD,
                level=level + 1,
                child=sibling,
                lower=list(give_mbr.lower),
                upper=list(give_mbr.upper),
                child_count=len(give_children),
            )
            return

        # Root split: elect the new root among the two subtree parents.
        self.metrics.increment("join.root_splits")
        new_root = elect_group_parent({self.process_id: instance.mbr, sibling: give_mbr})
        if new_root == self.process_id:
            self._ensure_internal_instance(level)  # no-op, keeps leaf chain valid
            root_state = LevelState(level=level + 1, mbr=instance.mbr.union(give_mbr))
            root_state.parent = self.process_id
            root_state.add_child(self.process_id, instance.mbr,
                                 len(instance.children), self.round_number)
            root_state.add_child(sibling, give_mbr, len(give_children),
                                 self.round_number)
            self.instances[level + 1] = root_state
            instance.parent = self.process_id
            self.oracle.set_root_hint(self.process_id)
            self.local_or_send(
                sibling, msg.PROMOTE,
                level=level,
                children=serialize_children(give_children),
                parent=self.process_id,
                joiner=new_child if new_child in give_children else None,
                hops=hops,
            )
        else:
            instance.parent = sibling
            self.local_or_send(
                sibling, msg.PROMOTE,
                level=level,
                children=serialize_children(give_children),
                parent=sibling,
                become_root_with={
                    self.process_id: {
                        "lower": list(instance.mbr.lower),
                        "upper": list(instance.mbr.upper),
                        "child_count": len(instance.children),
                    }
                },
                joiner=new_child if new_child in give_children else None,
                hops=hops,
            )

    # ------------------------------------------------------------------ #
    # PROMOTE: take over (or create) an internal instance
    # ------------------------------------------------------------------ #

    def handle_promote(self, message: Message) -> None:
        """Create/overwrite an internal instance with the provided children.

        Used after splits (the elected sibling parent receives its group),
        after cover exchanges (the better-covering child takes over its
        parent's role), and when a new root is elected.
        """
        payload = message.payload
        level = int(payload["level"])
        children = deserialize_children(payload["children"],
                                        self.probation_round())
        parent = payload.get("parent") or self.process_id
        joiner = payload.get("joiner")
        hops = int(payload.get("hops", 0))

        self.ensure_leaf_instance()
        if level <= 0:
            return
        state = self.instances.get(level)
        if state is None:
            state = LevelState(level=level, mbr=self.filter_rect)
            self.instances[level] = state
        state.children = children
        state.parent = parent
        state.mbr = state.computed_mbr(self.filter_rect)
        state.underloaded = len(children) < self.config.min_children
        state.parent_confirmed = True
        state.missed_parent_acks = 0

        # Make sure this peer is present at every level below the new one.
        self._fill_levels_below(level)

        for child_id in children:
            if child_id == self.process_id:
                below = self.instances.get(level - 1)
                if below is not None:
                    below.parent = self.process_id
                continue
            self.local_or_send(child_id, msg.SET_PARENT,
                               level=level - 1, parent=self.process_id)
        if joiner and joiner in children and joiner != self.process_id:
            self.local_or_send(joiner, msg.JOIN_ACK, level=level - 1, hops=hops)
            self.metrics.observe("join.hops", hops)
            self.metrics.increment("join.completed")

        become_root_with = payload.get("become_root_with")
        if become_root_with:
            root_state = LevelState(level=level + 1, mbr=state.mbr)
            root_state.parent = self.process_id
            root_state.add_child(self.process_id, state.mbr, len(children),
                                 self.round_number)
            for other_id, data in become_root_with.items():
                other_mbr = Rect(tuple(data["lower"]), tuple(data["upper"]))
                root_state.add_child(other_id, other_mbr,
                                     int(data.get("child_count", 0)),
                                     self.round_number)
                self.local_or_send(other_id, msg.SET_PARENT,
                                   level=level, parent=self.process_id)
            root_state.mbr = root_state.computed_mbr(self.filter_rect)
            self.instances[level + 1] = root_state
            state.parent = self.process_id
            self.oracle.set_root_hint(self.process_id)
        elif parent == self.process_id and level >= self.top_level():
            self.oracle.set_root_hint(self.process_id)

        self.joined = True
        self.oracle.add_member(self.process_id)

    def _fill_levels_below(self, level: int) -> None:
        """Ensure instances exist at every level in ``[0, level)``.

        A peer promoted to an internal role must be active at all lower levels
        of its own subtree; missing intermediate instances are created with
        the peer as its own single child (they will be populated or compacted
        by the stabilization modules).
        """
        self.ensure_leaf_instance()
        for lvl in range(1, level):
            if lvl in self.instances:
                continue
            below = self.instances[lvl - 1]
            state = LevelState(level=lvl, mbr=below.mbr)
            state.add_child(self.process_id, below.mbr, len(below.children),
                            self.round_number)
            state.parent = self.process_id
            state.underloaded = True
            below.parent = self.process_id
            self.instances[lvl] = state
        if level in self.instances and level - 1 in self.instances:
            if self.process_id in self.instances[level].children:
                self.instances[level - 1].parent = self.process_id

    # ------------------------------------------------------------------ #
    # Small handlers
    # ------------------------------------------------------------------ #

    def handle_join_ack(self, message: Message) -> None:
        """The joiner learns it has been placed in the tree."""
        self.joined = True
        self.oracle.add_member(self.process_id)

    def handle_set_parent(self, message: Message) -> None:
        """Record the parent of this peer's instance at the given level.

        Two guards keep the peer's own level chain authoritative:

        * claims for levels the peer does not hold are ignored (the claimer's
          stale child entry expires through CHECK_CHILDREN),
        * claims by *other* peers for a non-topmost instance are ignored —
          such an instance is by construction a child of this peer's own
          next-level instance, and accepting an external parent would tear
          the chain apart.
        """
        level = int(message.payload["level"])
        parent = message.payload["parent"]
        self.ensure_leaf_instance()
        state = self.instances.get(level)
        if state is None:
            self.metrics.increment("join.set_parent_ignored")
            return
        if parent != self.process_id and (level + 1) in self.instances:
            # This instance is a link of our own chain (the next level exists
            # locally); an external claim for it is necessarily stale.
            self.metrics.increment("join.set_parent_ignored")
            return
        state.parent = parent
        state.parent_confirmed = True
        state.missed_parent_acks = 0

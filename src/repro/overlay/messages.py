"""Protocol message kinds exchanged by DR-tree peers.

Keeping the kinds in one module gives the tests and the metrics layer a
single vocabulary for counting messages per protocol phase.
"""

from __future__ import annotations

# --- join phase (Figure 8) -------------------------------------------------
JOIN = "JOIN"                       # routed towards the right leaf-parent
ADD_CHILD = "ADD_CHILD"             # adopt a (subtree root) child at a level
JOIN_ACK = "JOIN_ACK"               # tells the joiner it has been placed

# --- membership maintenance -------------------------------------------------
SET_PARENT = "SET_PARENT"           # informs a peer of its parent at a level
REMOVE_CHILD = "REMOVE_CHILD"       # asks a parent to forget a child
REPLACE_CHILD = "REPLACE_CHILD"     # swap one child id for another (cover exchange)

# --- controlled departure (Figure 9) ----------------------------------------
LEAVE = "LEAVE"

# --- stabilization (Figures 10-14) -------------------------------------------
PARENT_QUERY = "PARENT_QUERY"       # child -> parent: "am I still your child?" (+ MBR refresh)
PARENT_ACK = "PARENT_ACK"           # parent -> child: yes
PARENT_NACK = "PARENT_NACK"         # parent -> child: no, re-join
CHECK_STRUCTURE = "CHECK_STRUCTURE" # triggers the underload/compaction module
PROMOTE = "PROMOTE"                 # parent -> better-covering child: take over my role
DISSOLVE = "DISSOLVE"               # compaction: loser merges its children into the winner
ADOPT_CHILDREN = "ADOPT_CHILDREN"   # loser -> winner: here are my children
INITIATE_NEW_CONNECTION = "INITIATE_NEW_CONNECTION"  # subtree must re-join

# --- dissemination (Section 2.3 / 3) -----------------------------------------
PUBLISH_UP = "PUBLISH_UP"           # event travelling towards the root
PUBLISH_DOWN = "PUBLISH_DOWN"       # event travelling down matching subtrees

#: Message kinds that belong to the structural protocol (not dissemination).
STRUCTURAL_KINDS = frozenset(
    {
        JOIN,
        ADD_CHILD,
        JOIN_ACK,
        SET_PARENT,
        REMOVE_CHILD,
        REPLACE_CHILD,
        LEAVE,
        PARENT_QUERY,
        PARENT_ACK,
        PARENT_NACK,
        CHECK_STRUCTURE,
        PROMOTE,
        DISSOLVE,
        ADOPT_CHILDREN,
        INITIATE_NEW_CONNECTION,
    }
)

#: Message kinds used by event dissemination.
DISSEMINATION_KINDS = frozenset({PUBLISH_UP, PUBLISH_DOWN})

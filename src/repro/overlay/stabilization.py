"""Periodic self-stabilization modules (Figures 10-13).

Every peer periodically runs, for every level where it is active:

* **CHECK_MBR** (Figure 10) — a leaf's MBR must equal its filter; an internal
  instance's MBR must be the union of its children's MBRs.
* **CHECK_PARENT** (Figure 11) — the peer verifies it is present in the
  children set of its parent; if not (or the parent is unreachable) it sets
  itself as parent and re-joins through the oracle.
* **CHECK_CHILDREN** (Figure 12) — children whose parent pointer is elsewhere
  (detected here through prolonged silence) are discarded and the
  ``underloaded`` flag is recomputed.
* **CHECK_COVER** (Figure 13) — if a child provides a better cover than the
  node itself, the two exchange their roles.

The message-level mechanics differ slightly from the shared-memory flavour of
the paper's pseudo-code: parent/children coherence is verified with an
explicit PARENT_QUERY / PARENT_ACK / PARENT_NACK exchange that also refreshes
the parent's cached view of the child's MBR, child count and underloaded
flag.  The observable repairs are the same.
"""

from __future__ import annotations

from repro.overlay import messages as msg
from repro.overlay.election import is_better_cover
from repro.overlay.state import serialize_children
from repro.sim.messages import Message


class StabilizationMixin:
    """Periodic repair behaviour of :class:`~repro.overlay.peer.DRTreePeer`."""

    # ------------------------------------------------------------------ #
    # Round driver
    # ------------------------------------------------------------------ #

    def run_stabilization_round(self) -> None:
        """Run every CHECK_* module once at every active level."""
        if not self.alive:
            return
        self.round_number += 1
        self.metrics.increment("stabilization.rounds")
        self.ensure_leaf_instance()
        if not self.joined:
            # The peer gave up on a failing join (or was told to re-connect);
            # try again now that a repair round has run everywhere.  An
            # un-joined peer must not retain internal roles: they would keep
            # other peers attached to it while it is outside the structure.
            if self.top_level() > 0:
                self.reset_to_unjoined_leaf()
            self._join_retries = 0
            self.start_join()
            return
        for level in sorted(self.instances):
            if level not in self.instances:
                continue  # dissolved by a check run earlier in this round
            self.check_mbr(level)
            self.check_children(level)
        for level in sorted(self.instances):
            if level not in self.instances:
                continue
            self.check_cover(level)
        for level in sorted(self.instances):
            if level not in self.instances:
                continue
            self.check_parent(level)
        self.check_structure()

    def start_periodic_stabilization(self, period: float | None = None) -> None:
        """Arm the periodic stabilization timer (the paper's "timeout")."""
        self.start_periodic(
            "stabilization",
            period or self.config.stabilization_period,
            self.run_stabilization_round,
        )

    # ------------------------------------------------------------------ #
    # CHECK_MBR (Figure 10)
    # ------------------------------------------------------------------ #

    def check_mbr(self, level: int) -> None:
        """Repair the MBR of the instance at ``level``."""
        instance = self.instances.get(level)
        if instance is None:
            return
        correct = instance.computed_mbr(self.filter_rect)
        if instance.mbr.as_tuple() != correct.as_tuple():
            self.metrics.increment("stabilization.mbr_repairs")
            instance.mbr = correct

    # ------------------------------------------------------------------ #
    # CHECK_CHILDREN (Figure 12)
    # ------------------------------------------------------------------ #

    def check_children(self, level: int) -> None:
        """Discard stale/foreign children and recompute the underloaded flag."""
        instance = self.instances.get(level)
        if instance is None or instance.is_leaf:
            return
        stale_after = self.config.child_staleness_rounds
        to_drop = [
            child_id
            for child_id, info in instance.children.items()
            if child_id != self.process_id
            and self.round_number - info.last_seen_round > stale_after
        ]
        for child_id in to_drop:
            self.metrics.increment("stabilization.children_dropped")
            instance.remove_child(child_id)
        # Our own lower instance is always a legitimate child when it exists;
        # re-adding it repairs a corrupted children set and keeps the
        # "present at all levels of its subtree" chain intact.
        below = self.instances.get(level - 1)
        if below is not None:
            instance.add_child(self.process_id, below.mbr,
                               len(below.children), self.round_number)
            instance.children[self.process_id].underloaded = below.underloaded
        if to_drop:
            instance.mbr = instance.computed_mbr(self.filter_rect)
        if not instance.children:
            self.dissolve_instance(level)
            return
        is_root_here = (level == self.top_level()
                        and (instance.parent == self.process_id
                             or instance.parent is None))
        if is_root_here and len(instance.children) == 1:
            # A root with a single child is redundant: the tree shrinks by one
            # level.  If the only child is another peer it becomes the new
            # root (it will notice through CHECK_PARENT / the oracle).
            only_child = next(iter(instance.children))
            self.metrics.increment("stabilization.root_collapses")
            del self.instances[level]
            self.oracle.withdraw_root(self.process_id)
            if only_child == self.process_id:
                lower = self.instances.get(level - 1)
                if lower is not None:
                    lower.parent = self.process_id
            else:
                self.local_or_send(only_child, msg.SET_PARENT,
                                   level=level - 1, parent=only_child)
            return
        was_underloaded = instance.underloaded
        instance.underloaded = len(instance.children) < self.config.min_children
        if instance.underloaded != was_underloaded:
            self.metrics.increment("stabilization.underloaded_repairs")
        if (instance.underloaded
                and instance.parent
                and instance.parent != self.process_id):
            self.local_or_send(instance.parent, msg.CHECK_STRUCTURE,
                               level=level + 1)
        # A corrupted (or over-merged) children set may exceed the M bound;
        # repair it with an ordinary split.
        self._maybe_split_overflow(level)

    # ------------------------------------------------------------------ #
    # CHECK_PARENT (Figure 11)
    # ------------------------------------------------------------------ #

    def _root_distance_bound(self) -> int:
        """Maximum plausible distance from the root to any instance.

        Parent chains in a legal DR-tree are at most the tree height long,
        i.e. ``O(log_m N)``.  A believed distance far beyond that means the
        instance hangs off a detached cycle of stale parent pointers (each
        link individually coherent but none of them leading to the root), a
        configuration ordinary parent/children checks cannot detect.
        """
        import math

        population = max(len(self.oracle), 2)
        return max(16, 6 + 2 * int(math.ceil(math.log2(population))))

    def check_parent(self, level: int) -> None:
        """Verify this instance is still a child of its parent; re-join if not."""
        instance = self.instances.get(level)
        if instance is None:
            return
        if (level + 1) in self.instances:
            # The instance is part of this peer's own chain: its parent is the
            # peer's next-level instance, and coherence is purely local.
            instance.parent = self.process_id
            instance.parent_confirmed = True
            instance.missed_parent_acks = 0
            instance.root_distance = self.instances[level + 1].root_distance + 1
            return
        is_top = level == self.top_level()
        if instance.parent == self.process_id or instance.parent is None:
            if instance.parent is None:
                instance.parent = self.process_id
            instance.parent_confirmed = True
            instance.missed_parent_acks = 0
            instance.root_distance = 0
            if is_top:
                if self.joined:
                    self._arbitrate_root(level, instance)
            else:
                # A "gap" fragment: the peer also holds higher levels, but the
                # chain between them is broken, so the subtree below this
                # instance is cut off from the root.  Re-insert it.
                self.metrics.increment("stabilization.gap_rejoins")
                self.rejoin_subtree(level)
            return
        if instance.root_distance > self._root_distance_bound():
            # Detached cycle: every parent on the chain acknowledges its
            # child, yet none of them is the root.  Break out and re-join.
            self.metrics.increment("stabilization.cycle_rejoins")
            instance.parent = self.process_id
            instance.parent_confirmed = True
            instance.missed_parent_acks = 0
            instance.root_distance = 0
            self.rejoin_subtree(level)
            return
        if not instance.parent_confirmed:
            instance.missed_parent_acks += 1
        if instance.missed_parent_acks >= self.config.parent_silence_rounds:
            # The parent is unreachable or has disowned us: re-join.
            self.metrics.increment("stabilization.orphan_rejoins")
            instance.parent = self.process_id
            instance.parent_confirmed = True
            instance.missed_parent_acks = 0
            instance.root_distance = 0
            self.rejoin_subtree(level)
            return
        self.oracle.withdraw_root(self.process_id)
        instance.parent_confirmed = False
        self.send(
            instance.parent,
            msg.PARENT_QUERY,
            level=level,
            lower=list(instance.mbr.lower),
            upper=list(instance.mbr.upper),
            child_count=len(instance.children),
            underloaded=instance.underloaded,
        )

    def _arbitrate_root(self, level: int, instance) -> None:
        """Merge fragment roots: defer to the best advertised root.

        Transient faults, root crashes and concurrent re-joins can leave the
        overlay split into several trees, each with its own self-proclaimed
        root.  Every root advertises itself (with its MBR area) through the
        oracle; any root that is not the best advertised one re-inserts its
        whole subtree under the winner, so the fragments merge back into a
        single DR-tree.
        """
        self.oracle.advertise_root(self.process_id, instance.mbr.area())
        best = self.oracle.best_root()
        if best is None or best == self.process_id:
            self.oracle.set_root_hint(self.process_id)
            return
        if not self.oracle.contact(exclude=self.process_id):
            return
        self.metrics.increment("stabilization.root_merges")
        self.oracle.withdraw_root(self.process_id)
        self.rejoin_subtree(level)

    def handle_parent_query(self, message: Message) -> None:
        """Parent side of CHECK_PARENT: confirm or disown the querying child."""
        child = message.sender
        child_level = int(message.payload["level"])
        level = child_level + 1
        instance = self.instances.get(level)
        if instance is None or child not in instance.children:
            self.send(child, msg.PARENT_NACK, level=child_level)
            return
        from repro.spatial.rectangle import Rect

        child_mbr = Rect(tuple(message.payload["lower"]),
                         tuple(message.payload["upper"]))
        instance.add_child(
            child,
            child_mbr,
            int(message.payload.get("child_count", 0)),
            self.round_number,
        )
        info = instance.children[child]
        info.underloaded = bool(message.payload.get("underloaded", False))
        instance.mbr = instance.computed_mbr(self.filter_rect)
        self.send(child, msg.PARENT_ACK, level=child_level,
                  root_distance=instance.root_distance + 1)

    def handle_parent_ack(self, message: Message) -> None:
        """The parent confirmed this peer; clear the orphan counters."""
        level = int(message.payload["level"])
        instance = self.instances.get(level)
        if instance is None:
            return
        instance.parent_confirmed = True
        instance.missed_parent_acks = 0
        if "root_distance" in message.payload:
            instance.root_distance = int(message.payload["root_distance"])

    def handle_parent_nack(self, message: Message) -> None:
        """The parent disowned this peer: note it, re-join if it persists.

        The NACK is not acted upon immediately: a concurrent split, promotion
        or compaction may have legitimately moved this peer under a new parent
        whose SET_PARENT is still in flight.  The instance is merely left
        unconfirmed; if no parent claims it within the next couple of rounds
        the ordinary orphan path in :meth:`check_parent` re-joins it.
        """
        level = int(message.payload["level"])
        instance = self.instances.get(level)
        if instance is None or level != self.top_level():
            return
        if instance.parent != message.sender:
            # The NACK refers to a stale parent; ignore it.
            return
        self.metrics.increment("stabilization.nacks")
        instance.parent_confirmed = False
        instance.missed_parent_acks += 1

    # ------------------------------------------------------------------ #
    # CHECK_COVER (Figure 13)
    # ------------------------------------------------------------------ #

    def check_cover(self, level: int) -> None:
        """Exchange roles with a child that provides a better cover.

        Interpretation note.  Figure 13 exchanges a node with a child that
        "better covers the node sub-tree than the node itself".  The literal
        reading of ``Is_Better_MBR_Cover`` — compare the child's subtree MBR
        area against the parent's own child-level instance — never converges:
        the exchange swaps the two roles without changing either MBR, so the
        test immediately holds in the other direction and the pair flip-flops
        forever.

        The convergent rule implemented here matches Figure 6's election
        principle: a child takes over the parent's role only when its subtree
        MBR covers the *whole* group (it equals the instance's MBR) and is
        strictly larger than the parent's own subtree below this level.
        After the exchange the new parent's own subtree is exactly that
        covering MBR, so no further exchange can trigger: the repaired state
        is a fixed point, and Property 3.1 (a containee is never an ancestor
        of its container) is restored whenever it is violated.
        """
        instance = self.instances.get(level)
        if instance is None or instance.is_leaf:
            return
        below = self.instances.get(level - 1)
        anchor_area = below.mbr.area() if below is not None else self.filter_rect.area()
        best_child = None
        best_area = anchor_area
        for child_id, info in instance.children.items():
            if child_id == self.process_id:
                continue
            if not info.mbr.contains_rect(instance.mbr):
                continue
            if is_better_cover(info.mbr.area(), best_area):
                best_child = child_id
                best_area = info.mbr.area()
        if best_child is None:
            return
        self.metrics.increment("stabilization.cover_exchanges")
        self._promote_child_to_my_role(level, best_child)

    def _maybe_promote_child(self, level: int) -> None:
        """Join-time variant of CHECK_COVER (Figure 8's Is_Better_MBR_Cover)."""
        self.check_cover(level)

    def _promote_child_to_my_role(self, level: int, child_id: str) -> None:
        """Hand the instance at ``level`` over to ``child_id`` (Adjust_Parent)."""
        instance = self.instances.get(level)
        if instance is None or child_id not in instance.children:
            return
        parent = instance.parent
        is_root_here = parent == self.process_id and level == self.top_level()
        children_payload = serialize_children(instance.children)
        new_parent_for_child = child_id if is_root_here else parent
        # Drop our role at this level; lower and higher instances stay intact
        # (the higher instance's children set is patched below).
        del self.instances[level]
        self.local_or_send(
            child_id, msg.PROMOTE,
            level=level,
            children=children_payload,
            parent=new_parent_for_child,
        )
        if not is_root_here and parent and parent != self.process_id:
            self.local_or_send(
                parent, msg.REPLACE_CHILD,
                level=level + 1,
                old=self.process_id,
                new=child_id,
                lower=list(instance.mbr.lower),
                upper=list(instance.mbr.upper),
                child_count=len(instance.children),
            )
        elif parent == self.process_id and level + 1 in self.instances:
            higher = self.instances[level + 1]
            if self.process_id in higher.children:
                higher.remove_child(self.process_id)
            higher.add_child(child_id, instance.mbr, len(instance.children),
                             self.round_number)
        if is_root_here:
            self.oracle.set_root_hint(child_id)

    def handle_replace_child(self, message: Message) -> None:
        """Swap one child id for another after a cover exchange below."""
        level = int(message.payload["level"])
        instance = self.instances.get(level)
        if instance is None:
            return
        old = message.payload["old"]
        new = message.payload["new"]
        from repro.spatial.rectangle import Rect

        new_mbr = Rect(tuple(message.payload["lower"]),
                       tuple(message.payload["upper"]))
        instance.remove_child(old)
        instance.add_child(new, new_mbr,
                           int(message.payload.get("child_count", 0)),
                           self.round_number)
        instance.mbr = instance.computed_mbr(self.filter_rect)

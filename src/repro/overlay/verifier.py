"""Global legality checking (Definitions 3.1 and 3.2).

The verifier inspects the state of every live peer and decides whether the
configuration is *legitimate*: the virtual structure defined by the parent
variables and the children sets is a legal DR-tree.  It also evaluates the
containment-awareness properties (3.1 and 3.2) and collects structural
statistics (height, degree distribution, state size) used by the experiments.

The verifier is an omniscient observer — it reads peer state directly and is
never part of the protocol.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.overlay.peer import DRTreePeer
from repro.spatial.containment import ContainmentGraph
from repro.spatial.rectangle import Rect


@dataclass
class VerificationReport:
    """Outcome of one verification pass."""

    violations: List[str] = field(default_factory=list)
    #: Violations of the *weak* containment awareness property (3.1).
    weak_containment_violations: List[str] = field(default_factory=list)
    #: Violations of the *strong* containment awareness property (3.2); the
    #: paper admits these can occasionally occur, so they are reported
    #: separately and do not make the configuration illegal.
    strong_containment_violations: List[str] = field(default_factory=list)
    root: Optional[str] = None
    height: int = 0
    peer_count: int = 0
    max_degree: int = 0
    min_internal_degree: int = 0
    mean_state_size: float = 0.0
    max_state_size: int = 0

    @property
    def is_legal(self) -> bool:
        """True when Definition 3.1 holds (ignoring containment-awareness)."""
        return not self.violations

    def summary(self) -> str:
        """One-line human-readable summary."""
        status = "LEGAL" if self.is_legal else f"{len(self.violations)} violations"
        return (
            f"peers={self.peer_count} root={self.root} height={self.height} "
            f"max_degree={self.max_degree} status={status}"
        )


class OverlayVerifier:
    """Checks a set of DR-tree peers against the paper's legal-state definition."""

    def __init__(self, min_children: int, max_children: int) -> None:
        self.min_children = min_children
        self.max_children = max_children

    # ------------------------------------------------------------------ #
    # Main entry point
    # ------------------------------------------------------------------ #

    def verify(self, peers: Sequence[DRTreePeer],
               check_containment: bool = False) -> VerificationReport:
        """Run every check on the live peers of ``peers``.

        ``check_containment`` additionally evaluates the containment-awareness
        properties 3.1 and 3.2; it is opt-in because building the containment
        graph is quadratic in the number of peers and the properties are not
        part of Definition 3.1's legality.
        """
        live = [peer for peer in peers if peer.alive]
        report = VerificationReport(peer_count=len(live))
        if not live:
            return report
        by_id = {peer.process_id: peer for peer in live}

        roots = self._find_roots(live)
        if len(roots) != 1:
            report.violations.append(
                f"expected exactly one root, found {sorted(roots)}"
            )
        if roots:
            report.root = sorted(roots)[0]

        self._check_membership(live, by_id, report)
        self._check_degrees(live, report)
        self._check_coherence(live, by_id, report)
        self._check_mbrs(live, by_id, report)
        self._check_cover(live, by_id, report)
        self._check_reachability_and_balance(live, by_id, report)
        if check_containment:
            self._check_containment_awareness(live, by_id, report)
        self._collect_stats(live, report)
        return report

    # ------------------------------------------------------------------ #
    # Individual checks
    # ------------------------------------------------------------------ #

    def _find_roots(self, live: Sequence[DRTreePeer]) -> Set[str]:
        roots: Set[str] = set()
        for peer in live:
            if not peer.instances:
                continue
            top = peer.top_instance()
            if peer.joined and (top.parent is None or top.parent == peer.process_id):
                roots.add(peer.process_id)
        return roots

    def _check_membership(self, live, by_id, report: VerificationReport) -> None:
        for peer in live:
            if not peer.joined:
                report.violations.append(f"{peer.process_id} has not joined")

    def _check_degrees(self, live, report: VerificationReport) -> None:
        for peer in live:
            for level, instance in peer.instances.items():
                if level == 0:
                    continue
                degree = len(instance.children)
                is_root_instance = (
                    level == peer.top_level()
                    and (instance.parent == peer.process_id or instance.parent is None)
                )
                if degree > self.max_children:
                    report.violations.append(
                        f"{peer.process_id}@{level} has {degree} > M children"
                    )
                if is_root_instance:
                    if degree < 2 and report.peer_count > 1:
                        report.violations.append(
                            f"root {peer.process_id}@{level} has fewer than 2 children"
                        )
                elif degree < self.min_children:
                    report.violations.append(
                        f"{peer.process_id}@{level} has {degree} < m children"
                    )

    def _check_coherence(self, live, by_id, report: VerificationReport) -> None:
        for peer in live:
            for level, instance in peer.instances.items():
                # Children must point back at this peer.
                for child_id in instance.children:
                    if child_id == peer.process_id:
                        continue
                    child = by_id.get(child_id)
                    if child is None or not child.alive:
                        report.violations.append(
                            f"{peer.process_id}@{level} lists dead child {child_id}"
                        )
                        continue
                    child_instance = child.instances.get(level - 1)
                    if child_instance is None:
                        report.violations.append(
                            f"child {child_id} lacks an instance at level {level - 1}"
                        )
                    elif child_instance.parent != peer.process_id:
                        report.violations.append(
                            f"child {child_id}@{level - 1} has parent "
                            f"{child_instance.parent}, expected {peer.process_id}"
                        )
                # The parent must list this peer as a child.
                if level == peer.top_level():
                    parent_id = instance.parent
                    if parent_id and parent_id != peer.process_id:
                        parent = by_id.get(parent_id)
                        if parent is None or not parent.alive:
                            report.violations.append(
                                f"{peer.process_id}@{level} has dead parent {parent_id}"
                            )
                            continue
                        parent_instance = parent.instances.get(level + 1)
                        if (parent_instance is None
                                or peer.process_id not in parent_instance.children):
                            report.violations.append(
                                f"parent {parent_id} does not list "
                                f"{peer.process_id}@{level} as a child"
                            )

    def _check_mbrs(self, live, by_id, report: VerificationReport) -> None:
        for peer in live:
            for level, instance in peer.instances.items():
                if level == 0:
                    if instance.mbr.as_tuple() != peer.filter_rect.as_tuple():
                        report.violations.append(
                            f"leaf MBR of {peer.process_id} differs from its filter"
                        )
                    continue
                expected = self._true_child_union(peer, level, by_id)
                if expected is None:
                    continue
                if instance.mbr.as_tuple() != expected.as_tuple():
                    report.violations.append(
                        f"MBR of {peer.process_id}@{level} is not the union of its "
                        f"children's MBRs"
                    )

    def _true_child_union(self, peer: DRTreePeer, level: int, by_id
                          ) -> Optional[Rect]:
        rects: List[Rect] = []
        instance = peer.instances[level]
        for child_id in instance.children:
            child = by_id.get(child_id)
            if child is None:
                return None
            child_instance = child.instances.get(level - 1)
            if child_instance is None:
                return None
            rects.append(child_instance.mbr)
        if not rects:
            return None
        return Rect.union_of(rects)

    def _check_cover(self, live, by_id, report: VerificationReport) -> None:
        """No child may offer a strictly better cover for the whole group.

        Mirrors the protocol's CHECK_COVER interpretation (see
        ``repro.overlay.stabilization.StabilizationMixin.check_cover``): a
        violation is a child whose subtree MBR covers the node's entire MBR
        while being strictly larger than the node's own subtree below that
        level — the configuration the cover exchange would still change.
        """
        for peer in live:
            for level, instance in peer.instances.items():
                if level == 0:
                    continue
                below = peer.instances.get(level - 1)
                anchor = below.mbr.area() if below else peer.filter_rect.area()
                for child_id in instance.children:
                    if child_id == peer.process_id:
                        continue
                    child = by_id.get(child_id)
                    if child is None:
                        continue
                    child_instance = child.instances.get(level - 1)
                    if child_instance is None:
                        continue
                    child_mbr = child_instance.mbr
                    if not child_mbr.contains_rect(instance.mbr):
                        continue
                    if child_mbr.area() > anchor and not math.isclose(
                        child_mbr.area(), anchor
                    ):
                        report.violations.append(
                            f"child {child_id} covers better than "
                            f"{peer.process_id}@{level}"
                        )

    def _check_reachability_and_balance(self, live, by_id,
                                        report: VerificationReport) -> None:
        roots = self._find_roots(live)
        if len(roots) != 1:
            return
        root = by_id[next(iter(roots))]
        reached: Set[str] = set()
        leaf_levels: Set[int] = set()
        stack: List[Tuple[str, int]] = [(root.process_id, root.top_level())]
        visited: Set[Tuple[str, int]] = set()
        while stack:
            peer_id, level = stack.pop()
            if (peer_id, level) in visited:
                continue
            visited.add((peer_id, level))
            peer = by_id.get(peer_id)
            if peer is None:
                continue
            reached.add(peer_id)
            instance = peer.instances.get(level)
            if instance is None:
                continue
            if level == 0:
                leaf_levels.add(0)
                continue
            for child_id in instance.children:
                stack.append((child_id, level - 1))
        unreachable = {p.process_id for p in live} - reached
        if unreachable:
            report.violations.append(
                f"{len(unreachable)} peers unreachable from the root: "
                f"{sorted(unreachable)[:5]}..."
                if len(unreachable) > 5
                else f"peers unreachable from the root: {sorted(unreachable)}"
            )
        report.height = root.top_level() + 1

    def _check_containment_awareness(self, live, by_id,
                                     report: VerificationReport) -> None:
        """Properties 3.1 (weak) and 3.2 (strong) on the topmost instances."""
        if not live:
            return
        graph = ContainmentGraph.build([peer.subscription for peer in live])
        name_to_id = {peer.subscription.name: peer.process_id for peer in live}
        ancestors = {
            peer.process_id: self._ancestor_ids(peer, by_id) for peer in live
        }
        for container_name, containee_name in graph.containment_pairs():
            container_id = name_to_id.get(container_name)
            containee_id = name_to_id.get(containee_name)
            if container_id is None or containee_id is None:
                continue
            # Weak (3.1): the containee must not be an ancestor of the container.
            if containee_id in ancestors[container_id]:
                report.weak_containment_violations.append(
                    f"{containee_name} (containee) is an ancestor of "
                    f"{container_name} (container)"
                )
            # Strong (3.2): the container (or a sibling container) should be an
            # ancestor or sibling of the containee.
            if container_id not in ancestors[containee_id]:
                containee_peer = by_id[containee_id]
                parent = containee_peer.top_instance().parent
                container_parent = by_id[container_id].top_instance().parent
                is_sibling = parent is not None and parent == container_parent
                if not is_sibling:
                    report.strong_containment_violations.append(
                        f"{container_name} is neither ancestor nor sibling of "
                        f"{containee_name}"
                    )

    def _ancestor_ids(self, peer: DRTreePeer, by_id) -> Set[str]:
        """Peers encountered on the path from ``peer``'s topmost instance to the root."""
        ancestors: Set[str] = set()
        current = peer
        level = current.top_level()
        seen: Set[Tuple[str, int]] = set()
        while True:
            instance = current.instances.get(level)
            if instance is None:
                break
            parent_id = instance.parent
            if (parent_id is None or parent_id == current.process_id
                    or (parent_id, level + 1) in seen):
                break
            seen.add((parent_id, level + 1))
            ancestors.add(parent_id)
            current = by_id.get(parent_id)
            if current is None:
                break
            level = level + 1
        return ancestors

    def _collect_stats(self, live, report: VerificationReport) -> None:
        degrees = [
            len(instance.children)
            for peer in live
            for level, instance in peer.instances.items()
            if level > 0
        ]
        internal_degrees = [d for d in degrees if d > 0]
        state_sizes = [peer.state_size() for peer in live]
        report.max_degree = max(degrees) if degrees else 0
        report.min_internal_degree = min(internal_degrees) if internal_degrees else 0
        report.mean_state_size = (
            sum(state_sizes) / len(state_sizes) if state_sizes else 0.0
        )
        report.max_state_size = max(state_sizes) if state_sizes else 0

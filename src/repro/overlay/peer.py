"""The DR-tree peer process.

A :class:`DRTreePeer` owns one subscription (its constant, non-corruptible
filter) and a set of *node instances*, one per level where the peer is active
in the DR-tree.  The peer implements the paper's protocols through the mixins
assembled here:

* :class:`~repro.overlay.join.JoinMixin` — join phase and splits (Figure 8),
* :class:`~repro.overlay.leave.LeaveMixin` — controlled departures (Figure 9),
* :class:`~repro.overlay.stabilization.StabilizationMixin` — the periodic
  CHECK_MBR / CHECK_PARENT / CHECK_CHILDREN / CHECK_COVER repairs
  (Figures 10-13),
* :class:`~repro.overlay.structure.StructureMixin` — CHECK_STRUCTURE and
  compaction (Figure 14),
* :class:`~repro.overlay.dissemination.DisseminationMixin` — pub/sub event
  dissemination (Sections 2.3 and 3).
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Optional

from repro.overlay import messages as msg
from repro.overlay.config import DRTreeConfig
from repro.overlay.dissemination import DisseminationMixin
from repro.overlay.join import JoinMixin
from repro.overlay.leave import LeaveMixin
from repro.overlay.oracle import ContactOracle
from repro.overlay.stabilization import StabilizationMixin
from repro.overlay.state import LevelState
from repro.overlay.structure import StructureMixin
from repro.sim.messages import Message
from repro.sim.network import Network
from repro.sim.process import Process
from repro.spatial.filters import Event, Subscription
from repro.spatial.rectangle import Rect

#: Signature of the delivery listener installed by the pub/sub layer:
#: ``listener(peer_id, event, matched, hops)``.
DeliveryListener = Callable[[str, Event, bool, int], None]


class DRTreePeer(JoinMixin, LeaveMixin, StabilizationMixin, StructureMixin,
                 DisseminationMixin, Process):
    """A subscriber participating in the DR-tree overlay."""

    def __init__(
        self,
        process_id: str,
        network: Network,
        subscription: Subscription,
        config: Optional[DRTreeConfig] = None,
        oracle: Optional[ContactOracle] = None,
    ) -> None:
        super().__init__(process_id, network)
        #: The peer's constant, non-corruptible content-based filter.
        self.subscription = subscription
        self.filter_rect: Rect = subscription.rect
        self.config = config if config is not None else DRTreeConfig()
        # ``ContactOracle`` defines __len__, so avoid the falsy-object trap of
        # ``oracle or ContactOracle()`` — an empty shared oracle must be kept.
        self.oracle = oracle if oracle is not None else ContactOracle()
        #: level → node instance state (level 0 is the leaf instance).
        self.instances: Dict[int, LevelState] = {}
        self.joined = False
        self.round_number = 0
        #: event_id → matched flag for every event this peer has seen.
        self.seen_events: Dict[str, bool] = {}
        #: Installed by the pub/sub facade for delivery accounting.
        self.delivery_listener: Optional[DeliveryListener] = None
        self._register_handlers()

    # ------------------------------------------------------------------ #
    # Handler registration
    # ------------------------------------------------------------------ #

    def _register_handlers(self) -> None:
        self.on(msg.JOIN, self.handle_join)
        self.on(msg.ADD_CHILD, self.handle_add_child)
        self.on(msg.JOIN_ACK, self.handle_join_ack)
        self.on(msg.SET_PARENT, self.handle_set_parent)
        self.on(msg.PROMOTE, self.handle_promote)
        self.on(msg.REPLACE_CHILD, self.handle_replace_child)
        self.on(msg.LEAVE, self.handle_leave)
        self.on(msg.REMOVE_CHILD, self.handle_remove_child)
        self.on(msg.PARENT_QUERY, self.handle_parent_query)
        self.on(msg.PARENT_ACK, self.handle_parent_ack)
        self.on(msg.PARENT_NACK, self.handle_parent_nack)
        self.on(msg.CHECK_STRUCTURE, self.handle_check_structure)
        self.on(msg.DISSOLVE, self.handle_dissolve)
        self.on(msg.ADOPT_CHILDREN, self.handle_adopt_children)
        self.on(msg.INITIATE_NEW_CONNECTION, self.handle_initiate_new_connection)
        self.on(msg.PUBLISH_UP, self.handle_publish_up)
        self.on(msg.PUBLISH_DOWN, self.handle_publish_down)

    # ------------------------------------------------------------------ #
    # Instance helpers
    # ------------------------------------------------------------------ #

    def probation_round(self) -> int:
        """Round stamp for children acquired second-hand (splits, compaction).

        Entries transferred from another peer's children set may be stale;
        stamping them slightly in the past means they are discarded after a
        couple of rounds unless the child confirms itself with PARENT_QUERY.
        This prevents corrupted entries from circulating between compaction
        winners forever.
        """
        grace = max(0, self.config.child_staleness_rounds - 2)
        return max(0, self.round_number - grace)

    def ensure_leaf_instance(self) -> None:
        """Create the level-0 (leaf) instance if it does not exist yet."""
        if 0 not in self.instances:
            self.instances[0] = LevelState(level=0, mbr=self.filter_rect)

    def top_level(self) -> int:
        """The highest level at which this peer is active."""
        if not self.instances:
            self.ensure_leaf_instance()
        return max(self.instances)

    def top_instance(self) -> LevelState:
        """The peer's topmost instance."""
        return self.instances[self.top_level()]

    def is_overlay_root(self) -> bool:
        """True if this peer believes it is the root of the DR-tree."""
        if not self.joined or not self.instances:
            return False
        top = self.top_instance()
        return top.parent is None or top.parent == self.process_id

    def height(self) -> int:
        """Number of levels this peer spans (leaf-only peers span 1)."""
        return self.top_level() + 1

    def children_at(self, level: int) -> List[str]:
        """Sorted children ids of the instance at ``level`` (empty if absent)."""
        instance = self.instances.get(level)
        return instance.child_ids() if instance else []

    def parent_at(self, level: int) -> Optional[str]:
        """Parent id of the instance at ``level`` (``None`` if absent)."""
        instance = self.instances.get(level)
        return instance.parent if instance else None

    def mbr_at(self, level: int) -> Optional[Rect]:
        """MBR of the instance at ``level`` (``None`` if absent)."""
        instance = self.instances.get(level)
        return instance.mbr if instance else None

    def state_size(self) -> int:
        """Number of routing entries held (memory cost of Lemma 3.1).

        Counts one entry per child reference plus one per parent pointer and
        MBR, over all levels where the peer is active.
        """
        total = 0
        for instance in self.instances.values():
            total += len(instance.children) + 2
        return total

    # ------------------------------------------------------------------ #
    # Local-vs-remote dispatch
    # ------------------------------------------------------------------ #

    def local_or_send(self, recipient: str, kind: str, **payload) -> None:
        """Send a protocol message, short-circuiting messages to ourselves.

        The paper treats interactions between two instances owned by the same
        peer as local steps; handling them synchronously keeps the message
        counts comparable with the paper's examples.
        """
        if recipient == self.process_id:
            message = Message(sender=self.process_id, recipient=self.process_id,
                              kind=kind, payload=payload)
            self.handle_message(message)
            return
        self.send(recipient, kind, **payload)

    # ------------------------------------------------------------------ #
    # Fault-injection interface (used by repro.sim.failures)
    # ------------------------------------------------------------------ #

    def levels(self) -> List[int]:
        """Levels at which this peer currently holds (corruptible) state."""
        return sorted(self.instances)

    def corrupt_parent(self, level: int, value: Optional[str]) -> None:
        """Transient fault: overwrite the parent pointer at ``level``."""
        instance = self.instances.get(level)
        if instance is not None:
            instance.parent = value

    def corrupt_children(self, level: int, child_ids: Iterable[str]) -> None:
        """Transient fault: replace the children set at ``level``."""
        instance = self.instances.get(level)
        if instance is None or instance.is_leaf:
            return
        instance.children = {}
        for child_id in child_ids:
            if child_id == self.process_id:
                continue
            instance.add_child(child_id, self.filter_rect, 0, self.round_number)

    def corrupt_mbr(self, level: int, rect: Rect) -> None:
        """Transient fault: overwrite the MBR at ``level``."""
        instance = self.instances.get(level)
        if instance is not None:
            instance.mbr = rect

    def corrupt_underloaded(self, level: int, flag: bool) -> None:
        """Transient fault: overwrite the underloaded flag at ``level``."""
        instance = self.instances.get(level)
        if instance is not None:
            instance.underloaded = flag

    # ------------------------------------------------------------------ #
    # Introspection helpers for the verifier and the experiments
    # ------------------------------------------------------------------ #

    def snapshot(self) -> Dict[int, dict]:
        """A plain-data view of this peer's per-level state."""
        return {
            level: {
                "parent": instance.parent,
                "children": instance.child_ids(),
                "mbr": instance.mbr.as_tuple(),
                "underloaded": instance.underloaded,
            }
            for level, instance in self.instances.items()
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging convenience
        return (
            f"DRTreePeer({self.process_id!r}, levels={sorted(self.instances)}, "
            f"joined={self.joined})"
        )

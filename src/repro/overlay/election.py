"""Root/parent election and cover comparison helpers.

The DR-tree chooses as the parent of a subtree the member "whose current MBR
is largest, i.e. which provides most coverage" (Figure 6): if one filter
covers all the others it becomes the parent and no false positive is
introduced; when filters intersect or are disjoint, picking the largest MBR
minimizes the area responsible for false positives.

The same rule drives three protocol moments:

* choosing which of the two groups' members becomes the new parent after a
  split (``elect_group_parent``),
* creating a new root when the old root splits (``elect_new_root``),
* the periodic cover exchange (``Is_Better_MBR_Cover`` in Figure 7, exposed
  here as :func:`is_better_cover`).

Ties are broken by peer id so that concurrent elections at different peers
reach the same decision.
"""

from __future__ import annotations

from typing import Mapping, Tuple

from repro.spatial.rectangle import Rect


def area_key(area: float, peer_id: str) -> Tuple[float, str]:
    """Sort key implementing "largest area wins, ties by smallest id"."""
    return (-area, peer_id)


def is_better_cover(candidate_area: float, incumbent_area: float) -> bool:
    """Figure 7's ``Is_Better_MBR_Cover``: strict area comparison."""
    return candidate_area > incumbent_area


def elect_group_parent(group: Mapping[str, Rect]) -> str:
    """Elect the parent of a group of siblings.

    ``group`` maps peer id → the member's subtree MBR.  The member with the
    largest MBR area wins; ties break towards the smallest id.
    """
    if not group:
        raise ValueError("cannot elect a parent from an empty group")
    return min(group, key=lambda pid: area_key(group[pid].area(), pid))


def elect_new_root(left: Tuple[str, Rect], right: Tuple[str, Rect]) -> str:
    """Elect the new root after a root split (``Create_Root`` in Figure 8)."""
    left_id, left_mbr = left
    right_id, right_mbr = right
    return elect_group_parent({left_id: left_mbr, right_id: right_mbr})


def best_set_cover(
    merged_mbr: Rect,
    first: Tuple[str, Rect],
    second: Tuple[str, Rect],
) -> str:
    """Figure 14's ``Best_Set_Cover``: who should lead a merged children set.

    The paper elects the candidate whose own filter leaves the smallest
    uncovered area of the merged MBR (``|mbr_set − filter|`` is minimal),
    i.e. the candidate that already covers most of the merged region.
    """
    first_id, first_rect = first
    second_id, second_rect = second
    first_uncovered = merged_mbr.area() - merged_mbr.intersection_area(first_rect)
    second_uncovered = merged_mbr.area() - merged_mbr.intersection_area(second_rect)
    if first_uncovered < second_uncovered:
        return first_id
    if second_uncovered < first_uncovered:
        return second_id
    return min(first_id, second_id)


def choose_best_child(children: Mapping[str, Rect], rect: Rect) -> str:
    """Figure 8's ``Choose_Best_Child``: least-enlargement routing.

    Returns the child whose MBR needs the smallest enlargement to cover
    ``rect``; ties break on smaller resulting area, then on id.
    """
    if not children:
        raise ValueError("cannot choose a child from an empty children set")
    return min(
        children,
        key=lambda cid: (
            children[cid].enlargement(rect),
            children[cid].area(),
            cid,
        ),
    )

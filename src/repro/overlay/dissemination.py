"""Event dissemination over the DR-tree (Sections 2.3 and 3).

An event produced by a subscriber ``n`` is disseminated along all subtrees
for which ``n`` is a root, propagated upward to the root of the DR-tree, and
pushed down every sibling subtree encountered on the path whose MBR contains
the event.  Forwarding between two instances owned by the same peer is a
local step and costs no network message — this matches the paper's running
example, where delivering event *a* to S2, S3 and S4 requires only two
messages.

By construction the dissemination produces **no false negatives**: every MBR
on the path from the root to a matching leaf contains the event.  A **false
positive** occurs when a peer receives an event (because one of its instances
had to consider it) whose own filter does not match.

Batched mode
------------
When the network runs with ``batch=True`` the PUBLISH_DOWN fan-out is
vectorized: the children whose MBR contains the event are selected in one
containment pass (:func:`repro.spatial.containment.child_ids_containing_point`),
their envelopes come from the network's :class:`~repro.sim.messages.MessagePool`
and share a single payload dictionary, and the whole hop is handed to
:meth:`~repro.sim.network.Network.send_many` as one per-round batch.  The
payload additionally carries the event object and its point so receivers skip
re-deserialization.  Delivery outcomes (who receives which event, at what hop
count) are identical to the unbatched mode; only the scheduling cost differs.
"""

from __future__ import annotations

from typing import Optional

from repro.overlay import messages as msg
from repro.sim.messages import Message
from repro.spatial.containment import child_ids_containing_point
from repro.spatial.filters import Event
from repro.spatial.rectangle import Point


class DisseminationMixin:
    """Dissemination behaviour of :class:`~repro.overlay.peer.DRTreePeer`."""

    # ------------------------------------------------------------------ #
    # Publishing
    # ------------------------------------------------------------------ #

    def publish(self, event: Event) -> None:
        """Publish ``event`` from this peer (the paper's producer node ``n``)."""
        if not self.alive:
            return
        self.metrics.increment("pubsub.published")
        point = self._event_point(event)
        self._record_event_reception(event, hops=0, point=point)
        # Down every subtree this peer roots.
        for level in sorted(self.instances, reverse=True):
            self._forward_down_from(level, event, point, hops=0,
                                    exclude_child=None)
        # Up towards the root, visiting sibling subtrees on the way.
        top = self.top_level()
        top_instance = self.instances[top]
        if top_instance.parent and top_instance.parent != self.process_id:
            self._send_up(top_instance.parent, event, point,
                          child_level=top, hops=1)

    # ------------------------------------------------------------------ #
    # Handlers
    # ------------------------------------------------------------------ #

    def handle_publish_up(self, message: Message) -> None:
        """An event bubbling up from a child: serve the siblings, keep climbing."""
        payload = message.payload
        fast_point = None
        event = payload.get("event_obj")
        if event is None:
            event = self._deserialize_event(payload["event"])
        if event.event_id in self.seen_events:
            # A corrupted structure (a child listed under two parents) can
            # route the same event here twice; do not amplify it further.
            self.metrics.increment("pubsub.duplicates")
            return
        from_child = payload["from_child"]
        child_level = int(payload["child_level"])
        hops = int(payload.get("hops", 0))
        level = child_level + 1
        point = fast_point = payload.get("point")
        if point is None:
            point = self._event_point(event)
        self._record_event_reception(event, hops, fast_point)
        instance = self.instances.get(level)
        if instance is None:
            # Stale routing; fall back to our topmost instance.
            if not self.instances:
                return
            level = self.top_level()
            instance = self.instances[level]
        self._forward_down_from(level, event, point, hops,
                                exclude_child=from_child)
        # Also serve the levels where this peer is active above `level`
        # locally and keep climbing if a parent exists.
        for higher in sorted(lvl for lvl in self.instances if lvl > level):
            self._forward_down_from(higher, event, point, hops,
                                    exclude_child=self.process_id)
        top = self.top_level()
        top_instance = self.instances[top]
        if top_instance.parent and top_instance.parent != self.process_id:
            self._send_up(top_instance.parent, event, point,
                          child_level=top, hops=hops + 1)

    def handle_publish_down(self, message: Message) -> None:
        """An event flowing down a subtree whose MBR contains it."""
        payload = message.payload
        event = payload.get("event_obj")
        if event is not None:
            # Batched fast path: the event object and its point travel with
            # the message, so nothing is re-derived per reception, and the
            # reception bookkeeping of ``_record_event_reception`` is inlined
            # below to avoid a call and a second seen_events lookup in the
            # hottest loop of the simulator.  Keep the two sites in lockstep
            # — the batched/unbatched equivalence property tests fail on any
            # drift between them.
            seen = self.seen_events
            event_id = event.event_id
            if event_id in seen:
                self.metrics.increment("pubsub.duplicates")
                return
            hops = payload["hops"]
            point = payload["point"]
            matched = self.subscription.matches_point(event, point)
            seen[event_id] = matched
            metrics = self.metrics
            metrics.increment("pubsub.receptions")
            if matched:
                metrics.observe("pubsub.delivery_hops", hops)
            else:
                metrics.increment("pubsub.false_positives")
            listener = self.delivery_listener
            if listener is not None:
                listener(self.process_id, event, matched, hops)
            level = payload["level"]
            if level <= 0:
                return
            instance = self.instances.get(level)
            if instance is None or instance.level == 0:
                return
            self._forward_down_batched(instance, level, event, point, hops,
                                       exclude_child=None)
            return
        event = self._deserialize_event(payload["event"])
        if event.event_id in self.seen_events:
            self.metrics.increment("pubsub.duplicates")
            return
        level = int(payload["level"])
        hops = int(payload.get("hops", 0))
        point = self._event_point(event)
        self._record_event_reception(event, hops)
        if level <= 0:
            return
        instance = self.instances.get(level)
        if instance is None:
            return
        self._forward_down_from(level, event, point, hops, exclude_child=None)

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #

    def _forward_down_from(self, level: int, event: Event, point: Point,
                           hops: int, exclude_child: Optional[str]) -> None:
        """Forward ``event`` to every child at ``level`` whose MBR contains it."""
        instance = self.instances.get(level)
        if instance is None or instance.is_leaf:
            return
        if self.network.batch:
            self._forward_down_batched(instance, level, event, point, hops,
                                       exclude_child)
            return
        for child_id, info in instance.children.items():
            if child_id == exclude_child:
                continue
            if not info.mbr.contains_point(point):
                continue
            if child_id == self.process_id:
                # Local step: descend our own chain without a network message.
                self._forward_down_from(level - 1, event, point, hops,
                                        exclude_child=None)
                continue
            self.metrics.increment("pubsub.messages")
            self.send(child_id, msg.PUBLISH_DOWN,
                      event=self._serialize_event(event),
                      level=level - 1,
                      hops=hops + 1)

    def _forward_down_batched(self, instance, level: int, event: Event,
                              point: Point, hops: int,
                              exclude_child: Optional[str]) -> None:
        """Vectorized fan-out: one containment pass, bulk sends.

        The pending remote batch is flushed whenever the local-descent child
        comes up, so the network sees sends (and consumes its loss/latency
        RNG streams) in exactly the per-child order of the unbatched loop —
        this is what keeps the two modes' outcomes identical even on lossy
        networks.  A hop without a local step still costs one bulk send.
        """
        targets = child_ids_containing_point(instance.children, point,
                                             exclude=exclude_child)
        if not targets:
            return
        # One payload for the whole hop: receivers treat it as read-only and
        # the pool never mutates it, so sharing is safe.  The event travels
        # as the object itself (plus its precomputed point) — batch mode is
        # an in-process fast path, so no wire form is produced.
        payload = {
            "event_obj": event,
            "point": point,
            "level": level - 1,
            "hops": hops + 1,
        }
        me = self.process_id
        network = self.network
        pending: list = []
        for child_id in targets:
            if child_id != me:
                pending.append(child_id)
                continue
            if pending:
                self.metrics.increment("pubsub.messages", len(pending))
                network.send_many(network.pool.acquire_many(
                    me, pending, msg.PUBLISH_DOWN, payload))
                pending = []
            self._forward_down_from(level - 1, event, point, hops,
                                    exclude_child=None)
        if pending:
            self.metrics.increment("pubsub.messages", len(pending))
            network.send_many(network.pool.acquire_many(
                me, pending, msg.PUBLISH_DOWN, payload))

    def _send_up(self, parent_id: str, event: Event, point: Point,
                 child_level: int, hops: int) -> None:
        """Send PUBLISH_UP to ``parent_id`` (event object in batch mode)."""
        if self.network.batch:
            self.send(parent_id, msg.PUBLISH_UP,
                      event_obj=event, point=point,
                      from_child=self.process_id,
                      child_level=child_level, hops=hops)
            return
        self.send(parent_id, msg.PUBLISH_UP,
                  event=self._serialize_event(event),
                  from_child=self.process_id,
                  child_level=child_level, hops=hops)

    def _record_event_reception(self, event: Event, hops: int,
                                point: Optional[Point] = None) -> None:
        """Record that this peer saw ``event`` (exactly once per event).

        When the caller already holds the event's point, the match test takes
        :meth:`~repro.spatial.filters.Subscription.matches_point` — the
        exact-equivalent fast path — instead of re-deriving the point.

        NOTE: ``handle_publish_down``'s batched branch inlines a copy of
        this bookkeeping for speed; any change here must be mirrored there
        (the equivalence property tests catch divergence).
        """
        if event.event_id in self.seen_events:
            return
        if point is not None:
            matched = self.subscription.matches_point(event, point)
        else:
            matched = self.subscription.matches(event)
        self.seen_events[event.event_id] = matched
        self.metrics.increment("pubsub.receptions")
        if matched:
            self.metrics.observe("pubsub.delivery_hops", hops)
        else:
            self.metrics.increment("pubsub.false_positives")
        if self.delivery_listener is not None:
            self.delivery_listener(self.process_id, event, matched, hops)

    def _event_point(self, event: Event) -> Point:
        return event.to_point(self.subscription.space)

    @staticmethod
    def _serialize_event(event: Event) -> dict:
        return {"attributes": dict(event.attributes), "event_id": event.event_id}

    @staticmethod
    def _deserialize_event(payload: dict) -> Event:
        return Event(attributes=payload["attributes"],
                     event_id=payload.get("event_id", ""))

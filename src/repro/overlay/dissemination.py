"""Event dissemination over the DR-tree (Sections 2.3 and 3).

An event produced by a subscriber ``n`` is disseminated along all subtrees
for which ``n`` is a root, propagated upward to the root of the DR-tree, and
pushed down every sibling subtree encountered on the path whose MBR contains
the event.  Forwarding between two instances owned by the same peer is a
local step and costs no network message — this matches the paper's running
example, where delivering event *a* to S2, S3 and S4 requires only two
messages.

By construction the dissemination produces **no false negatives**: every MBR
on the path from the root to a matching leaf contains the event.  A **false
positive** occurs when a peer receives an event (because one of its instances
had to consider it) whose own filter does not match.
"""

from __future__ import annotations

from typing import Optional

from repro.overlay import messages as msg
from repro.sim.messages import Message
from repro.spatial.filters import Event
from repro.spatial.rectangle import Point


class DisseminationMixin:
    """Dissemination behaviour of :class:`~repro.overlay.peer.DRTreePeer`."""

    # ------------------------------------------------------------------ #
    # Publishing
    # ------------------------------------------------------------------ #

    def publish(self, event: Event) -> None:
        """Publish ``event`` from this peer (the paper's producer node ``n``)."""
        if not self.alive:
            return
        self.metrics.increment("pubsub.published")
        point = self._event_point(event)
        self._record_event_reception(event, hops=0)
        # Down every subtree this peer roots.
        for level in sorted(self.instances, reverse=True):
            self._forward_down_from(level, event, point, hops=0,
                                    exclude_child=None)
        # Up towards the root, visiting sibling subtrees on the way.
        top = self.top_level()
        top_instance = self.instances[top]
        if top_instance.parent and top_instance.parent != self.process_id:
            self.send(top_instance.parent, msg.PUBLISH_UP,
                      event=self._serialize_event(event),
                      from_child=self.process_id,
                      child_level=top,
                      hops=1)

    # ------------------------------------------------------------------ #
    # Handlers
    # ------------------------------------------------------------------ #

    def handle_publish_up(self, message: Message) -> None:
        """An event bubbling up from a child: serve the siblings, keep climbing."""
        event = self._deserialize_event(message.payload["event"])
        if event.event_id in self.seen_events:
            # A corrupted structure (a child listed under two parents) can
            # route the same event here twice; do not amplify it further.
            self.metrics.increment("pubsub.duplicates")
            return
        from_child = message.payload["from_child"]
        child_level = int(message.payload["child_level"])
        hops = int(message.payload.get("hops", 0))
        level = child_level + 1
        point = self._event_point(event)
        self._record_event_reception(event, hops)
        instance = self.instances.get(level)
        if instance is None:
            # Stale routing; fall back to our topmost instance.
            if not self.instances:
                return
            level = self.top_level()
            instance = self.instances[level]
        self._forward_down_from(level, event, point, hops,
                                exclude_child=from_child)
        # Also serve the levels where this peer is active above `level`
        # locally and keep climbing if a parent exists.
        for higher in sorted(lvl for lvl in self.instances if lvl > level):
            self._forward_down_from(higher, event, point, hops,
                                    exclude_child=self.process_id)
        top = self.top_level()
        top_instance = self.instances[top]
        if top_instance.parent and top_instance.parent != self.process_id:
            self.send(top_instance.parent, msg.PUBLISH_UP,
                      event=self._serialize_event(event),
                      from_child=self.process_id,
                      child_level=top,
                      hops=hops + 1)

    def handle_publish_down(self, message: Message) -> None:
        """An event flowing down a subtree whose MBR contains it."""
        event = self._deserialize_event(message.payload["event"])
        if event.event_id in self.seen_events:
            self.metrics.increment("pubsub.duplicates")
            return
        level = int(message.payload["level"])
        hops = int(message.payload.get("hops", 0))
        point = self._event_point(event)
        self._record_event_reception(event, hops)
        if level <= 0:
            return
        instance = self.instances.get(level)
        if instance is None:
            return
        self._forward_down_from(level, event, point, hops, exclude_child=None)

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #

    def _forward_down_from(self, level: int, event: Event, point: Point,
                           hops: int, exclude_child: Optional[str]) -> None:
        """Forward ``event`` to every child at ``level`` whose MBR contains it."""
        instance = self.instances.get(level)
        if instance is None or instance.is_leaf:
            return
        for child_id, info in instance.children.items():
            if child_id == exclude_child:
                continue
            if not info.mbr.contains_point(point):
                continue
            if child_id == self.process_id:
                # Local step: descend our own chain without a network message.
                self._forward_down_from(level - 1, event, point, hops,
                                        exclude_child=None)
                continue
            self.metrics.increment("pubsub.messages")
            self.send(child_id, msg.PUBLISH_DOWN,
                      event=self._serialize_event(event),
                      level=level - 1,
                      hops=hops + 1)

    def _record_event_reception(self, event: Event, hops: int) -> None:
        """Record that this peer saw ``event`` (exactly once per event)."""
        if event.event_id in self.seen_events:
            return
        matched = self.subscription.matches(event)
        self.seen_events[event.event_id] = matched
        self.metrics.increment("pubsub.receptions")
        if matched:
            self.metrics.observe("pubsub.delivery_hops", hops)
        else:
            self.metrics.increment("pubsub.false_positives")
        if self.delivery_listener is not None:
            self.delivery_listener(self.process_id, event, matched, hops)

    def _event_point(self, event: Event) -> Point:
        return event.to_point(self.subscription.space)

    @staticmethod
    def _serialize_event(event: Event) -> dict:
        return {"attributes": dict(event.attributes), "event_id": event.event_id}

    @staticmethod
    def _deserialize_event(payload: dict) -> Event:
        return Event(attributes=payload["attributes"],
                     event_id=payload.get("event_id", ""))

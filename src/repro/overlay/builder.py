"""Convenience driver: build, stabilize and operate a DR-tree simulation.

The :class:`DRTreeSimulation` wires together the simulation engine, the
network, the oracle and the peers.  It is used by the pub/sub facade, the
examples and every experiment:

* ``add_peer`` / ``join_all`` — create peers and run their join protocol,
* ``stabilize`` — run synchronized stabilization rounds until the verifier
  reports a legal configuration (or a round budget is exhausted),
* ``crash`` / ``leave`` / ``corrupt`` — inject the paper's fault model,
* ``publish`` — disseminate an event from a given peer,
* ``verify`` — run the omniscient legality checker.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence

from repro.overlay.config import DRTreeConfig
from repro.overlay.oracle import ContactOracle
from repro.overlay.peer import DRTreePeer
from repro.overlay.verifier import OverlayVerifier, VerificationReport
from repro.sim.engine import SimulationEngine
from repro.sim.failures import MemoryCorruptor, CorruptionReport
from repro.sim.metrics import MetricsRegistry
from repro.sim.network import FixedLatency, Network
from repro.sim.rng import RandomStreams
from repro.spatial.filters import Event, Subscription


class DRTreeSimulation:
    """A complete simulated DR-tree deployment."""

    def __init__(
        self,
        config: Optional[DRTreeConfig] = None,
        seed: int = 0,
        oracle_policy: str = "root",
        loss_rate: float = 0.0,
        batch: bool = False,
    ) -> None:
        self.config = config or DRTreeConfig()
        self.streams = RandomStreams(seed)
        self.engine = SimulationEngine()
        self.metrics = MetricsRegistry()
        #: Batched dissemination: PUBLISH_DOWN fan-outs go through the
        #: network's vectorized ``send_many`` path (identical outcomes,
        #: one scheduling operation per hop instead of one per message).
        self.batch = batch
        self.network = Network(
            self.engine,
            latency=FixedLatency(self.config.message_latency),
            metrics=self.metrics,
            loss_rate=loss_rate,
            streams=self.streams,
            batch=batch,
        )
        self.oracle = ContactOracle(policy=oracle_policy, streams=self.streams)
        self.verifier = OverlayVerifier(
            self.config.min_children, self.config.max_children
        )
        self.corruptor = MemoryCorruptor(self.network, self.streams)
        self.peers: Dict[str, DRTreePeer] = {}

    # ------------------------------------------------------------------ #
    # Membership operations
    # ------------------------------------------------------------------ #

    def add_peer(self, subscription: Subscription,
                 peer_id: Optional[str] = None,
                 join: bool = True,
                 settle: bool = True) -> DRTreePeer:
        """Create a peer for ``subscription`` and (optionally) join it."""
        peer_id = peer_id or subscription.name
        if peer_id in self.peers:
            raise ValueError(f"duplicate peer id {peer_id!r}")
        peer = DRTreePeer(
            peer_id, self.network, subscription,
            config=self.config, oracle=self.oracle,
        )
        self.peers[peer_id] = peer
        if join:
            peer.start_join()
            if settle:
                self.settle()
        return peer

    def bulk_load(self, subscriptions: Sequence[Subscription]) -> None:
        """Lay out a legal DR-tree over ``subscriptions`` (STR fast path).

        Requires an empty simulation.  This is the engine-agnostic bulk
        entry point the pub/sub facade calls: here it runs the in-process
        bootstrap; the sharded simulation overrides it to partition the same
        layout across worker processes.
        """
        from repro.overlay.bootstrap import bootstrap_overlay

        bootstrap_overlay(self, subscriptions)

    def join_all(self, subscriptions: Iterable[Subscription],
                 settle_each: bool = True) -> List[DRTreePeer]:
        """Create and join one peer per subscription, in order."""
        return [
            self.add_peer(subscription, settle=settle_each)
            for subscription in subscriptions
        ]

    def leave(self, peer_id: str, settle: bool = True) -> None:
        """Controlled departure of ``peer_id``."""
        peer = self.peers[peer_id]
        peer.leave()
        if settle:
            self.settle()

    def crash(self, peer_id: str) -> None:
        """Uncontrolled departure (failure) of ``peer_id``."""
        peer = self.peers[peer_id]
        peer.crash()
        self.oracle.remove_member(peer_id)
        if self.oracle.contact(exclude=peer_id) is None:
            self.oracle.set_root_hint(None)

    def corrupt(self, fraction: float = 0.2,
                fields: Optional[Sequence[str]] = None) -> CorruptionReport:
        """Inject memory corruption into a random fraction of live peers."""
        victims = self.live_peers()
        return self.corruptor.corrupt_random_peers(
            victims, fraction=fraction,
            fields=tuple(fields) if fields else MemoryCorruptor.FIELDS,
        )

    # ------------------------------------------------------------------ #
    # Execution helpers
    # ------------------------------------------------------------------ #

    def settle(self, max_events: int = 200_000) -> None:
        """Deliver every in-flight message (no periodic timers are running)."""
        self.engine.run_until_idle(max_events=max_events)

    def run_round(self) -> None:
        """Run one synchronized stabilization round on every live peer."""
        for peer in self.live_peers():
            peer.run_stabilization_round()
        self.settle()

    def stabilize(self, max_rounds: int = 50,
                  require_legal: bool = True,
                  min_rounds: int = 1) -> VerificationReport:
        """Run stabilization rounds until the configuration is legal.

        Returns the final verification report; ``report.is_legal`` tells the
        caller whether convergence was reached within ``max_rounds``.  The
        number of rounds actually used is recorded in the ``stabilize.rounds``
        histogram of the metrics registry.

        ``min_rounds`` rounds are always executed (default: one) so that the
        periodic PARENT_QUERY refresh runs at least once even when the
        configuration is already structurally legal — the refresh is what
        keeps the parents' cached child MBRs up to date for dissemination.
        """
        report = self.verify()
        rounds = 0
        previous_signature = None
        while rounds < max_rounds:
            signature = self._structure_signature()
            if (rounds >= min_rounds and require_legal and report.is_legal
                    and signature == previous_signature):
                # Legal, and the last round changed nothing structurally: that
                # round acted as a pure refresh, so every parent's cached view
                # of its children (MBRs, counts) is up to date and
                # dissemination is immediately loss-free.
                break
            previous_signature = signature
            self.run_round()
            rounds += 1
            report = self.verify()
        self.metrics.observe("stabilize.rounds", rounds)
        return report

    def _structure_signature(self) -> tuple:
        """A hashable snapshot of the overlay's logical structure.

        Used by :meth:`stabilize` to detect quiescence: two identical
        consecutive signatures mean the intervening round performed no
        structural repair (only cache refreshes).
        """
        entries = []
        for peer in self.live_peers():
            for level, instance in sorted(peer.instances.items()):
                entries.append(
                    (peer.process_id, level, instance.parent,
                     tuple(instance.child_ids()))
                )
        return tuple(sorted(entries))

    # ------------------------------------------------------------------ #
    # Publish/subscribe and inspection
    # ------------------------------------------------------------------ #

    def publish(self, publisher_id: str, event: Event,
                settle: bool = True) -> None:
        """Publish ``event`` from peer ``publisher_id``."""
        self.peers[publisher_id].publish(event)
        if settle:
            self.settle()

    def live_peers(self) -> List[DRTreePeer]:
        """All peers that have not crashed or left."""
        return [peer for peer in self.peers.values() if peer.alive]

    def peer(self, peer_id: str) -> DRTreePeer:
        """Look up a peer by id."""
        return self.peers[peer_id]

    def root(self) -> Optional[DRTreePeer]:
        """The current root peer, if a unique one exists."""
        roots = [peer for peer in self.live_peers() if peer.is_overlay_root()]
        if len(roots) == 1:
            return roots[0]
        return None

    def height(self) -> int:
        """Height of the DR-tree (number of levels)."""
        root = self.root()
        return root.top_level() + 1 if root else 0

    def verify(self, check_containment: bool = False) -> VerificationReport:
        """Run the omniscient legality checker on the live peers."""
        return self.verifier.verify(self.live_peers(),
                                    check_containment=check_containment)

    # ------------------------------------------------------------------ #
    # Snapshot capability (picklable state for Broker.snapshot)
    # ------------------------------------------------------------------ #

    def has_pending(self) -> bool:
        """True while simulated work (messages, timers) is still in flight."""
        return self.engine.has_pending()

    def snapshot_state(self) -> "DRTreeSimulation":
        """The picklable snapshot payload of this simulation.

        At quiescence the whole object graph — engine (empty heap), network,
        peers, RNG streams, metrics — pickles directly; the facade embeds it
        in one ``pickle.dumps`` so cross-references (e.g. each peer's
        ``delivery_listener`` bound to the facade's accounting) stay shared
        after restore.
        """
        return self

    def restore_state(self, state: "DRTreeSimulation") -> "DRTreeSimulation":
        """Adopt an unpickled :meth:`snapshot_state` payload.

        The in-process engines are fully self-contained, so the restored
        object simply replaces the freshly built one.
        """
        return state


def build_stable_tree(
    subscriptions: Sequence[Subscription],
    config: Optional[DRTreeConfig] = None,
    seed: int = 0,
    max_rounds: int = 50,
    bulk: Optional[bool] = None,
    batch: bool = False,
) -> DRTreeSimulation:
    """Build a DR-tree over ``subscriptions`` and stabilize it.

    This is the entry point used by the quickstart example and most
    experiments.  Two construction paths exist:

    * **join** (the default below :data:`~repro.overlay.bootstrap.BULK_THRESHOLD`
      peers) — join every subscription in order through the join protocol,
      then run stabilization rounds until the verifier accepts the
      configuration.  This exercises the paper's protocols but costs one
      message cascade per peer.
    * **bulk** (the default at or above the threshold, or with ``bulk=True``)
      — lay out a legal DR-tree directly with the STR fast path
      (:func:`repro.overlay.bootstrap.bootstrap_overlay`) in ``O(n log n)``,
      then run stabilization as a refresh.  This is what makes 5k-10k peer
      scenarios practical.

    ``batch=True`` additionally enables the vectorized dissemination engine
    (see :class:`DRTreeSimulation`); construction and stabilization are
    unaffected by the flag.
    """
    from repro.overlay.bootstrap import BULK_THRESHOLD, bootstrap_overlay

    sim = DRTreeSimulation(config=config, seed=seed, batch=batch)
    use_bulk = bulk if bulk is not None else len(subscriptions) >= BULK_THRESHOLD
    if use_bulk:
        bootstrap_overlay(sim, subscriptions)
    else:
        sim.join_all(subscriptions)
    sim.stabilize(max_rounds=max_rounds)
    return sim

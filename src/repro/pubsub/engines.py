"""The DR-tree dissemination-engine registry.

The publish/subscribe facade (:class:`~repro.pubsub.api.PubSubSystem`) does
not hard-code how the simulated overlay schedules its PUBLISH fan-out; it
asks this registry for a named *engine* and lets the engine build the
simulation.  Three engines ship with the reproduction:

* ``classic`` — one scheduling operation per message (the paper's model,
  unchanged),
* ``batched`` — per-round delivery queues and a vectorized PUBLISH_DOWN
  fan-out; identical delivery outcomes, several times faster under
  sustained load (see ``docs/architecture.md``),
* ``sharded`` — the multi-process simulator of :mod:`repro.sim.sharded`:
  the peer set is partitioned across worker processes (one DR-tree subtree
  per shard) with cross-shard messages exchanged at round barriers over
  pickled pipes or shared-memory frame rings; delivery metrics are
  byte-identical to ``classic`` on the same seed.  Takes the engine
  options ``shards`` (worker count, default 2), ``transport``
  (``process``/``pipe``/``shm``/``inline``/``auto``) and ``batch``
  (batched dissemination inside each worker; defaults on for ``shm``).

The registry is the extension point further engines plug into:
:func:`register_engine` a factory, and every consumer — the
``engine=`` facade parameter, the ``drtree:<engine>`` backend names of
:mod:`repro.api`, trace replay's engine override — picks it up by name.
Engine *options* (e.g. ``--shards``) travel as a mapping through
:class:`~repro.api.spec.SystemSpec.engine_options` and are resolved into
the engine's typed :class:`EngineOptions` dataclass (declared on its
:class:`EngineSpec`) before construction — unknown keys and invalid values
are rejected with an error naming the engine and its allowed keys, at
:class:`~repro.api.spec.SystemSpec` construction time.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields
from typing import (TYPE_CHECKING, Any, Callable, Dict, List, Mapping,
                    Optional, Type, Union)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.overlay.builder import DRTreeSimulation
    from repro.overlay.config import DRTreeConfig


class UnknownEngineError(ValueError):
    """An engine name is not in the registry."""


@dataclass(frozen=True)
class EngineOptions:
    """Base of the per-engine typed option sets.

    An engine declares its options as a frozen dataclass subclass (fields
    with defaults, value validation in ``__post_init__``) and attaches it to
    its :class:`EngineSpec`.  The base class declares no fields, which is
    exactly the contract of the engines that take no options.
    """

    @classmethod
    def keys(cls) -> List[str]:
        """The option names this engine accepts."""
        return [spec_field.name for spec_field in fields(cls)]

    @classmethod
    def from_mapping(cls, engine: str,
                     options: Optional[Mapping[str, Any]]) -> "EngineOptions":
        """Resolve a user-supplied mapping into a validated option set.

        Raises :class:`ValueError` naming the engine and its allowed keys
        for unknown options, and wrapping any value-validation failure.
        """
        mapping = dict(options or {})
        unknown = sorted(set(mapping) - set(cls.keys()))
        if unknown:
            raise ValueError(
                f"engine {engine!r} does not accept engine options "
                f"{unknown} (known: {sorted(cls.keys())})")
        try:
            return cls(**mapping)
        except (TypeError, ValueError) as exc:
            raise ValueError(
                f"engine {engine!r} rejected engine options "
                f"{mapping!r}: {exc}") from exc

    def to_mapping(self) -> Dict[str, Any]:
        """The options as a plain mapping (spec/trace/journal form)."""
        return {spec_field.name: getattr(self, spec_field.name)
                for spec_field in fields(self)}


@dataclass(frozen=True)
class ShardedOptions(EngineOptions):
    """Typed options of the ``sharded`` engine."""

    #: Target worker count, applied at bulk-load time.
    shards: int = 2
    #: ``process``/``pipe`` (worker processes over a pickled pipe), ``shm``
    #: (worker processes over shared-memory frame rings, falling back to
    #: the pipe where ``shared_memory`` is unavailable), ``inline``
    #: (synchronous in-process execution, used where children are
    #: forbidden, e.g. daemonic pool workers), or ``auto``.
    transport: str = "auto"
    #: Run the batched dissemination engine *inside* each shard worker.
    #: ``None`` picks the transport default (batched on ``shm``).
    batch: Optional[bool] = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "shards", int(self.shards))
        object.__setattr__(self, "transport", str(self.transport))
        if self.batch is not None:
            object.__setattr__(self, "batch", bool(self.batch))
        if self.shards < 1:
            raise ValueError("shards must be at least 1")
        if self.transport not in ("auto", "process", "pipe", "shm",
                                  "inline"):
            raise ValueError(f"unknown shard transport {self.transport!r}")


@dataclass(frozen=True)
class EngineSpec:
    """A registered dissemination engine.

    ``factory`` builds the simulation the facade operates — a
    :class:`~repro.overlay.builder.DRTreeSimulation` or anything exposing
    its driving surface (the sharded engine returns a
    :class:`~repro.sim.sharded.ShardedSimulation`) — from ``(config, seed,
    options)`` where ``options`` is the engine's resolved
    :attr:`options_type` instance.  ``batch`` mirrors the engine into the
    legacy boolean carried by version-1 trace ``system`` records.
    """

    name: str
    description: str
    factory: Callable[..., "DRTreeSimulation"] = \
        field(repr=False, default=None)  # type: ignore[assignment]
    batch: bool = False
    #: The typed option set this engine accepts (none by default).
    options_type: Type[EngineOptions] = EngineOptions

    def resolve_options(self, options: Optional[Union[Mapping[str, Any],
                                                      EngineOptions]]
                        ) -> EngineOptions:
        """Validate ``options`` into this engine's typed option set."""
        if isinstance(options, EngineOptions):
            if type(options) is not self.options_type:
                raise ValueError(
                    f"engine {self.name!r} takes "
                    f"{self.options_type.__name__}, "
                    f"got {type(options).__name__}")
            return options
        return self.options_type.from_mapping(self.name, options)

    def build(self, config: Optional["DRTreeConfig"], seed: int,
              options: Optional[Union[Mapping[str, Any], EngineOptions]] = None
              ) -> "DRTreeSimulation":
        """Construct the simulation this engine drives."""
        return self.factory(config, seed, self.resolve_options(options))


_ENGINES: Dict[str, EngineSpec] = {}


def register_engine(spec: EngineSpec) -> EngineSpec:
    """Add an engine; duplicate names are errors."""
    if spec.name in _ENGINES:
        raise ValueError(f"engine {spec.name!r} is already registered")
    _ENGINES[spec.name] = spec
    return spec


def get_engine(name: str) -> EngineSpec:
    """Look up an engine by name."""
    try:
        return _ENGINES[name]
    except KeyError:
        raise UnknownEngineError(
            f"unknown dissemination engine {name!r}; "
            f"registered: {engine_names()}") from None


def engine_names() -> List[str]:
    """Registered engine names, in registration order."""
    return list(_ENGINES)


def _build_classic(config: Optional["DRTreeConfig"], seed: int,
                   options: EngineOptions) -> "DRTreeSimulation":
    from repro.overlay.builder import DRTreeSimulation

    return DRTreeSimulation(config=config, seed=seed, batch=False)


def _build_batched(config: Optional["DRTreeConfig"], seed: int,
                   options: EngineOptions) -> "DRTreeSimulation":
    from repro.overlay.builder import DRTreeSimulation

    return DRTreeSimulation(config=config, seed=seed, batch=True)


def _build_sharded(config: Optional["DRTreeConfig"], seed: int,
                   options: ShardedOptions):
    from repro.sim.sharded import ShardedSimulation

    return ShardedSimulation(config=config, seed=seed, shards=options.shards,
                             transport=options.transport,
                             batch=options.batch)


register_engine(EngineSpec(
    name="classic",
    description="one scheduling operation per message (the paper's model)",
    factory=_build_classic,
    batch=False,
))
register_engine(EngineSpec(
    name="batched",
    description="per-round delivery queues with a vectorized PUBLISH_DOWN "
                "fan-out; identical outcomes, faster under sustained load",
    factory=_build_batched,
    batch=True,
))
register_engine(EngineSpec(
    name="sharded",
    description="multi-process simulator: one DR-tree subtree per shard, "
                "cross-shard messages over pipes or shared-memory rings "
                "with a round-barrier merge; delivery metrics identical to "
                "classic (options: shards, transport, batch)",
    factory=_build_sharded,
    batch=False,
    options_type=ShardedOptions,
))

"""The DR-tree dissemination-engine registry.

The publish/subscribe facade (:class:`~repro.pubsub.api.PubSubSystem`) does
not hard-code how the simulated overlay schedules its PUBLISH fan-out; it
asks this registry for a named *engine* and lets the engine build the
simulation.  Three engines ship with the reproduction:

* ``classic`` — one scheduling operation per message (the paper's model,
  unchanged),
* ``batched`` — per-round delivery queues and a vectorized PUBLISH_DOWN
  fan-out; identical delivery outcomes, several times faster under
  sustained load (see ``docs/architecture.md``),
* ``sharded`` — the multi-process simulator of :mod:`repro.sim.sharded`:
  the peer set is partitioned across worker processes (one DR-tree subtree
  per shard) with cross-shard messages exchanged at round barriers over
  pickled pipes or shared-memory frame rings; delivery metrics are
  byte-identical to ``classic`` on the same seed.  Takes the engine
  options ``shards`` (worker count, default 2), ``transport``
  (``process``/``pipe``/``shm``/``inline``/``auto``) and ``batch``
  (batched dissemination inside each worker; defaults on for ``shm``).

The registry is the extension point further engines plug into:
:func:`register_engine` a factory, and every consumer — the
``engine=`` facade parameter, the ``drtree:<engine>`` backend names of
:mod:`repro.api`, trace replay's engine override — picks it up by name.
Engine *options* (e.g. ``--shards``) travel as a mapping through
:class:`~repro.api.spec.SystemSpec.engine_options` and are resolved into
the engine's typed :class:`EngineOptions` dataclass (declared on its
:class:`EngineSpec`) before construction — unknown keys and invalid values
are rejected with an error naming the engine and its allowed keys, at
:class:`~repro.api.spec.SystemSpec` construction time.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields
from typing import (TYPE_CHECKING, Any, Callable, Dict, FrozenSet, List,
                    Mapping, Optional, Type, Union)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.overlay.builder import DRTreeSimulation
    from repro.overlay.config import DRTreeConfig


class UnknownEngineError(ValueError):
    """An engine name is not in the registry."""


@dataclass(frozen=True)
class EngineOptions:
    """Base of the per-engine typed option sets.

    An engine declares its options as a frozen dataclass subclass (fields
    with defaults, value validation in ``__post_init__``) and attaches it to
    its :class:`EngineSpec`.  The base class declares no fields, which is
    exactly the contract of the engines that take no options.
    """

    @classmethod
    def keys(cls) -> List[str]:
        """The option names this engine accepts."""
        return [spec_field.name for spec_field in fields(cls)]

    @classmethod
    def from_mapping(cls, engine: str,
                     options: Optional[Mapping[str, Any]]) -> "EngineOptions":
        """Resolve a user-supplied mapping into a validated option set.

        Raises :class:`ValueError` naming the engine and its allowed keys
        for unknown options, and wrapping any value-validation failure.
        """
        mapping = dict(options or {})
        unknown = sorted(set(mapping) - set(cls.keys()))
        if unknown:
            raise ValueError(
                f"engine {engine!r} does not accept engine options "
                f"{unknown} (known: {sorted(cls.keys())})")
        try:
            return cls(**mapping)
        except (TypeError, ValueError) as exc:
            raise ValueError(
                f"engine {engine!r} rejected engine options "
                f"{mapping!r}: {exc}") from exc

    def to_mapping(self) -> Dict[str, Any]:
        """The options as a plain mapping (spec/trace/journal form)."""
        return {spec_field.name: getattr(self, spec_field.name)
                for spec_field in fields(self)}


@dataclass(frozen=True)
class ShardedOptions(EngineOptions):
    """Typed options of the ``sharded`` engine."""

    #: Target worker count, applied at bulk-load time.
    shards: int = 2
    #: ``process``/``pipe`` (worker processes over a pickled pipe), ``shm``
    #: (worker processes over shared-memory frame rings, falling back to
    #: the pipe where ``shared_memory`` is unavailable), ``inline``
    #: (synchronous in-process execution, used where children are
    #: forbidden, e.g. daemonic pool workers), or ``auto``.
    transport: str = "auto"
    #: Run the batched dissemination engine *inside* each shard worker.
    #: ``None`` picks the transport default (batched on ``shm``).
    batch: Optional[bool] = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "shards", int(self.shards))
        object.__setattr__(self, "transport", str(self.transport))
        if self.batch is not None:
            object.__setattr__(self, "batch", bool(self.batch))
        if self.shards < 1:
            raise ValueError("shards must be at least 1")
        if self.transport not in ("auto", "process", "pipe", "shm",
                                  "inline"):
            raise ValueError(f"unknown shard transport {self.transport!r}")


@dataclass(frozen=True)
class NetOptions(EngineOptions):
    """Typed options of the ``net`` engine (:mod:`repro.net`)."""

    #: Real seconds per simulated time unit: protocol timers declared in
    #: simulated units (e.g. ``stabilization_period``) are scaled by this
    #: factor when armed on the asyncio event loop.
    time_scale: float = 0.02
    #: ``periodic`` runs one jittered background stabilizer task per peer;
    #: ``off`` disables them (stabilization then only happens through the
    #: facade's explicit driven cycles).
    stabilizer: str = "periodic"
    #: Jitter fraction applied to each background stabilizer interval.
    jitter: float = 0.2
    #: Bounded retries for transient transport failures on sends.
    send_retries: int = 3
    #: Initial retry backoff in real seconds (doubled per attempt).
    retry_backoff: float = 0.05
    #: LRU cap on pooled outbound connections (each costs two loopback fds).
    max_channels: int = 2000
    #: Hard bound, in real seconds, on any single quiescence wait.
    idle_timeout: float = 60.0
    #: Deterministic network-condition spec (loss, latency, reorder,
    #: duplication, partitions) applied to every outbound frame — a
    #: mapping, a compact ``--conditions`` string, or ``None`` for a
    #: perfect network.  Normalized to the canonical mapping form (see
    #: :meth:`repro.net.conditions.NetConditions.to_mapping`) so specs,
    #: traces and journals carry a JSON-safe value.
    conditions: Optional[Union[Mapping[str, Any], str]] = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "time_scale", float(self.time_scale))
        object.__setattr__(self, "stabilizer", str(self.stabilizer))
        object.__setattr__(self, "jitter", float(self.jitter))
        object.__setattr__(self, "send_retries", int(self.send_retries))
        object.__setattr__(self, "retry_backoff", float(self.retry_backoff))
        object.__setattr__(self, "max_channels", int(self.max_channels))
        object.__setattr__(self, "idle_timeout", float(self.idle_timeout))
        if self.time_scale <= 0:
            raise ValueError("time_scale must be positive")
        if self.stabilizer not in ("periodic", "off"):
            raise ValueError(f"unknown stabilizer mode {self.stabilizer!r}")
        if not 0.0 <= self.jitter < 1.0:
            raise ValueError("jitter must be in [0, 1)")
        if self.send_retries < 0:
            raise ValueError("send_retries must be non-negative")
        if self.retry_backoff <= 0:
            raise ValueError("retry_backoff must be positive")
        if self.max_channels < 1:
            raise ValueError("max_channels must be at least 1")
        if self.idle_timeout <= 0:
            raise ValueError("idle_timeout must be positive")
        if self.conditions is not None:
            from repro.net.conditions import NetConditions

            spec = NetConditions.coerce(self.conditions)
            object.__setattr__(self, "conditions", spec.to_mapping())

    def resolved_conditions(self):
        """The validated :class:`~repro.net.conditions.NetConditions`, or
        ``None`` when the network is perfect."""
        if self.conditions is None:
            return None
        from repro.net.conditions import NetConditions

        return NetConditions.coerce(self.conditions)


@dataclass(frozen=True)
class EngineSpec:
    """A registered dissemination engine.

    ``factory`` builds the simulation the facade operates — a
    :class:`~repro.overlay.builder.DRTreeSimulation` or anything exposing
    its driving surface (the sharded engine returns a
    :class:`~repro.sim.sharded.ShardedSimulation`) — from ``(config, seed,
    options)`` where ``options`` is the engine's resolved
    :attr:`options_type` instance.  ``batch`` mirrors the engine into the
    legacy boolean carried by version-1 trace ``system`` records.

    ``capabilities`` is what brokers built on this engine advertise to
    :mod:`repro.api.capabilities` (the simulated engines support
    ``snapshot``; the real-network engine does not).  ``metrics_identical``
    states whether the engine reproduces the simulated engines' delivery
    *metrics rows* bit for bit on the same op stream: the real-network
    engine delivers the identical event sets (digest-checked) but its
    message counts include timing-dependent background-stabilizer traffic,
    so row-level comparisons are relaxed to digest comparisons for it.
    """

    name: str
    description: str
    factory: Callable[..., "DRTreeSimulation"] = \
        field(repr=False, default=None)  # type: ignore[assignment]
    batch: bool = False
    #: The typed option set this engine accepts (none by default).
    options_type: Type[EngineOptions] = EngineOptions
    #: Capability names brokers on this engine advertise.
    capabilities: FrozenSet[str] = frozenset({"snapshot"})
    #: True when delivery-metrics rows are reproducible across runs and
    #: comparable field-by-field with the simulated engines.
    metrics_identical: bool = True

    def resolve_options(self, options: Optional[Union[Mapping[str, Any],
                                                      EngineOptions]]
                        ) -> EngineOptions:
        """Validate ``options`` into this engine's typed option set."""
        if isinstance(options, EngineOptions):
            if type(options) is not self.options_type:
                raise ValueError(
                    f"engine {self.name!r} takes "
                    f"{self.options_type.__name__}, "
                    f"got {type(options).__name__}")
            return options
        return self.options_type.from_mapping(self.name, options)

    def build(self, config: Optional["DRTreeConfig"], seed: int,
              options: Optional[Union[Mapping[str, Any], EngineOptions]] = None
              ) -> "DRTreeSimulation":
        """Construct the simulation this engine drives."""
        return self.factory(config, seed, self.resolve_options(options))


_ENGINES: Dict[str, EngineSpec] = {}


def register_engine(spec: EngineSpec) -> EngineSpec:
    """Add an engine; duplicate names are errors."""
    if spec.name in _ENGINES:
        raise ValueError(f"engine {spec.name!r} is already registered")
    _ENGINES[spec.name] = spec
    return spec


def get_engine(name: str) -> EngineSpec:
    """Look up an engine by name."""
    try:
        return _ENGINES[name]
    except KeyError:
        raise UnknownEngineError(
            f"unknown dissemination engine {name!r}; "
            f"registered: {engine_names()}") from None


def engine_names() -> List[str]:
    """Registered engine names, in registration order."""
    return list(_ENGINES)


def _build_classic(config: Optional["DRTreeConfig"], seed: int,
                   options: EngineOptions) -> "DRTreeSimulation":
    from repro.overlay.builder import DRTreeSimulation

    return DRTreeSimulation(config=config, seed=seed, batch=False)


def _build_batched(config: Optional["DRTreeConfig"], seed: int,
                   options: EngineOptions) -> "DRTreeSimulation":
    from repro.overlay.builder import DRTreeSimulation

    return DRTreeSimulation(config=config, seed=seed, batch=True)


def _build_sharded(config: Optional["DRTreeConfig"], seed: int,
                   options: ShardedOptions):
    from repro.sim.sharded import ShardedSimulation

    return ShardedSimulation(config=config, seed=seed, shards=options.shards,
                             transport=options.transport,
                             batch=options.batch)


register_engine(EngineSpec(
    name="classic",
    description="one scheduling operation per message (the paper's model)",
    factory=_build_classic,
    batch=False,
))
register_engine(EngineSpec(
    name="batched",
    description="per-round delivery queues with a vectorized PUBLISH_DOWN "
                "fan-out; identical outcomes, faster under sustained load",
    factory=_build_batched,
    batch=True,
))
def _build_net(config: Optional["DRTreeConfig"], seed: int,
               options: NetOptions):
    from repro.net.broker import NetSimulation

    return NetSimulation(config=config, seed=seed, options=options)


register_engine(EngineSpec(
    name="sharded",
    description="multi-process simulator: one DR-tree subtree per shard, "
                "cross-shard messages over pipes or shared-memory rings "
                "with a round-barrier merge; delivery metrics identical to "
                "classic (options: shards, transport, batch)",
    factory=_build_sharded,
    batch=False,
    options_type=ShardedOptions,
))
register_engine(EngineSpec(
    name="net",
    description="real-network backend: every peer owns a loopback TCP "
                "server on an asyncio runtime, overlay messages travel as "
                "CRC-framed pickled frames, and a jittered per-peer "
                "background stabilizer replaces the global round barrier; "
                "delivered-event sets identical to classic (digest-checked), "
                "message counts timing-dependent (options: time_scale, "
                "stabilizer, jitter, send_retries, retry_backoff, "
                "max_channels, idle_timeout, conditions — deterministic "
                "loss/latency/partition injection)",
    factory=_build_net,
    batch=False,
    options_type=NetOptions,
    capabilities=frozenset(),
    metrics_identical=False,
))

"""The DR-tree dissemination-engine registry.

The publish/subscribe facade (:class:`~repro.pubsub.api.PubSubSystem`) does
not hard-code how the simulated overlay schedules its PUBLISH fan-out; it
asks this registry for a named *engine* and lets the engine build the
simulation.  Three engines ship with the reproduction:

* ``classic`` — one scheduling operation per message (the paper's model,
  unchanged),
* ``batched`` — per-round delivery queues and a vectorized PUBLISH_DOWN
  fan-out; identical delivery outcomes, several times faster under
  sustained load (see ``docs/architecture.md``),
* ``sharded`` — the multi-process simulator of :mod:`repro.sim.sharded`:
  the peer set is partitioned across worker processes (one DR-tree subtree
  per shard) with cross-shard messages exchanged over pipes at round
  barriers; delivery metrics are byte-identical to ``classic`` on the same
  seed.  Takes the engine options ``shards`` (worker count, default 2) and
  ``transport`` (``process``/``inline``/``auto``).

The registry is the extension point further engines plug into:
:func:`register_engine` a factory, and every consumer — the
``engine=`` facade parameter, the ``drtree:<engine>`` backend names of
:mod:`repro.api`, trace replay's engine override — picks it up by name.
Engine *options* (e.g. ``--shards``) travel as a mapping through
:class:`~repro.api.spec.SystemSpec.engine_options` and are applied as
keyword arguments of the engine factory; engines that declare none reject
them with a clear error.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import (TYPE_CHECKING, Any, Callable, Dict, List, Mapping,
                    Optional)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.overlay.builder import DRTreeSimulation
    from repro.overlay.config import DRTreeConfig


class UnknownEngineError(ValueError):
    """An engine name is not in the registry."""


@dataclass(frozen=True)
class EngineSpec:
    """A registered dissemination engine.

    ``factory`` builds the simulation the facade operates — a
    :class:`~repro.overlay.builder.DRTreeSimulation` or anything exposing
    its driving surface (the sharded engine returns a
    :class:`~repro.sim.sharded.ShardedSimulation`).  Engine options are
    passed through as keyword arguments.  ``batch`` mirrors the engine into
    the legacy boolean carried by version-1 trace ``system`` records (and by
    the deprecated ``batch=`` facade alias).
    """

    name: str
    description: str
    factory: Callable[..., "DRTreeSimulation"] = \
        field(repr=False, default=None)  # type: ignore[assignment]
    batch: bool = False

    def build(self, config: Optional["DRTreeConfig"], seed: int,
              options: Optional[Mapping[str, Any]] = None
              ) -> "DRTreeSimulation":
        """Construct the simulation this engine drives."""
        resolved = dict(options or {})
        try:
            return self.factory(config, seed, **resolved)
        except TypeError as exc:
            if resolved:
                raise ValueError(
                    f"engine {self.name!r} rejected engine options "
                    f"{resolved!r}: {exc}") from exc
            raise

    def validate_options(self, options: Optional[Mapping[str, Any]]) -> None:
        """Raise :class:`ValueError` for options the factory cannot take."""
        if not options:
            return
        import inspect

        signature = inspect.signature(self.factory)
        accepts_kwargs = any(
            parameter.kind is inspect.Parameter.VAR_KEYWORD
            for parameter in signature.parameters.values())
        if accepts_kwargs:
            return
        # ``config`` and ``seed`` are the positional construction inputs of
        # every factory, never engine options — an option by those names
        # must be rejected here, not collide with the positionals later.
        known = set(signature.parameters) - {"config", "seed"}
        unknown = sorted(set(options) - known)
        if unknown:
            raise ValueError(
                f"engine {self.name!r} does not accept engine options "
                f"{unknown} (known: {sorted(known)})")


_ENGINES: Dict[str, EngineSpec] = {}


def register_engine(spec: EngineSpec) -> EngineSpec:
    """Add an engine; duplicate names are errors."""
    if spec.name in _ENGINES:
        raise ValueError(f"engine {spec.name!r} is already registered")
    _ENGINES[spec.name] = spec
    return spec


def get_engine(name: str) -> EngineSpec:
    """Look up an engine by name."""
    try:
        return _ENGINES[name]
    except KeyError:
        raise UnknownEngineError(
            f"unknown dissemination engine {name!r}; "
            f"registered: {engine_names()}") from None


def engine_names() -> List[str]:
    """Registered engine names, in registration order."""
    return list(_ENGINES)


def _build_classic(config: Optional["DRTreeConfig"],
                   seed: int) -> "DRTreeSimulation":
    from repro.overlay.builder import DRTreeSimulation

    return DRTreeSimulation(config=config, seed=seed, batch=False)


def _build_batched(config: Optional["DRTreeConfig"],
                   seed: int) -> "DRTreeSimulation":
    from repro.overlay.builder import DRTreeSimulation

    return DRTreeSimulation(config=config, seed=seed, batch=True)


def _build_sharded(config: Optional["DRTreeConfig"], seed: int,
                   shards: int = 2, transport: str = "auto"):
    from repro.sim.sharded import ShardedSimulation

    return ShardedSimulation(config=config, seed=seed, shards=int(shards),
                             transport=str(transport))


register_engine(EngineSpec(
    name="classic",
    description="one scheduling operation per message (the paper's model)",
    factory=_build_classic,
    batch=False,
))
register_engine(EngineSpec(
    name="batched",
    description="per-round delivery queues with a vectorized PUBLISH_DOWN "
                "fan-out; identical outcomes, faster under sustained load",
    factory=_build_batched,
    batch=True,
))
register_engine(EngineSpec(
    name="sharded",
    description="multi-process simulator: one DR-tree subtree per shard, "
                "cross-shard messages over pipes with a round-barrier "
                "merge; delivery metrics identical to classic (options: "
                "shards, transport)",
    factory=_build_sharded,
    batch=False,
))

"""The DR-tree dissemination-engine registry.

The publish/subscribe facade (:class:`~repro.pubsub.api.PubSubSystem`) does
not hard-code how the simulated overlay schedules its PUBLISH fan-out; it
asks this registry for a named *engine* and lets the engine build the
simulation.  Two engines ship with the reproduction:

* ``classic`` — one scheduling operation per message (the paper's model,
  unchanged),
* ``batched`` — per-round delivery queues and a vectorized PUBLISH_DOWN
  fan-out; identical delivery outcomes, several times faster under
  sustained load (see ``docs/architecture.md``).

The registry is the extension point future engines plug into (the ROADMAP's
sharded multi-process engine registers here without touching the facade):
:func:`register_engine` a factory, and every consumer — the
``engine=`` facade parameter, the ``drtree:<engine>`` backend names of
:mod:`repro.api`, trace replay's engine override — picks it up by name.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Dict, List, Optional

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.overlay.builder import DRTreeSimulation
    from repro.overlay.config import DRTreeConfig


class UnknownEngineError(ValueError):
    """An engine name is not in the registry."""


@dataclass(frozen=True)
class EngineSpec:
    """A registered dissemination engine.

    ``factory`` builds the :class:`~repro.overlay.builder.DRTreeSimulation`
    the facade operates; ``batch`` mirrors the engine into the legacy
    boolean carried by version-1 trace ``system`` records (and by the
    deprecated ``batch=`` facade alias).
    """

    name: str
    description: str
    factory: Callable[[Optional["DRTreeConfig"], int], "DRTreeSimulation"] = \
        field(repr=False, default=None)  # type: ignore[assignment]
    batch: bool = False

    def build(self, config: Optional["DRTreeConfig"], seed: int
              ) -> "DRTreeSimulation":
        """Construct the simulation this engine drives."""
        return self.factory(config, seed)


_ENGINES: Dict[str, EngineSpec] = {}


def register_engine(spec: EngineSpec) -> EngineSpec:
    """Add an engine; duplicate names are errors."""
    if spec.name in _ENGINES:
        raise ValueError(f"engine {spec.name!r} is already registered")
    _ENGINES[spec.name] = spec
    return spec


def get_engine(name: str) -> EngineSpec:
    """Look up an engine by name."""
    try:
        return _ENGINES[name]
    except KeyError:
        raise UnknownEngineError(
            f"unknown dissemination engine {name!r}; "
            f"registered: {engine_names()}") from None


def engine_names() -> List[str]:
    """Registered engine names, in registration order."""
    return list(_ENGINES)


def _build_classic(config: Optional["DRTreeConfig"],
                   seed: int) -> "DRTreeSimulation":
    from repro.overlay.builder import DRTreeSimulation

    return DRTreeSimulation(config=config, seed=seed, batch=False)


def _build_batched(config: Optional["DRTreeConfig"],
                   seed: int) -> "DRTreeSimulation":
    from repro.overlay.builder import DRTreeSimulation

    return DRTreeSimulation(config=config, seed=seed, batch=True)


register_engine(EngineSpec(
    name="classic",
    description="one scheduling operation per message (the paper's model)",
    factory=_build_classic,
    batch=False,
))
register_engine(EngineSpec(
    name="batched",
    description="per-round delivery queues with a vectorized PUBLISH_DOWN "
                "fan-out; identical outcomes, faster under sustained load",
    factory=_build_batched,
    batch=True,
))

"""Ground-truth event matching.

The accounting layer needs to know, independently of the overlay, which
subscribers *should* receive each event.  This is the oracle used to detect
false negatives (a matching subscriber that did not receive the event) and to
separate true deliveries from false positives.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping

from repro.spatial.filters import Event, Subscription


def matching_subscribers(
    event: Event, subscriptions: Mapping[str, Subscription]
) -> List[str]:
    """Ids of the subscribers whose filter matches ``event`` (sorted)."""
    return sorted(
        subscriber_id
        for subscriber_id, subscription in subscriptions.items()
        if subscription.matches(event)
    )


def matching_matrix(
    events: Iterable[Event], subscriptions: Mapping[str, Subscription]
) -> Dict[str, List[str]]:
    """event_id → sorted list of matching subscriber ids."""
    return {
        event.event_id: matching_subscribers(event, subscriptions)
        for event in events
    }

"""Delivery accounting: false positives, false negatives, message costs.

The paper's headline accuracy claims are that the DR-tree "eradicates the
false negatives and drastically drops the false positives" (2-3 % for most
workloads, per the companion technical report).  The accounting layer records
every reception reported by the peers and compares it against the ground
truth computed by :mod:`repro.pubsub.matching`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Set

from repro.spatial.filters import Event, Subscription
from repro.pubsub.matching import matching_subscribers


@dataclass
class DeliveryRecord:
    """One reception of an event by one subscriber."""

    event_id: str
    subscriber_id: str
    matched: bool
    hops: int


@dataclass
class EventOutcome:
    """Aggregate outcome of one published event."""

    event_id: str
    publisher_id: Optional[str]
    intended: Set[str] = field(default_factory=set)
    received: Set[str] = field(default_factory=set)
    false_positives: Set[str] = field(default_factory=set)
    messages: int = 0
    max_hops: int = 0

    @property
    def false_negatives(self) -> Set[str]:
        """Matching subscribers that never received the event."""
        return self.intended - self.received

    @property
    def true_deliveries(self) -> Set[str]:
        """Matching subscribers that did receive the event."""
        return self.intended & self.received


class DeliveryAccounting:
    """Collects delivery records and summarizes accuracy metrics."""

    def __init__(self) -> None:
        self.records: List[DeliveryRecord] = []
        self.outcomes: Dict[str, EventOutcome] = {}

    # ------------------------------------------------------------------ #
    # Recording
    # ------------------------------------------------------------------ #

    def start_event(
        self,
        event: Event,
        publisher_id: Optional[str],
        subscriptions: Mapping[str, Subscription],
    ) -> EventOutcome:
        """Register a publication and compute its ground-truth audience."""
        outcome = EventOutcome(
            event_id=event.event_id,
            publisher_id=publisher_id,
            intended=set(matching_subscribers(event, subscriptions)),
        )
        self.outcomes[event.event_id] = outcome
        return outcome

    def record_delivery(self, subscriber_id: str, event: Event,
                        matched: bool, hops: int) -> None:
        """Callback installed on every peer (the ``delivery_listener``)."""
        self.records.append(
            DeliveryRecord(event_id=event.event_id, subscriber_id=subscriber_id,
                           matched=matched, hops=hops)
        )
        outcome = self.outcomes.get(event.event_id)
        if outcome is None:
            return
        outcome.received.add(subscriber_id)
        outcome.max_hops = max(outcome.max_hops, hops)
        if not matched and subscriber_id != outcome.publisher_id:
            # The producer trivially "sees" its own event; only other
            # uninterested subscribers count as false positives.
            outcome.false_positives.add(subscriber_id)

    def record_messages(self, event_id: str, count: int) -> None:
        """Record how many network messages one publication used."""
        outcome = self.outcomes.get(event_id)
        if outcome is not None:
            outcome.messages += count

    # ------------------------------------------------------------------ #
    # Aggregates
    # ------------------------------------------------------------------ #

    def total_false_negatives(self) -> int:
        """Number of (event, subscriber) pairs that were missed."""
        return sum(len(o.false_negatives) for o in self.outcomes.values())

    def total_false_positives(self) -> int:
        """Number of (event, subscriber) deliveries to uninterested peers."""
        return sum(len(o.false_positives) for o in self.outcomes.values())

    def total_true_deliveries(self) -> int:
        """Number of correct (event, subscriber) deliveries."""
        return sum(len(o.true_deliveries) for o in self.outcomes.values())

    def false_positive_rate(self, population: int) -> float:
        """False positives normalised by the reachable population.

        Defined as in the paper's experiments: the fraction of uninterested
        subscribers that nevertheless received an event, averaged over all
        published events.  ``population`` is the number of live subscribers.
        """
        if not self.outcomes or population <= 0:
            return 0.0
        rates = []
        for outcome in self.outcomes.values():
            uninterested = max(population - len(outcome.intended), 1)
            rates.append(len(outcome.false_positives) / uninterested)
        return sum(rates) / len(rates)

    def delivery_rate(self) -> float:
        """Fraction of intended deliveries that actually happened."""
        intended = sum(len(o.intended) for o in self.outcomes.values())
        if intended == 0:
            return 1.0
        return self.total_true_deliveries() / intended

    def mean_messages_per_event(self) -> float:
        """Average number of network messages per publication."""
        if not self.outcomes:
            return 0.0
        return sum(o.messages for o in self.outcomes.values()) / len(self.outcomes)

    def mean_delivery_hops(self) -> float:
        """Average hop count over true deliveries."""
        hops = [r.hops for r in self.records if r.matched]
        return sum(hops) / len(hops) if hops else 0.0

    def max_delivery_hops(self) -> int:
        """Worst-case hop count over all deliveries."""
        return max((r.hops for r in self.records), default=0)

    def summary(self, population: int) -> Dict[str, float]:
        """All headline numbers in one dictionary (used by the experiments)."""
        return {
            "events": float(len(self.outcomes)),
            "true_deliveries": float(self.total_true_deliveries()),
            "false_positives": float(self.total_false_positives()),
            "false_negatives": float(self.total_false_negatives()),
            "false_positive_rate": self.false_positive_rate(population),
            "delivery_rate": self.delivery_rate(),
            "mean_messages_per_event": self.mean_messages_per_event(),
            "mean_delivery_hops": self.mean_delivery_hops(),
            "max_delivery_hops": float(self.max_delivery_hops()),
        }

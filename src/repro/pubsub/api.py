"""The publish/subscribe facade.

:class:`PubSubSystem` is the DR-tree implementation of the
:class:`~repro.api.broker.Broker` protocol — the public entry point a
downstream user would adopt: it hides the simulation machinery and exposes
the operations of a content-based publish/subscribe service — ``subscribe``,
``unsubscribe``, ``publish``, ``fail``, ``move_subscription`` — plus full
delivery accounting.

The dissemination engine is pluggable: ``engine="classic"`` (one scheduling
operation per message) or ``engine="batched"`` (vectorized fan-out, same
outcomes) select a registered :class:`~repro.pubsub.engines.EngineSpec`;
future engines plug into that registry without touching this facade.

Example
-------
>>> from repro.pubsub import PubSubSystem
>>> from repro.spatial.filters import make_space, subscription_from_intervals, Event
>>> space = make_space("price", "volume")
>>> system = PubSubSystem(space)
>>> system.subscribe(subscription_from_intervals(
...     "alice", space, {"price": (0, 100), "volume": (0, 50)}))
'alice'
>>> outcome = system.publish(Event({"price": 42.0, "volume": 7.0}, event_id="e0"))
>>> "alice" in outcome.received
True
"""

from __future__ import annotations

import itertools
import warnings
from typing import (TYPE_CHECKING, Dict, Iterable, List, Mapping, Optional,
                    Tuple)

from repro.overlay.config import DRTreeConfig
from repro.pubsub.accounting import DeliveryAccounting, EventOutcome
from repro.pubsub.engines import get_engine
from repro.spatial.filters import (AttributeSpace, Event, Subscription,
                                   ensure_same_space, ensure_unique_names)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.api.spec import SystemSpec


class PubSubSystem:
    """A content-based publish/subscribe service backed by a DR-tree overlay."""

    def __init__(
        self,
        space: AttributeSpace,
        config: Optional[DRTreeConfig] = None,
        seed: int = 0,
        stabilize_rounds: int = 30,
        engine: str = "classic",
        engine_options: Optional[Mapping[str, object]] = None,
        batch: Optional[bool] = None,
    ) -> None:
        """``engine`` names a registered dissemination engine.

        ``"classic"``, ``"batched"`` and ``"sharded"`` produce identical
        delivery outcomes (received sets, hop counts, message counts); the
        engine only changes how the simulator schedules the PUBLISH fan-out
        — vectorized in-process for ``batched``, partitioned across worker
        processes for ``sharded``.  ``engine_options`` passes engine-specific
        construction knobs (e.g. ``{"shards": 4}`` for the sharded engine);
        engines that declare none reject unknown options with a
        ``ValueError``.

        .. deprecated::
            ``batch=True``/``batch=False`` is a deprecated alias for
            ``engine="batched"``/``engine="classic"`` and will be removed;
            passing it emits a :class:`DeprecationWarning`.
        """
        if batch is not None:
            warnings.warn(
                "PubSubSystem(batch=...) is deprecated; pass "
                "engine='batched' or engine='classic' instead",
                DeprecationWarning, stacklevel=2)
            engine = "batched" if batch else "classic"
        engine_spec = get_engine(engine)
        engine_spec.validate_options(engine_options)
        self.space = space
        self.config = config if config is not None else DRTreeConfig()
        self.engine_name = engine_spec.name
        self.engine_options = dict(engine_options or {})
        #: Legacy mirror of the engine choice (trace format v1, old callers).
        self.batch = engine_spec.batch
        self.simulation = engine_spec.build(self.config, seed,
                                            self.engine_options)
        self.accounting = DeliveryAccounting()
        self.stabilize_rounds = stabilize_rounds
        self._event_counter = itertools.count()
        self._subscriptions: Dict[str, Subscription] = {}
        # Inside a repro.traces recording() context every facade operation is
        # captured to the active trace; recording is purely observational, so
        # recorded and unrecorded runs are bit-identical.
        self._tape = self._attach_tape()

    def _attach_tape(self):
        from repro.traces.recorder import NULL_TAPE, active_recorder

        recorder = active_recorder()
        return NULL_TAPE if recorder is None else recorder.attach(self)

    def detach_tape(self) -> None:
        """Stop taping; called when the enclosing recording context exits."""
        from repro.traces.recorder import NULL_TAPE

        self._tape = NULL_TAPE

    @property
    def backend(self) -> str:
        """This broker's backend name (``drtree:<engine>``)."""
        return f"drtree:{self.engine_name}"

    @property
    def spec(self) -> "SystemSpec":
        """The :class:`~repro.api.spec.SystemSpec` that rebuilds this system."""
        from repro.api.spec import SystemSpec

        return SystemSpec(
            space=self.space,
            backend=self.backend,
            config=self.config,
            seed=int(self.simulation.streams.master_seed),
            stabilize_rounds=self.stabilize_rounds,
            engine_options=dict(self.engine_options) or None,
        )

    def clock(self) -> float:
        """Current simulated time of the underlying discrete-event engine."""
        return float(self.simulation.engine.now)

    # ------------------------------------------------------------------ #
    # Membership
    # ------------------------------------------------------------------ #

    def subscribe(self, subscription: Subscription,
                  stabilize: bool = True) -> str:
        """Register a subscriber; returns its id (the subscription name)."""
        self._check_space(subscription)
        self._check_new_name(subscription)
        # Ops are taped only after they succeed (with their issue-time
        # timestamp), so a call that raises never leaves a phantom record
        # for replay to trip over; outside a recording context the tape is
        # the shared no-op NULL_TAPE.
        issued = self._tape.now()
        subscriber_id = self._subscribe_core(subscription, stabilize)
        self._tape.subscribe(issued, subscription, stabilize)
        return subscriber_id

    def _check_space(self, subscription: Subscription) -> None:
        ensure_same_space(self.space, subscription)

    def _check_new_name(self, subscription: Subscription) -> None:
        # Peer ids are never reused by the simulator (a crashed peer keeps
        # its id), so the reservation check runs against every peer ever
        # created, not just the live subscriptions.
        if subscription.name in self.simulation.peers:
            raise ValueError(
                f"duplicate subscription name {subscription.name!r}; "
                "subscription names are never reused"
            )

    def _subscribe_core(self, subscription: Subscription,
                        stabilize: bool) -> str:
        """Register one subscriber without touching the trace tape."""
        peer = self.simulation.add_peer(subscription)
        peer.delivery_listener = self.accounting.record_delivery
        self._subscriptions[peer.process_id] = subscription
        if stabilize:
            self.simulation.stabilize(max_rounds=self.stabilize_rounds)
        return peer.process_id

    def subscribe_all(self, subscriptions: Iterable[Subscription],
                      stabilize: bool = True,
                      bulk: Optional[bool] = None) -> List[str]:
        """Register many subscribers, then stabilize once.

        Into an empty system, populations at or above
        :data:`~repro.overlay.bootstrap.BULK_THRESHOLD` take the STR
        bulk-load fast path: the overlay is laid out directly in
        ``O(n log n)`` instead of running one join cascade per subscriber.
        ``bulk=False`` forces the join protocol; ``bulk=True`` forces the
        fast path and raises if the system already has subscribers (the
        bootstrap can only lay out a tree from scratch).
        """
        from repro.overlay.bootstrap import BULK_THRESHOLD

        subs = list(subscriptions)
        # _check_new_name sees only already-registered peers; duplicates
        # *within* this batch need the shared upfront guard so the call
        # raises before any subscriber is registered.
        ensure_unique_names(subs)
        for sub in subs:
            self._check_space(sub)
            self._check_new_name(sub)
        issued = self._tape.now()
        if bulk and self.simulation.peers:
            raise ValueError(
                "bulk subscribe_all requires an empty system; pass the whole "
                "population at once or use bulk=False"
            )
        use_bulk = (bulk if bulk is not None
                    else not self.simulation.peers
                    and len(subs) >= BULK_THRESHOLD)
        if use_bulk:
            # The simulation owns its bulk-load strategy: the single-process
            # engines run the STR bootstrap in place, the sharded engine
            # partitions the same layout across its workers.
            self.simulation.bulk_load(subs)
            ids = []
            for sub in subs:
                peer = self.simulation.peer(sub.name)
                peer.delivery_listener = self.accounting.record_delivery
                self._subscriptions[peer.process_id] = sub
                ids.append(peer.process_id)
        else:
            ids = [self._subscribe_core(sub, stabilize=False) for sub in subs]
        if stabilize:
            self.simulation.stabilize(max_rounds=self.stabilize_rounds)
        self._tape.subscribe_all(issued, subs, stabilize, bulk)
        return ids

    def _check_known(self, subscriber_id: str) -> None:
        # The Broker protocol promises KeyError for unknown (or already
        # retired) ids *before* any state changes — matching BaselineBroker,
        # so both families accept exactly the same op sequences.
        if subscriber_id not in self._subscriptions:
            raise KeyError(f"unknown subscriber {subscriber_id!r}")

    def unsubscribe(self, subscriber_id: str) -> None:
        """Controlled departure of a subscriber."""
        self._check_known(subscriber_id)
        issued = self._tape.now()
        self.simulation.leave(subscriber_id)
        self._subscriptions.pop(subscriber_id, None)
        self.simulation.stabilize(max_rounds=self.stabilize_rounds)
        self._tape.unsubscribe(issued, subscriber_id)

    def fail(self, subscriber_id: str, stabilize: bool = True) -> None:
        """Uncontrolled departure (crash) of a subscriber."""
        self._check_known(subscriber_id)
        issued = self._tape.now()
        self.simulation.crash(subscriber_id)
        self._subscriptions.pop(subscriber_id, None)
        if stabilize:
            self.simulation.stabilize(max_rounds=self.stabilize_rounds)
        self._tape.crash(issued, subscriber_id, stabilize)

    def move_subscription(self, subscriber_id: str,
                          subscription: Subscription,
                          stabilize: bool = True) -> str:
        """Move a subscriber: leave with the old filter, rejoin with a new one.

        This models mobility (a moving-range subscription): the subscriber
        departs in a controlled way and immediately re-subscribes under the
        new filter's name.  Returns the new subscriber id.  The new
        subscription must use a fresh name — peer ids are never reused by the
        simulator, and a duplicate name raises ``ValueError`` here, before
        the old subscriber has left.
        """
        self._check_space(subscription)
        self._check_new_name(subscription)
        if subscriber_id not in self._subscriptions:
            raise KeyError(f"unknown subscriber {subscriber_id!r}")
        issued = self._tape.now()
        self.simulation.leave(subscriber_id)
        self._subscriptions.pop(subscriber_id, None)
        new_id = self._subscribe_core(subscription, stabilize)
        self._tape.move(issued, subscriber_id, subscription, stabilize)
        return new_id

    def subscribers(self) -> List[str]:
        """Ids of the live subscribers."""
        return sorted(self._subscriptions)

    def subscription_of(self, subscriber_id: str) -> Subscription:
        """The filter registered by ``subscriber_id``."""
        return self._subscriptions[subscriber_id]

    # ------------------------------------------------------------------ #
    # Publishing
    # ------------------------------------------------------------------ #

    def _publish_core(self, event: Event, publisher_id: Optional[str]
                      ) -> Tuple[float, Event, str, EventOutcome]:
        """Resolve, account and disseminate one event.

        Counter reads and taping stay with the callers so that
        :meth:`publish_many` can account messages from a single pass over
        the ``network.messages_sent`` counter.
        """
        if not self._subscriptions:
            raise RuntimeError("cannot publish into an empty system")
        if not event.event_id:
            event = Event(dict(event.attributes),
                          event_id=f"event-{next(self._event_counter)}")
        publisher_id = publisher_id or self._default_publisher(event)
        issued = self._tape.now()
        outcome = self.accounting.start_event(event, publisher_id,
                                              self._subscriptions)
        self.simulation.publish(publisher_id, event)
        return issued, event, publisher_id, outcome

    def publish(self, event: Event,
                publisher_id: Optional[str] = None) -> EventOutcome:
        """Publish ``event`` and return its delivery outcome.

        ``publisher_id`` defaults to a matching subscriber when one exists
        (the paper's model: producers are nodes of the tree), falling back to
        the current root.
        """
        before = self.simulation.metrics.counter("network.messages_sent")
        issued, event, publisher_id, outcome = self._publish_core(
            event, publisher_id)
        after = self.simulation.metrics.counter("network.messages_sent")
        self.accounting.record_messages(event.event_id, int(after - before))
        # Taped with the resolved id and publisher so a replay re-issues
        # exactly this publication, not the resolution inputs.
        self._tape.publish(issued, event, publisher_id)
        return outcome

    def publish_many(self, events: Iterable[Event],
                     publisher_id: Optional[str] = None) -> List[EventOutcome]:
        """Publish a sequence of events.

        Per-event message accounting comes from a single pass over the
        network counter — one read per event against the running cursor —
        and matches the per-:meth:`publish` path exactly.
        """
        outcomes: List[EventOutcome] = []
        cursor = self.simulation.metrics.counter("network.messages_sent")
        for event in events:
            issued, event, resolved, outcome = self._publish_core(
                event, publisher_id)
            after = self.simulation.metrics.counter("network.messages_sent")
            self.accounting.record_messages(event.event_id,
                                            int(after - cursor))
            cursor = after
            self._tape.publish(issued, event, resolved)
            outcomes.append(outcome)
        return outcomes

    def _default_publisher(self, event: Event) -> str:
        for subscriber_id, subscription in sorted(self._subscriptions.items()):
            if subscription.matches(event):
                return subscriber_id
        root = self.simulation.root()
        if root is not None:
            return root.process_id
        return sorted(self._subscriptions)[0]

    # ------------------------------------------------------------------ #
    # Reporting
    # ------------------------------------------------------------------ #

    def stabilize(self, max_rounds: Optional[int] = None):
        """Run stabilization rounds until the overlay is legal again."""
        issued = self._tape.now()
        report = self.simulation.stabilize(
            max_rounds=max_rounds or self.stabilize_rounds
        )
        self._tape.stabilize(issued, max_rounds)
        return report

    def summary(self) -> Dict[str, float]:
        """Headline accuracy/cost numbers for everything published so far."""
        return self.accounting.summary(len(self._subscriptions))

    def overlay_height(self) -> int:
        """Current height of the DR-tree."""
        return self.simulation.height()

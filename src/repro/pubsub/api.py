"""The publish/subscribe facade.

:class:`PubSubSystem` is the public entry point a downstream user would adopt:
it hides the simulation machinery and exposes the four operations of a
content-based publish/subscribe service — ``subscribe``, ``unsubscribe``,
``publish`` and (for completeness of the churn experiments) ``fail`` — plus
full delivery accounting.

Example
-------
>>> from repro.pubsub import PubSubSystem
>>> from repro.spatial.filters import make_space, subscription_from_intervals, Event
>>> space = make_space("price", "volume")
>>> system = PubSubSystem(space)
>>> system.subscribe(subscription_from_intervals(
...     "alice", space, {"price": (0, 100), "volume": (0, 50)}))
'alice'
>>> outcome = system.publish(Event({"price": 42.0, "volume": 7.0}, event_id="e0"))
>>> "alice" in outcome.received
True
"""

from __future__ import annotations

import itertools
from typing import Dict, Iterable, List, Optional

from repro.overlay.builder import DRTreeSimulation
from repro.overlay.config import DRTreeConfig
from repro.pubsub.accounting import DeliveryAccounting, EventOutcome
from repro.spatial.filters import AttributeSpace, Event, Subscription


class PubSubSystem:
    """A content-based publish/subscribe service backed by a DR-tree overlay."""

    def __init__(
        self,
        space: AttributeSpace,
        config: Optional[DRTreeConfig] = None,
        seed: int = 0,
        stabilize_rounds: int = 30,
        batch: bool = False,
    ) -> None:
        """``batch=True`` enables the vectorized dissemination engine.

        Batched and unbatched systems produce identical delivery outcomes
        (received sets, hop counts, message counts); batching only changes
        how the simulator schedules the PUBLISH fan-out, which makes
        sustained publishing several times faster at 5k+ subscribers.
        """
        self.space = space
        self.config = config if config is not None else DRTreeConfig()
        self.batch = batch
        self.simulation = DRTreeSimulation(config=self.config, seed=seed,
                                           batch=batch)
        self.accounting = DeliveryAccounting()
        self.stabilize_rounds = stabilize_rounds
        self._event_counter = itertools.count()
        self._subscriptions: Dict[str, Subscription] = {}
        # Inside a repro.traces recording() context every facade operation is
        # captured to the active trace; recording is purely observational, so
        # recorded and unrecorded runs are bit-identical.
        self._tape = self._attach_tape()

    def _attach_tape(self):
        from repro.traces.recorder import NULL_TAPE, active_recorder

        recorder = active_recorder()
        return NULL_TAPE if recorder is None else recorder.attach(self)

    def detach_tape(self) -> None:
        """Stop taping; called when the enclosing recording context exits."""
        from repro.traces.recorder import NULL_TAPE

        self._tape = NULL_TAPE

    # ------------------------------------------------------------------ #
    # Membership
    # ------------------------------------------------------------------ #

    def subscribe(self, subscription: Subscription,
                  stabilize: bool = True) -> str:
        """Register a subscriber; returns its id (the subscription name)."""
        self._check_space(subscription)
        # Ops are taped only after they succeed (with their issue-time
        # timestamp), so a call that raises never leaves a phantom record
        # for replay to trip over; outside a recording context the tape is
        # the shared no-op NULL_TAPE.
        issued = self._tape.now()
        subscriber_id = self._subscribe_core(subscription, stabilize)
        self._tape.subscribe(issued, subscription, stabilize)
        return subscriber_id

    def _check_space(self, subscription: Subscription) -> None:
        if subscription.space.names != self.space.names:
            raise ValueError(
                "subscription attribute space does not match the system's"
            )

    def _subscribe_core(self, subscription: Subscription,
                        stabilize: bool) -> str:
        """Register one subscriber without touching the trace tape."""
        peer = self.simulation.add_peer(subscription)
        peer.delivery_listener = self.accounting.record_delivery
        self._subscriptions[peer.process_id] = subscription
        if stabilize:
            self.simulation.stabilize(max_rounds=self.stabilize_rounds)
        return peer.process_id

    def subscribe_all(self, subscriptions: Iterable[Subscription],
                      stabilize: bool = True,
                      bulk: Optional[bool] = None) -> List[str]:
        """Register many subscribers, then stabilize once.

        Into an empty system, populations at or above
        :data:`~repro.overlay.bootstrap.BULK_THRESHOLD` take the STR
        bulk-load fast path: the overlay is laid out directly in
        ``O(n log n)`` instead of running one join cascade per subscriber.
        ``bulk=False`` forces the join protocol; ``bulk=True`` forces the
        fast path and raises if the system already has subscribers (the
        bootstrap can only lay out a tree from scratch).
        """
        from repro.overlay.bootstrap import BULK_THRESHOLD, bootstrap_overlay

        subs = list(subscriptions)
        for sub in subs:
            self._check_space(sub)
        issued = self._tape.now()
        if bulk and self.simulation.peers:
            raise ValueError(
                "bulk subscribe_all requires an empty system; pass the whole "
                "population at once or use bulk=False"
            )
        use_bulk = (bulk if bulk is not None
                    else not self.simulation.peers
                    and len(subs) >= BULK_THRESHOLD)
        if use_bulk:
            bootstrap_overlay(self.simulation, subs)
            ids = []
            for sub in subs:
                peer = self.simulation.peer(sub.name)
                peer.delivery_listener = self.accounting.record_delivery
                self._subscriptions[peer.process_id] = sub
                ids.append(peer.process_id)
        else:
            ids = [self._subscribe_core(sub, stabilize=False) for sub in subs]
        if stabilize:
            self.simulation.stabilize(max_rounds=self.stabilize_rounds)
        self._tape.subscribe_all(issued, subs, stabilize, bulk)
        return ids

    def unsubscribe(self, subscriber_id: str) -> None:
        """Controlled departure of a subscriber."""
        issued = self._tape.now()
        self.simulation.leave(subscriber_id)
        self._subscriptions.pop(subscriber_id, None)
        self.simulation.stabilize(max_rounds=self.stabilize_rounds)
        self._tape.unsubscribe(issued, subscriber_id)

    def fail(self, subscriber_id: str, stabilize: bool = True) -> None:
        """Uncontrolled departure (crash) of a subscriber."""
        issued = self._tape.now()
        self.simulation.crash(subscriber_id)
        self._subscriptions.pop(subscriber_id, None)
        if stabilize:
            self.simulation.stabilize(max_rounds=self.stabilize_rounds)
        self._tape.crash(issued, subscriber_id, stabilize)

    def move_subscription(self, subscriber_id: str,
                          subscription: Subscription,
                          stabilize: bool = True) -> str:
        """Move a subscriber: leave with the old filter, rejoin with a new one.

        This models mobility (a moving-range subscription): the subscriber
        departs in a controlled way and immediately re-subscribes under the
        new filter's name.  Returns the new subscriber id.  The new
        subscription must use a fresh name — peer ids are never reused by the
        simulator.
        """
        self._check_space(subscription)
        if subscriber_id not in self._subscriptions:
            raise KeyError(f"unknown subscriber {subscriber_id!r}")
        issued = self._tape.now()
        self.simulation.leave(subscriber_id)
        self._subscriptions.pop(subscriber_id, None)
        new_id = self._subscribe_core(subscription, stabilize)
        self._tape.move(issued, subscriber_id, subscription, stabilize)
        return new_id

    def subscribers(self) -> List[str]:
        """Ids of the live subscribers."""
        return sorted(self._subscriptions)

    def subscription_of(self, subscriber_id: str) -> Subscription:
        """The filter registered by ``subscriber_id``."""
        return self._subscriptions[subscriber_id]

    # ------------------------------------------------------------------ #
    # Publishing
    # ------------------------------------------------------------------ #

    def publish(self, event: Event,
                publisher_id: Optional[str] = None) -> EventOutcome:
        """Publish ``event`` and return its delivery outcome.

        ``publisher_id`` defaults to a matching subscriber when one exists
        (the paper's model: producers are nodes of the tree), falling back to
        the current root.
        """
        if not self._subscriptions:
            raise RuntimeError("cannot publish into an empty system")
        if not event.event_id:
            event = Event(dict(event.attributes),
                          event_id=f"event-{next(self._event_counter)}")
        publisher_id = publisher_id or self._default_publisher(event)
        issued = self._tape.now()
        outcome = self.accounting.start_event(event, publisher_id,
                                              self._subscriptions)
        before = self.simulation.metrics.counter("network.messages_sent")
        self.simulation.publish(publisher_id, event)
        after = self.simulation.metrics.counter("network.messages_sent")
        self.accounting.record_messages(event.event_id, int(after - before))
        # Taped with the resolved id and publisher so a replay re-issues
        # exactly this publication, not the resolution inputs.
        self._tape.publish(issued, event, publisher_id)
        return outcome

    def publish_many(self, events: Iterable[Event],
                     publisher_id: Optional[str] = None) -> List[EventOutcome]:
        """Publish a sequence of events."""
        return [self.publish(event, publisher_id=publisher_id) for event in events]

    def _default_publisher(self, event: Event) -> str:
        for subscriber_id, subscription in sorted(self._subscriptions.items()):
            if subscription.matches(event):
                return subscriber_id
        root = self.simulation.root()
        if root is not None:
            return root.process_id
        return sorted(self._subscriptions)[0]

    # ------------------------------------------------------------------ #
    # Reporting
    # ------------------------------------------------------------------ #

    def stabilize(self, max_rounds: Optional[int] = None):
        """Run stabilization rounds until the overlay is legal again."""
        issued = self._tape.now()
        report = self.simulation.stabilize(
            max_rounds=max_rounds or self.stabilize_rounds
        )
        self._tape.stabilize(issued, max_rounds)
        return report

    def summary(self) -> Dict[str, float]:
        """Headline accuracy/cost numbers for everything published so far."""
        return self.accounting.summary(len(self._subscriptions))

    def overlay_height(self) -> int:
        """Current height of the DR-tree."""
        return self.simulation.height()

"""The publish/subscribe facade.

:class:`PubSubSystem` is the DR-tree implementation of the
:class:`~repro.api.broker.Broker` protocol — the public entry point a
downstream user would adopt: it hides the simulation machinery and exposes
the operations of a content-based publish/subscribe service — ``subscribe``,
``unsubscribe``, ``publish``, ``fail``, ``move_subscription`` — plus full
delivery accounting.

The dissemination engine is pluggable: ``engine="classic"`` (one scheduling
operation per message) or ``engine="batched"`` (vectorized fan-out, same
outcomes) select a registered :class:`~repro.pubsub.engines.EngineSpec`;
future engines plug into that registry without touching this facade.

Example
-------
>>> from repro.pubsub import PubSubSystem
>>> from repro.spatial.filters import make_space, subscription_from_intervals, Event
>>> space = make_space("price", "volume")
>>> system = PubSubSystem(space)
>>> system.subscribe(subscription_from_intervals(
...     "alice", space, {"price": (0, 100), "volume": (0, 50)}))
'alice'
>>> outcome = system.publish(Event({"price": 42.0, "volume": 7.0}, event_id="e0"))
>>> "alice" in outcome.received
True
"""

from __future__ import annotations

import itertools
import pickle
from typing import (TYPE_CHECKING, Dict, Iterable, List, Mapping, Optional,
                    Tuple)

from repro.journal.gate import EXECUTE, NULL_GATE
from repro.overlay.config import DRTreeConfig
from repro.pubsub.accounting import DeliveryAccounting, EventOutcome
from repro.pubsub.engines import get_engine
from repro.spatial.filters import (AttributeSpace, Event, Subscription,
                                   ensure_same_space, ensure_unique_names)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.api.spec import SystemSpec


class PubSubSystem:
    """A content-based publish/subscribe service backed by a DR-tree overlay."""

    def __init__(
        self,
        space: AttributeSpace,
        config: Optional[DRTreeConfig] = None,
        seed: int = 0,
        stabilize_rounds: int = 30,
        engine: str = "classic",
        engine_options: Optional[Mapping[str, object]] = None,
        batch: Optional[bool] = None,
    ) -> None:
        """``engine`` names a registered dissemination engine.

        ``"classic"``, ``"batched"`` and ``"sharded"`` produce identical
        delivery outcomes (received sets, hop counts, message counts); the
        engine only changes how the simulator schedules the PUBLISH fan-out
        — vectorized in-process for ``batched``, partitioned across worker
        processes for ``sharded``.  ``engine_options`` passes engine-specific
        construction knobs (e.g. ``{"shards": 4}`` for the sharded engine),
        validated against the engine's typed option set
        (:class:`~repro.pubsub.engines.EngineOptions`); unknown names and
        invalid values raise ``ValueError`` naming the allowed keys.

        The ``batch=`` boolean alias (deprecated through two releases) has
        been removed; passing it is now a hard error.
        """
        if batch is not None:
            raise TypeError(
                "PubSubSystem(batch=...) was removed; pass engine='batched' "
                "or engine='classic' (backends drtree:batched / "
                "drtree:classic) instead")
        engine_spec = get_engine(engine)
        resolved_options = engine_spec.resolve_options(engine_options)
        self.space = space
        self.config = config if config is not None else DRTreeConfig()
        self.engine_name = engine_spec.name
        self.engine_options = dict(engine_options or {})
        #: Legacy mirror of the engine choice (trace format v1, old callers).
        self.batch = engine_spec.batch
        # Instance-level override of the class default: the engine decides
        # what this broker genuinely supports (the real-network engine has
        # no snapshot capability).
        self.CAPABILITIES = frozenset(engine_spec.capabilities)
        self.simulation = engine_spec.build(self.config, seed,
                                            resolved_options)
        self.accounting = DeliveryAccounting()
        self.stabilize_rounds = stabilize_rounds
        self._event_counter = itertools.count()
        self._subscriptions: Dict[str, Subscription] = {}
        # Inside a repro.traces recording() context every facade operation is
        # captured to the active trace; inside a repro.journal journaling()
        # context it is additionally appended durably to the journal.  Both
        # observers are purely observational, so observed and unobserved runs
        # are bit-identical.  The no-op tape and gate must be in place
        # *before* attaching: a resume-mode journal re-executes journaled ops
        # through this facade while attach() runs.
        from repro.traces.recorder import NULL_TAPE

        self._gate = NULL_GATE
        self._tape = NULL_TAPE
        self._tape = self._attach_tape()

    def _attach_tape(self):
        from repro.journal.recorder import active_journal
        from repro.traces.recorder import (NULL_TAPE, CompositeTape,
                                           active_recorder)

        tapes = []
        recorder = active_recorder()
        if recorder is not None:
            tapes.append(recorder.attach(self))
        journal = active_journal()
        if journal is not None:
            tapes.append(journal.attach(self))
        if not tapes:
            return NULL_TAPE
        return tapes[0] if len(tapes) == 1 else CompositeTape(*tapes)

    def detach_tape(self) -> None:
        """Stop taping; called when the enclosing recording context exits."""
        from repro.traces.recorder import NULL_TAPE

        self._tape = NULL_TAPE
        self._gate = NULL_GATE

    def install_gate(self, gate) -> None:
        """Install a resume gate (see :mod:`repro.journal.gate`).

        While the gate is active, facade operations it recognizes as the
        already-restored journaled prefix are validated and skipped instead
        of executed.
        """
        self._gate = gate

    def consume_event_id(self) -> str:
        """Draw the next facade-assigned event id.

        Used by the journal resume machinery to keep the id counter in
        lockstep while replaying publishes whose ids this facade assigned.
        """
        return f"event-{next(self._event_counter)}"

    @property
    def backend(self) -> str:
        """This broker's backend name (``drtree:<engine>``)."""
        return f"drtree:{self.engine_name}"

    @property
    def spec(self) -> "SystemSpec":
        """The :class:`~repro.api.spec.SystemSpec` that rebuilds this system."""
        from repro.api.spec import SystemSpec

        return SystemSpec(
            space=self.space,
            backend=self.backend,
            config=self.config,
            seed=int(self.simulation.streams.master_seed),
            stabilize_rounds=self.stabilize_rounds,
            engine_options=dict(self.engine_options) or None,
        )

    def clock(self) -> float:
        """Current simulated time of the underlying discrete-event engine."""
        return float(self.simulation.engine.now)

    # ------------------------------------------------------------------ #
    # Membership
    # ------------------------------------------------------------------ #

    def subscribe(self, subscription: Subscription,
                  stabilize: bool = True) -> str:
        """Register a subscriber; returns its id (the subscription name)."""
        # The resume gate intercepts *before* validation: a skipped op has
        # already happened on the restored state, so validating would trip
        # e.g. the duplicate-name check against its own prior effect.
        handled = self._gate.subscribe(subscription, stabilize)
        if handled is not EXECUTE:
            return handled
        self._check_space(subscription)
        self._check_new_name(subscription)
        # Ops are taped only after they succeed (with their issue-time
        # timestamp), so a call that raises never leaves a phantom record
        # for replay to trip over; outside a recording context the tape is
        # the shared no-op NULL_TAPE.
        issued = self._tape.now()
        subscriber_id = self._subscribe_core(subscription, stabilize)
        self._tape.subscribe(issued, subscription, stabilize)
        return subscriber_id

    def _check_space(self, subscription: Subscription) -> None:
        ensure_same_space(self.space, subscription)

    def _check_new_name(self, subscription: Subscription) -> None:
        # Peer ids are never reused by the simulator (a crashed peer keeps
        # its id), so the reservation check runs against every peer ever
        # created, not just the live subscriptions.
        if subscription.name in self.simulation.peers:
            raise ValueError(
                f"duplicate subscription name {subscription.name!r}; "
                "subscription names are never reused"
            )

    def _subscribe_core(self, subscription: Subscription,
                        stabilize: bool) -> str:
        """Register one subscriber without touching the trace tape."""
        peer = self.simulation.add_peer(subscription)
        peer.delivery_listener = self.accounting.record_delivery
        self._subscriptions[peer.process_id] = subscription
        if stabilize:
            self.simulation.stabilize(max_rounds=self.stabilize_rounds)
        return peer.process_id

    def subscribe_all(self, subscriptions: Iterable[Subscription],
                      stabilize: bool = True,
                      bulk: Optional[bool] = None) -> List[str]:
        """Register many subscribers, then stabilize once.

        Into an empty system, populations at or above
        :data:`~repro.overlay.bootstrap.BULK_THRESHOLD` take the STR
        bulk-load fast path: the overlay is laid out directly in
        ``O(n log n)`` instead of running one join cascade per subscriber.
        ``bulk=False`` forces the join protocol; ``bulk=True`` forces the
        fast path and raises if the system already has subscribers (the
        bootstrap can only lay out a tree from scratch).
        """
        from repro.overlay.bootstrap import BULK_THRESHOLD

        subs = list(subscriptions)
        handled = self._gate.subscribe_all(subs, stabilize, bulk)
        if handled is not EXECUTE:
            return handled
        # _check_new_name sees only already-registered peers; duplicates
        # *within* this batch need the shared upfront guard so the call
        # raises before any subscriber is registered.
        ensure_unique_names(subs)
        for sub in subs:
            self._check_space(sub)
            self._check_new_name(sub)
        issued = self._tape.now()
        if bulk and self.simulation.peers:
            raise ValueError(
                "bulk subscribe_all requires an empty system; pass the whole "
                "population at once or use bulk=False"
            )
        use_bulk = (bulk if bulk is not None
                    else not self.simulation.peers
                    and len(subs) >= BULK_THRESHOLD)
        if use_bulk:
            # The simulation owns its bulk-load strategy: the single-process
            # engines run the STR bootstrap in place, the sharded engine
            # partitions the same layout across its workers.
            self.simulation.bulk_load(subs)
            ids = []
            for sub in subs:
                peer = self.simulation.peer(sub.name)
                peer.delivery_listener = self.accounting.record_delivery
                self._subscriptions[peer.process_id] = sub
                ids.append(peer.process_id)
        else:
            ids = [self._subscribe_core(sub, stabilize=False) for sub in subs]
        if stabilize:
            self.simulation.stabilize(max_rounds=self.stabilize_rounds)
        self._tape.subscribe_all(issued, subs, stabilize, bulk)
        return ids

    def _check_known(self, subscriber_id: str) -> None:
        # The Broker protocol promises KeyError for unknown (or already
        # retired) ids *before* any state changes — matching BaselineBroker,
        # so both families accept exactly the same op sequences.
        if subscriber_id not in self._subscriptions:
            raise KeyError(f"unknown subscriber {subscriber_id!r}")

    def unsubscribe(self, subscriber_id: str) -> None:
        """Controlled departure of a subscriber."""
        handled = self._gate.unsubscribe(subscriber_id)
        if handled is not EXECUTE:
            return handled
        self._check_known(subscriber_id)
        issued = self._tape.now()
        self.simulation.leave(subscriber_id)
        self._subscriptions.pop(subscriber_id, None)
        self.simulation.stabilize(max_rounds=self.stabilize_rounds)
        self._tape.unsubscribe(issued, subscriber_id)

    def fail(self, subscriber_id: str, stabilize: bool = True) -> None:
        """Uncontrolled departure (crash) of a subscriber."""
        handled = self._gate.crash(subscriber_id, stabilize)
        if handled is not EXECUTE:
            return handled
        self._check_known(subscriber_id)
        issued = self._tape.now()
        self.simulation.crash(subscriber_id)
        self._subscriptions.pop(subscriber_id, None)
        if stabilize:
            self.simulation.stabilize(max_rounds=self.stabilize_rounds)
        self._tape.crash(issued, subscriber_id, stabilize)

    def move_subscription(self, subscriber_id: str,
                          subscription: Subscription,
                          stabilize: bool = True) -> str:
        """Move a subscriber: leave with the old filter, rejoin with a new one.

        This models mobility (a moving-range subscription): the subscriber
        departs in a controlled way and immediately re-subscribes under the
        new filter's name.  Returns the new subscriber id.  The new
        subscription must use a fresh name — peer ids are never reused by the
        simulator, and a duplicate name raises ``ValueError`` here, before
        the old subscriber has left.
        """
        handled = self._gate.move(subscriber_id, subscription, stabilize)
        if handled is not EXECUTE:
            return handled
        self._check_space(subscription)
        self._check_new_name(subscription)
        if subscriber_id not in self._subscriptions:
            raise KeyError(f"unknown subscriber {subscriber_id!r}")
        issued = self._tape.now()
        self.simulation.leave(subscriber_id)
        self._subscriptions.pop(subscriber_id, None)
        new_id = self._subscribe_core(subscription, stabilize)
        self._tape.move(issued, subscriber_id, subscription, stabilize)
        return new_id

    def subscribers(self) -> List[str]:
        """Ids of the live subscribers."""
        return sorted(self._subscriptions)

    def subscription_of(self, subscriber_id: str) -> Subscription:
        """The filter registered by ``subscriber_id``."""
        return self._subscriptions[subscriber_id]

    # ------------------------------------------------------------------ #
    # Publishing
    # ------------------------------------------------------------------ #

    def _publish_core(self, event: Event, publisher_id: Optional[str]
                      ) -> Tuple[float, Event, str, EventOutcome, bool]:
        """Resolve, account and disseminate one event.

        Counter reads and taping stay with the callers so that
        :meth:`publish_many` can account messages from a single pass over
        the ``network.messages_sent`` counter.  The trailing flag reports
        whether this facade assigned the event id (the journal records it so
        a resume can keep the id counter in lockstep).
        """
        if not self._subscriptions:
            raise RuntimeError("cannot publish into an empty system")
        auto = not event.event_id
        if auto:
            event = Event(dict(event.attributes),
                          event_id=self.consume_event_id())
        publisher_id = publisher_id or self._default_publisher(event)
        issued = self._tape.now()
        outcome = self.accounting.start_event(event, publisher_id,
                                              self._subscriptions)
        self.simulation.publish(publisher_id, event)
        return issued, event, publisher_id, outcome, auto

    def publish(self, event: Event,
                publisher_id: Optional[str] = None) -> EventOutcome:
        """Publish ``event`` and return its delivery outcome.

        ``publisher_id`` defaults to a matching subscriber when one exists
        (the paper's model: producers are nodes of the tree), falling back to
        the current root.
        """
        handled = self._gate.publish(event)
        if handled is not EXECUTE:
            return handled
        before = self.simulation.metrics.counter("network.messages_sent")
        issued, event, publisher_id, outcome, auto = self._publish_core(
            event, publisher_id)
        after = self.simulation.metrics.counter("network.messages_sent")
        self.accounting.record_messages(event.event_id, int(after - before))
        # Taped with the resolved id and publisher so a replay re-issues
        # exactly this publication, not the resolution inputs.
        self._tape.publish(issued, event, publisher_id, auto_id=auto)
        return outcome

    def publish_many(self, events: Iterable[Event],
                     publisher_id: Optional[str] = None) -> List[EventOutcome]:
        """Publish a sequence of events.

        Per-event message accounting comes from a single pass over the
        network counter — one read per event against the running cursor —
        and matches the per-:meth:`publish` path exactly.
        """
        outcomes: List[EventOutcome] = []
        cursor = self.simulation.metrics.counter("network.messages_sent")
        for event in events:
            handled = self._gate.publish(event)
            if handled is not EXECUTE:
                outcomes.append(handled)
                continue
            issued, event, resolved, outcome, auto = self._publish_core(
                event, publisher_id)
            after = self.simulation.metrics.counter("network.messages_sent")
            self.accounting.record_messages(event.event_id,
                                            int(after - cursor))
            cursor = after
            self._tape.publish(issued, event, resolved, auto_id=auto)
            outcomes.append(outcome)
        return outcomes

    def _default_publisher(self, event: Event) -> str:
        for subscriber_id, subscription in sorted(self._subscriptions.items()):
            if subscription.matches(event):
                return subscriber_id
        root = self.simulation.root()
        if root is not None:
            return root.process_id
        return sorted(self._subscriptions)[0]

    # ------------------------------------------------------------------ #
    # Reporting
    # ------------------------------------------------------------------ #

    def stabilize(self, max_rounds: Optional[int] = None):
        """Run stabilization rounds until the overlay is legal again."""
        handled = self._gate.stabilize(max_rounds)
        if handled is not EXECUTE:
            return handled
        issued = self._tape.now()
        report = self.simulation.stabilize(
            max_rounds=max_rounds or self.stabilize_rounds
        )
        self._tape.stabilize(issued, max_rounds)
        return report

    def summary(self) -> Dict[str, float]:
        """Headline accuracy/cost numbers for everything published so far.

        Engines with a real transport (``drtree:net``) additionally expose
        ``net_``-prefixed retry/timeout/condition counters through their
        ``transport_summary()``; the shared delivery columns keep their
        names so cross-backend comparisons are unaffected.
        """
        data = self.accounting.summary(len(self._subscriptions))
        transport = getattr(self.simulation, "transport_summary", None)
        if transport is not None:
            data.update(transport())
        return data

    def overlay_height(self) -> int:
        """Current height of the DR-tree."""
        return self.simulation.height()

    # ------------------------------------------------------------------ #
    # Snapshot capability
    # ------------------------------------------------------------------ #

    #: Capabilities advertised to :mod:`repro.api.capabilities` helpers.
    #: Class-level default; ``__init__`` overrides it per instance with the
    #: engine's advertised set.
    CAPABILITIES = frozenset({"snapshot"})

    def close(self) -> None:
        """Release engine resources (threads, sockets) if the engine holds any.

        The simulated engines are plain object graphs and need no teardown;
        the real-network engine shuts down its event loop, servers and
        connections.  Safe to call more than once.
        """
        close = getattr(self.simulation, "close", None)
        if close is not None:
            close()

    def quiescent(self) -> bool:
        """True when no simulated messages or timers are in flight."""
        return not self.simulation.has_pending()

    def snapshot(self) -> bytes:
        """Serialize the full broker state (overlay, accounting, counters).

        Everything goes through **one** ``pickle.dumps`` so shared references
        — each peer's ``delivery_listener`` is a bound method of this
        broker's accounting — are preserved as shared after :meth:`restore`.
        """
        from repro.api.capabilities import SnapshotNotQuiescentError

        if not self.quiescent():
            raise SnapshotNotQuiescentError(
                "cannot snapshot while simulated work is in flight; every "
                "facade operation settles the engine, so snapshot between "
                "operations")
        payload = {
            "kind": "pubsub",
            "backend": self.backend,
            "subscriptions": self._subscriptions,
            "accounting": self.accounting,
            "event_counter": self._event_counter,
            "sim": self.simulation.snapshot_state(),
        }
        return pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)

    def restore(self, blob: bytes) -> None:
        """Adopt a :meth:`snapshot` blob taken on an identically specced broker."""
        from repro.api.capabilities import SnapshotStateError

        try:
            payload = pickle.loads(blob)
        except Exception as exc:  # noqa: BLE001 - any unpickle failure
            raise SnapshotStateError(
                f"snapshot blob does not deserialize: {exc}") from exc
        if not isinstance(payload, dict) or payload.get("kind") != "pubsub":
            raise SnapshotStateError(
                "snapshot blob was not taken on a drtree broker")
        if payload.get("backend") != self.backend:
            raise SnapshotStateError(
                f"snapshot was taken on backend {payload.get('backend')!r}; "
                f"this broker is {self.backend!r}")
        self._subscriptions = payload["subscriptions"]
        self.accounting = payload["accounting"]
        self._event_counter = payload["event_counter"]
        self.simulation = self.simulation.restore_state(payload["sim"])

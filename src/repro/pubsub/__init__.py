"""Content-based publish/subscribe embedded in the DR-tree overlay.

This subpackage provides the user-facing facade of the reproduction:

* :class:`~repro.pubsub.api.PubSubSystem` — subscribe / unsubscribe /
  publish over a simulated DR-tree, with full delivery accounting (the
  DR-tree implementation of the :class:`~repro.api.broker.Broker` protocol),
* :mod:`~repro.pubsub.engines` — the registry of named dissemination
  engines (``classic``, ``batched``, and whatever plugs in next),
* :class:`~repro.pubsub.accounting.DeliveryAccounting` — false positive /
  false negative / message-cost bookkeeping for every published event,
* :mod:`~repro.pubsub.matching` — ground-truth event matching used to decide
  what *should* have been delivered.
"""

from repro.pubsub.accounting import DeliveryAccounting, DeliveryRecord, EventOutcome
from repro.pubsub.api import PubSubSystem
from repro.pubsub.engines import (EngineSpec, UnknownEngineError, engine_names,
                                  get_engine, register_engine)
from repro.pubsub.matching import matching_subscribers

__all__ = [
    "PubSubSystem",
    "DeliveryAccounting",
    "DeliveryRecord",
    "EventOutcome",
    "EngineSpec",
    "UnknownEngineError",
    "engine_names",
    "get_engine",
    "register_engine",
    "matching_subscribers",
]

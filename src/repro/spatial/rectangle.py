"""Axis-aligned poly-space rectangles and points.

The paper represents every content-based filter as a *poly-space rectangle*
(a hyper-rectangle) and every event as a point.  Minimum bounding rectangles
(MBRs) of tree nodes are also rectangles.  This module provides the value
types and the geometric operations needed by the R-tree and DR-tree code:
area, union, intersection, enlargement, containment and overlap tests.

Rectangles are immutable; all operations return new objects.  A rectangle may
be unbounded in a dimension (the paper: "if one attribute is undefined, then
the corresponding rectangle is unbounded in the associated dimension"), which
is modelled with ``-math.inf`` / ``math.inf`` bounds.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Sequence, Tuple


@dataclass(frozen=True, order=True)
class Point:
    """A point in a d-dimensional attribute space.

    Events correspond geometrically to points (Section 2.1).
    """

    coords: Tuple[float, ...]

    def __init__(self, *coords: float) -> None:
        if len(coords) == 1 and isinstance(coords[0], (tuple, list)):
            coords = tuple(coords[0])
        object.__setattr__(self, "coords", tuple(float(c) for c in coords))

    @property
    def dimensions(self) -> int:
        """Number of dimensions of the point."""
        return len(self.coords)

    def __getitem__(self, index: int) -> float:
        return self.coords[index]

    def __iter__(self):
        return iter(self.coords)

    def __len__(self) -> int:
        return len(self.coords)

    def as_rect(self) -> "Rect":
        """Return the degenerate rectangle containing only this point."""
        return Rect(self.coords, self.coords)


@dataclass(frozen=True)
class Rect:
    """An axis-aligned hyper-rectangle (poly-space rectangle).

    ``lower`` and ``upper`` are tuples of per-dimension bounds with
    ``lower[i] <= upper[i]``.  Degenerate rectangles (zero extent in some or
    all dimensions) are allowed; they arise when a filter pins an attribute to
    a single value and when points are promoted to rectangles.
    """

    lower: Tuple[float, ...]
    upper: Tuple[float, ...]

    def __post_init__(self) -> None:
        lower = tuple(float(v) for v in self.lower)
        upper = tuple(float(v) for v in self.upper)
        if len(lower) != len(upper):
            raise ValueError(
                f"lower and upper must have the same dimension: "
                f"{len(lower)} != {len(upper)}"
            )
        if not lower:
            raise ValueError("rectangles must have at least one dimension")
        for low, high in zip(lower, upper):
            if math.isnan(low) or math.isnan(high):
                raise ValueError("rectangle bounds may not be NaN")
            if low > high:
                raise ValueError(f"invalid bounds: lower {low} > upper {high}")
        object.__setattr__(self, "lower", lower)
        object.__setattr__(self, "upper", upper)

    # ------------------------------------------------------------------ #
    # Constructors
    # ------------------------------------------------------------------ #

    @classmethod
    def from_points(cls, points: Iterable[Point | Sequence[float]]) -> "Rect":
        """Smallest rectangle containing every point in ``points``."""
        pts = [tuple(p) for p in points]
        if not pts:
            raise ValueError("cannot build a rectangle from no points")
        dims = len(pts[0])
        lower = tuple(min(p[i] for p in pts) for i in range(dims))
        upper = tuple(max(p[i] for p in pts) for i in range(dims))
        return cls(lower, upper)

    @classmethod
    def from_intervals(cls, intervals: Sequence[Tuple[float, float]]) -> "Rect":
        """Build a rectangle from per-dimension ``(low, high)`` intervals."""
        lower = tuple(low for low, _ in intervals)
        upper = tuple(high for _, high in intervals)
        return cls(lower, upper)

    @classmethod
    def unbounded(cls, dimensions: int) -> "Rect":
        """The rectangle covering the whole d-dimensional space."""
        return cls((-math.inf,) * dimensions, (math.inf,) * dimensions)

    @classmethod
    def union_of(cls, rects: Iterable["Rect"]) -> "Rect":
        """Smallest rectangle covering every rectangle in ``rects``.

        This is the paper's MBR computation (``Compute_MBR`` in Figure 7):
        the per-dimension minimum of the lower bounds and maximum of the
        upper bounds of the children.
        """
        rects = list(rects)
        if not rects:
            raise ValueError("cannot build the union of no rectangles")
        result = rects[0]
        for rect in rects[1:]:
            result = result.union(rect)
        return result

    # ------------------------------------------------------------------ #
    # Basic properties
    # ------------------------------------------------------------------ #

    @property
    def dimensions(self) -> int:
        """Number of dimensions of the rectangle."""
        return len(self.lower)

    @property
    def center(self) -> Point:
        """Centre point of the rectangle (undefined for unbounded sides)."""
        return Point(*((low + high) / 2.0 for low, high in zip(self.lower, self.upper)))

    def extent(self, dim: int) -> float:
        """Length of the rectangle along dimension ``dim``."""
        return self.upper[dim] - self.lower[dim]

    def interval(self, dim: int) -> Tuple[float, float]:
        """The ``(low, high)`` interval of dimension ``dim``."""
        return (self.lower[dim], self.upper[dim])

    def area(self) -> float:
        """Hyper-volume of the rectangle.

        Unbounded rectangles have infinite area; degenerate rectangles have
        zero area.  The DR-tree root-election rule compares areas, so the
        convention matters: larger area means better coverage.
        """
        result = 1.0
        for low, high in zip(self.lower, self.upper):
            result *= high - low
        return result

    def margin(self) -> float:
        """Sum of the edge lengths (used by the R* split heuristic)."""
        return sum(high - low for low, high in zip(self.lower, self.upper))

    def is_degenerate(self) -> bool:
        """True if the rectangle has zero extent in every dimension."""
        return all(high == low for low, high in zip(self.lower, self.upper))

    # ------------------------------------------------------------------ #
    # Relations
    # ------------------------------------------------------------------ #

    def contains_point(self, point: Point | Sequence[float]) -> bool:
        """True if ``point`` lies inside the rectangle (inclusive bounds)."""
        coords = tuple(point)
        if len(coords) != self.dimensions:
            raise ValueError(
                f"dimension mismatch: rect has {self.dimensions}, point has {len(coords)}"
            )
        return all(
            low <= c <= high for c, low, high in zip(coords, self.lower, self.upper)
        )

    def contains_rect(self, other: "Rect") -> bool:
        """True if ``other`` lies entirely inside this rectangle.

        This is the geometric counterpart of subscription containment
        (S1 ⊒ S2 in the paper).
        """
        self._check_dims(other)
        return all(
            s_low <= o_low and o_high <= s_high
            for s_low, o_low, o_high, s_high in zip(
                self.lower, other.lower, other.upper, self.upper
            )
        )

    def intersects(self, other: "Rect") -> bool:
        """True if the two rectangles overlap (boundaries touching counts)."""
        self._check_dims(other)
        return all(
            s_low <= o_high and o_low <= s_high
            for s_low, s_high, o_low, o_high in zip(
                self.lower, self.upper, other.lower, other.upper
            )
        )

    def _check_dims(self, other: "Rect") -> None:
        if self.dimensions != other.dimensions:
            raise ValueError(
                f"dimension mismatch: {self.dimensions} != {other.dimensions}"
            )

    # ------------------------------------------------------------------ #
    # Combinations
    # ------------------------------------------------------------------ #

    def union(self, other: "Rect") -> "Rect":
        """Smallest rectangle covering both rectangles."""
        self._check_dims(other)
        lower = tuple(min(a, b) for a, b in zip(self.lower, other.lower))
        upper = tuple(max(a, b) for a, b in zip(self.upper, other.upper))
        return Rect(lower, upper)

    def intersection(self, other: "Rect") -> "Rect | None":
        """The overlapping rectangle, or ``None`` when the rectangles are disjoint."""
        self._check_dims(other)
        lower = tuple(max(a, b) for a, b in zip(self.lower, other.lower))
        upper = tuple(min(a, b) for a, b in zip(self.upper, other.upper))
        if any(low > high for low, high in zip(lower, upper)):
            return None
        return Rect(lower, upper)

    def intersection_area(self, other: "Rect") -> float:
        """Area of the overlap; zero when the rectangles are disjoint."""
        overlap = self.intersection(other)
        return 0.0 if overlap is None else overlap.area()

    def enlargement(self, other: "Rect") -> float:
        """Area increase needed for this rectangle to also cover ``other``.

        This is the quantity minimized by ``Choose_Best_Child`` when routing a
        join request down the tree ("the child whose MBR needs the less
        adjustment to encompass the filter of the joining subscriber").
        """
        return self.union(other).area() - self.area()

    def waste(self, other: "Rect") -> float:
        """Dead area created by grouping the two rectangles together.

        Used by the linear and quadratic split seed-picking heuristics
        (Guttman 1984): ``area(union) - area(a) - area(b)``.
        """
        return self.union(other).area() - self.area() - other.area()

    # ------------------------------------------------------------------ #
    # Misc
    # ------------------------------------------------------------------ #

    def as_tuple(self) -> Tuple[Tuple[float, ...], Tuple[float, ...]]:
        """Return ``(lower, upper)`` as plain tuples (the paper's notation)."""
        return (self.lower, self.upper)

    def __repr__(self) -> str:  # pragma: no cover - debugging convenience
        intervals = ", ".join(
            f"[{low:g}, {high:g}]" for low, high in zip(self.lower, self.upper)
        )
        return f"Rect({intervals})"

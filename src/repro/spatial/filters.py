"""Content-based filters (subscriptions) and events.

Section 2.1 of the paper defines a content-based filter as a conjunction of
predicates over named attributes, ``S = f1 ∧ ... ∧ fj`` with
``fi = (name, op, value)``.  The paper focuses on *complex filters*: the
conjunction of two or more range predicates, which geometrically define
poly-space rectangles.  An event assigns a value to every attribute and
corresponds to a point.

This module provides:

* :class:`Predicate` — a single ``(attribute, operator, value)`` triple,
* :class:`Subscription` — a conjunction of predicates with a rectangle view,
* :class:`Event` — a message carrying attribute/value pairs,
* :class:`AttributeSpace` — the ordered attribute universe used to map
  subscriptions and events to geometric objects.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Iterable, Mapping, Tuple

from repro.spatial.rectangle import Point, Rect

#: Operators supported for numeric attributes (Section 2.1).
SUPPORTED_OPERATORS = ("=", "<", ">", "<=", ">=")


@dataclass(frozen=True)
class Predicate:
    """A single attribute predicate ``(name op value)``.

    Examples: ``Predicate("price", "<", 100)``, ``Predicate("size", "=", 5)``.
    """

    attribute: str
    operator: str
    value: float

    def __post_init__(self) -> None:
        if self.operator not in SUPPORTED_OPERATORS:
            raise ValueError(
                f"unsupported operator {self.operator!r}; "
                f"expected one of {SUPPORTED_OPERATORS}"
            )

    def matches(self, value: float) -> bool:
        """Evaluate the predicate against a concrete attribute value."""
        if self.operator == "=":
            return value == self.value
        if self.operator == "<":
            return value < self.value
        if self.operator == ">":
            return value > self.value
        if self.operator == "<=":
            return value <= self.value
        return value >= self.value

    def interval(self) -> Tuple[float, float]:
        """The half-open interval of values accepted by the predicate.

        Strict and non-strict comparisons map to the same closed interval;
        this matches the geometric treatment in the paper, where filters are
        circumscribed by closed rectangles.
        """
        if self.operator == "=":
            return (self.value, self.value)
        if self.operator in ("<", "<="):
            return (-math.inf, self.value)
        return (self.value, math.inf)


@dataclass(frozen=True)
class AttributeSpace:
    """An ordered universe of attribute names.

    The DR-tree works on rectangles, so subscriptions and events expressed on
    named attributes must agree on a dimension order.  An ``AttributeSpace``
    fixes that order and provides the conversions.
    """

    names: Tuple[str, ...]

    def __post_init__(self) -> None:
        names = tuple(self.names)
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate attribute names in {names}")
        if not names:
            raise ValueError("an attribute space needs at least one attribute")
        object.__setattr__(self, "names", names)

    @property
    def dimensions(self) -> int:
        """Number of attributes (dimensions)."""
        return len(self.names)

    def index(self, name: str) -> int:
        """Dimension index of attribute ``name``."""
        return self.names.index(name)

    def event_to_point(self, event: "Event") -> Point:
        """Map an event to its point in this attribute space.

        Raises ``KeyError`` if the event does not define every attribute, as
        the paper's model requires ("an event specifies a value for each
        attribute").
        """
        return Point(*(event.attributes[name] for name in self.names))

    def rect_for(self, intervals: Mapping[str, Tuple[float, float]]) -> Rect:
        """Build a rectangle from per-attribute intervals.

        Attributes not present in ``intervals`` are unbounded, mirroring the
        paper's convention for undefined attributes.
        """
        lower = []
        upper = []
        for name in self.names:
            low, high = intervals.get(name, (-math.inf, math.inf))
            lower.append(low)
            upper.append(high)
        return Rect(tuple(lower), tuple(upper))


@dataclass(frozen=True)
class Event:
    """A published message: a set of attributes with associated values."""

    attributes: Mapping[str, float]
    event_id: str = ""

    def __post_init__(self) -> None:
        object.__setattr__(self, "attributes", dict(self.attributes))

    def value(self, name: str) -> float:
        """Value of attribute ``name``."""
        return self.attributes[name]

    def to_point(self, space: AttributeSpace) -> Point:
        """Geometric representation of the event in ``space``."""
        return space.event_to_point(self)

    def __hash__(self) -> int:
        return hash((self.event_id, tuple(sorted(self.attributes.items()))))


@dataclass(frozen=True)
class Subscription:
    """A content-based filter: a conjunction of range predicates.

    A subscription is identified by ``name`` (e.g. ``"S1"``) and stores both
    its predicate form and its rectangle form.  The rectangle is the
    circumscribing poly-space rectangle used by the DR-tree; matching an event
    is done against the predicates (semantics) and against the rectangle
    (geometry) — the two coincide for the closed range filters considered by
    the paper.
    """

    name: str
    space: AttributeSpace
    predicates: Tuple[Predicate, ...] = ()
    rect: Rect = field(default=None)  # type: ignore[assignment]

    def __post_init__(self) -> None:
        predicates = tuple(self.predicates)
        object.__setattr__(self, "predicates", predicates)
        if self.rect is None:
            object.__setattr__(self, "rect", self._rect_from_predicates())
        if self.rect.dimensions != self.space.dimensions:
            raise ValueError(
                "subscription rectangle dimensionality does not match the "
                f"attribute space: {self.rect.dimensions} != {self.space.dimensions}"
            )

    def _rect_from_predicates(self) -> Rect:
        intervals: Dict[str, Tuple[float, float]] = {}
        for predicate in self.predicates:
            low, high = predicate.interval()
            if predicate.attribute in intervals:
                old_low, old_high = intervals[predicate.attribute]
                low, high = max(low, old_low), min(high, old_high)
                if low > high:
                    raise ValueError(
                        f"contradictory predicates on {predicate.attribute!r}"
                    )
            intervals[predicate.attribute] = (low, high)
        unknown = set(intervals) - set(self.space.names)
        if unknown:
            raise ValueError(f"predicates on unknown attributes: {sorted(unknown)}")
        return self.space.rect_for(intervals)

    # ------------------------------------------------------------------ #
    # Matching and containment
    # ------------------------------------------------------------------ #

    def matches(self, event: Event) -> bool:
        """True if the event satisfies every predicate of the subscription.

        When the subscription was built directly from a rectangle (no
        predicate list), matching falls back to geometric containment.
        """
        if self.predicates:
            try:
                return all(
                    predicate.matches(event.value(predicate.attribute))
                    for predicate in self.predicates
                )
            except KeyError:
                return False
        try:
            point = event.to_point(self.space)
        except KeyError:
            return False
        return self.rect.contains_point(point)

    def matches_point(self, event: Event, point: Point) -> bool:
        """Exactly :meth:`matches`, with the event's point precomputed.

        The batched dissemination path carries each event's point alongside
        the event, so rectangle-built subscriptions (no predicate list) can
        test containment directly instead of rebuilding the point per
        reception.  Predicate-built subscriptions fall back to the full
        predicate evaluation — the two forms only provably coincide for the
        rectangle form, and this method must never change a match outcome.
        """
        if self.predicates:
            return self.matches(event)
        rect = self.rect
        coords = point.coords
        if len(coords) == 2:
            lower = rect.lower
            upper = rect.upper
            return (lower[0] <= coords[0] <= upper[0]
                    and lower[1] <= coords[1] <= upper[1])
        for coord, low, high in zip(coords, rect.lower, rect.upper):
            if coord < low or coord > high:
                return False
        return True

    def contains(self, other: "Subscription") -> bool:
        """Subscription containment: ``self ⊒ other``.

        Every event matching ``other`` also matches ``self``.  For the range
        filters of the paper this coincides with rectangle containment.
        """
        return self.rect.contains_rect(other.rect)

    def area(self) -> float:
        """Area of the subscription's rectangle."""
        return self.rect.area()

    def __hash__(self) -> int:
        return hash((self.name, self.rect.lower, self.rect.upper))

    def __repr__(self) -> str:  # pragma: no cover - debugging convenience
        return f"Subscription({self.name}, {self.rect!r})"


def subscription_from_rect(
    name: str, space: AttributeSpace, rect: Rect
) -> Subscription:
    """Build a subscription directly from its rectangle representation.

    Workload generators produce rectangles; this helper wraps them into
    subscriptions without synthesizing predicate lists.
    """
    return Subscription(name=name, space=space, predicates=(), rect=rect)


def subscription_from_intervals(
    name: str,
    space: AttributeSpace,
    intervals: Mapping[str, Tuple[float, float]],
) -> Subscription:
    """Build a subscription from per-attribute ``(low, high)`` intervals."""
    predicates = []
    for attr, (low, high) in intervals.items():
        if low == high:
            predicates.append(Predicate(attr, "=", low))
            continue
        if low != -math.inf:
            predicates.append(Predicate(attr, ">=", low))
        if high != math.inf:
            predicates.append(Predicate(attr, "<=", high))
    return Subscription(name=name, space=space, predicates=tuple(predicates))


def make_space(*names: str) -> AttributeSpace:
    """Convenience constructor for an :class:`AttributeSpace`."""
    return AttributeSpace(tuple(names))


def ensure_same_space(space: AttributeSpace,
                      subscription: "Subscription") -> None:
    """Raise if ``subscription`` was built over a different attribute space.

    The one guard (and error message) every broker backend uses, so a
    mismatched filter fails identically on the DR-tree facade and on every
    baseline overlay.
    """
    if subscription.space.names != space.names:
        raise ValueError(
            "subscription attribute space does not match the system's"
        )


def ensure_unique_names(subscriptions: Iterable["Subscription"]) -> None:
    """Raise if a subscription batch reuses a name within itself.

    The per-subscription registration checks only see names already in the
    system, so duplicates *within* one ``subscribe_all`` batch need this
    upfront guard — shared by both broker families so the call raises
    identically (and before any subscriber is registered) everywhere.
    """
    seen: set = set()
    for subscription in subscriptions:
        if subscription.name in seen:
            raise ValueError(
                f"duplicate subscription name {subscription.name!r} within "
                "subscribe_all batch")
        seen.add(subscription.name)

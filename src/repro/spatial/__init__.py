"""Geometric substrate for spatial filters.

This subpackage provides the geometric primitives used throughout the
DR-tree reproduction:

* :class:`~repro.spatial.rectangle.Rect` — axis-aligned poly-space rectangles
  (the paper's minimum bounding rectangles, MBRs),
* :class:`~repro.spatial.rectangle.Point` — event coordinates,
* :class:`~repro.spatial.filters.Subscription` — a conjunction of range
  predicates over named attributes (the paper's content-based filters),
* :class:`~repro.spatial.filters.Event` — an attribute/value message,
* :class:`~repro.spatial.containment.ContainmentGraph` — the partial order of
  subscription containment (Figure 1, right).
"""

from repro.spatial.rectangle import Point, Rect
from repro.spatial.filters import (
    AttributeSpace,
    Event,
    Predicate,
    Subscription,
    subscription_from_rect,
)
from repro.spatial.containment import ContainmentGraph, contains, is_comparable

__all__ = [
    "Point",
    "Rect",
    "AttributeSpace",
    "Event",
    "Predicate",
    "Subscription",
    "subscription_from_rect",
    "ContainmentGraph",
    "contains",
    "is_comparable",
]

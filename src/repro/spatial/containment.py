"""Subscription containment relation and containment graph.

Section 2.1: subscription ``S1`` *contains* ``S2`` (written ``S1 ⊒ S2``) iff
any message matching ``S2`` also matches ``S1``.  The relation is transitive
and defines a partial order; Figure 1 (right) shows the containment graph of
the running example.

The :class:`ContainmentGraph` is used by

* the containment-awareness properties (3.1 and 3.2) checked by
  :mod:`repro.overlay.verifier`,
* the containment-tree baseline (:mod:`repro.baselines.containment_tree`),
* workload statistics in the experiments.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import (Dict, Iterable, List, Mapping, Protocol, Sequence, Set,
                    Tuple, TYPE_CHECKING)

from repro.spatial.filters import Subscription

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.spatial.rectangle import Rect


class HasMbr(Protocol):
    """Anything exposing a minimum bounding rectangle."""

    mbr: "Rect"


def contains(container: Subscription, containee: Subscription) -> bool:
    """True if ``container ⊒ containee`` (strictly or as equal rectangles)."""
    return container.contains(containee)


def child_ids_containing_point(
    children: "Mapping[str, HasMbr]",
    point: Sequence[float],
    exclude: str | None = None,
) -> List[str]:
    """One containment pass over a child MBR list.

    ``children`` maps child ids to entries exposing an ``mbr`` rectangle (a
    DR-tree instance's children, or any mapping of objects with an ``mbr``
    attribute); the result lists, in iteration order, the ids whose MBR
    contains ``point``, skipping ``exclude``.  Semantically this equals
    ``[i for i, c in children.items() if i != exclude and
    c.mbr.contains_point(point)]`` but fuses the pass into one loop with the
    bound checks inlined — it runs once per dissemination fan-out instead of
    once per child message, which is what the batched engine's "vectorized
    containment" refers to.  Bounds are inclusive, matching
    :meth:`repro.spatial.rectangle.Rect.contains_point`; the caller
    guarantees that the point and every rectangle share one dimensionality.
    """
    # A Point already carries its coordinate tuple; avoid copying it.
    coords = getattr(point, "coords", None)
    if coords is None:
        coords = tuple(point)
    matching: List[str] = []
    if len(coords) == 2:
        # The common case (two-attribute workloads): unrolled bound checks.
        x, y = coords
        for name, child in children.items():
            if name == exclude:
                continue
            mbr = child.mbr
            lower = mbr.lower
            upper = mbr.upper
            if lower[0] <= x <= upper[0] and lower[1] <= y <= upper[1]:
                matching.append(name)
        return matching
    for name, child in children.items():
        if name == exclude:
            continue
        mbr = child.mbr
        for coord, low, high in zip(coords, mbr.lower, mbr.upper):
            if coord < low or coord > high:
                break
        else:
            matching.append(name)
    return matching


def is_comparable(first: Subscription, second: Subscription) -> bool:
    """True if the two subscriptions are ordered by containment either way."""
    return first.contains(second) or second.contains(first)


@dataclass
class ContainmentGraph:
    """The DAG of direct containment relationships between subscriptions.

    An edge ``container -> containee`` is *direct* when no third subscription
    lies strictly between the two.  Roots are the subscriptions not contained
    in any other subscription.
    """

    subscriptions: List[Subscription] = field(default_factory=list)
    _children: Dict[str, Set[str]] = field(default_factory=dict)
    _parents: Dict[str, Set[str]] = field(default_factory=dict)
    _by_name: Dict[str, Subscription] = field(default_factory=dict)

    @classmethod
    def build(cls, subscriptions: Iterable[Subscription]) -> "ContainmentGraph":
        """Build the containment graph of ``subscriptions``.

        The construction is quadratic in the number of subscriptions, which is
        fine for the workload sizes used in the experiments (the graph is an
        analysis artefact, not part of the distributed protocol).
        """
        graph = cls()
        for subscription in subscriptions:
            graph._insert(subscription)
        graph._recompute_edges()
        return graph

    def add(self, subscription: Subscription) -> None:
        """Insert a subscription and recompute its direct edges."""
        self._insert(subscription)
        self._recompute_edges()

    def _insert(self, subscription: Subscription) -> None:
        if subscription.name in self._by_name:
            raise ValueError(f"duplicate subscription name {subscription.name!r}")
        self.subscriptions.append(subscription)
        self._by_name[subscription.name] = subscription
        self._children.setdefault(subscription.name, set())
        self._parents.setdefault(subscription.name, set())

    def _recompute_edges(self) -> None:
        names = [s.name for s in self.subscriptions]
        subs = self._by_name
        ancestors: Dict[str, Set[str]] = {name: set() for name in names}
        for name in names:
            for other in names:
                if name == other:
                    continue
                if subs[other].contains(subs[name]) and not subs[name].contains(
                    subs[other]
                ):
                    ancestors[name].add(other)
        self._children = {name: set() for name in names}
        self._parents = {name: set() for name in names}
        for name in names:
            # Direct parents: ancestors that are not ancestors of another ancestor.
            direct = set(ancestors[name])
            for candidate in ancestors[name]:
                for other in ancestors[name]:
                    if candidate == other:
                        continue
                    if candidate in ancestors[other]:
                        direct.discard(candidate)
                        break
            for parent in direct:
                self._children[parent].add(name)
                self._parents[name].add(parent)

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #

    def subscription(self, name: str) -> Subscription:
        """Look up a subscription by name."""
        return self._by_name[name]

    def children(self, name: str) -> Set[str]:
        """Direct containees of subscription ``name``."""
        return set(self._children[name])

    def parents(self, name: str) -> Set[str]:
        """Direct containers of subscription ``name``."""
        return set(self._parents[name])

    def roots(self) -> List[str]:
        """Subscriptions not contained in any other subscription."""
        return sorted(name for name, parents in self._parents.items() if not parents)

    def ancestors(self, name: str) -> Set[str]:
        """All (transitive) containers of subscription ``name``."""
        result: Set[str] = set()
        frontier = list(self._parents[name])
        while frontier:
            current = frontier.pop()
            if current in result:
                continue
            result.add(current)
            frontier.extend(self._parents[current])
        return result

    def descendants(self, name: str) -> Set[str]:
        """All (transitive) containees of subscription ``name``."""
        result: Set[str] = set()
        frontier = list(self._children[name])
        while frontier:
            current = frontier.pop()
            if current in result:
                continue
            result.add(current)
            frontier.extend(self._children[current])
        return result

    def edges(self) -> List[Tuple[str, str]]:
        """All direct ``(container, containee)`` edges, sorted."""
        return sorted(
            (parent, child)
            for parent, children in self._children.items()
            for child in children
        )

    def containment_pairs(self) -> List[Tuple[str, str]]:
        """All (transitive) ``(container, containee)`` pairs, sorted."""
        pairs = []
        for subscription in self.subscriptions:
            for descendant in self.descendants(subscription.name):
                pairs.append((subscription.name, descendant))
        return sorted(pairs)

    def depth(self) -> int:
        """Length of the longest containment chain (roots have depth 1)."""
        memo: Dict[str, int] = {}

        def chain(name: str) -> int:
            if name in memo:
                return memo[name]
            children = self._children[name]
            value = 1 if not children else 1 + max(chain(child) for child in children)
            memo[name] = value
            return value

        if not self.subscriptions:
            return 0
        return max(chain(root) for root in self.roots())

    def __len__(self) -> int:
        return len(self.subscriptions)

    def __contains__(self, name: str) -> bool:
        return name in self._by_name

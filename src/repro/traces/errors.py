"""Typed errors of the trace subsystem.

Malformed input never surfaces as a bare ``KeyError``/``ValueError`` from the
guts of the parser: every structural problem with a trace file is reported as
a :class:`TraceFormatError` carrying the offending line, and every divergence
between a replay and the metrics recorded at capture time is a
:class:`TraceReplayError`.  Callers (the CLI, the golden-trace tests) can
therefore distinguish "this file is not a trace" from "this trace no longer
reproduces".
"""

from __future__ import annotations


class TraceError(Exception):
    """Base class for all trace subsystem errors."""


class TraceFormatError(TraceError):
    """The trace file (or record stream) violates the trace schema.

    Raised for non-JSON lines, unknown record or op types, missing required
    fields, bad field types and unsupported format versions.  ``line`` is the
    1-based line number in the source file when known.
    """

    def __init__(self, message: str, line: int | None = None) -> None:
        self.line = line
        if line is not None:
            message = f"line {line}: {message}"
        super().__init__(message)


class TraceReplayError(TraceError):
    """Replaying a trace did not reproduce the recorded outcome.

    Raised when a replayed segment's delivery metrics differ from the
    ``expect`` record captured at recording time, or when an operation
    references state the trace never created (e.g. crashing an unknown
    subscriber).
    """

"""Replayable workload traces.

Every workload decision a run makes — joins, leaves, crashes, subscription
moves, publications — can be captured into a versioned JSON-lines trace and
replayed bit-identically, on either dissemination engine:

>>> from repro.traces import recording, replay_trace          # doctest: +SKIP
>>> with recording("run.jsonl", scenario="hotspot"):          # doctest: +SKIP
...     some_scenario()                                       # doctest: +SKIP
>>> replay_trace("run.jsonl", engine="batched")               # doctest: +SKIP

From the command line::

    python -m repro run hotspot --record run.jsonl
    python -m repro run --trace run.jsonl --backend drtree:batched

See ``docs/traces.md`` for the format reference.
"""

from repro.traces.errors import TraceError, TraceFormatError, TraceReplayError
from repro.traces.format import (TRACE_FORMAT, TRACE_OPS, TRACE_VERSION,
                                 ExpectRecord, OpRecord, SystemRecord, Trace,
                                 TraceHeader)
from repro.traces.io import (dump_record, dumps_trace, loads_trace, read_trace,
                             write_trace)
from repro.traces.recorder import TraceRecorder, active_recorder, recording
from repro.traces.replay import (ENGINES, SUMMARY_KEYS, delivery_metrics_row,
                                 dump_metrics, execute_trace, metrics_document,
                                 replay_trace)

__all__ = [
    "TRACE_FORMAT",
    "TRACE_OPS",
    "TRACE_VERSION",
    "ENGINES",
    "SUMMARY_KEYS",
    "Trace",
    "TraceHeader",
    "SystemRecord",
    "OpRecord",
    "ExpectRecord",
    "TraceError",
    "TraceFormatError",
    "TraceReplayError",
    "TraceRecorder",
    "active_recorder",
    "recording",
    "delivery_metrics_row",
    "dump_metrics",
    "metrics_document",
    "execute_trace",
    "replay_trace",
    "dump_record",
    "dumps_trace",
    "loads_trace",
    "read_trace",
    "write_trace",
]

"""Replaying recorded traces and the canonical delivery-metrics row.

:func:`execute_trace` rebuilds every system a trace describes (same attribute
space, same DR-tree configuration, same master seed) and re-applies the
recorded operations in capture order.  Because the simulator is a
deterministic function of (seed, operation sequence), the replay reproduces
the original run bit for bit — and the function *checks* that: each
segment's re-derived :func:`delivery_metrics_row` is compared against the
``expect`` row captured at recording time, and any divergence raises
:class:`~repro.traces.errors.TraceReplayError`.

The dissemination engine is replay-selectable: ``engine="classic"`` or
``engine="batched"`` overrides the recorded batch flag, and the resulting
metrics must not change (the batched engine is outcome-equivalent by
construction; the golden-trace tests pin this).

:func:`delivery_metrics_row` is shared with the trace-native scenarios
(``hotspot``, ``adversarial-churn``, ``mobility``): they emit exactly this
row, so a recorded run and its replay produce byte-identical metrics
documents (:func:`dump_metrics`).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import TYPE_CHECKING, Any, Dict, List, Optional, Union

from repro.traces.errors import TraceFormatError, TraceReplayError
from repro.traces.format import (OpRecord, SystemRecord, Trace,
                                 event_from_json, subscription_from_json)
from repro.traces.io import read_trace

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.experiments.harness import ExperimentResult
    from repro.pubsub.api import PubSubSystem

#: The accounting summary keys included in the canonical metrics row, in
#: column order.
SUMMARY_KEYS = (
    "events",
    "true_deliveries",
    "false_positives",
    "false_negatives",
    "false_positive_rate",
    "delivery_rate",
    "mean_messages_per_event",
    "mean_delivery_hops",
    "max_delivery_hops",
)

#: Engine override names accepted by :func:`execute_trace`.
ENGINES = ("classic", "batched")


def delivery_metrics_row(system: "PubSubSystem", segment: int = 0) -> Dict[str, Any]:
    """The canonical per-segment metrics row of the trace subsystem.

    Pure accounting — no wall-clock, no engine-dependent values — so the row
    is identical between a recorded run, its replay, and replays on either
    dissemination engine.
    """
    summary = system.summary()
    row: Dict[str, Any] = {
        "segment": segment,
        "subscribers": len(system.subscribers()),
    }
    for key in SUMMARY_KEYS:
        row[key] = summary[key]
    return row


def metrics_document(scenario: Optional[str],
                     rows: List[Dict[str, Any]]) -> Dict[str, Any]:
    """The metrics document written by ``--metrics`` (no timing fields)."""
    return {"scenario": scenario, "rows": rows}


def dump_metrics(scenario: Optional[str], rows: List[Dict[str, Any]]) -> str:
    """Canonical JSON text of :func:`metrics_document` (byte-comparable)."""
    return json.dumps(metrics_document(scenario, rows), sort_keys=True,
                      separators=(",", ":"), allow_nan=False) + "\n"


def _build_system(record: SystemRecord,
                  batch_override: Optional[bool]) -> "PubSubSystem":
    from repro.overlay.config import DRTreeConfig
    from repro.pubsub.api import PubSubSystem
    from repro.spatial.filters import make_space

    try:
        config = DRTreeConfig(**record.config)
    except (TypeError, ValueError) as exc:
        raise TraceFormatError(
            f"segment {record.seg}: bad DR-tree config {record.config!r}: "
            f"{exc}") from exc
    batch = record.batch if batch_override is None else batch_override
    return PubSubSystem(
        make_space(*record.space),
        config,
        seed=record.seed,
        stabilize_rounds=record.stabilize_rounds,
        batch=batch,
    )


def _apply_op(system: "PubSubSystem", op: OpRecord) -> None:
    data = op.data
    try:
        if op.op == "subscribe":
            system.subscribe(
                subscription_from_json(data["subscription"], system.space),
                stabilize=bool(data["stabilize"]))
        elif op.op == "subscribe_all":
            bulk = data["bulk"]
            system.subscribe_all(
                [subscription_from_json(sub, system.space)
                 for sub in data["subscriptions"]],
                stabilize=bool(data["stabilize"]),
                bulk=None if bulk is None else bool(bulk))
        elif op.op == "unsubscribe":
            system.unsubscribe(data["id"])
        elif op.op == "crash":
            system.fail(data["id"], stabilize=bool(data["stabilize"]))
        elif op.op == "move":
            system.move_subscription(
                data["id"],
                subscription_from_json(data["subscription"], system.space),
                stabilize=bool(data["stabilize"]))
        elif op.op == "publish":
            system.publish(event_from_json(data["event"]),
                           publisher_id=data["publisher"])
        else:  # "stabilize" — OpRecord already rejected unknown ops
            system.stabilize(max_rounds=data["max_rounds"])
    except (KeyError, TypeError, ValueError, RuntimeError) as exc:
        raise TraceReplayError(
            f"segment {op.seg}: op {op.op!r} at t={op.t} failed to apply: "
            f"{exc!r}") from exc


def execute_trace(trace: Trace,
                  engine: Optional[str] = None,
                  verify: bool = True) -> "ExperimentResult":
    """Replay ``trace`` and return the per-segment metrics as a result.

    ``engine`` optionally overrides the recorded dissemination engine
    (``"classic"`` or ``"batched"``); ``verify=True`` (the default) compares
    every re-derived segment row against the trace's ``expect`` records and
    raises :class:`TraceReplayError` on the first divergence.
    """
    # Imported here: repro.experiments pulls in the scenario modules, which
    # themselves import this module for delivery_metrics_row.
    from repro.experiments.harness import ExperimentResult

    if engine is not None and engine not in ENGINES:
        raise ValueError(f"unknown engine {engine!r}; expected one of {ENGINES}")
    batch_override = None if engine is None else (engine == "batched")
    systems: Dict[int, "PubSubSystem"] = {}
    applied = 0
    for record in trace.body:
        if isinstance(record, SystemRecord):
            systems[record.seg] = _build_system(record, batch_override)
        else:
            system = systems.get(record.seg)
            if system is None:  # unreachable for parsed files; guards built Traces
                raise TraceReplayError(
                    f"op {record.op!r} references segment {record.seg} "
                    "with no system record")
            _apply_op(system, record)
            applied += 1

    label = trace.header.scenario or "trace"
    result = ExperimentResult("TRACE", f"replay of {label}")
    for seg in sorted(systems):
        row = delivery_metrics_row(systems[seg], seg)
        if verify:
            expect = trace.expect_for(seg)
            if expect is not None and expect.row != row:
                diverged = sorted(
                    key for key in set(expect.row) | set(row)
                    if expect.row.get(key) != row.get(key)
                )
                raise TraceReplayError(
                    f"segment {seg} did not replay bit-identically; "
                    f"diverging fields: {diverged} "
                    f"(expected {expect.row!r}, got {row!r})")
        result.add_row(**row)
    result.add_note(
        f"replayed {applied} ops over {len(systems)} segment(s)"
        + (f" on the {engine} engine" if engine else ""))
    if verify and any(trace.expect_for(seg) for seg in systems):
        result.add_note("recorded delivery metrics reproduced exactly")
    return result


def replay_trace(path: Union[str, Path],
                 engine: Optional[str] = None,
                 verify: bool = True) -> "ExperimentResult":
    """Read the trace at ``path`` and :func:`execute_trace` it."""
    return execute_trace(read_trace(path), engine=engine, verify=verify)

"""Replaying recorded traces and the canonical delivery-metrics row.

:func:`execute_trace` rebuilds every system a trace describes (same attribute
space, same backend, same configuration, same master seed) and re-applies the
recorded operations in capture order.  Because every broker is a
deterministic function of (spec, operation sequence), the replay reproduces
the original run bit for bit — and the function *checks* that: each
segment's re-derived :func:`delivery_metrics_row` is compared against the
``expect`` row captured at recording time, and any divergence raises
:class:`~repro.traces.errors.TraceReplayError`.

The backend is replay-selectable: ``backend="drtree:batched"`` (or any name
from :mod:`repro.api`) overrides the recorded backend of every segment.
Within the DR-tree family the engines are outcome-equivalent by
construction, so the metrics must not change (the golden-trace tests pin
this); overriding *across* families — say replaying a DR-tree trace on
``flooding`` — changes delivery accuracy by design, so the expect-row check
is skipped for those segments and noted in the result.  The older
``engine="classic"|"batched"`` spelling is kept as an alias for
``backend="drtree:<engine>"``.

:func:`delivery_metrics_row` is shared with the trace-native scenarios
(``hotspot``, ``adversarial-churn``, ``mobility``): they emit exactly this
row, so a recorded run and its replay produce byte-identical metrics
documents (:func:`dump_metrics`).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import TYPE_CHECKING, Any, Dict, List, Optional, Union

from repro.traces.errors import TraceFormatError, TraceReplayError
from repro.traces.format import (OpRecord, SystemRecord, Trace,
                                 event_from_json, subscription_from_json)
from repro.traces.io import read_trace

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.api.broker import Broker
    from repro.experiments.harness import ExperimentResult

#: The accounting summary keys included in the canonical metrics row, in
#: column order.
SUMMARY_KEYS = (
    "events",
    "true_deliveries",
    "false_positives",
    "false_negatives",
    "false_positive_rate",
    "delivery_rate",
    "mean_messages_per_event",
    "mean_delivery_hops",
    "max_delivery_hops",
)

#: DR-tree engine-override names accepted by :func:`execute_trace`'s legacy
#: ``engine=`` parameter (``backend=`` accepts any registered backend).
ENGINES = ("classic", "batched")

#: The DR-tree engine digest-fallback verification runs against when the
#: recorded backend itself is not metrics-reproducible.
DEFAULT_REFERENCE_ENGINE = "classic"


def delivery_metrics_row(system: "Broker", segment: int = 0) -> Dict[str, Any]:
    """The canonical per-segment metrics row of the trace subsystem.

    Pure accounting — no wall-clock, no engine-dependent values — so the row
    is identical between a recorded run, its replay, and replays on either
    dissemination engine.
    """
    summary = system.summary()
    row: Dict[str, Any] = {
        "segment": segment,
        "subscribers": len(system.subscribers()),
    }
    for key in SUMMARY_KEYS:
        row[key] = summary[key]
    return row


def metrics_document(scenario: Optional[str],
                     rows: List[Dict[str, Any]]) -> Dict[str, Any]:
    """The metrics document written by ``--metrics`` (no timing fields)."""
    return {"scenario": scenario, "rows": rows}


def dump_metrics(scenario: Optional[str], rows: List[Dict[str, Any]]) -> str:
    """Canonical JSON text of :func:`metrics_document` (byte-comparable)."""
    return json.dumps(metrics_document(scenario, rows), sort_keys=True,
                      separators=(",", ":"), allow_nan=False) + "\n"


def _resolve_override(engine: Optional[str],
                      backend: Optional[str]) -> Optional[str]:
    """Collapse the legacy ``engine`` and new ``backend`` overrides."""
    from repro.api.registry import normalize_backend

    if engine is not None:
        if engine not in ENGINES:
            raise ValueError(
                f"unknown engine {engine!r}; expected one of {ENGINES}")
        if backend is not None:
            raise ValueError("pass either engine= or backend=, not both")
        backend = f"drtree:{engine}"
    if backend is None:
        return None
    return normalize_backend(backend)


def _build_system(record: SystemRecord,
                  backend_override: Optional[str]) -> "Broker":
    from repro.api.spec import SystemSpec
    from repro.overlay.config import DRTreeConfig
    from repro.spatial.filters import make_space

    backend = backend_override or record.backend
    config = None
    if record.config:
        try:
            config = DRTreeConfig(**record.config)
        except (TypeError, ValueError) as exc:
            raise TraceFormatError(
                f"segment {record.seg}: bad DR-tree config {record.config!r}: "
                f"{exc}") from exc
    # Engine options are construction knobs of the recorded backend; when the
    # replay overrides the backend they are dropped rather than misapplied.
    options = (dict(record.engine_options)
               if record.engine_options and backend == record.backend
               else None)
    return SystemSpec(
        space=make_space(*record.space),
        backend=backend,
        config=config,
        seed=record.seed,
        stabilize_rounds=record.stabilize_rounds,
        engine_options=options,
    ).build()


def apply_op(system: "Broker", op: OpRecord) -> None:
    """Apply one trace op record to a live broker through its facade.

    The single op-application path shared by trace replay, journal
    recovery/bisect and the synthesized-workload drivers
    (:mod:`repro.workloads.synth`), so every consumer interprets an op
    record identically.
    """
    data = op.data
    try:
        if op.op == "subscribe":
            system.subscribe(
                subscription_from_json(data["subscription"], system.space),
                stabilize=bool(data["stabilize"]))
        elif op.op == "subscribe_all":
            bulk = data["bulk"]
            system.subscribe_all(
                [subscription_from_json(sub, system.space)
                 for sub in data["subscriptions"]],
                stabilize=bool(data["stabilize"]),
                bulk=None if bulk is None else bool(bulk))
        elif op.op == "unsubscribe":
            system.unsubscribe(data["id"])
        elif op.op == "crash":
            system.fail(data["id"], stabilize=bool(data["stabilize"]))
        elif op.op == "move":
            system.move_subscription(
                data["id"],
                subscription_from_json(data["subscription"], system.space),
                stabilize=bool(data["stabilize"]))
        elif op.op == "publish":
            system.publish(event_from_json(data["event"]),
                           publisher_id=data["publisher"])
        else:  # "stabilize" — OpRecord already rejected unknown ops
            system.stabilize(max_rounds=data["max_rounds"])
    except (KeyError, TypeError, ValueError, RuntimeError) as exc:
        raise TraceReplayError(
            f"segment {op.seg}: op {op.op!r} at t={op.t} failed to apply: "
            f"{exc!r}") from exc


#: Backwards-compatible private alias (journal recovery imports it).
_apply_op = apply_op


def execute_trace(trace: Trace,
                  engine: Optional[str] = None,
                  verify: bool = True,
                  backend: Optional[str] = None) -> "ExperimentResult":
    """Replay ``trace`` and return the per-segment metrics as a result.

    ``backend`` optionally overrides the recorded backend of every segment
    (any name :func:`repro.api.normalize_backend` accepts); ``engine`` is
    the legacy spelling for the two DR-tree engines.  ``verify=True`` (the
    default) compares every re-derived segment row against the trace's
    ``expect`` records and raises :class:`TraceReplayError` on the first
    divergence — except for segments where the row comparison is unsound:

    * the backend *family* was overridden (say a DR-tree trace replayed on
      ``flooding``) — different delivery accuracy is the expected outcome,
      so those segments are skipped and noted;
    * the effective backend is not metrics-reproducible
      (:func:`~repro.api.registry.backend_metrics_identical` is false, e.g.
      ``drtree:net``, whose message counts include timing-dependent
      background-stabilizer traffic).  Those segments fall back to
      *digest verification*: the segment's ops are re-run on the family's
      reference backend and the delivered-event digests
      (:func:`~repro.analysis.digests.delivered_digest`) must match byte
      for byte — the delivered *sets* are deterministic even where the
      message counts are not.  The result carries a
      ``digest-verified (N expect rows skipped)`` note.
    """
    # Imported here: repro.experiments pulls in the scenario modules, which
    # themselves import this module for delivery_metrics_row.
    from repro.analysis.digests import delivered_digest
    from repro.api.registry import backend_family, backend_metrics_identical
    from repro.experiments.harness import ExperimentResult

    override = _resolve_override(engine, backend)
    systems: Dict[int, "Broker"] = {}
    recorded_backends: Dict[int, str] = {}
    ops_by_seg: Dict[int, List[OpRecord]] = {}
    references: Dict[int, "Broker"] = {}
    applied = 0
    try:
        for record in trace.body:
            if isinstance(record, SystemRecord):
                systems[record.seg] = _build_system(record, override)
                recorded_backends[record.seg] = record.backend
            else:
                system = systems.get(record.seg)
                if system is None:  # unreachable for parsed files; guards built Traces
                    raise TraceReplayError(
                        f"op {record.op!r} references segment {record.seg} "
                        "with no system record")
                _apply_op(system, record)
                ops_by_seg.setdefault(record.seg, []).append(record)
                applied += 1

        label = trace.header.scenario or "trace"
        result = ExperimentResult("TRACE", f"replay of {label}")
        crossed_families = 0
        relaxed_segments: List[int] = []
        for seg in sorted(systems):
            row = delivery_metrics_row(systems[seg], seg)
            family_changed = (
                override is not None
                and backend_family(override)
                != backend_family(recorded_backends[seg]))
            crossed_families += bool(family_changed)
            metrics_relaxed = (
                not family_changed
                and not backend_metrics_identical(
                    override or recorded_backends[seg]))
            if metrics_relaxed:
                relaxed_segments.append(seg)
            if verify and not family_changed and not metrics_relaxed:
                expect = trace.expect_for(seg)
                if expect is not None and expect.row != row:
                    diverged = sorted(
                        key for key in set(expect.row) | set(row)
                        if expect.row.get(key) != row.get(key)
                    )
                    raise TraceReplayError(
                        f"segment {seg} did not replay bit-identically; "
                        f"diverging fields: {diverged} "
                        f"(expected {expect.row!r}, got {row!r})")
            result.add_row(**row)
        result.add_note(
            f"replayed {applied} ops over {len(systems)} segment(s)"
            + (f" on backend {override}" if override else ""))
        if crossed_families:
            result.add_note(
                f"expect-row verification skipped for {crossed_families} "
                "segment(s): the backend family was overridden, so recorded "
                "delivery metrics do not apply")
        elif verify and relaxed_segments:
            # Digest fallback: re-run each relaxed segment's ops on the
            # family's reference backend and require identical delivered
            # sets.  The reference is the recorded backend itself when its
            # rows are reproducible, else the family default.
            skipped = 0
            for seg in relaxed_segments:
                recorded = recorded_backends[seg]
                reference = (recorded if backend_metrics_identical(recorded)
                             else f"drtree:{DEFAULT_REFERENCE_ENGINE}")
                system_record = next(
                    record for record in trace.body
                    if isinstance(record, SystemRecord)
                    and record.seg == seg)
                references[seg] = _build_system(
                    system_record,
                    reference if reference != recorded else None)
                for op in ops_by_seg.get(seg, []):
                    _apply_op(references[seg], op)
                got = delivered_digest(systems[seg])
                want = delivered_digest(references[seg])
                if got != want:
                    raise TraceReplayError(
                        f"segment {seg}: delivered-event digest {got} on "
                        f"{override or recorded} diverges from {want} on "
                        f"reference backend {reference}")
                skipped += trace.expect_for(seg) is not None
            result.add_note(
                f"digest-verified ({skipped} expect row"
                f"{'' if skipped == 1 else 's'} skipped): delivered sets "
                "match the reference backend byte for byte")
        elif verify and any(trace.expect_for(seg) for seg in systems):
            result.add_note("recorded delivery metrics reproduced exactly")
        return result
    finally:
        for broker in list(systems.values()) + list(references.values()):
            close = getattr(broker, "close", None)
            if close is not None:
                close()


def replay_trace(path: Union[str, Path],
                 engine: Optional[str] = None,
                 verify: bool = True,
                 backend: Optional[str] = None) -> "ExperimentResult":
    """Read the trace at ``path`` and :func:`execute_trace` it."""
    return execute_trace(read_trace(path), engine=engine, verify=verify,
                         backend=backend)

"""The versioned trace record model.

A *trace* is the complete, replayable record of one scenario run: every
workload decision that reached the publish/subscribe facade — joins
(``subscribe``/``subscribe_all``), controlled leaves (``unsubscribe``),
crashes (``crash``), subscription moves (``move``), publications
(``publish``) and explicit stabilizations (``stabilize``) — together with
the seeds and configuration needed to rebuild each simulated system and the
simulated timestamp at which each operation was issued.

On disk a trace is JSON lines (one canonical JSON object per line, sorted
keys, no whitespace); see :mod:`repro.traces.io` for the serialization and
``docs/traces.md`` for the format reference.  In memory it is the
:class:`Trace` object: a :class:`TraceHeader`, an ordered body of
:class:`SystemRecord` / :class:`OpRecord` entries, and trailing
:class:`ExpectRecord` entries holding the delivery metrics observed at
recording time (the replay engine re-derives and cross-checks them).

All structural validation funnels through :func:`Trace.from_dicts`, which
raises :class:`~repro.traces.errors.TraceFormatError` — never ``KeyError`` —
on malformed input.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple, Union

from repro.spatial.filters import (AttributeSpace, Event, Predicate,
                                   Subscription, subscription_from_rect)
from repro.spatial.rectangle import Rect
from repro.traces.errors import TraceFormatError

#: The trace format identifier written into every header.
TRACE_FORMAT = "repro-trace"
#: The base schema version (headers default to it; writers emit the lowest
#: version that can carry the trace, so version-1 files stay byte-stable).
TRACE_VERSION = 1
#: Version 2 adds typed engine options to ``system`` records.
TRACE_VERSION_ENGINE_OPTIONS = 2
#: Every version this reader understands.
TRACE_VERSIONS = (1, 2)

#: The workload operations a trace may contain.
TRACE_OPS = (
    "subscribe",
    "subscribe_all",
    "unsubscribe",
    "crash",
    "move",
    "publish",
    "stabilize",
)


# --------------------------------------------------------------------------- #
# Value (de)serialization helpers
# --------------------------------------------------------------------------- #


def _bound_to_json(value: float) -> Union[float, str]:
    """JSON-safe rectangle bound: ``±inf`` becomes the string ``"±inf"``."""
    if value == math.inf:
        return "inf"
    if value == -math.inf:
        return "-inf"
    return value


def _bound_from_json(value: Any) -> float:
    if value == "inf":
        return math.inf
    if value == "-inf":
        return -math.inf
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise TraceFormatError(f"rectangle bound must be a number, got {value!r}")
    return float(value)


def subscription_to_json(subscription: Subscription) -> Dict[str, Any]:
    """Serialize a subscription (rectangle or predicate form)."""
    if subscription.predicates:
        return {
            "name": subscription.name,
            "predicates": [
                [p.attribute, p.operator, p.value]
                for p in subscription.predicates
            ],
        }
    return {
        "name": subscription.name,
        "rect": {
            "lower": [_bound_to_json(v) for v in subscription.rect.lower],
            "upper": [_bound_to_json(v) for v in subscription.rect.upper],
        },
    }


def subscription_from_json(data: Any, space: AttributeSpace) -> Subscription:
    """Rebuild a subscription serialized by :func:`subscription_to_json`."""
    if not isinstance(data, Mapping):
        raise TraceFormatError(f"subscription must be an object, got {data!r}")
    name = data.get("name")
    if not isinstance(name, str) or not name:
        raise TraceFormatError(f"subscription needs a non-empty name, got {data!r}")
    if "predicates" in data:
        triples = data["predicates"]
        if not isinstance(triples, Sequence) or isinstance(triples, str):
            raise TraceFormatError(
                f"subscription {name!r}: predicates must be a list")
        predicates = []
        for triple in triples:
            if (not isinstance(triple, Sequence) or isinstance(triple, str)
                    or len(triple) != 3):
                raise TraceFormatError(
                    f"subscription {name!r}: each predicate must be "
                    f"[attribute, operator, value], got {triple!r}")
            attribute, operator, value = triple
            try:
                predicates.append(Predicate(str(attribute), str(operator),
                                            float(value)))
            except (TypeError, ValueError) as exc:
                raise TraceFormatError(
                    f"subscription {name!r}: bad predicate {triple!r}: {exc}"
                ) from exc
        return Subscription(name=name, space=space,
                            predicates=tuple(predicates))
    rect = data.get("rect")
    if not isinstance(rect, Mapping):
        raise TraceFormatError(
            f"subscription {name!r} needs a 'rect' or 'predicates' field")
    lower = rect.get("lower")
    upper = rect.get("upper")
    if (not isinstance(lower, Sequence) or not isinstance(upper, Sequence)
            or len(lower) != len(upper)):
        raise TraceFormatError(
            f"subscription {name!r}: rect needs equal-length lower/upper")
    return subscription_from_rect(
        name, space,
        Rect(tuple(_bound_from_json(v) for v in lower),
             tuple(_bound_from_json(v) for v in upper)),
    )


def event_to_json(event: Event) -> Dict[str, Any]:
    """Serialize a published event."""
    return {"id": event.event_id, "attributes": dict(event.attributes)}


def event_from_json(data: Any) -> Event:
    """Rebuild an event serialized by :func:`event_to_json`."""
    if not isinstance(data, Mapping):
        raise TraceFormatError(f"event must be an object, got {data!r}")
    event_id = data.get("id")
    attributes = data.get("attributes")
    if not isinstance(event_id, str) or not event_id:
        raise TraceFormatError(f"event needs a non-empty id, got {data!r}")
    if not isinstance(attributes, Mapping):
        raise TraceFormatError(f"event {event_id!r} needs an attributes object")
    values = {}
    for name, value in attributes.items():
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            raise TraceFormatError(
                f"event {event_id!r}: attribute {name!r} must be numeric, "
                f"got {value!r}")
        values[str(name)] = float(value)
    return Event(values, event_id=event_id)


# --------------------------------------------------------------------------- #
# Records
# --------------------------------------------------------------------------- #


@dataclass(frozen=True)
class TraceHeader:
    """First record of every trace: format identity and provenance.

    ``backend`` names the broker backend the run used (the first recorded
    system's ``drtree:<engine>`` or baseline name); traces written before
    the unified Broker protocol carry no backend and parse as ``None``.
    """

    scenario: Optional[str] = None
    params: Optional[Dict[str, Any]] = None
    backend: Optional[str] = None
    version: int = TRACE_VERSION

    def to_json(self) -> Dict[str, Any]:
        return {
            "record": "header",
            "format": TRACE_FORMAT,
            "version": self.version,
            "scenario": self.scenario,
            "params": self.params,
            "backend": self.backend,
        }


@dataclass(frozen=True)
class SystemRecord:
    """Creation of one pub/sub system (a trace *segment*).

    ``backend`` is the broker backend name (``drtree:<engine>`` or a
    baseline); ``batch`` is the legacy boolean older readers understand and
    is kept in the serialized form, mirroring whether the backend is the
    batched DR-tree engine.  Version-1 traces without a ``backend`` field
    parse to the backend the boolean implies.  ``engine_options`` (the typed
    construction knobs of :class:`~repro.api.spec.SystemSpec`) is the
    version-2 addition: it is serialized only when non-empty, so traces
    without options keep their version-1 bytes.
    """

    seg: int
    space: Tuple[str, ...]
    seed: int
    batch: bool
    stabilize_rounds: int
    config: Dict[str, Any] = field(default_factory=dict)
    t: float = 0.0
    backend: Optional[str] = None
    engine_options: Optional[Dict[str, Any]] = None

    def __post_init__(self) -> None:
        if self.backend is None:
            object.__setattr__(
                self, "backend",
                "drtree:batched" if self.batch else "drtree:classic")

    def to_json(self) -> Dict[str, Any]:
        record = {
            "record": "system",
            "seg": self.seg,
            "t": self.t,
            "space": list(self.space),
            "seed": self.seed,
            "batch": self.batch,
            "backend": self.backend,
            "stabilize_rounds": self.stabilize_rounds,
            "config": dict(self.config),
        }
        if self.engine_options:
            record["engine_options"] = dict(self.engine_options)
        return record


@dataclass(frozen=True)
class OpRecord:
    """One workload decision applied to the system of segment ``seg``.

    ``t`` is the simulated time at which the operation was issued; ``data``
    holds the op-specific payload (see :data:`TRACE_OPS` and
    ``docs/traces.md``).
    """

    seg: int
    op: str
    data: Dict[str, Any] = field(default_factory=dict)
    t: float = 0.0

    def __post_init__(self) -> None:
        if self.op not in TRACE_OPS:
            raise TraceFormatError(
                f"unknown trace op {self.op!r}; expected one of {TRACE_OPS}")

    def to_json(self) -> Dict[str, Any]:
        return {"record": "op", "seg": self.seg, "t": self.t, "op": self.op,
                **self.data}


@dataclass(frozen=True)
class ExpectRecord:
    """The delivery-metrics row observed for segment ``seg`` at record time."""

    seg: int
    row: Dict[str, Any] = field(default_factory=dict)

    def to_json(self) -> Dict[str, Any]:
        return {"record": "expect", "seg": self.seg, "row": dict(self.row)}


@dataclass
class Trace:
    """An in-memory trace: header, ordered body, trailing expectations."""

    header: TraceHeader = field(default_factory=TraceHeader)
    body: List[Union[SystemRecord, OpRecord]] = field(default_factory=list)
    expects: List[ExpectRecord] = field(default_factory=list)

    # -- views ---------------------------------------------------------- #

    def systems(self) -> List[SystemRecord]:
        """The segment-creation records, in capture order."""
        return [record for record in self.body
                if isinstance(record, SystemRecord)]

    def ops(self) -> List[OpRecord]:
        """All op records, in capture order."""
        return [record for record in self.body if isinstance(record, OpRecord)]

    def expect_for(self, seg: int) -> Optional[ExpectRecord]:
        """The expectation recorded for segment ``seg``, if any."""
        for expect in self.expects:
            if expect.seg == seg:
                return expect
        return None

    def __len__(self) -> int:
        return len(self.body)

    # -- (de)serialization ---------------------------------------------- #

    def to_dicts(self) -> List[Dict[str, Any]]:
        """The trace as a list of JSON-ready record dictionaries."""
        records = [self.header.to_json()]
        records.extend(record.to_json() for record in self.body)
        records.extend(expect.to_json() for expect in self.expects)
        return records

    @classmethod
    def from_dicts(cls, records: Sequence[Mapping[str, Any]],
                   lines: Optional[Sequence[int]] = None) -> "Trace":
        """Validate and rebuild a trace from record dictionaries.

        The inverse of :meth:`to_dicts`.  Raises
        :class:`~repro.traces.errors.TraceFormatError` on any structural
        problem.  ``lines`` optionally maps each record to its physical line
        number in the source file (the reader passes it so diagnostics stay
        correct around blank lines); without it, one record per line with
        the header on line 1 is assumed.
        """
        if not records:
            raise TraceFormatError("empty trace: expected a header record")
        if lines is None:
            lines = range(1, len(records) + 1)
        header = _parse_header(records[0], line=lines[0])
        trace = cls(header=header)
        segments: set = set()
        for raw, index in zip(records[1:], lines[1:]):
            if not isinstance(raw, Mapping):
                raise TraceFormatError(
                    f"expected a record object, got {raw!r}", line=index)
            kind = raw.get("record")
            if kind == "system":
                record = _parse_system(raw, index)
                if record.seg in segments:
                    raise TraceFormatError(
                        f"duplicate system record for segment {record.seg}",
                        line=index)
                segments.add(record.seg)
                trace.body.append(record)
            elif kind == "op":
                record = _parse_op(raw, index)
                if record.seg not in segments:
                    raise TraceFormatError(
                        f"op {record.op!r} references segment {record.seg} "
                        "before its system record", line=index)
                trace.body.append(record)
            elif kind == "expect":
                expect = _parse_expect(raw, index)
                if expect.seg not in segments:
                    raise TraceFormatError(
                        f"expect record references unknown segment "
                        f"{expect.seg}", line=index)
                trace.expects.append(expect)
            elif kind == "header":
                raise TraceFormatError("duplicate header record", line=index)
            else:
                raise TraceFormatError(
                    f"unknown record type {kind!r}", line=index)
        return trace


# --------------------------------------------------------------------------- #
# Record parsers (all failures -> TraceFormatError)
# --------------------------------------------------------------------------- #


def _require(raw: Mapping[str, Any], key: str, types: tuple, line: int,
             context: str) -> Any:
    value = raw.get(key, _MISSING)
    if value is _MISSING:
        raise TraceFormatError(f"{context} record is missing {key!r}",
                               line=line)
    if bool in types:
        if not isinstance(value, bool):
            raise TraceFormatError(
                f"{context} record field {key!r} must be a boolean, "
                f"got {value!r}", line=line)
        return value
    if isinstance(value, bool) or not isinstance(value, types):
        expected = "/".join(t.__name__ for t in types)
        raise TraceFormatError(
            f"{context} record field {key!r} must be {expected}, "
            f"got {value!r}", line=line)
    return value


_MISSING = object()


def _parse_header(raw: Mapping[str, Any], line: int = 1) -> TraceHeader:
    if not isinstance(raw, Mapping) or raw.get("record") != "header":
        raise TraceFormatError(
            f"first record must be the trace header, got {raw!r}", line=line)
    if raw.get("format") != TRACE_FORMAT:
        raise TraceFormatError(
            f"not a {TRACE_FORMAT} file (format={raw.get('format')!r})",
            line=line)
    version = raw.get("version")
    if version not in TRACE_VERSIONS:
        raise TraceFormatError(
            f"unsupported trace version {version!r}; this reader understands "
            f"versions {TRACE_VERSIONS}", line=line)
    scenario = raw.get("scenario")
    if scenario is not None and not isinstance(scenario, str):
        raise TraceFormatError(
            f"header scenario must be a string or null, got {scenario!r}",
            line=line)
    params = raw.get("params")
    if params is not None and not isinstance(params, Mapping):
        raise TraceFormatError(
            f"header params must be an object or null, got {params!r}",
            line=line)
    backend = raw.get("backend")
    if backend is not None and not isinstance(backend, str):
        raise TraceFormatError(
            f"header backend must be a string or null, got {backend!r}",
            line=line)
    return TraceHeader(scenario=scenario,
                       params=dict(params) if params is not None else None,
                       backend=backend,
                       version=version)


def _parse_system(raw: Mapping[str, Any], line: int) -> SystemRecord:
    space = _require(raw, "space", (list, tuple), line, "system")
    if not space or not all(isinstance(name, str) for name in space):
        raise TraceFormatError(
            f"system record space must be a non-empty list of attribute "
            f"names, got {space!r}", line=line)
    config = raw.get("config", {})
    if not isinstance(config, Mapping):
        raise TraceFormatError(
            f"system record config must be an object, got {config!r}",
            line=line)
    backend = raw.get("backend")
    if backend is not None and not isinstance(backend, str):
        raise TraceFormatError(
            f"system record backend must be a string, got {backend!r}",
            line=line)
    engine_options = raw.get("engine_options")
    if engine_options is not None and not isinstance(engine_options, Mapping):
        raise TraceFormatError(
            f"system record engine_options must be an object, "
            f"got {engine_options!r}", line=line)
    return SystemRecord(
        seg=_require(raw, "seg", (int,), line, "system"),
        t=float(_require(raw, "t", (int, float), line, "system")),
        space=tuple(space),
        seed=_require(raw, "seed", (int,), line, "system"),
        batch=_require(raw, "batch", (bool,), line, "system"),
        backend=backend,
        stabilize_rounds=_require(raw, "stabilize_rounds", (int,), line,
                                  "system"),
        config=dict(config),
        engine_options=(dict(engine_options)
                        if engine_options is not None else None),
    )


def _parse_op(raw: Mapping[str, Any], line: int) -> OpRecord:
    op = _require(raw, "op", (str,), line, "op")
    if op not in TRACE_OPS:
        raise TraceFormatError(
            f"unknown trace op {op!r}; expected one of {TRACE_OPS}", line=line)
    data = {key: value for key, value in raw.items()
            if key not in ("record", "seg", "t", "op")}
    missing = _OP_REQUIRED_FIELDS[op] - set(data)
    if missing:
        raise TraceFormatError(
            f"op {op!r} is missing fields {sorted(missing)}", line=line)
    return OpRecord(
        seg=_require(raw, "seg", (int,), line, "op"),
        t=float(_require(raw, "t", (int, float), line, "op")),
        op=op,
        data=data,
    )


#: Payload fields each op must carry (checked at parse time so replay never
#: trips over a KeyError mid-simulation).
_OP_REQUIRED_FIELDS = {
    "subscribe": {"subscription", "stabilize"},
    "subscribe_all": {"subscriptions", "stabilize", "bulk"},
    "unsubscribe": {"id"},
    "crash": {"id", "stabilize"},
    "move": {"id", "subscription", "stabilize"},
    "publish": {"event", "publisher"},
    "stabilize": {"max_rounds"},
}


def _parse_expect(raw: Mapping[str, Any], line: int) -> ExpectRecord:
    row = _require(raw, "row", (dict,), line, "expect")
    return ExpectRecord(seg=_require(raw, "seg", (int,), line, "expect"),
                        row=dict(row))

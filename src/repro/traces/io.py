"""Reading and writing trace files (JSON lines, canonical form).

One JSON object per line, keys sorted, compact separators — so a trace that
round-trips through ``read`` and ``write`` is byte-identical, which is what
the hypothesis round-trip tests and the golden-trace fixtures rely on.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, List, Union

from repro.traces.errors import TraceFormatError
from repro.traces.format import Trace


def dump_record(record: Dict[str, Any]) -> str:
    """One trace record as its canonical JSON line (no trailing newline)."""
    return json.dumps(record, sort_keys=True, separators=(",", ":"),
                      allow_nan=False)


def dumps_trace(trace: Trace) -> str:
    """The whole trace as canonical JSON-lines text."""
    return "".join(dump_record(record) + "\n" for record in trace.to_dicts())


def loads_trace(text: str) -> Trace:
    """Parse JSON-lines text into a validated :class:`Trace`."""
    records: List[Dict[str, Any]] = []
    numbers: List[int] = []
    for number, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError as exc:
            raise TraceFormatError(f"invalid JSON: {exc.msg}",
                                   line=number) from exc
        if not isinstance(record, dict):
            raise TraceFormatError(
                f"each line must be a JSON object, got {type(record).__name__}",
                line=number)
        records.append(record)
        numbers.append(number)
    return Trace.from_dicts(records, lines=numbers)


def write_trace(path: Union[str, Path], trace: Trace) -> Path:
    """Write ``trace`` to ``path`` in canonical JSON-lines form."""
    path = Path(path)
    path.write_text(dumps_trace(trace), encoding="utf-8")
    return path


def read_trace(path: Union[str, Path]) -> Trace:
    """Read and validate the trace stored at ``path``."""
    path = Path(path)
    try:
        text = path.read_text(encoding="utf-8")
    except OSError as exc:
        raise TraceFormatError(f"cannot read trace file {path}: {exc}") from exc
    return loads_trace(text)

"""Capturing live runs as traces.

The recorder observes the publish/subscribe facade: while a
:func:`recording` context is active, every broker constructed in the
process — the DR-tree :class:`~repro.pubsub.api.PubSubSystem` and the
analytic :class:`~repro.baselines.broker.BaselineBroker` alike — attaches
itself to the active :class:`TraceRecorder` and reports each facade
operation (subscribe, unsubscribe, crash, move, publish, stabilize).  Which
backend a system ran on comes from its
:class:`~repro.api.spec.SystemSpec` and is written into the ``system``
record (and, for the first system, the trace header).  Recording is purely
observational — it draws no randomness and mutates nothing — so a recorded
run and an unrecorded run of the same scenario are bit-identical.

When the context exits, the recorder snapshots each attached system's
delivery-metrics row into ``expect`` records and writes the whole trace to
disk.  The replay engine (:mod:`repro.traces.replay`) re-derives those rows
and refuses to pass if they differ, which is what makes "replays
bit-identically" an enforced property rather than a hope.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import asdict
from pathlib import Path
from typing import TYPE_CHECKING, Any, Dict, List, Optional, Union

from repro.traces.format import (ExpectRecord, OpRecord, SystemRecord, Trace,
                                 TraceHeader, event_to_json,
                                 subscription_to_json)
from repro.traces.io import write_trace

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.api.broker import Broker
    from repro.spatial.filters import Event, Subscription

#: The process-wide active recorder (None outside a recording() context).
_ACTIVE: Optional["TraceRecorder"] = None


def _legacy_batch_flag(backend: str) -> bool:
    """The trace format's legacy boolean for ``backend``.

    Sourced from the engine registry (the single owner of the mapping) for
    DR-tree backends; every baseline backend records ``false``.
    """
    if backend.startswith("drtree:"):
        from repro.pubsub.engines import get_engine

        return bool(get_engine(backend.split(":", 1)[1]).batch)
    return False


def active_recorder() -> Optional["TraceRecorder"]:
    """The recorder of the enclosing :func:`recording` context, if any."""
    return _ACTIVE


class SystemTape:
    """The per-system recording handle handed to a broker.

    Each facade operation becomes one :class:`OpRecord` tagged with this
    system's segment index and the logical time at which it was issued.
    """

    def __init__(self, recorder: "TraceRecorder", system: "Broker",
                 seg: int) -> None:
        self._recorder = recorder
        self._system = system
        self.seg = seg

    def now(self) -> float:
        """The system's current logical time (the op *issue* time).

        The facade samples this before executing an operation and tapes the
        op — with this timestamp — only after the operation succeeds, so
        failed calls never leave phantom records.
        """
        return float(self._system.clock())

    def _record(self, t: float, op: str, **data: Any) -> None:
        self._recorder._add(OpRecord(seg=self.seg, op=op, data=data, t=t))

    # -- one method per facade operation -------------------------------- #

    def subscribe(self, t: float, subscription: "Subscription",
                  stabilize: bool) -> None:
        self._record(t, "subscribe",
                     subscription=subscription_to_json(subscription),
                     stabilize=bool(stabilize))

    def subscribe_all(self, t: float, subscriptions: List["Subscription"],
                      stabilize: bool, bulk: Optional[bool]) -> None:
        self._record(t, "subscribe_all",
                     subscriptions=[subscription_to_json(sub)
                                    for sub in subscriptions],
                     stabilize=bool(stabilize),
                     bulk=bulk if bulk is None else bool(bulk))

    def unsubscribe(self, t: float, subscriber_id: str) -> None:
        self._record(t, "unsubscribe", id=subscriber_id)

    def crash(self, t: float, subscriber_id: str, stabilize: bool) -> None:
        self._record(t, "crash", id=subscriber_id, stabilize=bool(stabilize))

    def move(self, t: float, subscriber_id: str,
             subscription: "Subscription", stabilize: bool) -> None:
        self._record(t, "move", id=subscriber_id,
                     subscription=subscription_to_json(subscription),
                     stabilize=bool(stabilize))

    def publish(self, t: float, event: "Event", publisher_id: str,
                auto_id: bool = False) -> None:
        # auto_id (whether the facade assigned the event id) is journal-only
        # bookkeeping; the trace format does not carry it.
        self._record(t, "publish", event=event_to_json(event),
                     publisher=publisher_id)

    def stabilize(self, t: float, max_rounds: Optional[int]) -> None:
        self._record(t, "stabilize", max_rounds=max_rounds)


class NullTape:
    """The no-op tape a broker holds outside recording contexts.

    Mirrors :class:`SystemTape`'s surface so the facade can sample issue
    times and tape operations unconditionally — the tape-after-success
    invariant lives in one code path instead of per-method ``if`` guards.
    """

    def now(self) -> float:
        return 0.0

    def subscribe(self, t, subscription, stabilize) -> None:
        pass

    def subscribe_all(self, t, subscriptions, stabilize, bulk) -> None:
        pass

    def unsubscribe(self, t, subscriber_id) -> None:
        pass

    def crash(self, t, subscriber_id, stabilize) -> None:
        pass

    def move(self, t, subscriber_id, subscription, stabilize) -> None:
        pass

    def publish(self, t, event, publisher_id, auto_id=False) -> None:
        pass

    def stabilize(self, t, max_rounds) -> None:
        pass


#: Shared stateless instance handed to every unrecorded system.
NULL_TAPE = NullTape()


class CompositeTape:
    """Fan one stream of facade operations out to several tapes.

    Used when a broker is being trace-recorded and journaled at the same
    time; issue times come from the first tape so both observers see the
    same timestamps.
    """

    def __init__(self, *tapes: Any) -> None:
        if not tapes:
            raise ValueError("CompositeTape needs at least one tape")
        self._tapes = tapes

    def now(self) -> float:
        return self._tapes[0].now()

    def subscribe(self, t, subscription, stabilize) -> None:
        for tape in self._tapes:
            tape.subscribe(t, subscription, stabilize)

    def subscribe_all(self, t, subscriptions, stabilize, bulk) -> None:
        for tape in self._tapes:
            tape.subscribe_all(t, subscriptions, stabilize, bulk)

    def unsubscribe(self, t, subscriber_id) -> None:
        for tape in self._tapes:
            tape.unsubscribe(t, subscriber_id)

    def crash(self, t, subscriber_id, stabilize) -> None:
        for tape in self._tapes:
            tape.crash(t, subscriber_id, stabilize)

    def move(self, t, subscriber_id, subscription, stabilize) -> None:
        for tape in self._tapes:
            tape.move(t, subscriber_id, subscription, stabilize)

    def publish(self, t, event, publisher_id, auto_id=False) -> None:
        for tape in self._tapes:
            tape.publish(t, event, publisher_id, auto_id=auto_id)

    def stabilize(self, t, max_rounds) -> None:
        for tape in self._tapes:
            tape.stabilize(t, max_rounds)


class TraceRecorder:
    """Accumulates the records of one recording session."""

    def __init__(self, scenario: Optional[str] = None,
                 params: Optional[Dict[str, Any]] = None) -> None:
        self.scenario = scenario
        self.params = params
        self._body: List[Any] = []
        self._systems: List["Broker"] = []
        self._closed = False

    def close(self) -> None:
        """Detach every recorded system's tape and refuse new attachments.

        Called by :func:`recording` on context exit so that facade ops issued
        *after* the context cannot silently append to a recorder whose trace
        is already on disk.
        """
        self._closed = True
        for system in self._systems:
            system.detach_tape()

    def attach(self, system: "Broker") -> SystemTape:
        """Register a newly constructed broker; returns its tape.

        Everything written into the ``system`` record comes from the
        broker's :class:`~repro.api.spec.SystemSpec`, so any backend that
        can describe itself as a spec is recordable.
        """
        if self._closed:
            raise RuntimeError("this recorder's recording() context has "
                               "already exited")
        seg = len(self._systems)
        self._systems.append(system)
        spec = system.spec
        self._add(SystemRecord(
            seg=seg,
            t=float(system.clock()),
            space=tuple(spec.space.names),
            seed=int(spec.seed),
            batch=_legacy_batch_flag(spec.backend),
            backend=spec.backend,
            stabilize_rounds=int(spec.stabilize_rounds),
            config=asdict(spec.config) if spec.config is not None else {},
            engine_options=(dict(spec.engine_options)
                            if spec.engine_options else None),
        ))
        return SystemTape(self, system, seg)

    def set_provenance(self, scenario: Optional[str],
                       params: Optional[Dict[str, Any]]) -> None:
        """Record which scenario (with which bound parameters) produced this."""
        self.scenario = scenario
        self.params = params

    def _add(self, record: Any) -> None:
        self._body.append(record)

    @property
    def segments(self) -> int:
        """Number of systems recorded so far."""
        return len(self._systems)

    def build(self) -> Trace:
        """Finalize: header + body + one ``expect`` row per segment.

        The expectation rows are computed *now*, from each system's current
        accounting state, so the recorder must be asked to build only after
        the recorded run has finished mutating its systems (the
        :func:`recording` context does this on exit).
        """
        from repro.traces.format import (TRACE_VERSION,
                                         TRACE_VERSION_ENGINE_OPTIONS)
        from repro.traces.replay import delivery_metrics_row

        backend = self._systems[0].spec.backend if self._systems else None
        version = (TRACE_VERSION_ENGINE_OPTIONS
                   if any(isinstance(record, SystemRecord)
                          and record.engine_options
                          for record in self._body)
                   else TRACE_VERSION)
        trace = Trace(header=TraceHeader(scenario=self.scenario,
                                         params=self.params,
                                         backend=backend,
                                         version=version))
        trace.body = list(self._body)
        trace.expects = [
            ExpectRecord(seg=seg, row=delivery_metrics_row(system, seg))
            for seg, system in enumerate(self._systems)
        ]
        return trace


@contextmanager
def recording(path: Optional[Union[str, Path]] = None,
              scenario: Optional[str] = None,
              params: Optional[Dict[str, Any]] = None):
    """Record every broker built inside the ``with`` block.

    Yields the :class:`TraceRecorder`; on clean exit the finalized trace is
    written to ``path`` (when given).  Nesting recording contexts is not
    supported — the paper-trail of one run belongs in one file.
    """
    global _ACTIVE
    if _ACTIVE is not None:
        raise RuntimeError("a recording context is already active")
    recorder = TraceRecorder(scenario=scenario, params=params)
    _ACTIVE = recorder
    try:
        yield recorder
    finally:
        _ACTIVE = None
        recorder.close()
    if path is not None:
        write_trace(path, recorder.build())

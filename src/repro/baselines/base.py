"""Common interface of the baseline overlays.

Baselines are evaluated analytically on their routing graphs (they are not
run through the message-passing simulator): ``disseminate`` returns which
subscribers receive an event and how many overlay messages the dissemination
costs.  This is sufficient for the accuracy/cost comparison of experiment
E10 and keeps the baselines small and obviously correct.  For the full
:class:`~repro.api.broker.Broker` protocol — delivery accounting included —
wrap an overlay in a :class:`~repro.baselines.broker.BaselineBroker` (or
build one through :func:`repro.api.create_broker`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Set

from repro.spatial.filters import (AttributeSpace, Event, Subscription,
                                   ensure_same_space)


@dataclass
class DisseminationResult:
    """Outcome of disseminating one event through a baseline overlay."""

    event_id: str
    received: Set[str] = field(default_factory=set)
    messages: int = 0
    max_hops: int = 0
    #: Per-receiver hop count (filled by :meth:`record`); feeds the shared
    #: delivery accounting when the overlay runs behind a ``BaselineBroker``.
    hops: Dict[str, int] = field(default_factory=dict)

    def record(self, subscriber_id: str, hops: int) -> None:
        """Note one reception at ``hops`` overlay hops from the source."""
        self.received.add(subscriber_id)
        previous = self.hops.get(subscriber_id)
        if previous is None or hops > previous:
            self.hops[subscriber_id] = hops
        self.max_hops = max(self.max_hops, hops)

    def false_positives(self, subscriptions: Mapping[str, Subscription],
                        event: Event) -> Set[str]:
        """Receivers whose filter does not match the event."""
        return {
            sid for sid in self.received
            if sid in subscriptions and not subscriptions[sid].matches(event)
        }

    def false_negatives(self, subscriptions: Mapping[str, Subscription],
                        event: Event) -> Set[str]:
        """Matching subscribers that did not receive the event."""
        return {
            sid for sid, sub in subscriptions.items()
            if sub.matches(event) and sid not in self.received
        }


class BaselineOverlay:
    """Interface shared by every baseline."""

    #: Human-readable name used in experiment tables.
    name = "baseline"

    def __init__(self, space: Optional[AttributeSpace] = None) -> None:
        #: The attribute space subscriptions must live in; adopted from the
        #: first subscriber when not pinned at construction time.
        self.space = space
        self.subscriptions: Dict[str, Subscription] = {}

    def check_space(self, subscription: Subscription) -> None:
        """Reject filters from a different attribute space.

        Overlays not pinned to a space yet accept anything; they adopt the
        first subscriber's space in :meth:`add_subscriber`.
        """
        if self.space is not None:
            ensure_same_space(self.space, subscription)

    def add_subscriber(self, subscription: Subscription) -> str:
        """Register a subscriber; returns its id."""
        self.check_space(subscription)
        if subscription.name in self.subscriptions:
            raise ValueError(f"duplicate subscriber {subscription.name!r}")
        if self.space is None:
            self.space = subscription.space
        self.subscriptions[subscription.name] = subscription
        self._on_add(subscription)
        return subscription.name

    def add_all(self, subscriptions: Sequence[Subscription]) -> List[str]:
        """Register many subscribers."""
        return [self.add_subscriber(sub) for sub in subscriptions]

    def remove_subscriber(self, subscriber_id: str) -> None:
        """Unregister a subscriber."""
        removed = self.subscriptions.pop(subscriber_id, None)
        self._on_remove(subscriber_id, removed)

    def disseminate(self, event: Event) -> DisseminationResult:
        """Deliver ``event``; subclasses implement the routing."""
        raise NotImplementedError

    # Hooks ------------------------------------------------------------- #

    def _on_add(self, subscription: Subscription) -> None:
        """Subclass hook invoked after a subscriber registers."""

    def _on_remove(self, subscriber_id: str,
                   subscription: Subscription | None = None) -> None:
        """Subclass hook invoked after a subscriber unregisters."""

    def __len__(self) -> int:
        return len(self.subscriptions)

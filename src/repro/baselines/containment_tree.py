"""Direct containment-graph overlay (reference [11], Chand & Felber 2005).

Subscribers are organized in a forest that mirrors the containment partial
order: every subscriber is attached under one of its direct containers (the
one with the smallest area, i.e. the tightest container); subscribers with no
container hang off a *virtual root*.  Events enter at the virtual root and
flow down every branch whose subscription matches the event; a subscriber
forwards an event to its children only if its own filter matches.

This is the design the paper criticises in Section 3.1: it needs a virtual
root with potentially very many children and the tree can be heavily
unbalanced, but it produces **no false positives** (every receiver matches)
and no false negatives, at the cost of a large fan-out at the root.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from repro.baselines.base import BaselineOverlay, DisseminationResult
from repro.spatial.filters import Event, Subscription

#: Identifier of the virtual root node.
VIRTUAL_ROOT = "__virtual_root__"


class ContainmentTreeOverlay(BaselineOverlay):
    """A containment forest under a virtual root."""

    name = "containment_tree"

    def __init__(self, space=None) -> None:
        super().__init__(space)
        self._parent: Dict[str, str] = {}
        self._children: Dict[str, Set[str]] = {VIRTUAL_ROOT: set()}

    # ------------------------------------------------------------------ #
    # Structure maintenance
    # ------------------------------------------------------------------ #

    def _on_add(self, subscription: Subscription) -> None:
        self._children.setdefault(subscription.name, set())
        self._rebuild()

    def _on_remove(self, subscriber_id: str, subscription=None) -> None:
        self._children.pop(subscriber_id, None)
        self._parent.pop(subscriber_id, None)
        self._rebuild()

    def _rebuild(self) -> None:
        """Recompute the forest from scratch (the baseline is static)."""
        self._parent = {}
        self._children = {VIRTUAL_ROOT: set()}
        for name in self.subscriptions:
            self._children[name] = set()
        for name, subscription in self.subscriptions.items():
            parent = self._tightest_container(subscription)
            parent_id = parent if parent is not None else VIRTUAL_ROOT
            self._parent[name] = parent_id
            self._children[parent_id].add(name)

    def _tightest_container(self, subscription: Subscription) -> Optional[str]:
        best: Optional[str] = None
        best_area = float("inf")
        for name, other in self.subscriptions.items():
            if name == subscription.name:
                continue
            if other.contains(subscription) and not subscription.contains(other):
                if other.area() < best_area:
                    best_area = other.area()
                    best = name
        return best

    # ------------------------------------------------------------------ #
    # Dissemination
    # ------------------------------------------------------------------ #

    def disseminate(self, event: Event) -> DisseminationResult:
        result = DisseminationResult(event_id=event.event_id)
        frontier: List[tuple[str, int]] = [
            (child, 1) for child in sorted(self._children[VIRTUAL_ROOT])
        ]
        while frontier:
            node, hops = frontier.pop()
            subscription = self.subscriptions.get(node)
            if subscription is None:
                continue
            result.messages += 1
            if not subscription.matches(event):
                # The filter does not match: no delivery and, because children
                # are contained in their parent, no child can match either.
                continue
            result.record(node, hops)
            for child in sorted(self._children.get(node, ())):
                frontier.append((child, hops + 1))
        return result

    # ------------------------------------------------------------------ #
    # Introspection (used by tests and experiments)
    # ------------------------------------------------------------------ #

    def parent_of(self, subscriber_id: str) -> str:
        """Parent of a subscriber (the virtual root for containment roots)."""
        return self._parent[subscriber_id]

    def root_fanout(self) -> int:
        """Number of children of the virtual root (the paper's criticism)."""
        return len(self._children[VIRTUAL_ROOT])

    def depth(self) -> int:
        """Longest root-to-leaf path length."""
        def depth_of(node: str) -> int:
            children = self._children.get(node, ())
            if not children:
                return 1
            return 1 + max(depth_of(child) for child in children)

        if not self.subscriptions:
            return 0
        return max(depth_of(child) for child in self._children[VIRTUAL_ROOT])

"""Centralized broker baseline.

The pre-peer-to-peer solution: a single broker stores every subscription in a
sequential R-tree and matches each incoming event against it.  Routing is
perfectly accurate (no false positives, no false negatives) and costs exactly
one message per interested subscriber (plus one publisher-to-broker message),
but the broker is a scalability and fault-tolerance bottleneck — the very
motivation of the paper's decentralized design.
"""

from __future__ import annotations

from repro.baselines.base import BaselineOverlay, DisseminationResult
from repro.rtree import RTree
from repro.spatial.filters import Event, Subscription


class CentralizedBrokerOverlay(BaselineOverlay):
    """A single broker with an R-tree subscription index."""

    name = "centralized"

    def __init__(self, min_entries: int = 2, max_entries: int = 8,
                 split_method: str = "quadratic", space=None) -> None:
        super().__init__(space)
        self._index = RTree(min_entries=min_entries, max_entries=max_entries,
                            split_method=split_method)

    def _on_add(self, subscription: Subscription) -> None:
        self._index.insert(subscription.rect, subscription.name)

    def _on_remove(self, subscriber_id: str, subscription=None) -> None:
        if subscription is not None:
            self._index.delete(subscription.rect, subscriber_id)

    def disseminate(self, event: Event) -> DisseminationResult:
        result = DisseminationResult(event_id=event.event_id)
        if not self.subscriptions:
            return result
        space = next(iter(self.subscriptions.values())).space
        try:
            point = event.to_point(space)
        except KeyError:
            return result
        # One message from the publisher to the broker...
        result.messages = 1
        candidates = self._index.search_point(point)
        for name in candidates:
            subscription = self.subscriptions.get(name)
            if subscription is not None and subscription.matches(event):
                # ... plus one unicast per interested subscriber: two hops
                # end to end (publisher -> broker -> subscriber).
                result.record(name, 2)
                result.messages += 1
        if not result.received:
            result.max_hops = 1
        return result

    def index_height(self) -> int:
        """Height of the broker's R-tree (for the memory/latency comparison)."""
        return self._index.height()

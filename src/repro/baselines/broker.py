"""Baseline overlays behind the :class:`~repro.api.broker.Broker` protocol.

A :class:`BaselineBroker` wraps one analytic
:class:`~repro.baselines.base.BaselineOverlay` (flooding, centralized,
per-dimension, containment-tree) in the same facade the DR-tree system
exposes — and, crucially, in the same
:class:`~repro.pubsub.accounting.DeliveryAccounting`: false positives,
false negatives, message costs and hop counts are computed by exactly one
code path for every backend, so the paper's E10 accuracy/cost comparison
(and the ``backend_matrix`` scenario) is a sweep over one API rather than
two bookkeeping implementations that must be kept in agreement.

The analytic overlays have no message-passing simulator underneath, so
``stabilize`` is a no-op, churn (``fail``) collapses to a controlled
removal, and the broker's :meth:`~BaselineBroker.clock` is an operation
counter rather than simulated time — enough for trace recording and replay
(:mod:`repro.traces`) to treat both broker families identically.
"""

from __future__ import annotations

import itertools
import pickle
from typing import TYPE_CHECKING, Dict, Iterable, List, Optional

from repro.baselines.base import BaselineOverlay
from repro.journal.gate import EXECUTE, NULL_GATE
from repro.pubsub.accounting import DeliveryAccounting, EventOutcome
from repro.spatial.filters import Event, Subscription, ensure_unique_names

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.api.spec import SystemSpec


class BaselineBroker:
    """A baseline overlay speaking the full ``Broker`` protocol."""

    def __init__(self, spec: "SystemSpec", overlay: BaselineOverlay) -> None:
        if overlay.space is None:
            overlay.space = spec.space
        self.space = spec.space
        self.overlay = overlay
        self.accounting = DeliveryAccounting()
        self.stabilize_rounds = spec.stabilize_rounds
        self._spec = spec
        self._event_counter = itertools.count()
        self._ops = 0
        # Names of subscribers that ever left: like the simulator's peer
        # ids, subscription names are never reused, so both broker
        # families accept exactly the same op sequences (a trace recorded
        # here replays on a DR-tree backend and vice versa).
        self._retired: set = set()
        # The no-op tape and gate must be in place before attaching: a
        # resume-mode journal re-executes journaled ops through this facade
        # while attach() runs.
        from repro.traces.recorder import NULL_TAPE

        self._gate = NULL_GATE
        self._tape = NULL_TAPE
        self._tape = self._attach_tape()

    def _attach_tape(self):
        from repro.journal.recorder import active_journal
        from repro.traces.recorder import (NULL_TAPE, CompositeTape,
                                           active_recorder)

        tapes = []
        recorder = active_recorder()
        if recorder is not None:
            tapes.append(recorder.attach(self))
        journal = active_journal()
        if journal is not None:
            tapes.append(journal.attach(self))
        if not tapes:
            return NULL_TAPE
        return tapes[0] if len(tapes) == 1 else CompositeTape(*tapes)

    def detach_tape(self) -> None:
        """Stop taping; called when the enclosing recording context exits."""
        from repro.traces.recorder import NULL_TAPE

        self._tape = NULL_TAPE
        self._gate = NULL_GATE

    def install_gate(self, gate) -> None:
        """Install a resume gate (see :mod:`repro.journal.gate`)."""
        self._gate = gate

    def consume_event_id(self) -> str:
        """Draw the next facade-assigned event id (journal resume lockstep)."""
        return f"event-{next(self._event_counter)}"

    @property
    def backend(self) -> str:
        """This broker's backend name (e.g. ``"flooding"``)."""
        return self._spec.backend

    @property
    def spec(self) -> "SystemSpec":
        """The spec that rebuilds this broker."""
        return self._spec

    def clock(self) -> float:
        """Logical time: the number of facade operations applied so far.

        The analytic overlays have no simulated clock; a deterministic op
        counter keeps trace timestamps monotonic and replayable.
        """
        return float(self._ops)

    # ------------------------------------------------------------------ #
    # Membership
    # ------------------------------------------------------------------ #

    @property
    def _subscriptions(self) -> Dict[str, Subscription]:
        return self.overlay.subscriptions

    def _check_new_name(self, subscription: Subscription) -> None:
        if (subscription.name in self.overlay.subscriptions
                or subscription.name in self._retired):
            raise ValueError(
                f"duplicate subscription name {subscription.name!r}; "
                "subscription names are never reused"
            )

    def subscribe(self, subscription: Subscription,
                  stabilize: bool = True) -> str:
        """Register a subscriber; returns its id (the subscription name)."""
        # Gate check precedes validation: a skipped op already happened on
        # the restored state (see repro.journal.gate).
        handled = self._gate.subscribe(subscription, stabilize)
        if handled is not EXECUTE:
            return handled
        self.overlay.check_space(subscription)
        self._check_new_name(subscription)
        issued = self._tape.now()
        subscriber_id = self.overlay.add_subscriber(subscription)
        self._ops += 1
        self._tape.subscribe(issued, subscription, stabilize)
        return subscriber_id

    def subscribe_all(self, subscriptions: Iterable[Subscription],
                      stabilize: bool = True,
                      bulk: Optional[bool] = None) -> List[str]:
        """Register many subscribers (``bulk`` is accepted and ignored)."""
        subs = list(subscriptions)
        handled = self._gate.subscribe_all(subs, stabilize, bulk)
        if handled is not EXECUTE:
            return handled
        ensure_unique_names(subs)
        for sub in subs:
            self.overlay.check_space(sub)
            self._check_new_name(sub)
        issued = self._tape.now()
        ids = self.overlay.add_all(subs)
        self._ops += 1
        self._tape.subscribe_all(issued, subs, stabilize, bulk)
        return ids

    def _check_known(self, subscriber_id: str) -> None:
        if subscriber_id not in self.overlay.subscriptions:
            raise KeyError(f"unknown subscriber {subscriber_id!r}")

    def unsubscribe(self, subscriber_id: str) -> None:
        """Controlled departure of a subscriber."""
        handled = self._gate.unsubscribe(subscriber_id)
        if handled is not EXECUTE:
            return handled
        self._check_known(subscriber_id)
        issued = self._tape.now()
        self.overlay.remove_subscriber(subscriber_id)
        self._retired.add(subscriber_id)
        self._ops += 1
        self._tape.unsubscribe(issued, subscriber_id)

    def fail(self, subscriber_id: str, stabilize: bool = True) -> None:
        """Crash of a subscriber (indistinguishable from a leave here)."""
        handled = self._gate.crash(subscriber_id, stabilize)
        if handled is not EXECUTE:
            return handled
        self._check_known(subscriber_id)
        issued = self._tape.now()
        self.overlay.remove_subscriber(subscriber_id)
        self._retired.add(subscriber_id)
        self._ops += 1
        self._tape.crash(issued, subscriber_id, stabilize)

    def move_subscription(self, subscriber_id: str,
                          subscription: Subscription,
                          stabilize: bool = True) -> str:
        """Re-subscribe under a fresh name, as the DR-tree facade does."""
        handled = self._gate.move(subscriber_id, subscription, stabilize)
        if handled is not EXECUTE:
            return handled
        self.overlay.check_space(subscription)
        self._check_new_name(subscription)
        self._check_known(subscriber_id)
        issued = self._tape.now()
        self.overlay.remove_subscriber(subscriber_id)
        self._retired.add(subscriber_id)
        new_id = self.overlay.add_subscriber(subscription)
        self._ops += 1
        self._tape.move(issued, subscriber_id, subscription, stabilize)
        return new_id

    def subscribers(self) -> List[str]:
        """Ids of the live subscribers."""
        return sorted(self.overlay.subscriptions)

    def subscription_of(self, subscriber_id: str) -> Subscription:
        """The filter registered by ``subscriber_id``."""
        return self.overlay.subscriptions[subscriber_id]

    # ------------------------------------------------------------------ #
    # Publishing and reporting
    # ------------------------------------------------------------------ #

    def publish(self, event: Event,
                publisher_id: Optional[str] = None) -> EventOutcome:
        """Publish ``event`` and return its audited delivery outcome.

        Unlike the DR-tree, the analytic overlays disseminate from a fixed
        origin, so ``publisher_id`` defaults to ``None`` (no receiver is
        excused from false-positive accounting as "the producer").
        """
        handled = self._gate.publish(event)
        if handled is not EXECUTE:
            return handled
        if not self.overlay.subscriptions:
            raise RuntimeError("cannot publish into an empty system")
        auto = not event.event_id
        if auto:
            event = Event(dict(event.attributes),
                          event_id=self.consume_event_id())
        issued = self._tape.now()
        outcome = self.accounting.start_event(event, publisher_id,
                                              self.overlay.subscriptions)
        result = self.overlay.disseminate(event)
        for subscriber_id in sorted(result.received):
            subscription = self.overlay.subscriptions.get(subscriber_id)
            if subscription is None:
                continue
            self.accounting.record_delivery(
                subscriber_id, event,
                matched=subscription.matches(event),
                hops=result.hops.get(subscriber_id, result.max_hops))
        self.accounting.record_messages(event.event_id, result.messages)
        self._ops += 1
        self._tape.publish(issued, event, publisher_id, auto_id=auto)
        return outcome

    def publish_many(self, events: Iterable[Event],
                     publisher_id: Optional[str] = None
                     ) -> List[EventOutcome]:
        """Publish a sequence of events."""
        return [self.publish(event, publisher_id=publisher_id)
                for event in events]

    def stabilize(self, max_rounds: Optional[int] = None) -> None:
        """No-op: the analytic overlays are always converged."""
        handled = self._gate.stabilize(max_rounds)
        if handled is not EXECUTE:
            return handled
        issued = self._tape.now()
        self._ops += 1
        self._tape.stabilize(issued, max_rounds)
        return None

    def summary(self) -> Dict[str, float]:
        """Headline accuracy/cost numbers for everything published so far."""
        return self.accounting.summary(len(self.overlay.subscriptions))

    # ------------------------------------------------------------------ #
    # Snapshot capability
    # ------------------------------------------------------------------ #

    #: The analytic overlays are plain picklable state, so the baselines
    #: support the snapshot capability too (journaled baseline runs resume).
    CAPABILITIES = frozenset({"snapshot"})

    def quiescent(self) -> bool:
        """Always true: the analytic overlays have no in-flight work."""
        return True

    def snapshot(self) -> bytes:
        """Serialize overlay, accounting and counters in one pickle."""
        payload = {
            "kind": "baseline",
            "backend": self.backend,
            "overlay": self.overlay,
            "accounting": self.accounting,
            "retired": self._retired,
            "ops": self._ops,
            "event_counter": self._event_counter,
        }
        return pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)

    def restore(self, blob: bytes) -> None:
        """Adopt a :meth:`snapshot` blob taken on an identically specced broker."""
        from repro.api.capabilities import SnapshotStateError

        try:
            payload = pickle.loads(blob)
        except Exception as exc:  # noqa: BLE001 - any unpickle failure
            raise SnapshotStateError(
                f"snapshot blob does not deserialize: {exc}") from exc
        if not isinstance(payload, dict) or payload.get("kind") != "baseline":
            raise SnapshotStateError(
                "snapshot blob was not taken on a baseline broker")
        if payload.get("backend") != self.backend:
            raise SnapshotStateError(
                f"snapshot was taken on backend {payload.get('backend')!r}; "
                f"this broker is {self.backend!r}")
        self.overlay = payload["overlay"]
        self.accounting = payload["accounting"]
        self._retired = payload["retired"]
        self._ops = payload["ops"]
        self._event_counter = payload["event_counter"]

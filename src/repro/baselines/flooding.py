"""Flooding over a random regular overlay.

The simplest DHT-free dissemination: every subscriber forwards each new event
to all of its overlay neighbours.  Every subscriber receives every event, so
there are never false negatives, but every uninterested subscriber pays for
every publication — this is the "worst case" the paper mentions, where
"the propagation of an event may degenerate into a broadcast reaching all
consumer nodes irrespective of their interests".
"""

from __future__ import annotations

from typing import Dict, List, Set

from repro.baselines.base import BaselineOverlay, DisseminationResult
from repro.sim.rng import RandomStreams
from repro.spatial.filters import Event, Subscription


class FloodingOverlay(BaselineOverlay):
    """Broadcast over a random ``degree``-regular-ish graph."""

    name = "flooding"

    def __init__(self, degree: int = 4, seed: int = 0, space=None) -> None:
        super().__init__(space)
        if degree < 1:
            raise ValueError("degree must be at least 1")
        self.degree = degree
        self._rng = RandomStreams(seed).stream("baseline.flooding")
        self._neighbours: Dict[str, Set[str]] = {}

    # ------------------------------------------------------------------ #
    # Structure maintenance
    # ------------------------------------------------------------------ #

    def _on_add(self, subscription: Subscription) -> None:
        name = subscription.name
        self._neighbours[name] = set()
        others = [n for n in self.subscriptions if n != name]
        self._rng.shuffle(others)
        for other in others[: self.degree]:
            self._neighbours[name].add(other)
            self._neighbours[other].add(name)

    def _on_remove(self, subscriber_id: str, subscription=None) -> None:
        neighbours = self._neighbours.pop(subscriber_id, set())
        for other in neighbours:
            self._neighbours.get(other, set()).discard(subscriber_id)

    # ------------------------------------------------------------------ #
    # Dissemination
    # ------------------------------------------------------------------ #

    def disseminate(self, event: Event) -> DisseminationResult:
        result = DisseminationResult(event_id=event.event_id)
        if not self.subscriptions:
            return result
        start = sorted(self.subscriptions)[0]
        visited: Set[str] = set()
        frontier: List[tuple[str, int]] = [(start, 0)]
        while frontier:
            node, hops = frontier.pop()
            if node in visited:
                continue
            visited.add(node)
            result.record(node, hops)
            for neighbour in sorted(self._neighbours.get(node, ())):
                if neighbour not in visited:
                    result.messages += 1
                    frontier.append((neighbour, hops + 1))
        return result

    def neighbours_of(self, subscriber_id: str) -> Set[str]:
        """Overlay neighbours of a subscriber."""
        return set(self._neighbours.get(subscriber_id, ()))

"""Baseline publish/subscribe overlays used for comparison.

Section 4 of the paper positions the DR-tree against two families of
DHT-free designs and against flooding-style dissemination.  The experiments
reproduce those comparisons with the following re-implementations, all
exposing the same tiny interface (:class:`BaselineOverlay`):

* :class:`~repro.baselines.containment_tree.ContainmentTreeOverlay` — a direct
  mapping of the containment graph to a tree with a virtual root
  (Chand & Felber 2005, reference [11]),
* :class:`~repro.baselines.per_dimension.PerDimensionOverlay` — one
  containment tree per attribute (Anceaume et al. 2006, reference [3]),
* :class:`~repro.baselines.flooding.FloodingOverlay` — gossip-free broadcast
  over a random regular overlay: perfect accuracy for consumers, maximal cost,
* :class:`~repro.baselines.centralized.CentralizedBrokerOverlay` — one broker
  holding a sequential R-tree; the classical non-peer-to-peer solution.

:class:`~repro.baselines.broker.BaselineBroker` adapts any of the four to
the full :class:`~repro.api.broker.Broker` protocol (facade + shared
delivery accounting); :func:`repro.api.create_broker` builds one from a
backend name (``flooding``, ``centralized``, ``per-dimension``,
``containment-tree``).
"""

from repro.baselines.base import BaselineOverlay, DisseminationResult
from repro.baselines.broker import BaselineBroker
from repro.baselines.containment_tree import ContainmentTreeOverlay
from repro.baselines.per_dimension import PerDimensionOverlay
from repro.baselines.flooding import FloodingOverlay
from repro.baselines.centralized import CentralizedBrokerOverlay

__all__ = [
    "BaselineOverlay",
    "BaselineBroker",
    "DisseminationResult",
    "ContainmentTreeOverlay",
    "PerDimensionOverlay",
    "FloodingOverlay",
    "CentralizedBrokerOverlay",
]

"""Per-dimension containment trees (reference [3], Anceaume et al. 2006).

One containment tree is built per attribute: a subscription joins the tree of
every attribute on which it specifies a (bounded) filter, ordered by the
containment of its per-attribute interval.  An event is routed down each
per-dimension tree independently; a subscriber *receives* the event as soon
as one of its trees routes the event to it.

As the paper notes (Section 3.1), this design "tends to produce flat trees
with high fan-out and may generate a significant number of false positives":
a subscriber whose interval matches on one attribute receives the event even
if another attribute rules it out.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Set, Tuple

from repro.baselines.base import BaselineOverlay, DisseminationResult
from repro.spatial.filters import Event, Subscription

#: Identifier of each per-dimension virtual root.
VIRTUAL_ROOT = "__virtual_root__"


class PerDimensionOverlay(BaselineOverlay):
    """One interval-containment tree per attribute."""

    name = "per_dimension"

    def __init__(self, space=None) -> None:
        super().__init__(space)
        #: attribute name → {node → children}
        self._trees: Dict[str, Dict[str, Set[str]]] = {}

    # ------------------------------------------------------------------ #
    # Structure maintenance
    # ------------------------------------------------------------------ #

    def _on_add(self, subscription: Subscription) -> None:
        self._rebuild()

    def _on_remove(self, subscriber_id: str, subscription=None) -> None:
        self._rebuild()

    def _interval(self, subscription: Subscription, attribute: str
                  ) -> Tuple[float, float]:
        dim = subscription.space.index(attribute)
        return subscription.rect.interval(dim)

    def _is_bounded(self, interval: Tuple[float, float]) -> bool:
        low, high = interval
        return not (math.isinf(low) and math.isinf(high))

    def _rebuild(self) -> None:
        self._trees = {}
        if not self.subscriptions:
            return
        space = next(iter(self.subscriptions.values())).space
        for attribute in space.names:
            members = {
                name: self._interval(sub, attribute)
                for name, sub in self.subscriptions.items()
                if self._is_bounded(self._interval(sub, attribute))
            }
            self._trees[attribute] = self._build_tree(members)

    def _build_tree(self, members: Dict[str, Tuple[float, float]]
                    ) -> Dict[str, Set[str]]:
        children: Dict[str, Set[str]] = {VIRTUAL_ROOT: set()}
        for name in members:
            children[name] = set()
        for name, interval in members.items():
            parent = self._tightest_container(name, interval, members)
            children[parent if parent else VIRTUAL_ROOT].add(name)
        return children

    @staticmethod
    def _contains(container: Tuple[float, float],
                  containee: Tuple[float, float]) -> bool:
        return container[0] <= containee[0] and containee[1] <= container[1]

    def _tightest_container(self, name: str, interval: Tuple[float, float],
                            members: Dict[str, Tuple[float, float]]
                            ) -> Optional[str]:
        best: Optional[str] = None
        best_width = float("inf")
        for other, other_interval in members.items():
            if other == name:
                continue
            if self._contains(other_interval, interval) and other_interval != interval:
                width = other_interval[1] - other_interval[0]
                if width < best_width:
                    best_width = width
                    best = other
        return best

    # ------------------------------------------------------------------ #
    # Dissemination
    # ------------------------------------------------------------------ #

    def disseminate(self, event: Event) -> DisseminationResult:
        result = DisseminationResult(event_id=event.event_id)
        for attribute, tree in self._trees.items():
            value = event.attributes.get(attribute)
            if value is None:
                continue
            frontier: List[Tuple[str, int]] = [
                (child, 1) for child in sorted(tree[VIRTUAL_ROOT])
            ]
            while frontier:
                node, hops = frontier.pop()
                subscription = self.subscriptions.get(node)
                if subscription is None:
                    continue
                result.messages += 1
                low, high = self._interval(subscription, attribute)
                if not (low <= value <= high):
                    continue
                result.record(node, hops)
                for child in sorted(tree.get(node, ())):
                    frontier.append((child, hops + 1))
        return result

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #

    def tree_fanouts(self) -> Dict[str, int]:
        """Per-attribute fan-out of the virtual root."""
        return {
            attribute: len(tree[VIRTUAL_ROOT])
            for attribute, tree in self._trees.items()
        }

"""Scenario runtime: registry, parallel runner and the ``python -m repro`` CLI.

Every experiment and workload of the reproduction registers itself as a
*scenario* — a named, parameterized, deterministic unit of work returning an
:class:`~repro.experiments.harness.ExperimentResult`.  The runtime provides:

* :mod:`repro.runtime.registry` — the typed scenario registry
  (:func:`register_scenario`, :class:`Scenario`, :class:`Param`),
* :mod:`repro.runtime.runner` — sequential and ``multiprocessing`` execution
  of scenario batches with JSON-mergeable outcomes,
* :mod:`repro.runtime.cli` — the ``repro list`` / ``repro run`` /
  ``repro run-all`` command line, reachable as ``python -m repro``.

Scenarios register at import time; call :func:`load_scenarios` (or import
:mod:`repro.experiments`) before consulting the registry.
"""

from repro.runtime.registry import (
    REGISTRY,
    DuplicateScenarioError,
    Param,
    Scenario,
    ScenarioError,
    ScenarioRegistry,
    UnknownParameterError,
    UnknownScenarioError,
    load_scenarios,
    register_scenario,
)
from repro.runtime.runner import (
    ScenarioOutcome,
    ScenarioRequest,
    outcomes_to_json,
    run_many,
    run_one,
)

__all__ = [
    "REGISTRY",
    "DuplicateScenarioError",
    "Param",
    "Scenario",
    "ScenarioError",
    "ScenarioRegistry",
    "UnknownParameterError",
    "UnknownScenarioError",
    "load_scenarios",
    "register_scenario",
    "ScenarioOutcome",
    "ScenarioRequest",
    "outcomes_to_json",
    "run_many",
    "run_one",
]

"""The scenario registry.

A *scenario* is a named, deterministic, parameterized unit of work — an
experiment over the DR-tree overlay, a workload sweep, a baseline comparison.
Each scenario declares its parameters with types and defaults so that every
consumer (the CLI, the parallel runner, the benchmarks) can validate and
coerce overrides the same way, instead of each ``exp_*`` module growing its
own copy of the driver code.

Scenarios register themselves at import time through
:func:`register_scenario`; :func:`load_scenarios` imports the experiment
modules so the default registry is populated on demand.

Example — register, then run with validated overrides::

    @register_scenario("demo", "A demo sweep", params=(
        Param("peers", int, 64, "network size"),
    ))
    def _runner(peers):
        return some_experiment(peers)

    REGISTRY.get("demo").run(peers="128")   # "128" is coerced to int

The registry is the single source of truth for scenario metadata: the CLI
builds its ``--flags`` from :attr:`Scenario.params`, the runner re-binds
overrides in worker processes, and the documentation under ``docs/cli.md``
and ``docs/scenarios.md`` mirrors ``python -m repro list -v`` (a docs test
keeps them in sync).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, Iterator, List, Optional, Tuple


class ScenarioError(Exception):
    """Base class for scenario registry errors."""


class DuplicateScenarioError(ScenarioError):
    """A scenario name was registered twice."""


class UnknownScenarioError(ScenarioError):
    """A scenario name is not in the registry."""


class UnknownParameterError(ScenarioError):
    """An override names a parameter the scenario does not declare."""


@dataclass(frozen=True)
class Param:
    """One typed scenario parameter.

    ``type`` is the coercion callable (``int``, ``float``, ``str``); CLI
    strings and JSON values are passed through it before reaching the
    scenario runner.  ``choices`` optionally restricts the value set (used
    for e.g. split methods).
    """

    name: str
    type: Callable[[Any], Any]
    default: Any
    help: str = ""
    choices: Optional[Tuple[Any, ...]] = None

    def coerce(self, value: Any) -> Any:
        """Coerce ``value`` to this parameter's type, validating choices."""
        try:
            coerced = self.type(value)
        except (TypeError, ValueError) as exc:
            # Carry the coercion's own diagnostic: custom coercers (backend
            # family/exclusion checks) explain *why* a value is rejected.
            detail = f": {exc}" if str(exc) else ""
            raise ScenarioError(
                f"parameter {self.name!r} expects {self.type.__name__}, "
                f"got {value!r}{detail}"
            ) from exc
        if self.choices is not None and coerced not in self.choices:
            raise ScenarioError(
                f"parameter {self.name!r} must be one of {list(self.choices)}, "
                f"got {coerced!r}"
            )
        return coerced


@dataclass(frozen=True)
class Scenario:
    """A registered scenario: metadata, typed parameters and a runner."""

    name: str
    title: str
    runner: Callable[..., Any]
    description: str = ""
    params: Tuple[Param, ...] = ()
    #: The paper's experiment id (``E1``..``E10``) when the scenario
    #: regenerates one of its artefacts; also usable as a CLI alias.
    experiment_id: Optional[str] = None
    #: True when every workload mutation of the scenario goes through the
    #: :class:`~repro.pubsub.api.PubSubSystem` facade, so a run can be
    #: captured with ``repro run <name> --record file.jsonl`` and replayed
    #: bit-identically with ``repro run --trace file.jsonl`` (see
    #: ``docs/traces.md``).
    replayable: bool = False

    def param(self, name: str) -> Param:
        """Look up one declared parameter."""
        for param in self.params:
            if param.name == name:
                return param
        raise UnknownParameterError(
            f"scenario {self.name!r} has no parameter {name!r}; "
            f"declared: {[p.name for p in self.params]}"
        )

    @property
    def backend_aware(self) -> bool:
        """True when the scenario declares a ``backend`` parameter.

        Backend-aware scenarios run their workload through a
        :class:`~repro.api.spec.SystemSpec`-built broker and accept the
        CLI's ``repro run <scenario> --backend <name>`` override.
        """
        return any(param.name == "backend" for param in self.params)

    def defaults(self) -> Dict[str, Any]:
        """The default value of every declared parameter."""
        return {param.name: param.default for param in self.params}

    def bind(self, **overrides: Any) -> Dict[str, Any]:
        """Merge ``overrides`` over the defaults, validating and coercing."""
        values = self.defaults()
        for name, value in overrides.items():
            values[name] = self.param(name).coerce(value)
        return values

    def run(self, **overrides: Any) -> Any:
        """Run the scenario with validated parameter overrides."""
        return self.runner(**self.bind(**overrides))


class ScenarioRegistry:
    """Name → scenario mapping with duplicate and unknown-name protection."""

    def __init__(self) -> None:
        self._scenarios: Dict[str, Scenario] = {}

    def register(self, scenario: Scenario) -> Scenario:
        """Add a scenario; duplicate names (or experiment ids) are errors."""
        if scenario.name in self._scenarios:
            raise DuplicateScenarioError(
                f"scenario {scenario.name!r} is already registered"
            )
        for existing in self._scenarios.values():
            if (scenario.experiment_id is not None
                    and existing.experiment_id == scenario.experiment_id):
                raise DuplicateScenarioError(
                    f"experiment id {scenario.experiment_id!r} is already "
                    f"registered by scenario {existing.name!r}"
                )
        self._scenarios[scenario.name] = scenario
        return scenario

    def get(self, name: str) -> Scenario:
        """Look up a scenario by name or experiment id (``E1``..``E10``)."""
        if name in self._scenarios:
            return self._scenarios[name]
        for scenario in self._scenarios.values():
            if scenario.experiment_id == name:
                return scenario
        raise UnknownScenarioError(
            f"unknown scenario {name!r}; available: {self.names()}"
        )

    def names(self) -> List[str]:
        """Sorted scenario names."""
        return sorted(self._scenarios)

    def scenarios(self) -> List[Scenario]:
        """All scenarios, sorted by name."""
        return [self._scenarios[name] for name in self.names()]

    def __contains__(self, name: str) -> bool:
        try:
            self.get(name)
        except UnknownScenarioError:
            return False
        return True

    def __len__(self) -> int:
        return len(self._scenarios)

    def __iter__(self) -> Iterator[Scenario]:
        return iter(self.scenarios())


def backend_param(default: str = "drtree:classic",
                  family: Optional[str] = None,
                  exclude: Optional[Dict[str, str]] = None,
                  help: str = "") -> Param:  # noqa: A002 - mirrors Param.help
    """The standard ``backend`` parameter of backend-aware scenarios.

    Values validate at *bind time* against the live backend registry
    (:func:`repro.api.normalize_backend`), not against a choices tuple
    frozen at scenario-registration time — so a backend or engine
    registered later is immediately accepted.  Scenarios whose workload
    needs one broker family's internals (e.g. targeted crash selection
    walking the DR-tree) pass ``family="drtree"``; ``exclude`` rejects
    individual backends the scenario cannot drive, mapping each name to
    the reason shown in the error.  Declaring this parameter is what makes
    a scenario :attr:`~Scenario.backend_aware`.
    """

    def coerce_backend(value: Any) -> str:
        from repro.api.registry import backend_family, normalize_backend

        name = normalize_backend(value)
        if family is not None and backend_family(name) != family:
            raise ValueError(
                f"backend {value!r} is outside the {family!r} family this "
                "scenario requires")
        if exclude and name in exclude:
            raise ValueError(
                f"backend {name!r} is not supported by this scenario: "
                f"{exclude[name]}")
        return name

    coerce_backend.__name__ = (f"{family}_backend" if family
                               else "backend_name")
    return Param(
        "backend",
        coerce_backend,
        default,
        help or "broker backend the workload runs on "
                "(any name from repro.api.backend_names())",
    )


#: The process-wide default registry the CLI and runner consult.
REGISTRY = ScenarioRegistry()


def register_scenario(
    name: str,
    title: str,
    *,
    description: str = "",
    params: Tuple[Param, ...] = (),
    experiment_id: Optional[str] = None,
    replayable: bool = False,
    registry: Optional[ScenarioRegistry] = None,
) -> Callable[[Callable[..., Any]], Scenario]:
    """Decorator factory registering ``runner`` as a scenario.

    Usage::

        @register_scenario("height", "Tree height vs N", params=(
            Param("peers", int, 256, "largest network size"),
            Param("seed", int, 0, "RNG seed"),
        ), experiment_id="E2")
        def _scenario(peers, seed):
            return run(sizes=size_ladder(peers), seed=seed)
    """

    def decorator(runner: Callable[..., Any]) -> Scenario:
        scenario = Scenario(
            name=name,
            title=title,
            runner=runner,
            description=description,
            params=tuple(params),
            experiment_id=experiment_id,
            replayable=replayable,
        )
        return (registry if registry is not None else REGISTRY).register(scenario)

    return decorator


def load_scenarios() -> ScenarioRegistry:
    """Populate :data:`REGISTRY` by importing every scenario-bearing module."""
    import repro.experiments  # noqa: F401  (registers on import)

    return REGISTRY

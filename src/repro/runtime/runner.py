"""Sequential and parallel execution of scenario batches.

The runner turns ``(scenario name, parameter overrides)`` requests into
:class:`ScenarioOutcome` records — plain data that can be compared across
runs and merged into JSON.  Parallelism is process-based (one worker process
per in-flight scenario), which suits the workload: every scenario is a pure,
CPU-bound function of its parameters, so results are bit-identical whether a
batch runs with ``jobs=1`` or ``jobs=N`` — only the wall-clock changes.

Example — run two scenarios over two workers and serialize the results::

    outcomes = run_many(
        [ScenarioRequest("height", {"peers": 128}),
         ScenarioRequest("latency")],
        jobs=2,
    )
    document = outcomes_to_json(outcomes)   # {"runs": [...], "summary": ...}

Errors never propagate out of a worker: a scenario that raises produces an
outcome with :attr:`ScenarioOutcome.error` set to the exception summary and
:attr:`ScenarioOutcome.ok` false, so one failing scenario cannot take down a
``run-all`` batch.  The CLI (``python -m repro``, see ``docs/cli.md``) is a
thin shell over :func:`run_one` / :func:`run_many`.
"""

from __future__ import annotations

import math
import multiprocessing
import time
import traceback
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

from repro.runtime.registry import REGISTRY, load_scenarios


@dataclass(frozen=True)
class ScenarioRequest:
    """One unit of work: a scenario name plus parameter overrides."""

    scenario: str
    overrides: Dict[str, Any] = field(default_factory=dict)


@dataclass
class ScenarioOutcome:
    """The plain-data result of one scenario run."""

    scenario: str
    title: str
    params: Dict[str, Any]
    rows: List[Dict[str, Any]] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)
    experiment_id: Optional[str] = None
    duration_s: float = 0.0
    error: Optional[str] = None

    @property
    def ok(self) -> bool:
        """True when the scenario ran to completion."""
        return self.error is None


def _execute(request: ScenarioRequest) -> ScenarioOutcome:
    """Worker entry point: run one request in the current process."""
    load_scenarios()
    scenario = REGISTRY.get(request.scenario)
    outcome = ScenarioOutcome(
        scenario=scenario.name,
        title=scenario.title,
        params=dict(request.overrides),
        experiment_id=scenario.experiment_id,
    )
    start = time.perf_counter()
    try:
        outcome.params = scenario.bind(**request.overrides)
        result = scenario.runner(**outcome.params)
        outcome.rows = [dict(row) for row in result.rows]
        outcome.notes = list(result.notes)
    except Exception as exc:  # noqa: BLE001 - reported, not swallowed
        outcome.error = "".join(
            traceback.format_exception_only(type(exc), exc)
        ).strip()
    outcome.duration_s = time.perf_counter() - start
    return outcome


def run_one(scenario: str,
            overrides: Optional[Dict[str, Any]] = None) -> ScenarioOutcome:
    """Run a single scenario in-process."""
    return _execute(ScenarioRequest(scenario, dict(overrides or {})))


def run_many(requests: Sequence[ScenarioRequest],
             jobs: int = 1) -> List[ScenarioOutcome]:
    """Run a batch of requests, ``jobs`` at a time, preserving input order.

    ``jobs=1`` runs everything in the calling process (no pool overhead and
    the easiest to debug); ``jobs>1`` fans the requests out over a process
    pool.  Outcomes are returned in request order either way, and are
    identical between the two modes because scenarios are deterministic in
    their parameters.
    """
    requests = list(requests)
    if jobs <= 1 or len(requests) <= 1:
        return [_execute(request) for request in requests]
    processes = min(jobs, len(requests))
    with multiprocessing.get_context().Pool(
        processes=processes, initializer=load_scenarios
    ) as pool:
        return pool.map(_execute, requests, chunksize=1)


def _json_safe(value: Any) -> Any:
    """Replace non-finite floats (JSON has no ``inf``/``nan``) recursively."""
    if isinstance(value, float) and not math.isfinite(value):
        return str(value)
    if isinstance(value, dict):
        return {key: _json_safe(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [_json_safe(item) for item in value]
    return value


def outcomes_to_json(outcomes: Sequence[ScenarioOutcome]) -> Dict[str, Any]:
    """Merge outcomes into one JSON-serializable document."""
    return {
        "runs": [
            _json_safe(
                {
                    "scenario": outcome.scenario,
                    "experiment_id": outcome.experiment_id,
                    "title": outcome.title,
                    "params": outcome.params,
                    "rows": outcome.rows,
                    "notes": outcome.notes,
                    "duration_s": round(outcome.duration_s, 4),
                    "error": outcome.error,
                }
            )
            for outcome in outcomes
        ],
        "summary": {
            "total": len(outcomes),
            "failed": sum(1 for outcome in outcomes if not outcome.ok),
            "duration_s": round(sum(o.duration_s for o in outcomes), 4),
        },
    }

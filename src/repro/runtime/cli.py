"""The ``python -m repro`` command line.

Three subcommands::

    repro list                             # what scenarios exist
    repro run height --peers 512 --seed 7  # one scenario, typed overrides
    repro run-all --jobs 4 --json out.json # the whole suite, in parallel

``repro run`` exposes each scenario's declared parameters as ``--flags``;
unknown flags and out-of-range values fail with the registry's own
diagnostics, so the CLI never silently drops an override.

Backend-aware scenarios run their workload on any registered broker
backend (the unified ``Broker`` protocol, see ``docs/api.md``)::

    repro run hotspot --backend drtree:batched
    repro run hotspot --backend flooding

Replayable scenarios additionally support trace capture and replay
(see ``docs/traces.md``)::

    repro run hotspot --record t.jsonl     # run + capture the workload
    repro run --trace t.jsonl              # replay it, bit-identically
    repro run --trace t.jsonl --backend drtree:batched

(``--engine classic|batched`` is kept as the legacy spelling of the two
DR-tree backends.)
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from typing import List, Optional, Sequence

from repro.api.registry import UnknownBackendError
from repro.experiments.harness import format_table
from repro.runtime.registry import (
    REGISTRY,
    Scenario,
    ScenarioError,
    load_scenarios,
)
from repro.runtime.runner import (
    ScenarioOutcome,
    ScenarioRequest,
    outcomes_to_json,
    run_many,
    run_one,
)
from repro.traces.errors import TraceFormatError, TraceReplayError


def build_parser() -> argparse.ArgumentParser:
    """Top-level argument parser (scenario params are parsed per-scenario)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Run the DR-tree reproduction's registered scenarios.",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    list_parser = commands.add_parser(
        "list", help="list registered scenarios and their parameters")
    list_parser.add_argument(
        "-v", "--verbose", action="store_true",
        help="also show descriptions and per-parameter help")

    # add_help is off so that `repro run <name> --help` reaches the
    # per-scenario parser and shows the scenario's typed flags.
    run_parser = commands.add_parser(
        "run", add_help=False,
        help="run one scenario (see `repro run <name> --help`)")
    run_parser.add_argument(
        "-h", "--help", action="store_true", dest="show_help",
        help="show this help (with a scenario: its typed parameter flags)")
    run_parser.add_argument(
        "scenario", nargs="?",
        help="scenario name or experiment id (e.g. E2)")
    run_parser.add_argument(
        "--json", metavar="PATH", help="write the outcome as JSON to PATH")
    run_parser.add_argument(
        "--quiet", action="store_true", help="suppress the result table")
    run_parser.add_argument(
        "--record", metavar="PATH",
        help="capture the run as a replayable trace (replayable scenarios)")
    run_parser.add_argument(
        "--trace", metavar="PATH", dest="trace_path",
        help="replay a recorded trace instead of running a scenario")
    run_parser.add_argument(
        "--backend", default=None, metavar="NAME",
        help="broker backend (e.g. drtree:batched, flooding): overrides a "
             "backend-aware scenario's backend parameter, or the recorded "
             "backend of a --trace replay")
    run_parser.add_argument(
        "--engine", choices=["classic", "batched"], default=None,
        help="with --trace only: legacy alias for --backend drtree:<engine> "
             "(scenario runs take --backend)")
    run_parser.add_argument(
        "--no-verify", action="store_true",
        help="with --trace: skip the bit-identity check against the "
             "recorded metrics")
    run_parser.add_argument(
        "--metrics", metavar="PATH", dest="metrics_path",
        help="write the metrics JSON (rows only, no timing); for scenarios "
             "whose rows are the canonical delivery-metrics row (hotspot, "
             "adversarial-churn, mobility) it is byte-comparable between a "
             "recorded run and its replay")

    all_parser = commands.add_parser(
        "run-all", help="run every scenario (optionally in parallel)")
    all_parser.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="worker processes (default: 1)")
    all_parser.add_argument(
        "--only", metavar="NAMES",
        help="comma-separated subset of scenario names to run")
    all_parser.add_argument(
        "--seed", type=int, default=None,
        help="override the seed parameter of every scenario that has one")
    all_parser.add_argument(
        "--json", metavar="PATH", help="write merged outcomes as JSON to PATH")
    all_parser.add_argument(
        "--quiet", action="store_true", help="suppress the result tables")
    return parser


def _scenario_arg_parser(scenario: Scenario) -> argparse.ArgumentParser:
    """A parser exposing one scenario's declared parameters as ``--flags``."""
    parser = argparse.ArgumentParser(
        prog=f"repro run {scenario.name}",
        description=scenario.title,
    )
    for param in scenario.params:
        kwargs = {
            "dest": param.name,
            "type": param.type,
            "default": argparse.SUPPRESS,
            "help": f"{param.help or param.name} (default: {param.default!r})",
        }
        if param.choices is not None:
            kwargs["choices"] = list(param.choices)
        parser.add_argument(f"--{param.name.replace('_', '-')}", **kwargs)
    return parser


def _print_outcome(outcome: ScenarioOutcome, quiet: bool) -> None:
    if outcome.error is not None:
        print(f"{outcome.scenario}: FAILED after {outcome.duration_s:.2f}s: "
              f"{outcome.error}", file=sys.stderr)
        return
    if quiet:
        print(f"{outcome.scenario}: ok ({len(outcome.rows)} rows, "
              f"{outcome.duration_s:.2f}s)")
        return
    label = (f"{outcome.experiment_id} · {outcome.title}"
             if outcome.experiment_id else outcome.title)
    print(format_table(outcome.rows, title=f"{outcome.scenario}: {label}",
                       notes=outcome.notes))
    print(f"({outcome.duration_s:.2f}s)")
    print()


def _write_json(path: str, outcomes: Sequence[ScenarioOutcome]) -> None:
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(outcomes_to_json(outcomes), handle, indent=2, sort_keys=True)
        handle.write("\n")


def _cmd_list(verbose: bool) -> int:
    for scenario in REGISTRY.scenarios():
        tag = f" [{scenario.experiment_id}]" if scenario.experiment_id else ""
        defaults = " ".join(
            f"{param.name}={param.default!r}" for param in scenario.params
        )
        print(f"{scenario.name}{tag}: {scenario.title}")
        if defaults:
            print(f"    params: {defaults}")
        if verbose and scenario.description:
            print(f"    {scenario.description}")
        if verbose and scenario.replayable:
            print("    replayable: supports --record / --trace "
                  "(see docs/traces.md)")
        if verbose and scenario.backend_aware:
            print("    backend-aware: accepts --backend overrides "
                  "(see docs/api.md)")
        if verbose:
            for param in scenario.params:
                choice = (f" (choices: {list(param.choices)})"
                          if param.choices else "")
                print(f"    --{param.name}: {param.help or param.name}{choice}")
    return 0


def _write_metrics(path: str, outcome: ScenarioOutcome) -> None:
    from repro.traces.replay import dump_metrics

    with open(path, "w", encoding="utf-8") as handle:
        handle.write(dump_metrics(outcome.scenario, outcome.rows))


def _cmd_replay(trace_path: str, backend: Optional[str], verify: bool,
                json_path: Optional[str], metrics_path: Optional[str],
                quiet: bool) -> int:
    """Replay a recorded trace (``repro run --trace file.jsonl``)."""
    from repro.traces.io import read_trace
    from repro.traces.replay import execute_trace

    trace = read_trace(trace_path)
    start = time.perf_counter()
    result = execute_trace(trace, backend=backend, verify=verify)
    outcome = ScenarioOutcome(
        scenario=trace.header.scenario or "trace",
        title=result.title,
        params=dict(trace.header.params or {}),
        rows=[dict(row) for row in result.rows],
        notes=list(result.notes),
        duration_s=time.perf_counter() - start,
    )
    _print_outcome(outcome, quiet)
    if json_path:
        _write_json(json_path, [outcome])
    if metrics_path:
        _write_metrics(metrics_path, outcome)
    return 0


def _cmd_run(scenario_name: Optional[str], extra: List[str],
             json_path: Optional[str], quiet: bool,
             show_help: bool = False,
             record: Optional[str] = None,
             trace_path: Optional[str] = None,
             engine: Optional[str] = None,
             backend: Optional[str] = None,
             no_verify: bool = False,
             metrics_path: Optional[str] = None) -> int:
    if engine is not None:
        if backend is not None:
            raise ScenarioError("pass either --engine or --backend, not both")
        backend = f"drtree:{engine}"
    if trace_path is not None and not show_help:
        if scenario_name is not None or record is not None:
            raise ScenarioError(
                "--trace replays a recorded file and cannot be combined "
                "with a scenario name or --record")
        if extra:
            raise ScenarioError(
                f"unrecognized arguments with --trace: {' '.join(extra)}")
        return _cmd_replay(trace_path, backend, not no_verify, json_path,
                           metrics_path, quiet)
    if (engine is not None or no_verify) and not show_help:
        raise ScenarioError("--engine/--no-verify only apply to --trace "
                            "replays (scenarios take --backend)")
    if scenario_name is None:
        usage = ("usage: repro run <scenario> [--flags]\n"
                 "       repro run --trace FILE [--backend ...]\n"
                 f"available scenarios: {REGISTRY.names()}\n"
                 "`repro run <scenario> --help` shows the scenario's "
                 "typed parameter flags.")
        print(usage, file=sys.stderr if not show_help else sys.stdout)
        return 0 if show_help else 2
    scenario = REGISTRY.get(scenario_name)
    parser = _scenario_arg_parser(scenario)
    if show_help:
        parser.print_help()
        return 0
    overrides = vars(parser.parse_args(extra))
    if backend is not None:
        if not scenario.backend_aware:
            raise ScenarioError(
                f"scenario {scenario.name!r} is not backend-aware: it "
                "declares no backend parameter (see docs/api.md)")
        overrides["backend"] = backend
    if record is not None:
        from repro.traces.io import write_trace
        from repro.traces.recorder import recording

        if not scenario.replayable:
            raise ScenarioError(
                f"scenario {scenario.name!r} is not trace-replayable; "
                "replayable scenarios drive every workload mutation through "
                "the pub/sub facade (see docs/traces.md)")
        with recording(scenario=scenario.name) as recorder:
            outcome = run_one(scenario.name, overrides)
            recorder.set_provenance(outcome.scenario, outcome.params)
        if outcome.ok:
            # Only completed runs are worth replaying: a trace cut short by a
            # scenario error would diverge from (or lack) its expect rows.
            write_trace(record, recorder.build())
            if not quiet:
                print(f"recorded {recorder.segments} segment(s) to {record}")
        else:
            print(f"not recording {record}: scenario failed", file=sys.stderr)
    else:
        outcome = run_one(scenario.name, overrides)
    _print_outcome(outcome, quiet)
    if json_path:
        _write_json(json_path, [outcome])
    if metrics_path:
        _write_metrics(metrics_path, outcome)
    return 0 if outcome.ok else 1


def _cmd_run_all(jobs: int, only: Optional[str], seed: Optional[int],
                 json_path: Optional[str], quiet: bool) -> int:
    names = (only.split(",") if only else REGISTRY.names())
    requests = []
    for name in names:
        scenario = REGISTRY.get(name.strip())
        overrides = {}
        if seed is not None and any(p.name == "seed" for p in scenario.params):
            overrides["seed"] = seed
        requests.append(ScenarioRequest(scenario.name, overrides))
    outcomes = run_many(requests, jobs=jobs)
    for outcome in outcomes:
        _print_outcome(outcome, quiet)
    failed = [outcome.scenario for outcome in outcomes if not outcome.ok]
    if json_path:
        _write_json(json_path, outcomes)
    if failed:
        print(f"{len(failed)}/{len(outcomes)} scenarios failed: {failed}",
              file=sys.stderr)
        return 1
    print(f"{len(outcomes)} scenarios completed "
          f"({sum(o.duration_s for o in outcomes):.2f}s of scenario time)")
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = build_parser()
    args, extra = parser.parse_known_args(
        list(argv) if argv is not None else None
    )
    load_scenarios()
    try:
        if args.command == "list":
            if extra:
                parser.error(f"unrecognized arguments: {' '.join(extra)}")
            return _cmd_list(args.verbose)
        if args.command == "run":
            return _cmd_run(args.scenario, extra, args.json, args.quiet,
                            show_help=args.show_help,
                            record=args.record,
                            trace_path=args.trace_path,
                            engine=args.engine,
                            backend=args.backend,
                            no_verify=args.no_verify,
                            metrics_path=args.metrics_path)
        if extra:
            parser.error(f"unrecognized arguments: {' '.join(extra)}")
        return _cmd_run_all(args.jobs, args.only, args.seed, args.json,
                            args.quiet)
    except (ScenarioError, TraceFormatError, UnknownBackendError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except TraceReplayError as exc:
        print(f"replay diverged: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover - module execution convenience
    raise SystemExit(main())

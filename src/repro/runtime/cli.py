"""The ``python -m repro`` command line.

Six subcommands::

    repro list                             # what scenarios exist
    repro run height --peers 512 --seed 7  # one scenario, typed overrides
    repro run-all --jobs 4 --json out.json # the whole suite, in parallel
    repro resume run.journal               # recover an interrupted run
    repro journal verify|export|bisect ... # inspect a journal
    repro workload synth|describe ...      # synthesize streamed workloads

``repro run`` exposes each scenario's declared parameters as ``--flags``;
unknown flags and out-of-range values fail with the registry's own
diagnostics, so the CLI never silently drops an override.

Backend-aware scenarios run their workload on any registered broker
backend (the unified ``Broker`` protocol, see ``docs/api.md``)::

    repro run hotspot --backend drtree:batched
    repro run hotspot --backend flooding

Replayable scenarios additionally support trace capture and replay
(see ``docs/traces.md``)::

    repro run hotspot --record t.jsonl     # run + capture the workload
    repro run --trace t.jsonl              # replay it, bit-identically
    repro run --trace t.jsonl --backend drtree:batched

They also support durable journaling and crash recovery
(see ``docs/journal.md``)::

    repro run hotspot --journal run.journal   # durable write-ahead capture
    repro resume run.journal                  # resume after a crash
    repro journal verify run.journal          # audit the hash chain

``repro workload`` synthesizes production-scale streamed workloads into
replayable traces or durable journals without ever materializing the op
list (see ``docs/workloads.md``)::

    repro workload synth zipf-diurnal --subscribers 10000 \\
        --events 100000 -o big.jsonl
    repro workload synth mixed-production --journal big.journal
    repro workload describe flash-crowd
    repro workload describe big.jsonl      # a synthesized trace's spec

(The legacy ``--engine classic|batched`` alias has been removed; passing
it is a hard error pointing at ``--backend drtree:<engine>``.)
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from typing import List, Optional, Sequence

from repro.api.registry import UnknownBackendError
from repro.experiments.harness import format_table
from repro.journal.errors import (JournalCorruptError, JournalError,
                                  JournalResumeError)
from repro.runtime.registry import (
    REGISTRY,
    Scenario,
    ScenarioError,
    load_scenarios,
)
from repro.runtime.runner import (
    ScenarioOutcome,
    ScenarioRequest,
    outcomes_to_json,
    run_many,
    run_one,
)
from repro.traces.errors import TraceFormatError, TraceReplayError
from repro.workloads.errors import WorkloadError


def build_parser() -> argparse.ArgumentParser:
    """Top-level argument parser (scenario params are parsed per-scenario)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Run the DR-tree reproduction's registered scenarios.",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    list_parser = commands.add_parser(
        "list", help="list registered scenarios and their parameters")
    list_parser.add_argument(
        "-v", "--verbose", action="store_true",
        help="also show descriptions and per-parameter help")

    # add_help is off so that `repro run <name> --help` reaches the
    # per-scenario parser and shows the scenario's typed flags.
    run_parser = commands.add_parser(
        "run", add_help=False,
        help="run one scenario (see `repro run <name> --help`)")
    run_parser.add_argument(
        "-h", "--help", action="store_true", dest="show_help",
        help="show this help (with a scenario: its typed parameter flags)")
    run_parser.add_argument(
        "scenario", nargs="?",
        help="scenario name or experiment id (e.g. E2)")
    run_parser.add_argument(
        "--json", metavar="PATH", help="write the outcome as JSON to PATH")
    run_parser.add_argument(
        "--quiet", action="store_true", help="suppress the result table")
    run_parser.add_argument(
        "--record", metavar="PATH",
        help="capture the run as a replayable trace (replayable scenarios)")
    run_parser.add_argument(
        "--journal", metavar="PATH", dest="journal_path",
        help="journal the run durably as it happens; an interrupted run "
             "resumes with `repro resume PATH` (replayable scenarios, "
             "see docs/journal.md)")
    run_parser.add_argument(
        "--snapshot-every", type=int, default=None, metavar="N",
        dest="snapshot_every",
        help="with --journal: embed a full broker snapshot every N ops "
             "per segment (0 disables; default: 25)")
    run_parser.add_argument(
        "--trace", metavar="PATH", dest="trace_path",
        help="replay a recorded trace instead of running a scenario")
    run_parser.add_argument(
        "--backend", default=None, metavar="NAME",
        help="broker backend (e.g. drtree:batched, flooding): overrides a "
             "backend-aware scenario's backend parameter, or the recorded "
             "backend of a --trace replay")
    # The removed legacy alias stays registered (hidden) so that old
    # invocations fail with a migration hint instead of argparse's generic
    # "unrecognized arguments".
    run_parser.add_argument(
        "--engine", default=None, metavar="NAME", help=argparse.SUPPRESS)
    run_parser.add_argument(
        "--no-verify", action="store_true",
        help="with --trace: skip the bit-identity check against the "
             "recorded metrics")
    run_parser.add_argument(
        "--metrics", metavar="PATH", dest="metrics_path",
        help="write the metrics JSON (rows only, no timing); for scenarios "
             "whose rows are the canonical delivery-metrics row (hotspot, "
             "adversarial-churn, mobility) it is byte-comparable between a "
             "recorded run and its replay")

    resume_parser = commands.add_parser(
        "resume", help="resume an interrupted journaled run (docs/journal.md)")
    resume_parser.add_argument(
        "journal", metavar="JOURNAL", help="path to an unsealed journal file")
    resume_parser.add_argument(
        "--json", metavar="PATH", help="write the outcome as JSON to PATH")
    resume_parser.add_argument(
        "--quiet", action="store_true", help="suppress the result table")
    resume_parser.add_argument(
        "--metrics", metavar="PATH", dest="metrics_path",
        help="write the metrics JSON (byte-comparable with an "
             "uninterrupted run)")

    journal_parser = commands.add_parser(
        "journal", help="inspect journal files: verify, export, bisect")
    journal_commands = journal_parser.add_subparsers(dest="journal_command",
                                                     required=True)
    verify_parser = journal_commands.add_parser(
        "verify", help="strictly verify the hash chain, canonical bytes and "
                       "record ordering")
    verify_parser.add_argument("journal", metavar="JOURNAL")
    export_parser = journal_commands.add_parser(
        "export", help="lower a journal into a replayable trace "
                       "(sealed journals carry expect rows)")
    export_parser.add_argument("journal", metavar="JOURNAL")
    export_parser.add_argument(
        "-o", "--output", required=True, metavar="PATH",
        help="trace file to write (replay with `repro run --trace PATH`)")
    bisect_parser = journal_commands.add_parser(
        "bisect", help="replay a journal on two backends and report the "
                       "first publish whose delivery outcome diverges")
    bisect_parser.add_argument("journal", metavar="JOURNAL")
    bisect_parser.add_argument("backend_a", metavar="BACKEND_A")
    bisect_parser.add_argument("backend_b", metavar="BACKEND_B")

    from repro.workloads.synth import FAMILY_NAMES

    workload_parser = commands.add_parser(
        "workload",
        help="synthesize streamed production-scale workloads "
             "(docs/workloads.md)")
    workload_commands = workload_parser.add_subparsers(
        dest="workload_command", required=True)
    synth_parser = workload_commands.add_parser(
        "synth", help="stream a synthesized workload into a replayable "
                      "trace and/or a durable journal")
    synth_parser.add_argument(
        "family", metavar="FAMILY", choices=list(FAMILY_NAMES),
        help=f"workload family ({', '.join(FAMILY_NAMES)})")
    synth_parser.add_argument(
        "-o", "--output", metavar="PATH", default=None,
        help="trace file to write (replay with `repro run --trace PATH`)")
    synth_parser.add_argument(
        "--journal", metavar="PATH", dest="journal_path", default=None,
        help="also (or instead) capture the stream as a durable "
             "hash-chained journal")
    synth_parser.add_argument(
        "--subscribers", type=int, default=1000, metavar="N",
        help="base subscriber population (default: 1000)")
    synth_parser.add_argument(
        "--events", type=int, default=5000, metavar="N",
        help="events published across the diurnal cycle (default: 5000)")
    synth_parser.add_argument(
        "--seed", type=int, default=0, metavar="N",
        help="master RNG seed (default: 0)")
    synth_parser.add_argument(
        "--backend", default="drtree:classic", metavar="NAME",
        help="backend recorded in the trace header (default: "
             "drtree:classic; replay can override it)")
    synth_parser.add_argument(
        "--set", action="append", default=[], metavar="KNOB=VALUE",
        dest="overrides",
        help="override a family knob (repeatable), e.g. --set exponent=1.4")
    describe_parser = workload_commands.add_parser(
        "describe", help="describe a workload family's knobs, or the spec "
                         "embedded in a synthesized trace's header")
    describe_parser.add_argument(
        "target", metavar="FAMILY|TRACE",
        help="a family name, or the path of a synthesized trace file")

    all_parser = commands.add_parser(
        "run-all", help="run every scenario (optionally in parallel)")
    all_parser.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="worker processes (default: 1)")
    all_parser.add_argument(
        "--only", metavar="NAMES",
        help="comma-separated subset of scenario names to run")
    all_parser.add_argument(
        "--seed", type=int, default=None,
        help="override the seed parameter of every scenario that has one")
    all_parser.add_argument(
        "--json", metavar="PATH", help="write merged outcomes as JSON to PATH")
    all_parser.add_argument(
        "--quiet", action="store_true", help="suppress the result tables")
    return parser


def _scenario_arg_parser(scenario: Scenario) -> argparse.ArgumentParser:
    """A parser exposing one scenario's declared parameters as ``--flags``."""
    parser = argparse.ArgumentParser(
        prog=f"repro run {scenario.name}",
        description=scenario.title,
    )
    for param in scenario.params:
        kwargs = {
            "dest": param.name,
            "type": param.type,
            "default": argparse.SUPPRESS,
            "help": f"{param.help or param.name} (default: {param.default!r})",
        }
        if param.choices is not None:
            kwargs["choices"] = list(param.choices)
        parser.add_argument(f"--{param.name.replace('_', '-')}", **kwargs)
    return parser


def _print_outcome(outcome: ScenarioOutcome, quiet: bool) -> None:
    if outcome.error is not None:
        print(f"{outcome.scenario}: FAILED after {outcome.duration_s:.2f}s: "
              f"{outcome.error}", file=sys.stderr)
        return
    if quiet:
        print(f"{outcome.scenario}: ok ({len(outcome.rows)} rows, "
              f"{outcome.duration_s:.2f}s)")
        return
    label = (f"{outcome.experiment_id} · {outcome.title}"
             if outcome.experiment_id else outcome.title)
    print(format_table(outcome.rows, title=f"{outcome.scenario}: {label}",
                       notes=outcome.notes))
    print(f"({outcome.duration_s:.2f}s)")
    print()


def _write_json(path: str, outcomes: Sequence[ScenarioOutcome]) -> None:
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(outcomes_to_json(outcomes), handle, indent=2, sort_keys=True)
        handle.write("\n")


def _cmd_list(verbose: bool) -> int:
    for scenario in REGISTRY.scenarios():
        tag = f" [{scenario.experiment_id}]" if scenario.experiment_id else ""
        defaults = " ".join(
            f"{param.name}={param.default!r}" for param in scenario.params
        )
        print(f"{scenario.name}{tag}: {scenario.title}")
        if defaults:
            print(f"    params: {defaults}")
        if verbose and scenario.description:
            print(f"    {scenario.description}")
        if verbose and scenario.replayable:
            print("    replayable: supports --record / --trace "
                  "(see docs/traces.md)")
        if verbose and scenario.backend_aware:
            print("    backend-aware: accepts --backend overrides "
                  "(see docs/api.md)")
        if verbose:
            for param in scenario.params:
                choice = (f" (choices: {list(param.choices)})"
                          if param.choices else "")
                print(f"    --{param.name}: {param.help or param.name}{choice}")
    return 0


def _write_metrics(path: str, outcome: ScenarioOutcome) -> None:
    from repro.traces.replay import dump_metrics

    with open(path, "w", encoding="utf-8") as handle:
        handle.write(dump_metrics(outcome.scenario, outcome.rows))


def _cmd_replay(trace_path: str, backend: Optional[str], verify: bool,
                json_path: Optional[str], metrics_path: Optional[str],
                quiet: bool) -> int:
    """Replay a recorded trace (``repro run --trace file.jsonl``)."""
    from repro.traces.io import read_trace
    from repro.traces.replay import execute_trace

    trace = read_trace(trace_path)
    start = time.perf_counter()
    result = execute_trace(trace, backend=backend, verify=verify)
    outcome = ScenarioOutcome(
        scenario=trace.header.scenario or "trace",
        title=result.title,
        params=dict(trace.header.params or {}),
        rows=[dict(row) for row in result.rows],
        notes=list(result.notes),
        duration_s=time.perf_counter() - start,
    )
    _print_outcome(outcome, quiet)
    if json_path:
        _write_json(json_path, [outcome])
    if metrics_path:
        _write_metrics(metrics_path, outcome)
    return 0


def _cmd_run(scenario_name: Optional[str], extra: List[str],
             json_path: Optional[str], quiet: bool,
             show_help: bool = False,
             record: Optional[str] = None,
             trace_path: Optional[str] = None,
             engine: Optional[str] = None,
             backend: Optional[str] = None,
             no_verify: bool = False,
             metrics_path: Optional[str] = None,
             journal_path: Optional[str] = None,
             snapshot_every: Optional[int] = None) -> int:
    if engine is not None:
        raise ScenarioError(
            f"--engine was removed; use --backend drtree:{engine} instead")
    if trace_path is not None and not show_help:
        if scenario_name is not None or record is not None:
            raise ScenarioError(
                "--trace replays a recorded file and cannot be combined "
                "with a scenario name or --record")
        if journal_path is not None:
            raise ScenarioError(
                "--journal captures a live run and cannot be combined with "
                "a --trace replay")
        if extra:
            raise ScenarioError(
                f"unrecognized arguments with --trace: {' '.join(extra)}")
        return _cmd_replay(trace_path, backend, not no_verify, json_path,
                           metrics_path, quiet)
    if no_verify and not show_help:
        raise ScenarioError(
            "--no-verify only applies to --trace replays")
    if snapshot_every is not None and journal_path is None and not show_help:
        raise ScenarioError("--snapshot-every only applies with --journal")
    if scenario_name is None:
        usage = ("usage: repro run <scenario> [--flags]\n"
                 "       repro run --trace FILE [--backend ...]\n"
                 f"available scenarios: {REGISTRY.names()}\n"
                 "`repro run <scenario> --help` shows the scenario's "
                 "typed parameter flags.")
        print(usage, file=sys.stderr if not show_help else sys.stdout)
        return 0 if show_help else 2
    scenario = REGISTRY.get(scenario_name)
    parser = _scenario_arg_parser(scenario)
    if show_help:
        parser.print_help()
        return 0
    overrides = vars(parser.parse_args(extra))
    if backend is not None:
        if not scenario.backend_aware:
            raise ScenarioError(
                f"scenario {scenario.name!r} is not backend-aware: it "
                "declares no backend parameter (see docs/api.md)")
        overrides["backend"] = backend
    if record is not None or journal_path is not None:
        from contextlib import ExitStack

        from repro.traces.io import write_trace
        from repro.traces.recorder import recording

        for flag, path in (("--record", record), ("--journal", journal_path)):
            if path is not None and not scenario.replayable:
                raise ScenarioError(
                    f"scenario {scenario.name!r} is not trace-replayable, so "
                    f"{flag} cannot capture it; replayable scenarios drive "
                    "every workload mutation through the pub/sub facade "
                    "(see docs/traces.md)")
        # recording() is entered first (outer) so a combined run tears the
        # journal down before the trace is finalized.
        with ExitStack() as stack:
            recorder = None
            if record is not None:
                recorder = stack.enter_context(
                    recording(scenario=scenario.name))
            journal_recorder = None
            if journal_path is not None:
                from repro.journal.recorder import (DEFAULT_SNAPSHOT_EVERY,
                                                    journaling)

                # Bind now so the journal header carries the *full* bound
                # parameter set — a resume re-runs exactly this request.
                bound = scenario.bind(**overrides)
                journal_recorder = stack.enter_context(journaling(
                    journal_path, scenario=scenario.name, params=bound,
                    snapshot_every=(snapshot_every
                                    if snapshot_every is not None
                                    else DEFAULT_SNAPSHOT_EVERY)))
            outcome = run_one(scenario.name, overrides)
            if recorder is not None:
                recorder.set_provenance(outcome.scenario, outcome.params)
            if journal_recorder is not None and outcome.ok:
                journal_recorder.seal()
        if journal_path is not None and not quiet:
            if outcome.ok:
                print(f"journaled and sealed {journal_path}")
            else:
                print(f"journal {journal_path} left unsealed (resume with "
                      f"`repro resume {journal_path}`)", file=sys.stderr)
        if record is not None:
            if outcome.ok:
                # Only completed runs are worth replaying: a trace cut short
                # by a scenario error would diverge from (or lack) its
                # expect rows.
                write_trace(record, recorder.build())
                if not quiet:
                    print(f"recorded {recorder.segments} segment(s) "
                          f"to {record}")
            else:
                print(f"not recording {record}: scenario failed",
                      file=sys.stderr)
    else:
        outcome = run_one(scenario.name, overrides)
    _print_outcome(outcome, quiet)
    if json_path:
        _write_json(json_path, [outcome])
    if metrics_path:
        _write_metrics(metrics_path, outcome)
    return 0 if outcome.ok else 1


def _cmd_resume(path: str, json_path: Optional[str],
                metrics_path: Optional[str], quiet: bool) -> int:
    """Resume an interrupted journaled run (``repro resume file``)."""
    from repro.journal import resume_journal

    outcome, report = resume_journal(path)
    print(report.describe())
    _print_outcome(outcome, quiet)
    if json_path:
        _write_json(json_path, [outcome])
    if metrics_path:
        _write_metrics(metrics_path, outcome)
    return 0 if outcome.ok else 1


def _cmd_journal(command: str, path: str, output: Optional[str] = None,
                 backend_a: Optional[str] = None,
                 backend_b: Optional[str] = None) -> int:
    """``repro journal verify|export|bisect``."""
    from repro.journal import (bisect_journal, journal_to_trace, read_journal,
                               verify_journal)

    if command == "verify":
        journal = verify_journal(path)
        state = "sealed" if journal.sealed else "unsealed (resumable)"
        print(f"{path}: OK — {len(journal.systems)} segment(s), "
              f"{len(journal.ops)} op(s), {len(journal.snapshots)} "
              f"snapshot(s), {state}")
        return 0
    if command == "export":
        from repro.traces.io import write_trace

        journal = read_journal(path)
        trace = journal_to_trace(journal)
        write_trace(output, trace)
        verified = ("replay-verifiable" if journal.sealed
                    else "no expect rows (journal is unsealed)")
        print(f"exported {len(trace.ops())} op(s) to {output} ({verified})")
        return 0
    result = bisect_journal(read_journal(path), backend_a, backend_b)
    print(result.describe())
    return 0 if result.identical else 1


def _parse_knob_overrides(pairs: Sequence[str]) -> dict:
    """Parse repeated ``--set knob=value`` pairs into typed overrides."""
    from repro.workloads.errors import WorkloadParameterError
    from repro.workloads.synth import coerce_spec_override

    overrides = {}
    for pair in pairs:
        knob, sep, value = pair.partition("=")
        if not sep or not knob:
            raise WorkloadParameterError(
                f"--set expects KNOB=VALUE, got {pair!r}")
        overrides[knob] = coerce_spec_override(knob, value)
    return overrides


def _cmd_workload_synth(family: str, output: Optional[str],
                        journal_path: Optional[str], subscribers: int,
                        events: int, seed: int, backend: str,
                        overrides: Sequence[str]) -> int:
    """``repro workload synth``: stream a family into trace/journal files."""
    from repro.workloads.synth import (SyntheticWorkload, write_synth_journal,
                                       write_synth_trace)

    if output is None and journal_path is None:
        raise ScenarioError(
            "workload synth needs a destination: -o TRACE and/or "
            "--journal JOURNAL")
    spec = SyntheticWorkload.from_family(
        family, subscribers=subscribers, events=events, seed=seed,
        **_parse_knob_overrides(overrides))
    if output is not None:
        report = write_synth_trace(output, spec, backend=backend)
        print(f"synthesized {report.ops} op(s) ({report.records} records, "
              f"{report.bytes} bytes) to {output}; replay with "
              f"`repro run --trace {output}`")
    if journal_path is not None:
        report = write_synth_journal(journal_path, spec, backend=backend)
        print(f"journaled {report.ops} op(s) ({report.bytes} bytes) to "
              f"{journal_path}; export with `repro journal export "
              f"{journal_path} -o TRACE`")
    return 0


def _cmd_workload_describe(target: str) -> int:
    """``repro workload describe``: a family's knobs or a trace's spec."""
    from pathlib import Path

    from repro.workloads.synth import (FAMILY_NAMES, FAMILY_PRESETS,
                                       SyntheticWorkload)

    if target in FAMILY_NAMES:
        preset = FAMILY_PRESETS[target]
        print(f"{preset.name}: {preset.description}")
        print()
        print("spec at --subscribers 1000 --events 5000 --seed 0 "
              "(every knob overridable with --set):")
        spec = SyntheticWorkload.from_family(target, subscribers=1000,
                                             events=5000)
        print(spec.describe())
        return 0
    if Path(target).exists():
        from repro.traces.io import read_trace

        spec = SyntheticWorkload.from_trace_header(read_trace(target).header)
        print(f"{target}: embedded synthesized workload spec")
        print(spec.describe())
        return 0
    from repro.workloads.errors import UnknownWorkloadFamilyError

    raise UnknownWorkloadFamilyError(target, FAMILY_NAMES)


def _cmd_run_all(jobs: int, only: Optional[str], seed: Optional[int],
                 json_path: Optional[str], quiet: bool) -> int:
    names = (only.split(",") if only else REGISTRY.names())
    requests = []
    for name in names:
        scenario = REGISTRY.get(name.strip())
        overrides = {}
        if seed is not None and any(p.name == "seed" for p in scenario.params):
            overrides["seed"] = seed
        requests.append(ScenarioRequest(scenario.name, overrides))
    outcomes = run_many(requests, jobs=jobs)
    for outcome in outcomes:
        _print_outcome(outcome, quiet)
    failed = [outcome.scenario for outcome in outcomes if not outcome.ok]
    if json_path:
        _write_json(json_path, outcomes)
    if failed:
        print(f"{len(failed)}/{len(outcomes)} scenarios failed: {failed}",
              file=sys.stderr)
        return 1
    print(f"{len(outcomes)} scenarios completed "
          f"({sum(o.duration_s for o in outcomes):.2f}s of scenario time)")
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = build_parser()
    args, extra = parser.parse_known_args(
        list(argv) if argv is not None else None
    )
    load_scenarios()
    try:
        if args.command == "list":
            if extra:
                parser.error(f"unrecognized arguments: {' '.join(extra)}")
            return _cmd_list(args.verbose)
        if args.command == "run":
            return _cmd_run(args.scenario, extra, args.json, args.quiet,
                            show_help=args.show_help,
                            record=args.record,
                            trace_path=args.trace_path,
                            engine=args.engine,
                            backend=args.backend,
                            no_verify=args.no_verify,
                            metrics_path=args.metrics_path,
                            journal_path=args.journal_path,
                            snapshot_every=args.snapshot_every)
        if extra:
            parser.error(f"unrecognized arguments: {' '.join(extra)}")
        if args.command == "resume":
            return _cmd_resume(args.journal, args.json, args.metrics_path,
                               args.quiet)
        if args.command == "journal":
            return _cmd_journal(args.journal_command, args.journal,
                                output=getattr(args, "output", None),
                                backend_a=getattr(args, "backend_a", None),
                                backend_b=getattr(args, "backend_b", None))
        if args.command == "workload":
            if args.workload_command == "synth":
                return _cmd_workload_synth(
                    args.family, args.output, args.journal_path,
                    args.subscribers, args.events, args.seed, args.backend,
                    args.overrides)
            return _cmd_workload_describe(args.target)
        return _cmd_run_all(args.jobs, args.only, args.seed, args.json,
                            args.quiet)
    except (ScenarioError, TraceFormatError, UnknownBackendError,
            WorkloadError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except TraceReplayError as exc:
        print(f"replay diverged: {exc}", file=sys.stderr)
        return 1
    except JournalCorruptError as exc:
        print(f"journal corrupt: {exc}", file=sys.stderr)
        return 1
    except JournalResumeError as exc:
        print(f"resume failed: {exc}", file=sys.stderr)
        return 1
    except JournalError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover - module execution convenience
    raise SystemExit(main())

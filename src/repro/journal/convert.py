"""Journal interop: export to a replayable trace, bisect across backends.

:func:`journal_to_trace` lowers a verified journal into the trace format
(:mod:`repro.traces.format`): the chain fields, per-op indices, ``auto``
markers and snapshots are journal-only machinery and are dropped; what
remains — system records and the op sequence — is exactly a trace body.  A
*sealed* journal additionally carries its final metrics rows, which become
the trace's ``expect`` records, so ``repro run --trace`` verifies the
exported file bit-identically.  Journals recording typed engine options
export as version-2 traces (the first trace version to carry them).

:func:`bisect_journal` replays one journal against *two* backends in
lockstep and reports the first publish whose delivery outcome diverges —
the debugging tool for "these engines are supposed to be outcome-identical,
where do they first disagree?".  Each publish is compared on the audited
outcome (received set, false positives, message count, max hops), the level
at which the DR-tree engines are equivalent by construction.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Dict, List, Optional

from repro.journal.io import Journal
from repro.journal.records import JournalSystem
from repro.traces.format import (ExpectRecord, OpRecord, SystemRecord, Trace,
                                 TraceHeader)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.api.broker import Broker


def journal_to_trace(journal: Journal) -> Trace:
    """Lower ``journal`` into an in-memory :class:`~repro.traces.format.Trace`.

    Works on sealed and unsealed journals alike; only sealed ones produce
    ``expect`` rows (an interrupted run has no final metrics to promise).
    """
    from repro.traces.recorder import _legacy_batch_flag

    header = journal.header
    systems = journal.systems
    version = 2 if any(system.engine_options for system in systems) else 1
    trace = Trace(header=TraceHeader(
        scenario=header.scenario,
        params=dict(header.params) if header.params is not None else None,
        backend=systems[0].backend if systems else None,
        version=version,
    ))
    for system in systems:
        trace.body.append(SystemRecord(
            seg=system.seg,
            t=system.t,
            space=tuple(system.space),
            seed=system.seed,
            batch=_legacy_batch_flag(system.backend),
            backend=system.backend,
            stabilize_rounds=system.stabilize_rounds,
            config=dict(system.config),
            engine_options=(dict(system.engine_options)
                            if system.engine_options else None),
        ))
    for op in journal.ops:
        trace.body.append(OpRecord(seg=op.seg, op=op.op, data=dict(op.data),
                                   t=op.t))
    if journal.sealed:
        trace.expects = [ExpectRecord(seg=seg, row=dict(row))
                         for seg, row in sorted(journal.finals.items())]
    return trace


# --------------------------------------------------------------------------- #
# Bisect: first diverging delivery outcome between two backends
# --------------------------------------------------------------------------- #


@dataclass(frozen=True)
class BisectDivergence:
    """The first journaled publish the two backends disagree on."""

    seg: int
    #: The op's dense per-segment index (as shown by the journal records).
    n: int
    event_id: str
    #: Which outcome fields differ (subset of received/false_positives/
    #: messages/max_hops).
    fields: List[str]
    a: Dict[str, Any]
    b: Dict[str, Any]


@dataclass
class BisectResult:
    """Outcome of :func:`bisect_journal`."""

    backend_a: str
    backend_b: str
    ops_applied: int = 0
    publishes_compared: int = 0
    divergence: Optional[BisectDivergence] = None

    @property
    def identical(self) -> bool:
        """True when every compared publish produced the same outcome."""
        return self.divergence is None

    def describe(self) -> str:
        if self.identical:
            return (f"{self.backend_a} and {self.backend_b} agree on all "
                    f"{self.publishes_compared} journaled publication(s) "
                    f"({self.ops_applied} ops applied)")
        d = self.divergence
        return (f"first divergence at segment {d.seg} op {d.n} "
                f"(event {d.event_id!r}): fields {d.fields} differ\n"
                f"  {self.backend_a}: {d.a}\n"
                f"  {self.backend_b}: {d.b}")


def _build_for_bisect(record: JournalSystem, backend: str) -> "Broker":
    from repro.api.registry import normalize_backend
    from repro.api.spec import SystemSpec
    from repro.overlay.config import DRTreeConfig
    from repro.spatial.filters import make_space

    backend = normalize_backend(backend)
    # Engine options never change delivery outcomes and rarely transfer
    # across engines (e.g. shards= is sharded-only), so they ride along only
    # when the journal's own backend is being rebuilt.
    options = (dict(record.engine_options)
               if record.engine_options and backend == record.backend
               else None)
    return SystemSpec(
        space=make_space(*record.space),
        backend=backend,
        config=DRTreeConfig(**record.config) if record.config else None,
        seed=record.seed,
        stabilize_rounds=record.stabilize_rounds,
        engine_options=options,
    ).build()


def _outcome_row(outcome: Any) -> Dict[str, Any]:
    return {
        "received": sorted(outcome.received),
        "false_positives": sorted(outcome.false_positives),
        "messages": int(outcome.messages),
        "max_hops": int(outcome.max_hops),
    }


def bisect_journal(journal: Journal, backend_a: str,
                   backend_b: str) -> BisectResult:
    """Replay ``journal`` on two backends; stop at the first divergence."""
    from repro.api.registry import normalize_backend
    from repro.traces.replay import _apply_op

    result = BisectResult(backend_a=normalize_backend(backend_a),
                          backend_b=normalize_backend(backend_b))
    systems_a: Dict[int, "Broker"] = {}
    systems_b: Dict[int, "Broker"] = {}
    for system in journal.systems:
        systems_a[system.seg] = _build_for_bisect(system, result.backend_a)
        systems_b[system.seg] = _build_for_bisect(system, result.backend_b)
    for op in journal.ops:
        _apply_op(systems_a[op.seg], op)
        _apply_op(systems_b[op.seg], op)
        result.ops_applied += 1
        if op.op != "publish":
            continue
        event_id = op.data["event"]["id"]
        row_a = _outcome_row(systems_a[op.seg].accounting.outcomes[event_id])
        row_b = _outcome_row(systems_b[op.seg].accounting.outcomes[event_id])
        result.publishes_compared += 1
        if row_a != row_b:
            result.divergence = BisectDivergence(
                seg=op.seg, n=op.n, event_id=event_id,
                fields=sorted(key for key in row_a
                              if row_a[key] != row_b[key]),
                a=row_a, b=row_b)
            break
    return result

"""Resume gates: skipping already-journaled facade operations.

When an interrupted journal is resumed (:mod:`repro.journal.resume`), the
scenario is re-run *from the beginning* — but the broker has already been
restored to its journaled state (snapshot + tail re-execution), so the
operations the scenario re-issues must not execute a second time.  A
:class:`ReplayGate` installed on the broker intercepts every facade call at
the top of the method — before any argument validation, because validation
runs against state in which the operation has already happened (e.g. a
re-issued ``subscribe`` would trip the duplicate-name check).

Each intercepted call is checked against the next journaled op: same
operation, same canonical payload (the exact transforms the journal tape
applies).  A match is *skipped* — the gate returns the result the original
call produced, derived from the restored state.  Any mismatch raises
:class:`~repro.journal.errors.JournalResumeError`: the scenario is not
deterministic in its parameters, and silently diverging would corrupt the
journal.  Once every journaled op has been matched the gate goes inactive
and returns :data:`EXECUTE` forever; from then on operations run (and are
journaled) normally.

``publish`` is compared on the event alone, not the resolved publisher:
publisher resolution is a pure function of subscription state, which the
payload check already pins.  For events whose id the facade auto-assigned
at record time, the gate adopts the journaled id directly — the restore
path (snapshot plus tail re-execution) has already advanced the broker's id
counter past the whole journaled prefix, so consuming again would skew it.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, List, Optional, Sequence

from repro.journal.errors import JournalResumeError
from repro.spatial.filters import Event, Subscription
from repro.traces.format import event_to_json, subscription_to_json
from repro.traces.io import dump_record

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.api.broker import Broker
    from repro.journal.records import JournalOp

#: Sentinel a gate returns when the call was *not* intercepted and the
#: facade must execute the operation for real.  Distinct from ``None``,
#: which is the legitimate skipped-call result of several operations.
EXECUTE = object()


class NullGate:
    """The always-pass-through gate every broker holds outside a resume."""

    active = False

    def subscribe(self, subscription, stabilize) -> Any:
        return EXECUTE

    def subscribe_all(self, subscriptions, stabilize, bulk) -> Any:
        return EXECUTE

    def unsubscribe(self, subscriber_id) -> Any:
        return EXECUTE

    def crash(self, subscriber_id, stabilize) -> Any:
        return EXECUTE

    def move(self, subscriber_id, subscription, stabilize) -> Any:
        return EXECUTE

    def publish(self, event) -> Any:
        return EXECUTE

    def stabilize(self, max_rounds) -> Any:
        return EXECUTE


#: Shared stateless instance handed to every broker outside resumes.
NULL_GATE = NullGate()


class ReplayGate:
    """Validates and skips the journaled prefix of a resumed run."""

    def __init__(self, system: "Broker",
                 ops: Sequence["JournalOp"]) -> None:
        self._system = system
        self._ops: List["JournalOp"] = list(ops)
        self._cursor = 0

    @property
    def active(self) -> bool:
        """True while journaled ops remain to be matched."""
        return self._cursor < len(self._ops)

    @property
    def skipped(self) -> int:
        """Number of journaled ops matched (and skipped) so far."""
        return self._cursor

    @property
    def journaled(self) -> int:
        return len(self._ops)

    # -- matching helpers ------------------------------------------------ #

    def _next(self, opname: str) -> Optional["JournalOp"]:
        if self._cursor >= len(self._ops):
            return None
        record = self._ops[self._cursor]
        if record.op != opname:
            raise JournalResumeError(
                f"rerun diverged from the journal at segment {record.seg} "
                f"op {record.n}: journal has {record.op!r}, the rerun "
                f"issued {opname!r}")
        self._cursor += 1
        return record

    def _check(self, record: "JournalOp", payload: dict) -> None:
        # Canonical-JSON comparison absorbs representation noise (tuple vs
        # list, int vs float) exactly as the on-disk form does.
        if dump_record(payload) != dump_record(record.data):
            raise JournalResumeError(
                f"rerun diverged from the journal at segment {record.seg} "
                f"op {record.n} ({record.op!r}): journaled payload "
                f"{record.data!r}, reissued {payload!r}")

    # -- one method per facade operation --------------------------------- #

    def subscribe(self, subscription: Subscription, stabilize: bool) -> Any:
        record = self._next("subscribe")
        if record is None:
            return EXECUTE
        self._check(record, {
            "subscription": subscription_to_json(subscription),
            "stabilize": bool(stabilize),
        })
        return subscription.name

    def subscribe_all(self, subscriptions: Sequence[Subscription],
                      stabilize: bool, bulk: Optional[bool]) -> Any:
        record = self._next("subscribe_all")
        if record is None:
            return EXECUTE
        subs = list(subscriptions)
        self._check(record, {
            "subscriptions": [subscription_to_json(sub) for sub in subs],
            "stabilize": bool(stabilize),
            "bulk": bulk if bulk is None else bool(bulk),
        })
        return [sub.name for sub in subs]

    def unsubscribe(self, subscriber_id: str) -> Any:
        record = self._next("unsubscribe")
        if record is None:
            return EXECUTE
        self._check(record, {"id": subscriber_id})
        return None

    def crash(self, subscriber_id: str, stabilize: bool) -> Any:
        record = self._next("crash")
        if record is None:
            return EXECUTE
        self._check(record, {"id": subscriber_id,
                             "stabilize": bool(stabilize)})
        return None

    def move(self, subscriber_id: str, subscription: Subscription,
             stabilize: bool) -> Any:
        record = self._next("move")
        if record is None:
            return EXECUTE
        self._check(record, {
            "id": subscriber_id,
            "subscription": subscription_to_json(subscription),
            "stabilize": bool(stabilize),
        })
        return subscription.name

    def publish(self, event: Event) -> Any:
        record = self._next("publish")
        if record is None:
            return EXECUTE
        if not event.event_id:
            if not record.auto:
                raise JournalResumeError(
                    f"rerun diverged at segment {record.seg} op {record.n}: "
                    "the journal recorded an explicitly-named event, the "
                    "rerun published an unnamed one")
            # Adopt the journaled id without touching the live counter: the
            # snapshot restore (plus tail re-execution) already advanced the
            # counter past the whole journaled prefix.
            event = Event(dict(event.attributes),
                          event_id=record.data["event"]["id"])
        elif record.auto:
            raise JournalResumeError(
                f"rerun diverged at segment {record.seg} op {record.n}: "
                "the journal recorded a facade-assigned event id, the rerun "
                f"published {event.event_id!r} explicitly")
        recorded = record.data["event"]
        if dump_record(event_to_json(event)) != dump_record(recorded):
            raise JournalResumeError(
                f"rerun diverged at segment {record.seg} op {record.n} "
                f"('publish'): journaled event {recorded!r}, reissued "
                f"{event_to_json(event)!r}")
        outcome = self._system.accounting.outcomes.get(event.event_id)
        if outcome is None:
            raise JournalResumeError(
                f"journaled publish {event.event_id!r} has no accounted "
                "outcome after restore (snapshot and journal disagree)")
        return outcome

    def stabilize(self, max_rounds: Optional[int]) -> Any:
        record = self._next("stabilize")
        if record is None:
            return EXECUTE
        self._check(record, {"max_rounds": max_rounds})
        return None

"""Durable hash-chained op journal with snapshot/resume crash recovery.

The trace subsystem (:mod:`repro.traces`) answers "re-run this finished
experiment bit-identically"; this package answers "the run *died* — pick it
up where it stopped".  A journal is a write-ahead log of every facade
operation, flushed durably as it happens, with each record carrying its
position in a SHA-256 hash chain (tampering, reordering and mid-file
truncation are detected on open) and periodic full broker snapshots so
recovery replays only a short tail.

Typical shapes::

    # capture (CLI: repro run hotspot --journal run.log)
    with journaling("run.log", scenario="hotspot", params=bound) as rec:
        outcome = run_one("hotspot", bound)
        if outcome.ok:
            rec.seal()

    # recover after a crash (CLI: repro resume run.log)
    outcome, report = resume_journal("run.log")

    # audit / interop (CLI: repro journal verify|export|bisect)
    verify_journal("run.log")
    trace = journal_to_trace(read_journal("run.log"))
    result = bisect_journal(read_journal("run.log"),
                            "drtree:classic", "drtree:sharded")

See ``docs/journal.md`` for the format reference and the recovery model.
"""

from repro.journal.convert import (BisectDivergence, BisectResult,
                                   bisect_journal, journal_to_trace)
from repro.journal.errors import (JournalCorruptError, JournalError,
                                  JournalFormatError, JournalResumeError)
from repro.journal.io import Journal, JournalWriter, read_journal, verify_journal
from repro.journal.records import (JOURNAL_FORMAT, JOURNAL_VERSION,
                                   JournalHeader, JournalOp, JournalSnapshot,
                                   JournalSystem)
from repro.journal.recorder import (DEFAULT_SNAPSHOT_EVERY, JournalRecorder,
                                    active_journal, journaling)
from repro.journal.resume import ResumeReport, SegmentResume, resume_journal

__all__ = [
    "JOURNAL_FORMAT",
    "JOURNAL_VERSION",
    "DEFAULT_SNAPSHOT_EVERY",
    "Journal",
    "JournalWriter",
    "JournalHeader",
    "JournalOp",
    "JournalSnapshot",
    "JournalSystem",
    "JournalError",
    "JournalFormatError",
    "JournalCorruptError",
    "JournalResumeError",
    "JournalRecorder",
    "journaling",
    "active_journal",
    "read_journal",
    "verify_journal",
    "resume_journal",
    "ResumeReport",
    "SegmentResume",
    "journal_to_trace",
    "bisect_journal",
    "BisectResult",
    "BisectDivergence",
]

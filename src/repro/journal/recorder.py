"""Journaling live runs: durable write-ahead capture with snapshots.

While a :func:`journaling` context is active, every broker constructed in
the process attaches itself to the active :class:`JournalRecorder` exactly
as it does to the trace recorder (:mod:`repro.traces.recorder`) — the two
compose, and a run can be journaled and trace-recorded at once.  The
difference is *when* records hit disk: the trace recorder buffers in memory
and writes a complete file on clean exit, while the journal writer appends
every operation durably the moment it succeeds (``write`` + ``flush``; see
:mod:`repro.journal.io` for the fsync batching).  Kill the process at any
instant and the journal holds an intact, chain-verified prefix of the run.

Every ``snapshot_every`` ops of a segment the recorder also embeds a full
broker snapshot (``Broker.snapshot()``, zlib + base64) — taken only at
quiescence and only from brokers advertising the ``snapshot`` capability —
so recovery replays the short tail after the latest snapshot instead of the
whole history.

The same recorder runs the *resume* side: constructed over an unsealed
:class:`~repro.journal.io.Journal`, each attaching broker is checked
against its journaled system record, restored from the latest snapshot,
driven through the journaled tail ops, and fitted with a
:class:`~repro.journal.gate.ReplayGate` that skips (and validates) the
journaled prefix as the scenario re-runs.  New operations past the prefix
continue the hash chain in place.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import (TYPE_CHECKING, Any, Dict, List, Optional, Sequence,
                    Union)

from repro.journal.errors import JournalResumeError
from repro.journal.gate import ReplayGate
from repro.journal.io import Journal, JournalWriter
from repro.journal.records import (JournalHeader, JournalOp, JournalSnapshot,
                                   JournalSystem, compress_snapshot,
                                   decompress_snapshot)
from repro.traces.errors import TraceReplayError
from repro.traces.format import event_to_json, subscription_to_json

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.api.broker import Broker
    from repro.spatial.filters import Event, Subscription

#: Default snapshot cadence: one full snapshot every this many ops per
#: segment (0 disables snapshots; recovery then replays from the start).
DEFAULT_SNAPSHOT_EVERY = 25

#: The process-wide active journal recorder (None outside journaling()).
_ACTIVE: Optional["JournalRecorder"] = None


def active_journal() -> Optional["JournalRecorder"]:
    """The recorder of the enclosing :func:`journaling` context, if any."""
    return _ACTIVE


class JournalTape:
    """Per-system journal handle (the trace tape surface, plus ``auto_id``).

    ``n`` is the dense per-segment op index the next journaled op gets; a
    resumed segment starts it at the journaled op count so the chain stays
    dense across the crash.
    """

    def __init__(self, recorder: "JournalRecorder", system: "Broker",
                 seg: int, start_n: int = 0) -> None:
        self._recorder = recorder
        self._system = system
        self.seg = seg
        self.n = start_n

    def now(self) -> float:
        """The system's current logical time (the op *issue* time)."""
        return float(self._system.clock())

    def _record(self, t: float, op: str, auto: bool = False,
                **data: Any) -> None:
        self._recorder._add_op(self, JournalOp(seg=self.seg, n=self.n, op=op,
                                               data=data, t=t, auto=auto))

    # -- one method per facade operation (same payloads as SystemTape) --- #

    def subscribe(self, t: float, subscription: "Subscription",
                  stabilize: bool) -> None:
        self._record(t, "subscribe",
                     subscription=subscription_to_json(subscription),
                     stabilize=bool(stabilize))

    def subscribe_all(self, t: float, subscriptions: List["Subscription"],
                      stabilize: bool, bulk: Optional[bool]) -> None:
        self._record(t, "subscribe_all",
                     subscriptions=[subscription_to_json(sub)
                                    for sub in subscriptions],
                     stabilize=bool(stabilize),
                     bulk=bulk if bulk is None else bool(bulk))

    def unsubscribe(self, t: float, subscriber_id: str) -> None:
        self._record(t, "unsubscribe", id=subscriber_id)

    def crash(self, t: float, subscriber_id: str, stabilize: bool) -> None:
        self._record(t, "crash", id=subscriber_id, stabilize=bool(stabilize))

    def move(self, t: float, subscriber_id: str,
             subscription: "Subscription", stabilize: bool) -> None:
        self._record(t, "move", id=subscriber_id,
                     subscription=subscription_to_json(subscription),
                     stabilize=bool(stabilize))

    def publish(self, t: float, event: "Event", publisher_id: str,
                auto_id: bool = False) -> None:
        self._record(t, "publish", auto=bool(auto_id),
                     event=event_to_json(event), publisher=publisher_id)

    def stabilize(self, t: float, max_rounds: Optional[int]) -> None:
        self._record(t, "stabilize", max_rounds=max_rounds)


@dataclass(frozen=True)
class SegmentPlan:
    """What the journal already holds for one segment (resume input)."""

    system: JournalSystem
    ops: List[JournalOp]
    snapshot: Optional[JournalSnapshot]


@dataclass(frozen=True)
class SegmentStats:
    """How one segment was brought back during a resume."""

    #: Ops the journal held for this segment.
    journaled: int
    #: Ops covered by the snapshot the broker was restored from (0 if none).
    snapshot_ops: int
    #: Ops re-executed for real — exactly the tail after the snapshot.
    reexecuted: int


class JournalRecorder:
    """Owns one journal file: writes the chain, drives resumes."""

    def __init__(self, path: Union[str, Path],
                 scenario: Optional[str] = None,
                 params: Optional[Dict[str, Any]] = None,
                 snapshot_every: int = DEFAULT_SNAPSHOT_EVERY,
                 fsync_every: int = 32,
                 resume: Optional[Journal] = None) -> None:
        self.path = Path(path)
        if snapshot_every < 0:
            raise ValueError("snapshot_every must be >= 0")
        self.snapshot_every = int(snapshot_every)
        self._systems: List["Broker"] = []
        self._gates: Dict[int, ReplayGate] = {}
        self.segment_stats: Dict[int, SegmentStats] = {}
        self._sealed = False
        self._closed = False
        if resume is None:
            self._plan: List[SegmentPlan] = []
            self._writer = JournalWriter(self.path, fsync_every=fsync_every)
            self._writer.append(JournalHeader(
                scenario=scenario, params=params,
                snapshot_every=self.snapshot_every).to_json())
        else:
            # Resume: the header (and its snapshot cadence) is already on
            # disk; the plan is everything the intact chain holds.
            self.snapshot_every = resume.header.snapshot_every
            self._plan = [
                SegmentPlan(system=system, ops=resume.ops_for(system.seg),
                            snapshot=resume.snapshot_for(system.seg))
                for system in resume.systems
            ]
            self._writer = JournalWriter.resume(resume,
                                                fsync_every=fsync_every)

    @property
    def segments(self) -> int:
        """Number of systems journaled so far."""
        return len(self._systems)

    @property
    def sealed(self) -> bool:
        return self._sealed

    # -- capture --------------------------------------------------------- #

    def attach(self, system: "Broker") -> JournalTape:
        """Register a newly constructed broker; returns its journal tape.

        In resume mode the first ``len(plan)`` attachments are matched
        against the journaled segments and brought back to their pre-crash
        state before the tape is handed out.
        """
        if self._closed:
            raise RuntimeError("this journaling() context has already exited")
        seg = len(self._systems)
        self._systems.append(system)
        if seg < len(self._plan):
            return self._resume_segment(system, seg, self._plan[seg])
        spec = system.spec
        self._writer.append(JournalSystem(
            seg=seg,
            t=float(system.clock()),
            space=tuple(spec.space.names),
            backend=spec.backend,
            seed=int(spec.seed),
            stabilize_rounds=int(spec.stabilize_rounds),
            config=asdict(spec.config) if spec.config is not None else {},
            engine_options=(dict(spec.engine_options)
                            if spec.engine_options else None),
        ).to_json())
        return JournalTape(self, system, seg)

    def _add_op(self, tape: JournalTape, op: JournalOp) -> None:
        self._writer.append(op.to_json())
        tape.n += 1
        self._maybe_snapshot(tape)

    def _maybe_snapshot(self, tape: JournalTape) -> None:
        from repro.api.capabilities import supports_snapshot

        if self.snapshot_every <= 0 or tape.n % self.snapshot_every != 0:
            return
        system = tape._system
        # Snapshots are best-effort: a broker without the capability (or one
        # that is somehow not quiescent) just means a longer replay tail.
        if not supports_snapshot(system) or not system.quiescent():
            return
        blob = compress_snapshot(system.snapshot())
        self._writer.append(JournalSnapshot(
            seg=tape.seg, ops=tape.n, t=float(system.clock()),
            blob=blob).to_json())

    # -- resume ---------------------------------------------------------- #

    def _resume_segment(self, system: "Broker", seg: int,
                        plan: SegmentPlan) -> JournalTape:
        from repro.api.capabilities import require_snapshot
        from repro.traces.replay import _apply_op

        record = plan.system
        spec = system.spec
        mismatches = []
        if tuple(spec.space.names) != tuple(record.space):
            mismatches.append(f"space {tuple(spec.space.names)!r} != "
                              f"journaled {tuple(record.space)!r}")
        if spec.backend != record.backend:
            mismatches.append(f"backend {spec.backend!r} != journaled "
                              f"{record.backend!r}")
        if int(spec.seed) != record.seed:
            mismatches.append(f"seed {spec.seed} != journaled {record.seed}")
        if int(spec.stabilize_rounds) != record.stabilize_rounds:
            mismatches.append(
                f"stabilize_rounds {spec.stabilize_rounds} != journaled "
                f"{record.stabilize_rounds}")
        if mismatches:
            raise JournalResumeError(
                f"segment {seg} was rebuilt with a different spec than the "
                f"journal records: " + "; ".join(mismatches))

        start = 0
        if plan.snapshot is not None:
            require_snapshot(system)
            system.restore(decompress_snapshot(plan.snapshot.blob))
            start = plan.snapshot.ops
        for op in plan.ops[start:]:
            if op.op == "publish" and op.auto:
                # Keep the facade's id counter in lockstep with the journal:
                # the original call drew the id, the re-execution publishes
                # it explicitly.
                assigned = system.consume_event_id()
                recorded = op.data["event"]["id"]
                if assigned != recorded:
                    raise JournalResumeError(
                        f"segment {seg} op {op.n}: event-id counter "
                        f"diverged (journal {recorded!r}, restored broker "
                        f"would assign {assigned!r})")
            try:
                _apply_op(system, op)
            except TraceReplayError as exc:
                raise JournalResumeError(
                    f"segment {seg}: journaled op {op.n} ({op.op!r}) "
                    f"failed to re-execute: {exc}") from exc

        gate = ReplayGate(system, plan.ops)
        system.install_gate(gate)
        self._gates[seg] = gate
        self.segment_stats[seg] = SegmentStats(
            journaled=len(plan.ops), snapshot_ops=start,
            reexecuted=len(plan.ops) - start)
        return JournalTape(self, system, seg, start_n=len(plan.ops))

    # -- completion ------------------------------------------------------ #

    def seal(self) -> None:
        """Mark the run complete: final metrics rows, then the close record.

        Only call after the run finished successfully — a sealed journal
        cannot be resumed.  In resume mode, refuses to seal while any gate
        still holds unmatched journaled ops (the rerun fell short of the
        journal, which is a divergence, not a completion).
        """
        from repro.traces.replay import delivery_metrics_row

        if self._sealed:
            raise ValueError("journal is already sealed")
        for seg, gate in sorted(self._gates.items()):
            if gate.active:
                raise JournalResumeError(
                    f"rerun issued only {gate.skipped} of {gate.journaled} "
                    f"journaled ops in segment {seg}; refusing to seal a "
                    "diverged journal")
        for seg, system in enumerate(self._systems):
            self._writer.append({"rec": "final", "seg": seg,
                                 "row": delivery_metrics_row(system, seg)})
        self._writer.append({"rec": "close"})
        self._sealed = True

    def close(self) -> None:
        """Close the writer and detach every tape (idempotent).

        Without a prior :meth:`seal` the journal is left *unsealed* — the
        durable record of an incomplete run, exactly what ``repro resume``
        consumes.
        """
        if self._closed:
            return
        self._closed = True
        self._writer.close()
        for system in self._systems:
            system.detach_tape()


@contextmanager
def journaling(path: Optional[Union[str, Path]] = None,
               scenario: Optional[str] = None,
               params: Optional[Dict[str, Any]] = None,
               snapshot_every: int = DEFAULT_SNAPSHOT_EVERY,
               fsync_every: int = 32,
               resume: Optional[Journal] = None):
    """Journal every broker built inside the ``with`` block.

    Yields the :class:`JournalRecorder`.  The caller marks success by
    calling :meth:`JournalRecorder.seal` before the block exits; exiting
    without sealing leaves a resumable journal (that is what makes scenario
    failures and crashes recoverable rather than fatal).  Pass ``resume=``
    (a verified unsealed :class:`~repro.journal.io.Journal`) to continue an
    interrupted run in place; ``path`` is then taken from the journal.

    Nesting journaling contexts is not supported, and a resume cannot run
    inside a :func:`repro.traces.recorder.recording` context (the trace
    would double-record the restored prefix).
    """
    global _ACTIVE
    if _ACTIVE is not None:
        raise RuntimeError("a journaling context is already active")
    if resume is not None:
        from repro.traces.recorder import active_recorder

        if active_recorder() is not None:
            raise RuntimeError(
                "cannot resume a journal inside a recording() context")
        recorder = JournalRecorder(resume.path, fsync_every=fsync_every,
                                   resume=resume)
    else:
        if path is None:
            raise ValueError("journaling() needs a path for a new journal")
        recorder = JournalRecorder(path, scenario=scenario, params=params,
                                   snapshot_every=snapshot_every,
                                   fsync_every=fsync_every)
    _ACTIVE = recorder
    try:
        yield recorder
    finally:
        _ACTIVE = None
        recorder.close()

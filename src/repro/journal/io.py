"""Durable journal I/O: the fsync-batched writer and the verifying reader.

The writer appends one canonical JSON line per record and flushes the OS
page cache after every line — that is what makes a journal survive a
``SIGKILL`` of the writing process.  ``fsync`` (which additionally survives
power loss) is batched: every ``fsync_every`` records, plus always on
snapshot, final and close records and on writer close.

The reader walks the hash chain front to back.  Its torn-tail policy:

* tolerant (``strict=False``, what ``repro resume`` uses): a **final** line
  that fails to parse as JSON is treated as a torn write and dropped —
  ``Journal.valid_bytes`` marks where the intact prefix ends so a resumed
  writer can truncate and continue the chain.  Everything else that fails
  to verify is corruption.
* strict (``verify_journal`` / ``repro journal verify``): a torn tail is
  also an error, and every line's bytes must equal the canonical re-dump
  of its record (so even cosmetic edits — reordered keys, added
  whitespace — are reported).
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple, Union

from repro.journal.errors import (JournalCorruptError, JournalFormatError)
from repro.journal.records import (GENESIS_HASH, JournalHeader, JournalOp,
                                   JournalSnapshot, JournalSystem, chain_hash,
                                   parse_final, parse_header, parse_op,
                                   parse_snapshot, parse_system, seal_record)
from repro.traces.io import dump_record

#: Record kinds whose durability matters enough to always fsync.
_SYNC_KINDS = frozenset({"snapshot", "final", "close"})


class JournalWriter:
    """Append-only, hash-chained record writer.

    Use as a context manager, or call :meth:`close` explicitly.  ``append``
    takes a *payload* record (no chain fields) and seals it into the chain.
    """

    def __init__(self, path: Union[str, Path], fsync_every: int = 32,
                 _resume_from: Optional[Tuple[int, str, int]] = None) -> None:
        self.path = Path(path)
        if fsync_every < 1:
            raise ValueError("fsync_every must be at least 1")
        self.fsync_every = int(fsync_every)
        self._since_sync = 0
        self._closed = False
        if _resume_from is None:
            self._seq = 0
            self._prev = GENESIS_HASH
            self._file = open(self.path, "xb")
        else:
            next_seq, prev_hash, valid_bytes = _resume_from
            self._seq = next_seq
            self._prev = prev_hash
            self._file = open(self.path, "r+b")
            self._file.truncate(valid_bytes)
            self._file.seek(valid_bytes)

    @classmethod
    def resume(cls, journal: "Journal",
               fsync_every: int = 32) -> "JournalWriter":
        """Continue the chain of an unsealed ``journal`` in place.

        Any torn tail bytes past ``journal.valid_bytes`` are truncated away.
        """
        if journal.sealed:
            raise JournalFormatError(
                f"journal {journal.path} is sealed (the run completed); "
                f"there is nothing to resume")
        return cls(journal.path, fsync_every=fsync_every,
                   _resume_from=(journal.next_seq, journal.last_hash,
                                 journal.valid_bytes))

    @property
    def records_written(self) -> int:
        return self._seq

    def append(self, record: Dict[str, Any]) -> Dict[str, Any]:
        """Seal ``record`` into the chain and write it durably."""
        if self._closed:
            raise ValueError("journal writer is closed")
        sealed = seal_record(record, self._seq, self._prev)
        self._file.write(dump_record(sealed).encode("utf-8") + b"\n")
        # flush() pushes the line into the page cache: it now survives the
        # death of this process, which is the crash mode recovery targets.
        self._file.flush()
        self._seq += 1
        self._prev = sealed["hash"]
        self._since_sync += 1
        if (self._since_sync >= self.fsync_every
                or sealed.get("rec") in _SYNC_KINDS):
            self.sync()
        return sealed

    def sync(self) -> None:
        """Force the journal to stable storage (survives power loss)."""
        if not self._closed:
            os.fsync(self._file.fileno())
            self._since_sync = 0

    def close(self) -> None:
        if not self._closed:
            self._file.flush()
            os.fsync(self._file.fileno())
            self._file.close()
            self._closed = True

    def __enter__(self) -> "JournalWriter":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


@dataclass
class Journal:
    """A verified journal: typed views over the intact record chain."""

    path: Path
    header: JournalHeader
    systems: List[JournalSystem] = field(default_factory=list)
    ops: List[JournalOp] = field(default_factory=list)
    snapshots: List[JournalSnapshot] = field(default_factory=list)
    finals: Dict[int, Dict[str, Any]] = field(default_factory=dict)
    sealed: bool = False
    #: Byte length of the intact chain prefix (file may be longer when a
    #: torn tail was dropped by the tolerant reader).
    valid_bytes: int = 0
    #: Number of intact records, i.e. the next record's ``seq``.
    next_seq: int = 0
    #: Hash of the last intact record (``prev`` of the next one).
    last_hash: str = GENESIS_HASH
    #: True when the tolerant reader dropped a torn final line.
    torn_tail: bool = False

    def system_for(self, seg: int) -> JournalSystem:
        for system in self.systems:
            if system.seg == seg:
                return system
        raise JournalFormatError(f"journal has no system record for "
                                 f"segment {seg}")

    def ops_for(self, seg: int) -> List[JournalOp]:
        return [op for op in self.ops if op.seg == seg]

    def snapshot_for(self, seg: int) -> Optional[JournalSnapshot]:
        """The latest snapshot of ``seg``, or None."""
        latest: Optional[JournalSnapshot] = None
        for snapshot in self.snapshots:
            if snapshot.seg == seg:
                latest = snapshot
        return latest

    @property
    def segments(self) -> List[int]:
        return [system.seg for system in self.systems]


def _verify_chain_fields(raw: Dict[str, Any], index: int, line: int,
                         prev: str) -> str:
    """Check one record's chain fields; returns its hash."""
    for key in ("seq", "prev", "hash"):
        if key not in raw:
            raise JournalCorruptError(f"record is missing chain field "
                                      f"{key!r}", line=line)
    if raw["seq"] != index:
        raise JournalCorruptError(
            f"sequence break: expected seq {index}, found {raw['seq']!r} "
            f"(records dropped or reordered)", line=line)
    if raw["prev"] != prev:
        raise JournalCorruptError(
            f"hash chain broken: prev does not match the preceding "
            f"record's hash", line=line)
    if raw["hash"] != chain_hash(raw):
        raise JournalCorruptError(
            "record hash does not match its contents (tampered record)",
            line=line)
    return raw["hash"]


def read_journal(path: Union[str, Path], strict: bool = False) -> Journal:
    """Open, chain-verify and structurally parse the journal at ``path``.

    See the module docstring for the tolerant-vs-strict torn-tail policy.
    """
    path = Path(path)
    try:
        data = path.read_bytes()
    except OSError as exc:
        raise JournalFormatError(f"cannot read journal file {path}: "
                                 f"{exc}") from exc
    if not data.strip():
        raise JournalFormatError(f"journal file {path} is empty")

    # Split keeping byte offsets so a resumed writer can truncate torn tails.
    lines: List[Tuple[int, bytes, int]] = []  # (line number, bytes, end offset)
    offset = 0
    for number, chunk in enumerate(data.split(b"\n"), start=1):
        end = offset + len(chunk) + 1  # +1 for the newline
        if chunk.strip():
            lines.append((number, chunk, min(end, len(data))))
        offset = end

    journal: Optional[Journal] = None
    prev = GENESIS_HASH
    ops_in_seg: Dict[int, int] = {}
    for index, (number, chunk, end) in enumerate(lines):
        try:
            raw = json.loads(chunk.decode("utf-8"))
            if not isinstance(raw, dict):
                raise JournalFormatError(
                    f"each line must be a JSON object, "
                    f"got {type(raw).__name__}", line=number)
        except (json.JSONDecodeError, UnicodeDecodeError) as exc:
            last = index == len(lines) - 1
            if last and not strict and index > 0:
                # Torn final write: drop it, keep the intact prefix.
                assert journal is not None
                journal.torn_tail = True
                return journal
            raise JournalCorruptError(
                f"record is not valid JSON ({exc}); "
                + ("a torn final line would be tolerated outside strict "
                   "mode" if last else "mid-file damage cannot be a torn "
                   "write"), line=number) from exc

        prev = _verify_chain_fields(raw, index, number, prev)
        if strict and dump_record(raw).encode("utf-8") != chunk:
            raise JournalCorruptError(
                "record bytes are not in canonical form (file was edited)",
                line=number)

        kind = raw.get("rec")
        if index == 0:
            header = parse_header(raw, line=number)
            journal = Journal(path=path, header=header)
        else:
            assert journal is not None
            if journal.sealed:
                raise JournalFormatError(
                    f"record after the close record (journal already "
                    f"sealed)", line=number)
            if kind == "system":
                system = parse_system(raw, line=number)
                if system.seg != len(journal.systems):
                    raise JournalFormatError(
                        f"system record for segment {system.seg} out of "
                        f"order (expected {len(journal.systems)})",
                        line=number)
                journal.systems.append(system)
                ops_in_seg[system.seg] = 0
            elif kind == "op":
                op = parse_op(raw, line=number)
                if op.seg not in ops_in_seg:
                    raise JournalFormatError(
                        f"op for segment {op.seg} precedes its system "
                        f"record", line=number)
                if op.n != ops_in_seg[op.seg]:
                    raise JournalFormatError(
                        f"op index break in segment {op.seg}: expected "
                        f"n {ops_in_seg[op.seg]}, found {op.n}", line=number)
                ops_in_seg[op.seg] += 1
                journal.ops.append(op)
            elif kind == "snapshot":
                snapshot = parse_snapshot(raw, line=number)
                if snapshot.seg not in ops_in_seg:
                    raise JournalFormatError(
                        f"snapshot for segment {snapshot.seg} precedes its "
                        f"system record", line=number)
                if snapshot.ops != ops_in_seg[snapshot.seg]:
                    raise JournalFormatError(
                        f"snapshot claims {snapshot.ops} ops but segment "
                        f"{snapshot.seg} has journaled "
                        f"{ops_in_seg[snapshot.seg]}", line=number)
                journal.snapshots.append(snapshot)
            elif kind == "final":
                seg, row = parse_final(raw, line=number)
                if seg not in ops_in_seg:
                    raise JournalFormatError(
                        f"final row for unknown segment {seg}", line=number)
                journal.finals[seg] = row
            elif kind == "close":
                journal.sealed = True
            elif kind == "header":
                raise JournalFormatError("duplicate header record",
                                         line=number)
            else:
                raise JournalFormatError(f"unknown record kind {kind!r}",
                                         line=number)
        journal.valid_bytes = end
        journal.next_seq = index + 1
        journal.last_hash = prev

    assert journal is not None
    if strict and journal.valid_bytes < len(data):
        raise JournalCorruptError(
            "journal has trailing bytes past the last record")
    return journal


def verify_journal(path: Union[str, Path]) -> Journal:
    """Strict verification: full chain + canonical bytes + no torn tail."""
    return read_journal(path, strict=True)

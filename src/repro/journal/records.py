"""The hash-chained journal record model.

A *journal* is the durable write-ahead form of a run: one canonical JSON
object per line, where every record carries its position in a SHA-256 hash
chain — ``seq`` (dense, starting at 0), ``prev`` (the previous record's
hash; all zeros for the first record) and ``hash`` (the SHA-256 of the
record's canonical JSON with the ``hash`` field removed).  Any flipped byte,
reordered record or mid-file truncation breaks the chain and is detected on
open (:func:`repro.journal.io.read_journal`).

Record kinds (the ``rec`` field):

``header``
    First record: format identity, scenario provenance and the snapshot
    cadence the run was journaled with.
``system``
    Creation of one broker (a *segment*), carrying everything needed to
    rebuild it: space, backend, seed, config, stabilize budget and the
    typed engine options.
``op``
    One facade operation, with the same payload shape as a trace op record
    (:mod:`repro.traces.format`) plus ``n`` (the dense per-segment op index)
    and, for ``publish``, ``auto`` — whether the facade assigned the event
    id from its counter (resume must re-advance the counter for those).
``snapshot``
    A full broker snapshot taken after ``ops`` operations of its segment:
    the zlib-compressed pickle from ``Broker.snapshot()``, base64-armored,
    with its own digest so blob corruption is reported precisely.
``final``
    The canonical delivery-metrics row of one segment at clean completion.
``close``
    Clean end of the run; a journal without it records an interrupted run
    and is what ``repro resume`` operates on.
"""

from __future__ import annotations

import base64
import hashlib
import zlib
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Tuple

from repro.journal.errors import JournalCorruptError, JournalFormatError
from repro.traces.format import _OP_REQUIRED_FIELDS, TRACE_OPS
from repro.traces.io import dump_record

#: The journal format identifier written into every header.
JOURNAL_FORMAT = "repro-journal"
#: The current (and only) journal schema version.
JOURNAL_VERSION = 1
#: ``prev`` of the first record in the chain.
GENESIS_HASH = "0" * 64

#: Fields the chain adds to every record.
CHAIN_FIELDS = ("seq", "prev", "hash")


def chain_hash(record: Mapping[str, Any]) -> str:
    """The SHA-256 of ``record`` without its ``hash`` field, canonical form."""
    body = {key: value for key, value in record.items() if key != "hash"}
    return hashlib.sha256(dump_record(body).encode("utf-8")).hexdigest()


def seal_record(record: Dict[str, Any], seq: int, prev: str) -> Dict[str, Any]:
    """Attach chain fields to a payload record and return it."""
    record["seq"] = seq
    record["prev"] = prev
    record["hash"] = chain_hash(record)
    return record


# --------------------------------------------------------------------------- #
# Snapshot state codec
# --------------------------------------------------------------------------- #


def encode_state(blob: bytes) -> Tuple[str, str]:
    """Armor a ``Broker.snapshot()`` blob for a JSON record.

    Returns ``(base64 text, sha256 of the raw blob)``; the inner digest
    pins the blob independently of the chain so a corrupt snapshot is
    reported as such rather than as a failed unpickle.
    """
    return (base64.b64encode(blob).decode("ascii"),
            hashlib.sha256(blob).hexdigest())


def decode_state(state: str, digest: str,
                 line: Optional[int] = None) -> bytes:
    """Recover and verify the snapshot blob of a ``snapshot`` record."""
    try:
        blob = base64.b64decode(state.encode("ascii"), validate=True)
    except Exception as exc:  # noqa: BLE001 - any decode failure is corruption
        raise JournalCorruptError(f"snapshot state is not valid base64: {exc}",
                                  line=line) from exc
    if hashlib.sha256(blob).hexdigest() != digest:
        raise JournalCorruptError("snapshot blob does not match its digest",
                                  line=line)
    return blob


def compress_snapshot(payload: bytes) -> bytes:
    """The (cheap, deterministic-enough) compression snapshots travel in."""
    return zlib.compress(payload, 6)


def decompress_snapshot(blob: bytes) -> bytes:
    try:
        return zlib.decompress(blob)
    except zlib.error as exc:
        raise JournalCorruptError(
            f"snapshot blob does not decompress: {exc}") from exc


# --------------------------------------------------------------------------- #
# Typed views over verified records
# --------------------------------------------------------------------------- #


@dataclass(frozen=True)
class JournalHeader:
    """Provenance of a journaled run."""

    scenario: Optional[str] = None
    params: Optional[Dict[str, Any]] = None
    snapshot_every: int = 0
    version: int = JOURNAL_VERSION

    def to_json(self) -> Dict[str, Any]:
        return {"rec": "header", "format": JOURNAL_FORMAT,
                "version": self.version, "scenario": self.scenario,
                "params": self.params, "snapshot_every": self.snapshot_every}


@dataclass(frozen=True)
class JournalSystem:
    """One broker's construction record (a journal *segment*)."""

    seg: int
    space: Tuple[str, ...]
    backend: str
    seed: int
    stabilize_rounds: int
    config: Dict[str, Any] = field(default_factory=dict)
    engine_options: Optional[Dict[str, Any]] = None
    t: float = 0.0

    def to_json(self) -> Dict[str, Any]:
        record = {"rec": "system", "seg": self.seg, "t": self.t,
                  "space": list(self.space), "backend": self.backend,
                  "seed": self.seed,
                  "stabilize_rounds": self.stabilize_rounds,
                  "config": dict(self.config)}
        record["engine_options"] = (dict(self.engine_options)
                                    if self.engine_options else None)
        return record


@dataclass(frozen=True)
class JournalOp:
    """One journaled facade operation.

    ``data`` is the trace-compatible payload; ``n`` is the dense per-segment
    op index (``snapshot.ops`` counts in the same units); ``auto`` marks a
    ``publish`` whose event id was assigned by the facade's counter.
    """

    seg: int
    n: int
    op: str
    data: Dict[str, Any] = field(default_factory=dict)
    t: float = 0.0
    auto: bool = False

    def to_json(self) -> Dict[str, Any]:
        record = {"rec": "op", "seg": self.seg, "n": self.n, "t": self.t,
                  "op": self.op, **self.data}
        if self.op == "publish":
            record["auto"] = bool(self.auto)
        return record


@dataclass(frozen=True)
class JournalSnapshot:
    """A full broker snapshot, valid after ``ops`` operations of ``seg``."""

    seg: int
    ops: int
    t: float
    blob: bytes = field(repr=False)

    def to_json(self) -> Dict[str, Any]:
        state, digest = encode_state(self.blob)
        return {"rec": "snapshot", "seg": self.seg, "ops": self.ops,
                "t": self.t, "state": state, "sha256": digest}


# --------------------------------------------------------------------------- #
# Record parsers (structural failures -> JournalFormatError)
# --------------------------------------------------------------------------- #

_MISSING = object()


def _require(raw: Mapping[str, Any], key: str, types: tuple, line: int,
             context: str) -> Any:
    value = raw.get(key, _MISSING)
    if value is _MISSING:
        raise JournalFormatError(f"{context} record is missing {key!r}",
                                 line=line)
    if bool in types:
        if not isinstance(value, bool):
            raise JournalFormatError(
                f"{context} record field {key!r} must be a boolean, "
                f"got {value!r}", line=line)
        return value
    if isinstance(value, bool) or not isinstance(value, types):
        expected = "/".join(t.__name__ for t in types)
        raise JournalFormatError(
            f"{context} record field {key!r} must be {expected}, "
            f"got {value!r}", line=line)
    return value


def parse_header(raw: Mapping[str, Any], line: int = 1) -> JournalHeader:
    if raw.get("rec") != "header":
        raise JournalFormatError(
            f"first record must be the journal header, got {raw.get('rec')!r}",
            line=line)
    if raw.get("format") != JOURNAL_FORMAT:
        raise JournalFormatError(
            f"not a {JOURNAL_FORMAT} file (format={raw.get('format')!r})",
            line=line)
    version = raw.get("version")
    if version != JOURNAL_VERSION:
        raise JournalFormatError(
            f"unsupported journal version {version!r}; this reader "
            f"understands version {JOURNAL_VERSION}", line=line)
    scenario = raw.get("scenario")
    if scenario is not None and not isinstance(scenario, str):
        raise JournalFormatError(
            f"header scenario must be a string or null, got {scenario!r}",
            line=line)
    params = raw.get("params")
    if params is not None and not isinstance(params, Mapping):
        raise JournalFormatError(
            f"header params must be an object or null, got {params!r}",
            line=line)
    return JournalHeader(
        scenario=scenario,
        params=dict(params) if params is not None else None,
        snapshot_every=_require(raw, "snapshot_every", (int,), line, "header"),
    )


def parse_system(raw: Mapping[str, Any], line: int) -> JournalSystem:
    space = _require(raw, "space", (list, tuple), line, "system")
    if not space or not all(isinstance(name, str) for name in space):
        raise JournalFormatError(
            f"system record space must be a non-empty list of attribute "
            f"names, got {space!r}", line=line)
    config = raw.get("config", {})
    if not isinstance(config, Mapping):
        raise JournalFormatError(
            f"system record config must be an object, got {config!r}",
            line=line)
    options = raw.get("engine_options")
    if options is not None and not isinstance(options, Mapping):
        raise JournalFormatError(
            f"system record engine_options must be an object or null, "
            f"got {options!r}", line=line)
    return JournalSystem(
        seg=_require(raw, "seg", (int,), line, "system"),
        t=float(_require(raw, "t", (int, float), line, "system")),
        space=tuple(space),
        backend=str(_require(raw, "backend", (str,), line, "system")),
        seed=_require(raw, "seed", (int,), line, "system"),
        stabilize_rounds=_require(raw, "stabilize_rounds", (int,), line,
                                  "system"),
        config=dict(config),
        engine_options=dict(options) if options else None,
    )


def parse_op(raw: Mapping[str, Any], line: int) -> JournalOp:
    op = _require(raw, "op", (str,), line, "op")
    if op not in TRACE_OPS:
        raise JournalFormatError(
            f"unknown journal op {op!r}; expected one of {TRACE_OPS}",
            line=line)
    data = {key: value for key, value in raw.items()
            if key not in ("rec", "seg", "t", "op", "n", "auto",
                           *CHAIN_FIELDS)}
    missing = _OP_REQUIRED_FIELDS[op] - set(data)
    if missing:
        raise JournalFormatError(
            f"op {op!r} is missing fields {sorted(missing)}", line=line)
    auto = raw.get("auto", False)
    if not isinstance(auto, bool):
        raise JournalFormatError(
            f"op record field 'auto' must be a boolean, got {auto!r}",
            line=line)
    return JournalOp(
        seg=_require(raw, "seg", (int,), line, "op"),
        n=_require(raw, "n", (int,), line, "op"),
        t=float(_require(raw, "t", (int, float), line, "op")),
        op=op,
        data=data,
        auto=auto,
    )


def parse_snapshot(raw: Mapping[str, Any], line: int) -> JournalSnapshot:
    state = _require(raw, "state", (str,), line, "snapshot")
    digest = _require(raw, "sha256", (str,), line, "snapshot")
    return JournalSnapshot(
        seg=_require(raw, "seg", (int,), line, "snapshot"),
        ops=_require(raw, "ops", (int,), line, "snapshot"),
        t=float(_require(raw, "t", (int, float), line, "snapshot")),
        blob=decode_state(state, digest, line=line),
    )


def parse_final(raw: Mapping[str, Any], line: int) -> Tuple[int, Dict[str, Any]]:
    row = _require(raw, "row", (dict,), line, "final")
    return _require(raw, "seg", (int,), line, "final"), dict(row)


#: Record kinds a journal body may contain, in the order they may appear.
RECORD_KINDS = ("header", "system", "op", "snapshot", "final", "close")

"""Crash recovery: resuming an interrupted journaled run.

:func:`resume_journal` is the whole recovery story in one call: open the
journal tolerantly (a torn final write is truncated away), refuse sealed
journals, look the journaled scenario up in the registry and re-run it
inside a resume-mode :func:`~repro.journal.recorder.journaling` context.
Each broker the scenario rebuilds is restored from the latest journaled
snapshot, driven through the post-snapshot op tail, and gated so the
scenario's re-issued prefix is validated and skipped rather than
re-executed (:mod:`repro.journal.gate`).  The run then *continues* past the
crash point, appending to the same hash chain, and seals the journal on
success.

Because every broker is a deterministic function of (spec, op sequence),
the resumed run's delivery metrics are byte-identical to an uninterrupted
run of the same scenario and seed — the ``crash-recovery`` scenario and the
CI recovery job assert exactly that, on both the classic and the sharded
engine.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Any, Dict, Tuple, Union

from repro.journal.errors import JournalResumeError
from repro.journal.io import read_journal
from repro.journal.recorder import journaling

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.runtime.runner import ScenarioOutcome


@dataclass(frozen=True)
class SegmentResume:
    """Recovery accounting of one segment."""

    #: Ops the journal held when the resume started.
    journaled: int
    #: Ops covered by the snapshot the broker was restored from (0 if none).
    snapshot_ops: int
    #: Ops re-executed for real — exactly the post-snapshot tail.
    reexecuted: int


@dataclass(frozen=True)
class ResumeReport:
    """What :func:`resume_journal` recovered, per segment."""

    path: Path
    scenario: str
    params: Dict[str, Any] = field(default_factory=dict)
    #: True when the tolerant reader dropped a torn final line.
    torn_tail: bool = False
    segments: Dict[int, SegmentResume] = field(default_factory=dict)

    @property
    def journaled(self) -> int:
        return sum(seg.journaled for seg in self.segments.values())

    @property
    def reexecuted(self) -> int:
        return sum(seg.reexecuted for seg in self.segments.values())

    def describe(self) -> str:
        """One human line per segment plus the headline totals."""
        lines = [f"resumed {self.scenario} from {self.path}"
                 + (" (torn tail truncated)" if self.torn_tail else "")]
        for seg in sorted(self.segments):
            stats = self.segments[seg]
            lines.append(
                f"  segment {seg}: {stats.journaled} journaled ops, "
                f"snapshot at {stats.snapshot_ops}, "
                f"{stats.reexecuted} re-executed")
        return "\n".join(lines)


def _reraise_journal_errors(error: str) -> None:
    """Surface journal-layer failures swallowed by the scenario runner."""
    head = error.splitlines()[0]
    exc_name = head.split(":", 1)[0].rsplit(".", 1)[-1]
    if exc_name.startswith("Journal"):
        message = head.split(":", 1)[1].strip() if ":" in head else head
        raise JournalResumeError(message)


def resume_journal(path: Union[str, Path], fsync_every: int = 32
                   ) -> Tuple["ScenarioOutcome", ResumeReport]:
    """Resume the interrupted run journaled at ``path``.

    Returns the finished run's :class:`~repro.runtime.runner.ScenarioOutcome`
    (the same rows an uninterrupted run produces) and a
    :class:`ResumeReport` accounting for what was restored versus
    re-executed.  Raises
    :class:`~repro.journal.errors.JournalCorruptError` if the chain does not
    verify and :class:`JournalResumeError` if the journal is sealed,
    names no (replayable) scenario, or the rerun diverges from the journal.
    """
    from repro.runtime.registry import (REGISTRY, UnknownScenarioError,
                                        load_scenarios)
    from repro.runtime.runner import run_one

    journal = read_journal(path)
    if journal.sealed:
        raise JournalResumeError(
            f"journal {path} is sealed: the run completed; nothing to resume")
    header = journal.header
    if not header.scenario:
        raise JournalResumeError(
            "journal header names no scenario; only scenario-driven "
            "journals can be resumed")
    load_scenarios()
    try:
        scenario = REGISTRY.get(header.scenario)
    except UnknownScenarioError as exc:
        raise JournalResumeError(f"cannot resume: {exc}") from exc
    if not scenario.replayable:
        raise JournalResumeError(
            f"scenario {scenario.name!r} is not trace-replayable, so its "
            "journal cannot be resumed")
    params = dict(header.params or {})

    with journaling(resume=journal, fsync_every=fsync_every) as recorder:
        outcome = run_one(scenario.name, params)
        if outcome.ok:
            recorder.seal()
    if not outcome.ok:
        _reraise_journal_errors(outcome.error or "")

    report = ResumeReport(
        path=Path(path),
        scenario=scenario.name,
        params=params,
        torn_tail=journal.torn_tail,
        segments={seg: SegmentResume(stats.journaled, stats.snapshot_ops,
                                     stats.reexecuted)
                  for seg, stats in recorder.segment_stats.items()},
    )
    return outcome, report

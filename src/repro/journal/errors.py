"""Typed errors of the durable op journal."""

from __future__ import annotations

from typing import Optional


class JournalError(Exception):
    """Base class for every journal failure."""


class JournalFormatError(JournalError):
    """A journal file is structurally malformed (independent of tampering)."""

    def __init__(self, message: str, line: Optional[int] = None) -> None:
        self.line = line
        if line is not None:
            message = f"line {line}: {message}"
        super().__init__(message)


class JournalCorruptError(JournalError):
    """The hash chain does not verify: tampering or mid-file truncation.

    Raised when a record's ``hash`` does not match its contents, when its
    ``prev`` does not match the preceding record's hash, when the sequence
    numbering has a gap, or — in strict mode — when the file ends in a torn
    (partially written) record.
    """

    def __init__(self, message: str, line: Optional[int] = None) -> None:
        self.line = line
        if line is not None:
            message = f"line {line}: {message}"
        super().__init__(message)


class JournalResumeError(JournalError):
    """A resumed run diverged from (or cannot be matched to) its journal."""

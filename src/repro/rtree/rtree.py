"""Sequential R-tree (Guttman 1984) with pluggable split methods.

This is the centralized substrate the DR-tree distributes.  It supports
insertion, deletion, point queries ("which payloads match this event point?")
and rectangle queries, and it maintains the classical invariants:

* every node except the root holds between ``m`` and ``M`` entries,
* all leaves are at the same depth (height balance),
* every branch entry's rectangle is the MBR of its child.

The experiments use it both as the centralized-broker baseline and as a
reference for validating the DR-tree's height and accuracy.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Iterator, List, Optional, Sequence, Tuple

from repro.rtree.entry import Entry
from repro.rtree.node import RTreeNode
from repro.rtree.split import SplitResult, get_split_function
from repro.spatial.rectangle import Point, Rect


@dataclass
class RTreeStats:
    """Counters describing the structural cost of the operations performed."""

    inserts: int = 0
    deletes: int = 0
    splits: int = 0
    reinserts: int = 0
    nodes_visited: int = 0


class RTree:
    """A height-balanced R-tree over arbitrary payloads.

    Parameters
    ----------
    min_entries:
        The paper's ``m`` — the minimum number of entries per node.
    max_entries:
        The paper's ``M`` — the maximum number of entries per node.  The
        paper requires ``M >= 2 m`` so that a split can produce two valid
        groups.
    split_method:
        ``"linear"``, ``"quadratic"`` or ``"rstar"``.
    """

    def __init__(
        self,
        min_entries: int = 2,
        max_entries: int = 4,
        split_method: str = "quadratic",
    ) -> None:
        if min_entries < 1:
            raise ValueError("min_entries must be at least 1")
        if max_entries < 2 * min_entries:
            raise ValueError(
                f"max_entries ({max_entries}) must be at least twice "
                f"min_entries ({min_entries})"
            )
        self.min_entries = min_entries
        self.max_entries = max_entries
        self.split_method = split_method
        self._split = get_split_function(split_method)
        self.root = RTreeNode(is_leaf=True)
        self.stats = RTreeStats()
        self._size = 0

    # ------------------------------------------------------------------ #
    # Public API
    # ------------------------------------------------------------------ #

    def __len__(self) -> int:
        return self._size

    def insert(self, rect: Rect, payload: Any) -> None:
        """Insert a payload with bounding rectangle ``rect``."""
        self.stats.inserts += 1
        entry = Entry(rect=rect, payload=payload)
        leaf = self._choose_leaf(self.root, rect)
        leaf.add_entry(entry)
        self._size += 1
        if leaf.is_overfull(self.max_entries):
            self._handle_overflow(leaf)
        else:
            self._adjust_upward(leaf)

    def delete(self, rect: Rect, payload: Any) -> bool:
        """Remove the entry with matching payload; returns True if found."""
        found = self._find_leaf(self.root, rect, payload)
        if found is None:
            return False
        leaf, entry = found
        leaf.remove_entry(entry)
        self._size -= 1
        self.stats.deletes += 1
        self._condense_tree(leaf)
        # Shrink the root if it became a lone internal node.
        if not self.root.is_leaf and len(self.root) == 1:
            only_child = self.root.entries[0].child
            assert only_child is not None
            only_child.parent = None
            self.root = only_child
        return True

    def search_point(self, point: Point | Sequence[float]) -> List[Any]:
        """Payloads whose rectangle contains ``point`` (event matching)."""
        results: List[Any] = []
        self._search_point(self.root, Point(*tuple(point)), results)
        return results

    def search_rect(self, rect: Rect) -> List[Any]:
        """Payloads whose rectangle intersects ``rect`` (range query)."""
        results: List[Any] = []
        self._search_rect(self.root, rect, results)
        return results

    def height(self) -> int:
        """Number of levels in the tree (a single leaf root has height 1)."""
        return self.root.depth_below()

    def payloads(self) -> List[Any]:
        """All payloads stored in the tree."""
        return [entry.payload for _, entry in self._iter_leaf_entries(self.root)]

    def mbr(self) -> Optional[Rect]:
        """MBR of the whole tree, or ``None`` when empty."""
        if not self.root.entries:
            return None
        return self.root.mbr()

    # ------------------------------------------------------------------ #
    # Invariant checking (used heavily by the tests)
    # ------------------------------------------------------------------ #

    def check_invariants(self) -> List[str]:
        """Return a list of invariant violations (empty when the tree is valid)."""
        problems: List[str] = []
        leaf_depths: List[int] = []
        self._check_node(self.root, 1, problems, leaf_depths, is_root=True)
        if leaf_depths and len(set(leaf_depths)) > 1:
            problems.append(f"leaves at different depths: {sorted(set(leaf_depths))}")
        return problems

    def _check_node(
        self,
        node: RTreeNode,
        depth: int,
        problems: List[str],
        leaf_depths: List[int],
        is_root: bool = False,
    ) -> None:
        count = len(node.entries)
        if not is_root and count < self.min_entries:
            problems.append(f"node at depth {depth} underfull: {count}")
        if count > self.max_entries:
            problems.append(f"node at depth {depth} overfull: {count}")
        if node.is_leaf:
            leaf_depths.append(depth)
            return
        for entry in node.entries:
            child = entry.child
            if child is None:
                problems.append(f"branch entry without child at depth {depth}")
                continue
            if child.parent is not node:
                problems.append(f"broken parent pointer at depth {depth + 1}")
            if child.entries and entry.rect.as_tuple() != child.mbr().as_tuple():
                problems.append(f"stale MBR for a child at depth {depth}")
            self._check_node(child, depth + 1, problems, leaf_depths)

    # ------------------------------------------------------------------ #
    # Insertion helpers
    # ------------------------------------------------------------------ #

    def _choose_leaf(self, node: RTreeNode, rect: Rect) -> RTreeNode:
        """Descend to the leaf whose MBR needs the least enlargement."""
        current = node
        while not current.is_leaf:
            self.stats.nodes_visited += 1
            best_entry = min(
                current.entries,
                key=lambda entry: (entry.rect.enlargement(rect), entry.rect.area()),
            )
            assert best_entry.child is not None
            current = best_entry.child
        return current

    def _handle_overflow(self, node: RTreeNode) -> None:
        """Split an overfull node and propagate upward."""
        self.stats.splits += 1
        split: SplitResult = self._split(node.entries, self.min_entries)
        if node.parent is None:
            self._split_root(node, split)
            return
        parent = node.parent
        parent_entry = parent.entry_for_child(node)
        node.entries = list(split.left)
        for entry in node.entries:
            if entry.child is not None:
                entry.child.parent = node
        parent_entry.rect = node.mbr()
        sibling = RTreeNode(is_leaf=node.is_leaf, level=node.level)
        for entry in split.right:
            sibling.add_entry(entry)
        parent.add_entry(Entry(rect=sibling.mbr(), child=sibling))
        if parent.is_overfull(self.max_entries):
            self._handle_overflow(parent)
        else:
            self._adjust_upward(parent)

    def _split_root(self, root: RTreeNode, split: SplitResult) -> None:
        left = RTreeNode(is_leaf=root.is_leaf)
        right = RTreeNode(is_leaf=root.is_leaf)
        for entry in split.left:
            left.add_entry(entry)
        for entry in split.right:
            right.add_entry(entry)
        new_root = RTreeNode(is_leaf=False)
        new_root.add_entry(Entry(rect=left.mbr(), child=left))
        new_root.add_entry(Entry(rect=right.mbr(), child=right))
        self.root = new_root

    def _adjust_upward(self, node: RTreeNode) -> None:
        """Refresh MBRs from ``node`` up to the root."""
        current = node
        while current.parent is not None:
            parent = current.parent
            entry = parent.entry_for_child(current)
            entry.rect = current.mbr()
            current = parent

    # ------------------------------------------------------------------ #
    # Deletion helpers
    # ------------------------------------------------------------------ #

    def _find_leaf(
        self, node: RTreeNode, rect: Rect, payload: Any
    ) -> Optional[Tuple[RTreeNode, Entry]]:
        if node.is_leaf:
            for entry in node.entries:
                if entry.payload == payload:
                    return node, entry
            return None
        for entry in node.entries:
            if entry.child is not None and entry.rect.intersects(rect):
                found = self._find_leaf(entry.child, rect, payload)
                if found is not None:
                    return found
        return None

    def _condense_tree(self, leaf: RTreeNode) -> None:
        """Guttman's CondenseTree: remove underfull nodes, reinsert orphans."""
        orphans: List[Tuple[Entry, bool]] = []  # (entry, was_leaf_entry)
        node = leaf
        while node.parent is not None:
            parent = node.parent
            if node.is_underfull(self.min_entries):
                parent_entry = parent.entry_for_child(node)
                parent.remove_entry(parent_entry)
                for entry in node.entries:
                    orphans.append((entry, node.is_leaf))
            else:
                entry = parent.entry_for_child(node)
                entry.rect = node.mbr()
            node = parent
        for entry, was_leaf in orphans:
            self.stats.reinserts += 1
            if was_leaf:
                self._size -= 1  # insert() will add it back
                self.insert(entry.rect, entry.payload)
            else:
                assert entry.child is not None
                self._reinsert_subtree(entry.child)

    def _reinsert_subtree(self, subtree: RTreeNode) -> None:
        """Reinsert every leaf payload of an orphaned subtree."""
        for _, entry in self._iter_leaf_entries(subtree):
            self._size -= 1
            self.insert(entry.rect, entry.payload)

    # ------------------------------------------------------------------ #
    # Search helpers
    # ------------------------------------------------------------------ #

    def _search_point(self, node: RTreeNode, point: Point, out: List[Any]) -> None:
        self.stats.nodes_visited += 1
        for entry in node.entries:
            if not entry.rect.contains_point(point):
                continue
            if node.is_leaf:
                out.append(entry.payload)
            else:
                assert entry.child is not None
                self._search_point(entry.child, point, out)

    def _search_rect(self, node: RTreeNode, rect: Rect, out: List[Any]) -> None:
        self.stats.nodes_visited += 1
        for entry in node.entries:
            if not entry.rect.intersects(rect):
                continue
            if node.is_leaf:
                out.append(entry.payload)
            else:
                assert entry.child is not None
                self._search_rect(entry.child, rect, out)

    def _iter_leaf_entries(
        self, node: RTreeNode
    ) -> Iterator[Tuple[RTreeNode, Entry]]:
        if node.is_leaf:
            for entry in node.entries:
                yield node, entry
            return
        for entry in node.entries:
            if entry.child is not None:
                yield from self._iter_leaf_entries(entry.child)

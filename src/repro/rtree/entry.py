"""Entries stored in R-tree nodes.

A leaf entry points at a spatial object (here: a subscription or any payload)
tagged with the smallest rectangle containing it; a branch entry points at a
child node tagged with the child's MBR (Section 2.2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional

from repro.spatial.rectangle import Rect


@dataclass
class Entry:
    """A single entry of an R-tree node.

    ``rect`` is the entry's bounding rectangle.  Exactly one of ``payload``
    (for leaf entries) and ``child`` (for branch entries) is set.
    """

    rect: Rect
    payload: Any = None
    child: Optional["RTreeNode"] = None  # noqa: F821 - forward reference

    @property
    def is_leaf_entry(self) -> bool:
        """True when the entry points at a spatial object rather than a node."""
        return self.child is None

    def refresh_rect(self) -> None:
        """Recompute the rectangle of a branch entry from its child's MBR."""
        if self.child is not None:
            self.rect = self.child.mbr()

    def __repr__(self) -> str:  # pragma: no cover - debugging convenience
        kind = "leaf" if self.is_leaf_entry else "branch"
        return f"Entry({kind}, {self.rect!r}, payload={self.payload!r})"

"""Node-splitting algorithms.

Section 3.2 lists the three classical methods supported by the DR-tree's
``split-children`` module:

* the **linear** method (Guttman 1984): pick as seeds the two entries with
  the greatest normalized separation along any dimension, then assign the
  remaining entries to the group whose MBR grows the least;
* the **quadratic** method (Guttman 1984): pick as seeds the pair of entries
  that would waste the most area if grouped together, then repeatedly assign
  the entry with the greatest preference (difference of enlargements) for one
  group;
* the **R\\*** method (Beckmann et al. 1990): choose the split axis by minimum
  margin sum, then the distribution along that axis by minimum overlap
  (ties broken by minimum total area).

The same functions are used by both the sequential R-tree and the DR-tree's
distributed split, so the distributed protocol inherits exactly the same
grouping behaviour the paper assumes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Sequence, Tuple

from repro.rtree.entry import Entry
from repro.spatial.rectangle import Rect

#: Names of the supported split methods.
SPLIT_METHODS = ("linear", "quadratic", "rstar")


@dataclass
class SplitResult:
    """The two groups produced by a split."""

    left: List[Entry]
    right: List[Entry]

    def __iter__(self):
        return iter((self.left, self.right))


def _group_mbr(entries: Sequence[Entry]) -> Rect:
    return Rect.union_of(entry.rect for entry in entries)


def _normalized_separations(entries: Sequence[Entry]) -> List[Tuple[float, int, int]]:
    """Per-dimension normalized separation and the indices of the seed pair.

    Implements Guttman's *LinearPickSeeds*: for each dimension, find the entry
    with the highest low side and the one with the lowest high side, and
    normalize their separation by the overall extent along that dimension.
    """
    dims = entries[0].rect.dimensions
    results = []
    for dim in range(dims):
        lows = [entry.rect.lower[dim] for entry in entries]
        highs = [entry.rect.upper[dim] for entry in entries]
        overall = max(highs) - min(lows)
        highest_low_idx = max(range(len(entries)), key=lambda i: lows[i])
        lowest_high_idx = min(range(len(entries)), key=lambda i: highs[i])
        if highest_low_idx == lowest_high_idx:
            # Degenerate: pick any distinct pair for this dimension.
            lowest_high_idx = (highest_low_idx + 1) % len(entries)
        separation = lows[highest_low_idx] - highs[lowest_high_idx]
        normalized = separation / overall if overall > 0 else 0.0
        results.append((normalized, highest_low_idx, lowest_high_idx))
    return results


def linear_split(entries: Sequence[Entry], m: int) -> SplitResult:
    """Guttman's linear-cost split.

    ``m`` is the minimum group size; both returned groups hold at least ``m``
    entries (callers guarantee ``len(entries) >= 2 * m``).
    """
    entries = list(entries)
    _check_split_input(entries, m)
    separations = _normalized_separations(entries)
    _, seed_a, seed_b = max(separations, key=lambda item: item[0])
    return _distribute_linear(entries, seed_a, seed_b, m)


def _distribute_linear(
    entries: List[Entry], seed_a: int, seed_b: int, m: int
) -> SplitResult:
    left = [entries[seed_a]]
    right = [entries[seed_b]]
    remaining = [
        entry for idx, entry in enumerate(entries) if idx not in (seed_a, seed_b)
    ]
    for position, entry in enumerate(remaining):
        remaining_after = len(remaining) - position - 1
        left, right = _assign_respecting_minimum(entry, left, right, remaining_after, m)
    return SplitResult(left, right)


def _assign_respecting_minimum(
    entry: Entry,
    left: List[Entry],
    right: List[Entry],
    remaining_after: int,
    m: int,
) -> Tuple[List[Entry], List[Entry]]:
    """Assign ``entry`` to a group, forcing assignments needed to reach ``m``."""
    # Count this entry among the ones still to place.
    still_to_place = remaining_after + 1
    if len(left) + still_to_place <= m:
        left.append(entry)
        return left, right
    if len(right) + still_to_place <= m:
        right.append(entry)
        return left, right
    left_mbr = _group_mbr(left)
    right_mbr = _group_mbr(right)
    enlargement_left = left_mbr.enlargement(entry.rect)
    enlargement_right = right_mbr.enlargement(entry.rect)
    if enlargement_left < enlargement_right:
        left.append(entry)
    elif enlargement_right < enlargement_left:
        right.append(entry)
    elif left_mbr.area() <= right_mbr.area():
        left.append(entry)
    else:
        right.append(entry)
    return left, right


def quadratic_split(entries: Sequence[Entry], m: int) -> SplitResult:
    """Guttman's quadratic-cost split."""
    entries = list(entries)
    _check_split_input(entries, m)
    seed_a, seed_b = _quadratic_pick_seeds(entries)
    left = [entries[seed_a]]
    right = [entries[seed_b]]
    remaining = [
        entry for idx, entry in enumerate(entries) if idx not in (seed_a, seed_b)
    ]
    while remaining:
        # Force-assign if one group must take every remaining entry to reach m.
        if len(left) + len(remaining) <= m:
            left.extend(remaining)
            break
        if len(right) + len(remaining) <= m:
            right.extend(remaining)
            break
        left_mbr = _group_mbr(left)
        right_mbr = _group_mbr(right)
        # PickNext: entry with the greatest preference for one group.
        best_index = max(
            range(len(remaining)),
            key=lambda i: abs(
                left_mbr.enlargement(remaining[i].rect)
                - right_mbr.enlargement(remaining[i].rect)
            ),
        )
        entry = remaining.pop(best_index)
        enlargement_left = left_mbr.enlargement(entry.rect)
        enlargement_right = right_mbr.enlargement(entry.rect)
        if enlargement_left < enlargement_right:
            left.append(entry)
        elif enlargement_right < enlargement_left:
            right.append(entry)
        elif left_mbr.area() < right_mbr.area():
            left.append(entry)
        elif right_mbr.area() < left_mbr.area():
            right.append(entry)
        elif len(left) <= len(right):
            left.append(entry)
        else:
            right.append(entry)
    return SplitResult(left, right)


def _quadratic_pick_seeds(entries: Sequence[Entry]) -> Tuple[int, int]:
    """Pick the pair of entries wasting the most area when grouped together."""
    best_pair = (0, 1)
    best_waste = float("-inf")
    for i in range(len(entries)):
        for j in range(i + 1, len(entries)):
            waste = entries[i].rect.waste(entries[j].rect)
            if waste > best_waste:
                best_waste = waste
                best_pair = (i, j)
    return best_pair


def rstar_split(entries: Sequence[Entry], m: int) -> SplitResult:
    """R*-tree split (Beckmann et al. 1990), topological part.

    The full R*-tree also performs forced reinsertion before splitting; the
    DR-tree paper only relies on the split itself ("attempts to reduce not
    only the coverage, but also the overlap"), which is what this function
    implements: choose the axis with minimum margin sum, then the distribution
    with minimum overlap (ties by minimum area).
    """
    entries = list(entries)
    _check_split_input(entries, m)
    dims = entries[0].rect.dimensions
    best_axis = 0
    best_margin = float("inf")
    for dim in range(dims):
        margin = _axis_margin_sum(entries, dim, m)
        if margin < best_margin:
            best_margin = margin
            best_axis = dim
    left, right = _best_distribution_on_axis(entries, best_axis, m)
    return SplitResult(left, right)


def _sorted_by_axis(entries: Sequence[Entry], dim: int) -> List[List[Entry]]:
    """The two sortings (by lower bound, by upper bound) used by R*."""
    by_lower = sorted(entries, key=lambda e: (e.rect.lower[dim], e.rect.upper[dim]))
    by_upper = sorted(entries, key=lambda e: (e.rect.upper[dim], e.rect.lower[dim]))
    return [by_lower, by_upper]


def _axis_margin_sum(entries: Sequence[Entry], dim: int, m: int) -> float:
    total = 0.0
    for ordering in _sorted_by_axis(entries, dim):
        for split_point in range(m, len(entries) - m + 1):
            left = ordering[:split_point]
            right = ordering[split_point:]
            total += _group_mbr(left).margin() + _group_mbr(right).margin()
    return total


def _best_distribution_on_axis(
    entries: Sequence[Entry], dim: int, m: int
) -> Tuple[List[Entry], List[Entry]]:
    best = None
    best_key = (float("inf"), float("inf"))
    for ordering in _sorted_by_axis(entries, dim):
        for split_point in range(m, len(entries) - m + 1):
            left = ordering[:split_point]
            right = ordering[split_point:]
            left_mbr = _group_mbr(left)
            right_mbr = _group_mbr(right)
            overlap = left_mbr.intersection_area(right_mbr)
            area = left_mbr.area() + right_mbr.area()
            key = (overlap, area)
            if key < best_key:
                best_key = key
                best = (list(left), list(right))
    assert best is not None
    return best


def _check_split_input(entries: Sequence[Entry], m: int) -> None:
    if m < 1:
        raise ValueError(f"minimum group size must be positive, got {m}")
    if len(entries) < 2:
        raise ValueError("cannot split fewer than two entries")
    if len(entries) < 2 * m:
        raise ValueError(
            f"cannot split {len(entries)} entries into two groups of at least {m}"
        )


def get_split_function(method: str) -> Callable[[Sequence[Entry], int], SplitResult]:
    """Look up a split function by name (``linear``, ``quadratic`` or ``rstar``)."""
    functions = {
        "linear": linear_split,
        "quadratic": quadratic_split,
        "rstar": rstar_split,
    }
    try:
        return functions[method]
    except KeyError:
        raise ValueError(
            f"unknown split method {method!r}; expected one of {SPLIT_METHODS}"
        ) from None

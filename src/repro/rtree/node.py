"""R-tree nodes.

Every node holds between ``m`` and ``M`` entries (except the root, which may
hold fewer), and a parent pointer used for upward MBR adjustment.  The node
does not enforce the bounds itself — the tree does, by splitting and
condensing — but it exposes the predicates the tree needs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, List, Optional

from repro.rtree.entry import Entry
from repro.spatial.rectangle import Rect


@dataclass
class RTreeNode:
    """A node of the sequential R-tree."""

    is_leaf: bool
    entries: List[Entry] = field(default_factory=list)
    parent: Optional["RTreeNode"] = None
    level: int = 0

    def mbr(self) -> Rect:
        """Minimum bounding rectangle of the node's entries."""
        if not self.entries:
            raise ValueError("cannot compute the MBR of an empty node")
        return Rect.union_of(entry.rect for entry in self.entries)

    def add_entry(self, entry: Entry) -> None:
        """Append an entry, keeping child parent pointers consistent."""
        self.entries.append(entry)
        if entry.child is not None:
            entry.child.parent = self

    def remove_entry(self, entry: Entry) -> None:
        """Remove an entry from the node."""
        self.entries.remove(entry)

    def entry_for_child(self, child: "RTreeNode") -> Entry:
        """The branch entry pointing at ``child``."""
        for entry in self.entries:
            if entry.child is child:
                return entry
        raise KeyError("child not found in node")

    def __len__(self) -> int:
        return len(self.entries)

    def __iter__(self) -> Iterator[Entry]:
        return iter(self.entries)

    def is_underfull(self, m: int) -> bool:
        """True when the node has fewer than ``m`` entries."""
        return len(self.entries) < m

    def is_overfull(self, M: int) -> bool:
        """True when the node has more than ``M`` entries."""
        return len(self.entries) > M

    def depth_below(self) -> int:
        """Height of the subtree rooted at this node (leaves have height 1)."""
        if self.is_leaf:
            return 1
        return 1 + max(
            entry.child.depth_below() for entry in self.entries if entry.child
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging convenience
        kind = "leaf" if self.is_leaf else "branch"
        return f"RTreeNode({kind}, level={self.level}, entries={len(self.entries)})"

"""Sort-Tile-Recursive (STR) bulk loading (Leutenegger et al., 1997).

Building an R-tree by repeated insertion costs ``O(n log n)`` *node splits*
on top of the search work and produces a structure shaped by insertion order.
STR instead packs a static data set bottom-up in ``O(n log n)`` total: sort
the rectangles by the first coordinate of their centres, cut the run into
vertical slabs, sort each slab by the next coordinate, and so on until the
last dimension, where the run is cut into tiles of at most ``M`` entries.
The tiles become the leaves; the same tiling applied to the leaf MBRs builds
the next level, up to a single root.

Two consumers share this module:

* :func:`bulk_load` packs a sequential :class:`~repro.rtree.rtree.RTree`
  (used by the centralized baseline and the benchmarks),
* :func:`str_groups` exposes the raw tiling, which the overlay bootstrap
  (:mod:`repro.overlay.bootstrap`) uses to lay out a legal DR-tree directly
  for large scenarios instead of replaying thousands of join protocols.

Every produced group holds at most ``capacity`` entries and — because groups
are chunked evenly and ``M >= 2 m`` — at least ``capacity // 2`` entries
whenever more than one group is produced, so the classical ``m``/``M``
bounds hold by construction.

Example::

    >>> from repro.spatial.rectangle import Rect
    >>> rects = [Rect((i / 10, 0.0), (i / 10 + 0.05, 0.1)) for i in range(8)]
    >>> sorted(len(group) for group in str_groups(rects, capacity=4))
    [4, 4]

Complexity: each level sorts the surviving rectangles once per dimension,
giving ``O(n log n)`` total work and a tree of height ``ceil(log_M n)`` —
versus one root-to-leaf search *and* possible split cascade per insert for
repeated insertion.  See ``docs/architecture.md`` ("Construction paths") for
how the overlay layer reuses the tiling.
"""

from __future__ import annotations

import math
from typing import Any, List, Sequence, Tuple

from repro.rtree.entry import Entry
from repro.rtree.node import RTreeNode
from repro.rtree.rtree import RTree
from repro.spatial.rectangle import Rect


def _balanced_chunks(indices: List[int], capacity: int) -> List[List[int]]:
    """Split ``indices`` into even chunks of at most ``capacity`` elements.

    Evenness is what preserves the R-tree minimum-fill invariant: with
    ``count = ceil(n / capacity)`` chunks, every chunk holds at least
    ``floor(n / count) >= capacity / 2`` elements whenever ``count > 1``.
    """
    count = max(1, math.ceil(len(indices) / capacity))
    base, remainder = divmod(len(indices), count)
    chunks: List[List[int]] = []
    start = 0
    for chunk_index in range(count):
        size = base + (1 if chunk_index < remainder else 0)
        chunks.append(indices[start:start + size])
        start += size
    return chunks


def _tile(indices: List[int], centers: Sequence[Tuple[float, ...]],
          capacity: int, dim: int, dims: int) -> List[List[int]]:
    """Recursively tile ``indices`` along dimensions ``dim..dims-1``."""
    if len(indices) <= capacity:
        return [indices]
    indices = sorted(indices, key=lambda i: centers[i][dim])
    remaining = dims - dim
    if remaining <= 1:
        return _balanced_chunks(indices, capacity)
    pages = math.ceil(len(indices) / capacity)
    slabs = math.ceil(pages ** (1.0 / remaining))
    slab_capacity = math.ceil(len(indices) / slabs)
    groups: List[List[int]] = []
    for slab in _balanced_chunks(indices, slab_capacity):
        groups.extend(_tile(slab, centers, capacity, dim + 1, dims))
    return groups


def str_groups(rects: Sequence[Rect], capacity: int) -> List[List[int]]:
    """Partition ``rects`` into spatially clustered groups of ``<= capacity``.

    Returns index groups into ``rects``.  When more than one group is
    produced every group holds at least ``capacity // 2`` rectangles, so a
    node built per group satisfies the ``m <= capacity // 2`` minimum-fill
    bound of the paper's ``M >= 2 m`` configurations.
    """
    if capacity < 1:
        raise ValueError("capacity must be at least 1")
    if not rects:
        return []
    dims = rects[0].dimensions
    centers = [
        tuple((lo + hi) / 2.0 for lo, hi in zip(rect.lower, rect.upper))
        for rect in rects
    ]
    return _tile(list(range(len(rects))), centers, capacity, 0, dims)


def bulk_load(
    items: Sequence[Tuple[Rect, Any]],
    min_entries: int = 2,
    max_entries: int = 4,
    split_method: str = "quadratic",
) -> RTree:
    """Pack ``(rect, payload)`` pairs into a height-balanced R-tree.

    The returned tree satisfies :meth:`RTree.check_invariants` and behaves
    exactly like an incrementally built tree for subsequent inserts, deletes
    and searches — only its shape (and build cost) differs.
    """
    tree = RTree(min_entries=min_entries, max_entries=max_entries,
                 split_method=split_method)
    if not items:
        return tree

    nodes: List[RTreeNode] = []
    for group in str_groups([rect for rect, _ in items], max_entries):
        leaf = RTreeNode(is_leaf=True)
        for index in group:
            rect, payload = items[index]
            leaf.add_entry(Entry(rect=rect, payload=payload))
        nodes.append(leaf)

    level = 0
    while len(nodes) > 1:
        level += 1
        parents: List[RTreeNode] = []
        for group in str_groups([node.mbr() for node in nodes], max_entries):
            parent = RTreeNode(is_leaf=False, level=level)
            for index in group:
                child = nodes[index]
                parent.add_entry(Entry(rect=child.mbr(), child=child))
            parents.append(parent)
        nodes = parents

    tree.root = nodes[0]
    tree._size = len(items)
    tree.stats.inserts = len(items)
    return tree

"""Classical (centralized) R-tree substrate.

The DR-tree (Section 3) is a distributed, self-stabilizing extension of the
R-tree index structure of Guttman (1984).  This subpackage provides the
sequential substrate:

* :class:`~repro.rtree.rtree.RTree` — insert / delete / point and range search,
* the three node-splitting algorithms supported by the DR-tree
  (:mod:`repro.rtree.split`): linear, quadratic, and R*,
* :class:`~repro.rtree.node.RTreeNode` and entries.

The sequential R-tree is also used as the centralized matching baseline in
the experiments.
"""

from repro.rtree.entry import Entry
from repro.rtree.node import RTreeNode
from repro.rtree.rtree import RTree
from repro.rtree.bulk import bulk_load, str_groups
from repro.rtree.split import (
    SPLIT_METHODS,
    SplitResult,
    linear_split,
    quadratic_split,
    rstar_split,
    get_split_function,
)

__all__ = [
    "Entry",
    "RTreeNode",
    "RTree",
    "bulk_load",
    "str_groups",
    "SPLIT_METHODS",
    "SplitResult",
    "linear_split",
    "quadratic_split",
    "rstar_split",
    "get_split_function",
]

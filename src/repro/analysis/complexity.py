"""Executable forms of Lemma 3.1's complexity bounds.

Lemma 3.1: in a legitimate configuration the height of the DR-tree is
``O(log_m N)`` and the memory needed per process for structure maintenance is
``O(M · log² N / log m)`` (a process may be responsible for one node per
level, each holding up to ``M`` child entries).

The experiments fit measured heights/state sizes against these bounds; the
functions below provide the bound values (with explicit constants) and
boolean predicates used in tests.
"""

from __future__ import annotations

import math


def height_bound(n_peers: int, min_children: int, constant: float = 1.0,
                 slack: int = 2) -> float:
    """Upper bound on the tree height: ``constant · log_m N + slack``.

    The ``slack`` accounts for the root (which may have as few as two
    children) and for the +-1 differences between the paper's and this
    implementation's level numbering.
    """
    if n_peers <= 0:
        raise ValueError("n_peers must be positive")
    if min_children < 2:
        raise ValueError("min_children must be at least 2")
    if n_peers == 1:
        return 1 + slack
    return constant * math.log(n_peers, min_children) + slack


def memory_bound(n_peers: int, min_children: int, max_children: int,
                 constant: float = 2.0, slack: float = 8.0) -> float:
    """Upper bound on per-peer state entries: ``c · M · log² N / log m + slack``."""
    if n_peers <= 0:
        raise ValueError("n_peers must be positive")
    if min_children < 2 or max_children < min_children:
        raise ValueError("need 2 <= m <= M")
    if n_peers == 1:
        return slack
    log_n = math.log(n_peers)
    return constant * max_children * (log_n ** 2) / math.log(min_children) + slack


def within_height_bound(height: int, n_peers: int, min_children: int,
                        constant: float = 1.5, slack: int = 2) -> bool:
    """True when a measured height respects Lemma 3.1's asymptotic bound."""
    return height <= height_bound(n_peers, min_children, constant, slack)


def within_memory_bound(state_entries: float, n_peers: int, min_children: int,
                        max_children: int, constant: float = 2.0,
                        slack: float = 8.0) -> bool:
    """True when a measured per-peer state size respects Lemma 3.1's bound."""
    return state_entries <= memory_bound(n_peers, min_children, max_children,
                                         constant, slack)


def logarithmic_latency_bound(n_peers: int, min_children: int,
                              constant: float = 2.0, slack: float = 3.0) -> float:
    """Bound on publication/subscription hop counts (``O(log_m N)``)."""
    return height_bound(n_peers, min_children, constant, slack)

"""Analytical models and statistics helpers.

* :mod:`~repro.analysis.churn_model` — Lemma 3.7's closed form for the
  expected time before the DR-tree disconnects under Poisson churn,
* :mod:`~repro.analysis.complexity` — the height and memory bounds of
  Lemma 3.1 as executable predicates,
* :mod:`~repro.analysis.stats` — small summary-statistics helpers shared by
  the experiments.
"""

from repro.analysis.churn_model import (
    expected_disconnection_time,
    disconnection_probability_bound,
)
from repro.analysis.complexity import (
    height_bound,
    memory_bound,
    within_height_bound,
    within_memory_bound,
)
from repro.analysis.stats import describe, linear_regression, log_fit_slope

__all__ = [
    "expected_disconnection_time",
    "disconnection_probability_bound",
    "height_bound",
    "memory_bound",
    "within_height_bound",
    "within_memory_bound",
    "describe",
    "linear_regression",
    "log_fit_slope",
]

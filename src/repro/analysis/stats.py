"""Small statistics helpers used by the experiment harness."""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Iterable, List, Sequence, Tuple


@dataclass(frozen=True)
class Description:
    """Summary statistics of one sample."""

    count: int
    mean: float
    stdev: float
    minimum: float
    maximum: float
    p50: float
    p95: float

    def as_dict(self) -> Dict[str, float]:
        """Dictionary view (used for table rows)."""
        return {
            "count": float(self.count),
            "mean": self.mean,
            "stdev": self.stdev,
            "min": self.minimum,
            "max": self.maximum,
            "p50": self.p50,
            "p95": self.p95,
        }


def _percentile(ordered: Sequence[float], fraction: float) -> float:
    if not ordered:
        return 0.0
    position = fraction * (len(ordered) - 1)
    low = math.floor(position)
    high = math.ceil(position)
    if low == high:
        return ordered[low]
    weight = position - low
    return ordered[low] * (1 - weight) + ordered[high] * weight


def describe(values: Iterable[float]) -> Description:
    """Summarize a sample (empty samples yield all-zero descriptions)."""
    data = sorted(float(v) for v in values)
    if not data:
        return Description(0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0)
    mean = sum(data) / len(data)
    if len(data) > 1:
        variance = sum((v - mean) ** 2 for v in data) / (len(data) - 1)
    else:
        variance = 0.0
    return Description(
        count=len(data),
        mean=mean,
        stdev=math.sqrt(variance),
        minimum=data[0],
        maximum=data[-1],
        p50=_percentile(data, 0.5),
        p95=_percentile(data, 0.95),
    )


def linear_regression(xs: Sequence[float], ys: Sequence[float]
                      ) -> Tuple[float, float]:
    """Least-squares slope and intercept of ``ys`` against ``xs``."""
    if len(xs) != len(ys):
        raise ValueError("xs and ys must have the same length")
    if len(xs) < 2:
        raise ValueError("need at least two points")
    n = len(xs)
    mean_x = sum(xs) / n
    mean_y = sum(ys) / n
    denominator = sum((x - mean_x) ** 2 for x in xs)
    if denominator == 0:
        return 0.0, mean_y
    slope = sum((x - mean_x) * (y - mean_y) for x, y in zip(xs, ys)) / denominator
    return slope, mean_y - slope * mean_x


def log_fit_slope(ns: Sequence[float], values: Sequence[float]) -> float:
    """Slope of ``values`` against ``log2(n)``.

    A bounded slope (values grow at most linearly in ``log n``) is how the
    experiments check the "logarithmic height / latency" claims without
    relying on absolute constants.
    """
    xs = [math.log2(n) for n in ns]
    slope, _ = linear_regression(xs, list(values))
    return slope


def growth_ratio(ns: Sequence[float], values: Sequence[float]) -> List[float]:
    """values[i] / log2(ns[i]) — should stay roughly flat for O(log n) data."""
    return [v / math.log2(n) if n > 1 else v for n, v in zip(ns, values)]

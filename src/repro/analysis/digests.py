"""Shared delivered-set and stream digests.

Two SHA-256 fingerprints used everywhere backend equivalence is asserted —
the backend matrix, the synthesized-workload tests and the trace replay's
digest-verification fallback for backends whose timing-polluted metrics rows
cannot be compared field by field (``drtree:net``):

* :func:`delivered_digest` — hashes a broker's delivered-event sets
  (``event id → sorted receiver set``), the canonical cross-backend
  delivery-identity check;
* :func:`stream_signature` — hashes a synthesized workload's serialized
  record stream, the cheap byte-identity pin for "every backend consumed
  the same ops".

Both previously lived in :mod:`repro.workloads.synth.stream`; that module
re-exports them so existing imports keep working.
"""

from __future__ import annotations

import hashlib
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.api.broker import Broker
    from repro.workloads.synth.spec import SyntheticWorkload


def delivered_digest(broker: "Broker") -> str:
    """SHA-256 over the delivered-event sets, for cross-backend identity.

    Hashes ``event id → sorted receiver set`` in event-id order; two
    brokers that delivered the same events to the same subscribers have
    the same digest regardless of engine, shard layout or transport.
    """
    digest = hashlib.sha256()
    outcomes = broker.accounting.outcomes
    for event_id in sorted(outcomes):
        digest.update(event_id.encode("utf-8"))
        digest.update(b"|")
        digest.update(",".join(sorted(outcomes[event_id].received))
                      .encode("utf-8"))
        digest.update(b"\n")
    return digest.hexdigest()


def stream_signature(spec: "SyntheticWorkload",
                     backend: str = "drtree:classic") -> str:
    """SHA-256 of the serialized record stream (cheap byte-identity pin)."""
    from repro.traces.io import dump_record
    from repro.workloads.synth.stream import iter_records

    digest = hashlib.sha256()
    for record in iter_records(spec, backend):
        digest.update((dump_record(record) + "\n").encode("utf-8"))
    return digest.hexdigest()

"""Analytic churn-resistance model (Lemma 3.7).

Lemma 3.7: let ``Δ`` be an interval of time during which no stabilization
operation is triggered and let ``λ`` be the (Poisson) rate of departures.
The expected time before the DR-tree disconnects is::

    E[T] = (Δ / N) · exp((N − Δλ)² / (4Δλ))

where ``N`` is the number of peers.  Joins have no impact on connectivity, so
only departures matter.  Intuitively the tree stays connected as long as
fewer than roughly ``N`` departures accumulate within one repair interval;
the exponential term captures how unlikely that is when ``Δλ ≪ N``.

The experiments compare this closed form against simulation: the simulated
overlay is subjected to Poisson departures with stabilization suspended, and
the time until some surviving peer becomes unreachable from the root is
recorded.
"""

from __future__ import annotations

import math


def expected_disconnection_time(n_peers: int, delta: float, departure_rate: float
                                ) -> float:
    """Lemma 3.7's expected time before the DR-tree disconnects.

    Parameters
    ----------
    n_peers:
        Number of peers ``N`` in the overlay.
    delta:
        Length ``Δ`` of the stabilization-free interval.
    departure_rate:
        Poisson departure rate ``λ`` (departures per time unit).
    """
    if n_peers <= 0:
        raise ValueError("n_peers must be positive")
    if delta <= 0:
        raise ValueError("delta must be positive")
    if departure_rate < 0:
        raise ValueError("departure_rate must be non-negative")
    if departure_rate == 0:
        return math.inf
    exponent = (n_peers - delta * departure_rate) ** 2 / (4 * delta * departure_rate)
    # Guard against overflow for very small churn rates: the paper's formula
    # grows astronomically fast, which simply means "effectively never".
    if exponent > 700.0:
        return math.inf
    return (delta / n_peers) * math.exp(exponent)


def disconnection_probability_bound(n_peers: int, delta: float,
                                    departure_rate: float) -> float:
    """Probability that at least ``N`` departures hit one repair interval.

    This is the per-interval disconnection risk implied by the lemma's
    derivation (a Chernoff-style bound on the Poisson tail): the expected
    number of departures in ``Δ`` is ``Δλ``, and the structure is at risk once
    the whole population could have departed within a single interval.
    """
    if n_peers <= 0:
        raise ValueError("n_peers must be positive")
    if delta <= 0:
        raise ValueError("delta must be positive")
    if departure_rate < 0:
        raise ValueError("departure_rate must be non-negative")
    if departure_rate == 0:
        return 0.0
    mean = delta * departure_rate
    if n_peers <= mean:
        return 1.0
    exponent = -((n_peers - mean) ** 2) / (4 * mean)
    return math.exp(exponent)


def critical_departure_rate(n_peers: int, delta: float,
                            target_expected_time: float) -> float:
    """Largest ``λ`` whose expected disconnection time stays above a target.

    Solved numerically by bisection on the monotone (decreasing) relationship
    between ``λ`` and :func:`expected_disconnection_time`.  Useful to size the
    stabilization period for a target churn tolerance.
    """
    if target_expected_time <= 0:
        raise ValueError("target_expected_time must be positive")
    low, high = 1e-9, float(n_peers) / delta
    if expected_disconnection_time(n_peers, delta, high) >= target_expected_time:
        return high
    for _ in range(200):
        mid = (low + high) / 2
        if expected_disconnection_time(n_peers, delta, mid) >= target_expected_time:
            low = mid
        else:
            high = mid
    return low

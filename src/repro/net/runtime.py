"""The asyncio runtime under the real-network backend.

One event loop in one background thread carries *all* peers: their TCP
servers, their per-peer background stabilizer tasks, the pooled outbound
channels and every protocol timer.  Peer protocol logic therefore executes
single-threaded (on the loop thread), exactly as it does under the
discrete-event engine — the synchronous facade bridges each operation onto
the loop with :func:`asyncio.run_coroutine_threadsafe` and blocks on the
resulting future.

Three pieces live here:

* :class:`NetClock` — the ``engine`` adapter peers see: real monotonic time
  expressed in *simulated time units* (``options.time_scale`` real seconds
  per unit), and ``schedule()`` mapping protocol timers onto
  ``loop.call_later``;
* :class:`InflightLedger` — the frame accounting that turns "stabilize" and
  "settle" into a quiescence wait: every frame accepted for transport is
  acquired against its recipient and released when the recipient's handler
  returns (or the frame is dropped), and :meth:`InflightLedger.wait_idle`
  blocks until the count reaches zero;
* :class:`NetRuntime` — the loop thread itself, the outbound channel pool
  (one FIFO writer task per destination, LRU-capped, bounded
  retry + exponential backoff on connects) and the op gate that defers
  background stabilizer ticks while a facade operation is in flight.

When a :class:`~repro.net.conditions.ConditionPipeline` is installed, every
frame entering :meth:`NetRuntime.enqueue` is routed through it first: drops
(loss, partition, ``drop_first``) never reach a channel but are counted;
delayed frames stay *held in the ledger* for the delay's duration before
joining their channel queue, so quiescence waits remain sound — "settle"
cannot complete while a condition-delayed frame is still going to arrive;
duplicated frames share the original's ``message_id`` and the dispatch-side
dedup guard drops the redundant copy (``net.conditions.duplicates_dropped``),
keeping delivered sets identical to the condition-free run.
"""

from __future__ import annotations

import asyncio
import threading
import time
from collections import OrderedDict
from typing import (TYPE_CHECKING, Callable, Coroutine, Deque, Dict, Optional,
                    Tuple)
from collections import deque

from repro.net.codec import encode_frame
from repro.net.faults import NetTimeoutError, PeerUnreachableError
from repro.sim.messages import Message
from repro.sim.metrics import MetricsRegistry

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.net.conditions import ConditionPipeline
    from repro.overlay.peer import DRTreePeer
    from repro.pubsub.engines import NetOptions


class _TimerHandle:
    """The ``ScheduledEvent``-shaped handle returned by :meth:`NetClock.schedule`."""

    __slots__ = ("_handle", "cancelled")

    def __init__(self) -> None:
        self._handle: Optional[asyncio.TimerHandle] = None
        self.cancelled = False

    def _arm(self, handle: asyncio.TimerHandle) -> None:
        if self.cancelled:
            handle.cancel()
        else:
            self._handle = handle

    def cancel(self) -> None:
        """Cancel the timer (safe from any thread, safe when already fired)."""
        self.cancelled = True
        if self._handle is not None:
            self._handle.cancel()


class NetClock:
    """Real monotonic time in simulated units, plus protocol timers.

    Peers read ``engine.now`` (stamped onto outgoing messages) and arm
    one-shot timers through ``engine.schedule`` — the only two pieces of
    the discrete-event engine surface the overlay protocols use.  Both are
    mapped onto wall time: one simulated unit is ``time_scale`` real
    seconds.
    """

    def __init__(self, runtime: "NetRuntime", time_scale: float) -> None:
        self._runtime = runtime
        self.time_scale = time_scale
        self._t0 = time.monotonic()

    @property
    def now(self) -> float:
        """Elapsed real time since construction, in simulated units."""
        return (time.monotonic() - self._t0) / self.time_scale

    def schedule(self, delay: float, callback: Callable[[], None],
                 label: str = "") -> _TimerHandle:
        """Run ``callback`` after ``delay`` simulated units of real time."""
        handle = _TimerHandle()
        loop = self._runtime.loop
        real_delay = max(0.0, delay * self.time_scale)

        def arm() -> None:
            handle._arm(loop.call_later(real_delay, callback))

        if self._runtime.on_loop_thread():
            arm()
        else:
            loop.call_soon_threadsafe(arm)
        return handle


class InflightLedger:
    """Counts frames between transport acceptance and handler completion.

    All mutations happen on the loop thread, so plain integers suffice; the
    ``asyncio.Event`` flips exactly when the total reaches zero.  Per-
    recipient counts exist so a crash can retire the frames that will never
    be dispatched (their reader task died with the server).
    """

    def __init__(self) -> None:
        self.total = 0
        self._by_recipient: Dict[str, int] = {}
        self._idle = asyncio.Event()
        self._idle.set()

    def acquire(self, recipient: str) -> None:
        self.total += 1
        self._by_recipient[recipient] = \
            self._by_recipient.get(recipient, 0) + 1
        self._idle.clear()

    def release(self, recipient: str) -> None:
        held = self._by_recipient.get(recipient, 0)
        if held <= 0:
            # Already retired by a crash; nothing left to release.
            return
        self._by_recipient[recipient] = held - 1
        self.total -= 1
        if self.total == 0:
            self._idle.set()

    def retire(self, recipient: str) -> int:
        """Drop every in-flight frame addressed to a crashed recipient."""
        held = self._by_recipient.pop(recipient, 0)
        if held:
            self.total -= held
            if self.total == 0:
                self._idle.set()
        return held

    async def wait_idle(self, timeout: float) -> None:
        """Block until no frame is in flight; bounded by ``timeout`` seconds."""
        if self.total == 0:
            return
        try:
            await asyncio.wait_for(self._idle.wait(), timeout)
        except asyncio.TimeoutError:
            raise NetTimeoutError(
                f"quiescence wait exceeded {timeout:.1f}s with "
                f"{self.total} frame(s) still in flight") from None


class _Channel:
    """One FIFO outbound channel: a queue drained by a single writer task.

    Per-destination (not per sender/recipient pair): every frame bound for
    ``dst`` goes through this queue in send order, which preserves the
    per-pair FIFO delivery the simulated network guarantees while keeping
    the open-connection count ``O(peers)`` instead of ``O(tree edges)``.
    """

    def __init__(self, runtime: "NetRuntime", dst: str) -> None:
        self.runtime = runtime
        self.dst = dst
        self.queue: Deque[Message] = deque()
        self.wakeup = asyncio.Event()
        self.writer: Optional[asyncio.StreamWriter] = None
        self.closing = False
        self.task = runtime.loop.create_task(self._run(),
                                             name=f"net-ch:{dst}")

    def put(self, message: Message) -> None:
        self.queue.append(message)
        self.wakeup.set()

    async def _run(self) -> None:
        try:
            while True:
                while not self.queue:
                    self.wakeup.clear()
                    await self.wakeup.wait()
                message = self.queue.popleft()
                await self._transmit(message)
        except asyncio.CancelledError:
            raise
        finally:
            await self._close_writer()

    async def _transmit(self, message: Message) -> None:
        runtime = self.runtime
        if self.dst in runtime.crashed:
            runtime.drop(message, "crashed")
            return
        try:
            if self.writer is None:
                self.writer = await runtime.connect(self.dst)
            self.writer.write(encode_frame(message))
            await self.writer.drain()
        except PeerUnreachableError:
            runtime.drop(message, "unreachable")
            await self._close_writer()
        except (ConnectionError, OSError):
            # The pooled connection went stale (server restarted, reader
            # closed us, LRU eviction raced a write): one reconnect attempt
            # through the retry budget, then give the frame up.
            await self._close_writer()
            try:
                self.writer = await runtime.connect(self.dst)
                self.writer.write(encode_frame(message))
                await self.writer.drain()
            except (PeerUnreachableError, ConnectionError, OSError):
                runtime.drop(message, "unreachable")
                await self._close_writer()

    async def _close_writer(self) -> None:
        writer, self.writer = self.writer, None
        if writer is not None:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):  # pragma: no cover - teardown
                pass

    def drain_pending(self) -> None:
        """Drop every queued frame (destination crashed or runtime closing)."""
        while self.queue:
            self.runtime.drop(self.queue.popleft(), "crashed")


class NetRuntime:
    """The event-loop thread and transport shared by every peer."""

    def __init__(self, options: "NetOptions", metrics: MetricsRegistry,
                 jitter_rng) -> None:
        self.options = options
        self.metrics = metrics
        #: RNG stream drawing the background stabilizers' interval jitter.
        self.jitter_rng = jitter_rng
        self.loop = asyncio.new_event_loop()
        self._thread = threading.Thread(target=self._run_loop,
                                        name="repro-net-loop", daemon=True)
        self.clock = NetClock(self, options.time_scale)
        self.ledger = InflightLedger()
        #: peer id → live DRTreePeer object (the dispatch registry).
        self.peers: Dict[str, "DRTreePeer"] = {}
        #: peer id → (host, port) of its TCP server.
        self.addresses: Dict[str, Tuple[str, int]] = {}
        self.crashed: set = set()
        self._channels: "OrderedDict[str, _Channel]" = OrderedDict()
        #: Installed condition pipeline, or ``None`` for a perfect network.
        self.pipeline: Optional["ConditionPipeline"] = None
        #: Frames currently held back by an injected delay (ledger-held).
        self.delayed_pending = 0
        #: message_id → [copies outstanding, delivered once?] for frames the
        #: pipeline duplicated; the dispatch-side dedup guard reads this.
        self._dup_state: Dict[int, list] = {}
        #: Facade operations in flight; background stabilizer ticks defer
        #: while this is non-zero, so every facade op observes (and leaves)
        #: the overlay exactly as the driven round model would.
        self.op_depth = 0
        self._closed = False
        self._thread.start()
        self._started = threading.Event()
        self.loop.call_soon_threadsafe(self._started.set)
        self._started.wait()

    # ------------------------------------------------------------------ #
    # Loop thread and bridging
    # ------------------------------------------------------------------ #

    def _run_loop(self) -> None:
        asyncio.set_event_loop(self.loop)
        try:
            self.loop.run_forever()
        finally:
            # Give cancelled tasks one last cycle, then close.
            pending = asyncio.all_tasks(self.loop)
            for task in pending:
                task.cancel()
            if pending:
                self.loop.run_until_complete(
                    asyncio.gather(*pending, return_exceptions=True))
            self.loop.close()

    def on_loop_thread(self) -> bool:
        return threading.get_ident() == self._thread.ident

    def call(self, coro: Coroutine, op: bool = True):
        """Run ``coro`` on the loop thread and return its result.

        ``op=True`` (every facade operation) holds the op gate for the
        coroutine's duration, deferring background stabilizer ticks.  Must
        not be called from the loop thread (it would deadlock); loop-thread
        callers invoke the synchronous helpers directly.
        """
        if self.on_loop_thread():
            raise RuntimeError("NetRuntime.call() invoked from the loop "
                               "thread; call the coroutine directly")
        if self._closed:
            coro.close()
            raise RuntimeError("the network runtime is closed")

        async def gated():
            if op:
                self.op_depth += 1
            try:
                return await coro
            finally:
                if op:
                    self.op_depth -= 1

        return asyncio.run_coroutine_threadsafe(gated(), self.loop).result()

    # ------------------------------------------------------------------ #
    # Transport
    # ------------------------------------------------------------------ #

    def enqueue(self, message: Message) -> None:
        """Accept one frame for transport (loop thread only)."""
        if self.pipeline is not None:
            self._enqueue_conditioned(message)
        else:
            self._enqueue_now(message)

    def _enqueue_now(self, message: Message, acquired: bool = False) -> None:
        """Hand one frame to its destination channel, ledger-acquired."""
        if not acquired:
            self.ledger.acquire(message.recipient)
        channel = self._channels.get(message.recipient)
        if channel is None:
            channel = _Channel(self, message.recipient)
            self._channels[message.recipient] = channel
            self._evict_channels()
        else:
            self._channels.move_to_end(message.recipient)
        channel.put(message)

    def _enqueue_conditioned(self, message: Message) -> None:
        """Route one frame through the installed condition pipeline."""
        decision = self.pipeline.decide(message.sender, message.recipient,
                                        self.clock.now)
        if decision.drop is not None:
            self.metrics.increment(f"net.conditions.{decision.drop}")
            self.metrics.increment(
                "network.messages_partitioned"
                if decision.drop == "partitioned"
                else "network.messages_lost")
            return
        frames = [message]
        if decision.copies > 1:
            self.metrics.increment("net.conditions.duplicated")
            self._dup_state[message.message_id] = [decision.copies, False]
            frames.extend(
                Message(message.sender, message.recipient, message.kind,
                        dict(message.payload), sent_at=message.sent_at,
                        message_id=message.message_id, hops=message.hops)
                for _ in range(decision.copies - 1))
        if decision.reordered:
            self.metrics.increment("net.conditions.reordered")
        for frame in frames:
            if decision.delay > 0.0:
                self.metrics.increment("net.conditions.delayed")
                # The frame is ledger-held for the whole delay: settle stays
                # a sound quiescence wait even while frames are "in the air".
                self.ledger.acquire(frame.recipient)
                self.delayed_pending += 1
                self.loop.call_later(
                    decision.delay * self.clock.time_scale,
                    self._release_delayed, frame)
            else:
                self._enqueue_now(frame)

    def _release_delayed(self, message: Message) -> None:
        self.delayed_pending -= 1
        self._enqueue_now(message, acquired=True)

    def _evict_channels(self) -> None:
        while len(self._channels) > self.options.max_channels:
            dst, channel = next(iter(self._channels.items()))
            if channel.queue:
                # Never evict a channel with frames still queued.
                self._channels.move_to_end(dst, last=True)
                break
            del self._channels[dst]
            channel.task.cancel()
            self.metrics.increment("net.channels_evicted")

    async def connect(self, dst: str) -> asyncio.StreamWriter:
        """Open a connection to ``dst`` with bounded retry + backoff.

        Raises :class:`PeerUnreachableError` once the retry budget is
        spent (or immediately when ``dst`` is known to be crashed).
        """
        backoff = self.options.retry_backoff
        attempts = self.options.send_retries + 1
        for attempt in range(attempts):
            if dst in self.crashed:
                raise PeerUnreachableError(f"peer {dst!r} has crashed")
            address = self.addresses.get(dst)
            if address is not None:
                try:
                    _, writer = await asyncio.open_connection(*address)
                    return writer
                except (ConnectionError, OSError):
                    pass
            if attempt + 1 < attempts:
                self.metrics.increment("net.connect_retries")
                await asyncio.sleep(backoff)
                backoff *= 2
        raise PeerUnreachableError(
            f"peer {dst!r} unreachable after {attempts} attempt(s)")

    def drop(self, message: Message, reason: str) -> None:
        """Retire a frame that will never be dispatched."""
        self.metrics.increment("network.messages_dropped")
        self.metrics.increment(f"net.frames_dropped.{reason}")
        self._dup_account(message)
        self.ledger.release(message.recipient)

    def _dup_account(self, message: Message, delivered: bool = False) -> bool:
        """Track one arrival/drop of a pipeline-duplicated frame.

        Returns True when the frame is a *redundant* copy (its twin was
        already delivered) that the dedup guard must swallow.  Untracked
        frames fall straight through.
        """
        state = self._dup_state.get(message.message_id)
        if state is None:
            return False
        state[0] -= 1
        if state[0] <= 0:
            self._dup_state.pop(message.message_id, None)
        if delivered:
            if state[1]:
                return True
            state[1] = True
        return False

    def dispatch(self, message: Message) -> None:
        """Hand one decoded frame to its recipient's handler (loop thread)."""
        peer = self.peers.get(message.recipient)
        try:
            if peer is None or message.recipient in self.crashed:
                self.metrics.increment("network.messages_dropped")
                self._dup_account(message)
                return
            if self._dup_account(message, delivered=True):
                # The duplicate's twin already ran the handler: drop this
                # copy so delivered sets match the condition-free run.
                self.metrics.increment("net.conditions.duplicates_dropped")
                self.metrics.increment("network.messages_dropped")
                return
            self.metrics.increment("network.messages_delivered")
            peer.handle_message(message)
        finally:
            self.ledger.release(message.recipient)

    # ------------------------------------------------------------------ #
    # Quiescence and failure control
    # ------------------------------------------------------------------ #

    async def wait_idle(self) -> None:
        try:
            await self.ledger.wait_idle(self.options.idle_timeout)
        except NetTimeoutError:
            self.metrics.increment("net.quiescence_timeouts")
            raise

    def has_pending(self) -> bool:
        return self.ledger.total > 0

    def mark_crashed(self, peer_id: str) -> None:
        self.crashed.add(peer_id)

    def retire_channel(self, peer_id: str) -> None:
        """Tear down the outbound channel to a crashed/departed peer."""
        channel = self._channels.pop(peer_id, None)
        if channel is not None:
            channel.drain_pending()
            channel.task.cancel()

    # ------------------------------------------------------------------ #
    # Shutdown
    # ------------------------------------------------------------------ #

    def close(self, endpoints: Optional[Dict[str, object]] = None) -> None:
        """Stop everything: tasks, channels, servers, the loop, the thread.

        Idempotent and callable from any thread except the loop thread.
        ``endpoints`` (peer id → PeerEndpoint) is closed first when given.
        """
        if self._closed:
            return
        self._closed = True

        async def teardown() -> None:
            if endpoints:
                await asyncio.gather(
                    *(endpoint.close() for endpoint in endpoints.values()),
                    return_exceptions=True)
            for channel in self._channels.values():
                channel.drain_pending()
                channel.task.cancel()
            self._channels.clear()

        future = asyncio.run_coroutine_threadsafe(teardown(), self.loop)
        try:
            future.result(timeout=10)
        except Exception:  # noqa: BLE001 - best-effort teardown
            pass
        self.loop.call_soon_threadsafe(self.loop.stop)
        self._thread.join(timeout=10)

"""The periodic background stabilizer: one task per peer, no global barrier.

Under the discrete-event engines, self-stabilization is driven from the
outside — ``DRTreeSimulation.stabilize`` triggers every peer's round and
settles the network between rounds.  On the real-network backend each peer
instead owns a small asyncio task that fires
:meth:`DRTreePeer.run_stabilization_round` on its own jittered period, the
way Section 4 of the paper describes deployed peers behaving: no peer waits
for any other, and repairs (parent liveness probes, orphan re-attachment,
MBR/cover maintenance) emerge from local timers only.

Two deliberate couplings to the rest of the backend:

* the interval is ``stabilization_period`` simulated units scaled by
  ``time_scale``, with multiplicative jitter drawn from a seeded RNG
  stream, so no two peers tick in lock-step;
* a tick is *skipped* while a facade operation holds the runtime's op gate
  (``op_depth > 0``) — facade calls therefore observe the same overlay
  state transitions the driven round model produces, which is what keeps
  the delivered-event digest byte-identical to ``drtree:classic``.
"""

from __future__ import annotations

import asyncio
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.net.runtime import NetRuntime
    from repro.overlay.peer import DRTreePeer


class PeerStabilizer:
    """A jittered periodic task firing one peer's stabilization round."""

    def __init__(self, runtime: "NetRuntime", peer: "DRTreePeer",
                 period_units: float) -> None:
        self.runtime = runtime
        self.peer = peer
        self.period_units = period_units
        #: Rounds actually executed (skipped ticks do not count); the
        #: net-soak convergence table reads this to report cycles-to-legal.
        self.cycles = 0
        self._task = runtime.loop.create_task(
            self._run(), name=f"net-stab:{peer.process_id}")

    def _interval(self) -> float:
        jitter = self.runtime.options.jitter
        factor = 1.0
        if jitter > 0.0:
            factor = self.runtime.jitter_rng.uniform(1.0 - jitter,
                                                     1.0 + jitter)
        return max(0.001,
                   self.period_units * self.runtime.clock.time_scale * factor)

    async def _run(self) -> None:
        pid = self.peer.process_id
        while True:
            await asyncio.sleep(self._interval())
            if self.runtime.op_depth > 0:
                # The lossy scenarios read this to tell "slow because the
                # op gate starved the stabilizers" from "slow because the
                # network ate the repair frames".
                self.runtime.metrics.increment("net.stabilizer.deferred")
                continue
            if pid in self.runtime.crashed or pid not in self.runtime.peers:
                return
            self.peer.run_stabilization_round()
            self.cycles += 1

    async def stop(self) -> None:
        self._task.cancel()
        try:
            await self._task
        except asyncio.CancelledError:
            pass

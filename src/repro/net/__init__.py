"""The real-network DR-tree backend (``drtree:net``).

Every overlay peer owns a real loopback TCP stream server on a shared
asyncio event loop; the unchanged :class:`~repro.overlay.peer.DRTreePeer`
protocol logic exchanges its messages as length-prefixed CRC-checked frames
(:mod:`~repro.net.codec`, the ``<III`` format of the shared-memory shard
transport), and a jittered per-peer background stabilizer task
(:mod:`~repro.net.stabilizer`) replaces the simulator's global
``stabilize()`` round barrier.

Module map:

* :mod:`~repro.net.faults` — the typed fault hierarchy (``NetError`` →
  ``NetTimeoutError`` / ``PeerUnreachableError`` / ``NetProtocolError`` /
  ``ConditionSpecError``),
* :mod:`~repro.net.codec` — frame encoding and the incremental decoder,
* :mod:`~repro.net.conditions` — deterministic network-condition injection
  (seeded per-link loss/latency/reorder/duplication/partition pipeline),
* :mod:`~repro.net.runtime` — the event-loop thread, pooled outbound
  channels with bounded retry/backoff, the in-flight ledger that turns
  "stabilize" into a quiescence wait, and the real-time clock adapter,
* :mod:`~repro.net.peer` — the per-peer endpoint (TCP server + dispatch),
* :mod:`~repro.net.stabilizer` — the periodic background stabilizer task,
* :mod:`~repro.net.broker` — :class:`~repro.net.broker.NetSimulation`, the
  driving surface the pub/sub facade operates, bridging its synchronous
  calls onto the async runtime.

Select it like any other backend: ``SystemSpec(backend="drtree:net")``,
``--backend drtree:net`` on the CLI, or ``engine="net"`` on the facade.
See ``docs/net.md``.
"""

from repro.net.broker import NetSimulation
from repro.net.codec import (FRAME_HEADER, FRAME_MAGIC, MAX_FRAME_BYTES,
                             FrameDecoder, encode_frame)
from repro.net.conditions import (ConditionPipeline, NetConditions,
                                  PartitionWindow)
from repro.net.faults import (ConditionSpecError, NetError, NetProtocolError,
                              NetTimeoutError, PeerUnreachableError)

__all__ = [
    "ConditionPipeline",
    "ConditionSpecError",
    "FRAME_HEADER",
    "FRAME_MAGIC",
    "MAX_FRAME_BYTES",
    "FrameDecoder",
    "NetConditions",
    "NetError",
    "NetProtocolError",
    "NetSimulation",
    "NetTimeoutError",
    "PartitionWindow",
    "PeerUnreachableError",
    "encode_frame",
]

"""Per-peer network endpoint: a real loopback TCP server plus dispatch.

Each overlay peer owns one ``asyncio`` stream server bound to an ephemeral
port on ``127.0.0.1``.  Inbound connections are read chunk by chunk through
the incremental :class:`~repro.net.codec.FrameDecoder`; every completed
frame is handed to the runtime's dispatcher, which runs the unchanged
:meth:`DRTreePeer.handle_message` protocol logic on the loop thread and
releases the frame from the in-flight ledger.  A torn stream
(:class:`~repro.net.faults.NetProtocolError`) closes the connection — the
sender's pooled channel reconnects and the codec never resynchronizes
silently.
"""

from __future__ import annotations

import asyncio
from typing import TYPE_CHECKING, Optional, Set

from repro.net.codec import FrameDecoder
from repro.net.faults import NetProtocolError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.net.runtime import NetRuntime
    from repro.net.stabilizer import PeerStabilizer
    from repro.overlay.peer import DRTreePeer


class PeerEndpoint:
    """One peer's server, its reader tasks and its background stabilizer."""

    def __init__(self, runtime: "NetRuntime", peer: "DRTreePeer") -> None:
        self.runtime = runtime
        self.peer = peer
        self.peer_id = peer.process_id
        self.server: Optional[asyncio.base_events.Server] = None
        self.stabilizer: Optional["PeerStabilizer"] = None
        self._readers: Set[asyncio.Task] = set()

    async def start(self) -> None:
        """Bind the loopback server and publish its address."""
        self.server = await asyncio.start_server(
            self._on_connection, "127.0.0.1", 0)
        host, port = self.server.sockets[0].getsockname()[:2]
        self.runtime.addresses[self.peer_id] = (host, port)

    async def _on_connection(self, reader: asyncio.StreamReader,
                             writer: asyncio.StreamWriter) -> None:
        self._readers.add(asyncio.current_task())
        decoder = FrameDecoder()
        try:
            while True:
                chunk = await reader.read(1 << 16)
                if not chunk:
                    return
                try:
                    messages = decoder.feed(chunk)
                except NetProtocolError:
                    self.runtime.metrics.increment("net.protocol_errors")
                    return
                for message in messages:
                    self.runtime.dispatch(message)
        except (ConnectionError, asyncio.CancelledError):
            pass
        finally:
            self._readers.discard(asyncio.current_task())
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):  # pragma: no cover - teardown
                pass

    async def close(self) -> None:
        """Stop the stabilizer, the server and every open reader."""
        if self.stabilizer is not None:
            await self.stabilizer.stop()
            self.stabilizer = None
        self.runtime.addresses.pop(self.peer_id, None)
        if self.server is not None:
            self.server.close()
            await self.server.wait_closed()
            self.server = None
        readers = [task for task in self._readers if not task.done()]
        for task in readers:
            task.cancel()
        if readers:
            await asyncio.gather(*readers, return_exceptions=True)
        self._readers.clear()

"""Typed fault hierarchy of the real-network backend.

Everything the network runtime can fail with derives from :class:`NetError`,
so callers distinguish transport faults from protocol bugs with one
``except`` clause — and the three leaf types tell them whether to retry
(timeout), give up on the peer (unreachable) or treat the stream as torn
(protocol).
"""

from __future__ import annotations


class NetError(RuntimeError):
    """Base of every real-network backend fault."""


class NetTimeoutError(NetError):
    """A bounded wait (quiescence, connect, drain) exceeded its deadline."""


class PeerUnreachableError(NetError):
    """A peer's endpoint refused connections past the retry budget."""


class NetProtocolError(NetError):
    """A frame stream was torn: bad magic, implausible length or CRC
    mismatch.  The connection is closed rather than resynchronized."""


class ConditionSpecError(NetError, ValueError):
    """A network-condition spec (mapping or ``--conditions`` string) is
    malformed: unknown key, out-of-range probability, bad latency model.
    Also a ``ValueError`` so engine-option validation reports it through
    the standard ``SystemSpec`` rejection path."""

"""Deterministic network-condition injection for the real-network backend.

PR 8's ``drtree:net`` only ever ran over a perfect loopback: every frame
that left a peer arrived, immediately, exactly once.  This module supplies
the adversarial half of the paper's asynchrony model — message loss,
transmission latency, reordering, duplication and timed network partitions
— as a *deterministic pipeline* every outbound frame passes through before
it reaches the channel pool.

Two pieces live here:

* :class:`NetConditions` — the frozen condition spec.  Loss is Bernoulli
  (independent per frame) or burst-Gilbert (a two-state good/bad Markov
  chain, the classic model for correlated loss); latency is fixed, uniform
  or lognormal, expressed in *simulated time units* (the runtime scales by
  ``time_scale`` when arming the delay); ``reorder`` holds a frame back an
  extra window so later frames overtake it; ``duplicate`` emits a second
  copy; ``drop_first`` deterministically eats the first N frames of every
  link (the test knob that makes "the retry timer fired" a certainty, not
  a coin flip); ``partitions`` are timed windows during which frames
  between peer groups are dropped.  Specs parse from a mapping (the
  ``engine_options={"conditions": {...}}`` form) or from a compact string
  (the ``--conditions`` CLI form).
* :class:`ConditionPipeline` — the per-link decision engine.  Every link
  (ordered sender→recipient pair) owns its own named RNG stream derived
  from the master seed (:class:`~repro.sim.rng.RandomStreams`), plus its
  Gilbert chain state and frame counter.  A decision is therefore a pure
  function of ``(seed, spec, the link's frame sequence, the frame's
  submission time)`` — independent of scheduling on other links — which is
  what the property suite pins: same seed + same spec ⇒ byte-identical
  drop/delay/duplicate decisions.

Draw-order discipline: the pipeline consumes its per-link RNG in a fixed
order (loss, latency, reorder, duplicate) on *every* frame past the
``drop_first`` prefix, even when an earlier stage already doomed the frame.
A partition window opening or closing therefore never shifts the random
decisions of the frames around it.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import (Any, Dict, List, Mapping, Optional, Sequence, Tuple,
                    Union)

from repro.net.faults import ConditionSpecError
from repro.sim.rng import RandomStreams

#: Latency models :class:`NetConditions` accepts.
LATENCY_MODELS = ("none", "fixed", "uniform", "lognormal")
#: Loss models :class:`NetConditions` accepts.
LOSS_MODELS = ("bernoulli", "gilbert")


@dataclass(frozen=True)
class PartitionWindow:
    """One timed partition: frames crossing groups drop during the window.

    ``start``/``duration`` are simulated time units measured from the
    moment the pipeline is installed.  Groups are either ``groups`` (peers
    hash-assigned into that many sides — the scenario form) or explicit
    ``sets`` of peer ids (the test form); peers outside every explicit set
    are unaffected.
    """

    start: float = 0.0
    duration: float = 0.0
    groups: int = 2
    sets: Tuple[Tuple[str, ...], ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "start", float(self.start))
        object.__setattr__(self, "duration", float(self.duration))
        object.__setattr__(self, "groups", int(self.groups))
        object.__setattr__(self, "sets",
                           tuple(tuple(str(m) for m in group)
                                 for group in self.sets))
        if self.start < 0:
            raise ConditionSpecError("partition start must be >= 0")
        if self.duration < 0:
            raise ConditionSpecError("partition duration must be >= 0")
        if not self.sets and self.groups < 2:
            raise ConditionSpecError("partition needs at least 2 groups")

    def active(self, now: float) -> bool:
        return self.start <= now < self.start + self.duration

    def separates(self, sender: str, recipient: str) -> bool:
        """True when the two peers sit on different sides of the cut."""
        if self.sets:
            side = {member: index
                    for index, group in enumerate(self.sets)
                    for member in group}
            a, b = side.get(sender), side.get(recipient)
            return a is not None and b is not None and a != b
        return _hash_group(sender, self.groups) != \
            _hash_group(recipient, self.groups)

    def to_mapping(self) -> Dict[str, Any]:
        data: Dict[str, Any] = {"start": self.start,
                                "duration": self.duration}
        if self.sets:
            data["sets"] = [list(group) for group in self.sets]
        else:
            data["groups"] = self.groups
        return data


def _hash_group(peer_id: str, groups: int) -> int:
    """Stable group assignment, independent of interpreter hash seeds."""
    digest = hashlib.sha256(peer_id.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") % groups


@dataclass(frozen=True)
class NetConditions:
    """A validated, immutable network-condition spec."""

    #: Bernoulli per-frame loss probability (``loss_model="bernoulli"``) or
    #: ignored under the Gilbert model.
    loss: float = 0.0
    loss_model: str = "bernoulli"
    #: Gilbert chain: P(good → bad) per frame.
    gilbert_p: float = 0.0
    #: Gilbert chain: P(bad → good) per frame.
    gilbert_r: float = 0.5
    #: Loss probability while the chain sits in the bad state.
    gilbert_loss: float = 1.0
    #: Latency model and its parameters, in simulated time units.
    latency: str = "none"
    delay: float = 0.0
    delay_low: float = 0.0
    delay_high: float = 0.0
    delay_mu: float = 0.0
    delay_sigma: float = 0.25
    #: Probability a frame is held back an extra ``reorder_window`` units,
    #: letting frames submitted after it overtake it.
    reorder: float = 0.0
    reorder_window: float = 1.0
    #: Probability a frame is transmitted twice (the receiver-side dedup
    #: guard drops the redundant copy and counts it).
    duplicate: float = 0.0
    #: Deterministically drop the first N frames of every link.
    drop_first: int = 0
    partitions: Tuple[PartitionWindow, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "loss", float(self.loss))
        object.__setattr__(self, "loss_model", str(self.loss_model))
        for name in ("gilbert_p", "gilbert_r", "gilbert_loss", "delay",
                     "delay_low", "delay_high", "delay_mu", "delay_sigma",
                     "reorder", "reorder_window", "duplicate"):
            object.__setattr__(self, name, float(getattr(self, name)))
        object.__setattr__(self, "latency", str(self.latency))
        object.__setattr__(self, "drop_first", int(self.drop_first))
        windows = tuple(window if isinstance(window, PartitionWindow)
                        else PartitionWindow(**dict(window))
                        for window in self.partitions)
        object.__setattr__(self, "partitions", windows)
        if self.loss_model not in LOSS_MODELS:
            raise ConditionSpecError(
                f"unknown loss model {self.loss_model!r} "
                f"(known: {LOSS_MODELS})")
        if not 0.0 <= self.loss <= 1.0:
            raise ConditionSpecError("loss must be in [0, 1]")
        for name in ("gilbert_p", "gilbert_r", "gilbert_loss", "reorder",
                     "duplicate"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ConditionSpecError(f"{name} must be in [0, 1]")
        if self.latency not in LATENCY_MODELS:
            raise ConditionSpecError(
                f"unknown latency model {self.latency!r} "
                f"(known: {LATENCY_MODELS})")
        if self.delay < 0 or self.delay_low < 0:
            raise ConditionSpecError("delays must be non-negative")
        if self.latency == "uniform" and self.delay_high < self.delay_low:
            raise ConditionSpecError("delay_high must be >= delay_low")
        if self.delay_sigma < 0:
            raise ConditionSpecError("delay_sigma must be non-negative")
        if self.reorder_window <= 0:
            raise ConditionSpecError("reorder_window must be positive")
        if self.drop_first < 0:
            raise ConditionSpecError("drop_first must be non-negative")

    # ------------------------------------------------------------------ #
    # Construction forms
    # ------------------------------------------------------------------ #

    @classmethod
    def from_mapping(cls, mapping: Mapping[str, Any]) -> "NetConditions":
        """Build from the ``engine_options`` mapping form."""
        data = dict(mapping)
        known = {spec_field.name for spec_field in
                 cls.__dataclass_fields__.values()}  # type: ignore[attr-defined]
        unknown = sorted(set(data) - known)
        if unknown:
            raise ConditionSpecError(
                f"unknown condition keys {unknown} "
                f"(known: {sorted(known)})")
        return cls(**data)

    @classmethod
    def parse(cls, text: str) -> "NetConditions":
        """Build from the compact ``--conditions`` string form.

        Comma-separated ``key=value`` entries; multi-parameter values use
        colons.  Examples::

            loss=0.05
            gilbert=0.05:0.5:1.0
            latency=uniform:0.5:2
            latency=fixed:1
            latency=lognormal:0:0.5
            reorder=0.01:2
            duplicate=0.01
            drop_first=1
            partition=10:25:2      (start:duration:groups, repeatable)
        """
        data: Dict[str, Any] = {}
        windows: List[PartitionWindow] = []
        for chunk in filter(None,
                            (part.strip() for part in text.split(","))):
            if "=" not in chunk:
                raise ConditionSpecError(
                    f"condition entry {chunk!r} is not key=value")
            key, _, value = chunk.partition("=")
            key = key.strip()
            parts = [part.strip() for part in value.split(":")]
            try:
                if key == "loss":
                    data["loss"] = float(parts[0])
                elif key == "gilbert":
                    data["loss_model"] = "gilbert"
                    data["gilbert_p"] = float(parts[0])
                    if len(parts) > 1:
                        data["gilbert_r"] = float(parts[1])
                    if len(parts) > 2:
                        data["gilbert_loss"] = float(parts[2])
                elif key == "latency":
                    model = parts[0]
                    data["latency"] = model
                    if model == "fixed":
                        data["delay"] = float(parts[1])
                    elif model == "uniform":
                        data["delay_low"] = float(parts[1])
                        data["delay_high"] = float(parts[2])
                    elif model == "lognormal":
                        data["delay_mu"] = float(parts[1])
                        if len(parts) > 2:
                            data["delay_sigma"] = float(parts[2])
                elif key == "reorder":
                    data["reorder"] = float(parts[0])
                    if len(parts) > 1:
                        data["reorder_window"] = float(parts[1])
                elif key == "duplicate":
                    data["duplicate"] = float(parts[0])
                elif key == "drop_first":
                    data["drop_first"] = int(parts[0])
                elif key == "partition":
                    windows.append(PartitionWindow(
                        start=float(parts[0]), duration=float(parts[1]),
                        groups=int(parts[2]) if len(parts) > 2 else 2))
                else:
                    raise ConditionSpecError(
                        f"unknown condition key {key!r}")
            except (IndexError, ValueError) as exc:
                if isinstance(exc, ConditionSpecError):
                    raise
                raise ConditionSpecError(
                    f"malformed condition entry {chunk!r}: {exc}") from exc
        if windows:
            data["partitions"] = tuple(windows)
        return cls(**data)

    @classmethod
    def coerce(cls, value: Union[None, str, Mapping[str, Any],
                                 "NetConditions"]
               ) -> Optional["NetConditions"]:
        """Normalize any accepted spec form (``None`` stays ``None``)."""
        if value is None:
            return None
        if isinstance(value, cls):
            return value
        if isinstance(value, str):
            return cls.parse(value)
        if isinstance(value, Mapping):
            return cls.from_mapping(value)
        raise ConditionSpecError(
            f"conditions must be a mapping, a spec string or NetConditions, "
            f"got {type(value).__name__}")

    def to_mapping(self) -> Dict[str, Any]:
        """The canonical JSON-safe mapping form (spec/trace/journal)."""
        data: Dict[str, Any] = {}
        defaults = NetConditions()
        for name in ("loss", "loss_model", "gilbert_p", "gilbert_r",
                     "gilbert_loss", "latency", "delay", "delay_low",
                     "delay_high", "delay_mu", "delay_sigma", "reorder",
                     "reorder_window", "duplicate", "drop_first"):
            value = getattr(self, name)
            if value != getattr(defaults, name):
                data[name] = value
        if self.partitions:
            data["partitions"] = [window.to_mapping()
                                  for window in self.partitions]
        return data

    @property
    def is_transparent(self) -> bool:
        """True when the pipeline cannot alter any frame (the loss=0 case)."""
        lossless = (self.loss == 0.0 if self.loss_model == "bernoulli"
                    else self.gilbert_p == 0.0 or self.gilbert_loss == 0.0)
        return (lossless and self.latency == "none" and self.reorder == 0.0
                and self.duplicate == 0.0 and self.drop_first == 0
                and not self.partitions)


@dataclass
class Decision:
    """The pipeline's verdict for one submitted frame."""

    #: Drop reason (``"drop_first"`` / ``"lost"`` / ``"partitioned"``), or
    #: ``None`` for delivery.
    drop: Optional[str] = None
    #: Extra transit delay in simulated time units.
    delay: float = 0.0
    #: Total transmissions (1, or 2 when duplicated).
    copies: int = 1
    #: True when the delay includes the reorder hold-back window.
    reordered: bool = False

    def key(self) -> Tuple[Optional[str], float, int, bool]:
        """Comparable form used by the determinism property suite."""
        return (self.drop, self.delay, self.copies, self.reordered)


class _LinkState:
    """Per-link RNG stream, frame counter and Gilbert chain state."""

    __slots__ = ("rng", "frames", "bad")

    def __init__(self, rng) -> None:
        self.rng = rng
        self.frames = 0
        self.bad = False


class ConditionPipeline:
    """Applies a :class:`NetConditions` spec, one decision per frame.

    ``origin`` anchors the partition-window timeline: windows are declared
    relative to the moment the pipeline is installed, so
    :meth:`~repro.net.broker.NetSimulation.set_conditions` can arm a
    partition "starting now" on a long-running deployment.  ``scope``
    namespaces the per-link RNG stream names, so reinstalling a pipeline
    draws from fresh streams instead of continuing the previous ones.
    """

    def __init__(self, conditions: NetConditions, streams: RandomStreams,
                 origin: float = 0.0, scope: str = "net.conditions") -> None:
        self.conditions = conditions
        self.origin = origin
        self._streams = streams
        self._scope = scope
        self._links: Dict[Tuple[str, str], _LinkState] = {}

    def _link(self, sender: str, recipient: str) -> _LinkState:
        key = (sender, recipient)
        state = self._links.get(key)
        if state is None:
            state = _LinkState(self._streams.stream(
                f"{self._scope}.link.{sender}->{recipient}"))
            self._links[key] = state
        return state

    def _lost(self, link: _LinkState) -> bool:
        spec = self.conditions
        if spec.loss_model == "gilbert":
            # Advance the chain, then sample loss in the resulting state.
            flip = link.rng.random()
            if link.bad:
                if flip < spec.gilbert_r:
                    link.bad = False
            elif flip < spec.gilbert_p:
                link.bad = True
            return link.bad and link.rng.random() < spec.gilbert_loss
        if spec.loss <= 0.0:
            return False
        if spec.loss >= 1.0:
            return True
        return link.rng.random() < spec.loss

    def _delay(self, link: _LinkState) -> float:
        spec = self.conditions
        if spec.latency == "fixed":
            return spec.delay
        if spec.latency == "uniform":
            return link.rng.uniform(spec.delay_low, spec.delay_high)
        if spec.latency == "lognormal":
            return link.rng.lognormvariate(spec.delay_mu, spec.delay_sigma)
        return 0.0

    def _partitioned(self, sender: str, recipient: str,
                     now: float) -> bool:
        elapsed = now - self.origin
        return any(window.active(elapsed)
                   and window.separates(sender, recipient)
                   for window in self.conditions.partitions)

    def decide(self, sender: str, recipient: str, now: float) -> Decision:
        """One verdict for the next frame on the ``sender→recipient`` link."""
        spec = self.conditions
        link = self._link(sender, recipient)
        link.frames += 1
        if link.frames <= spec.drop_first:
            return Decision(drop="drop_first")
        # Fixed draw order regardless of the eventual verdict (see module
        # docstring): loss, latency, reorder, duplicate.
        lost = self._lost(link)
        delay = self._delay(link)
        reordered = spec.reorder > 0.0 and link.rng.random() < spec.reorder
        duplicated = (spec.duplicate > 0.0
                      and link.rng.random() < spec.duplicate)
        if self._partitioned(sender, recipient, now):
            return Decision(drop="partitioned")
        if lost:
            return Decision(drop="lost")
        if reordered:
            delay += spec.reorder_window
        return Decision(drop=None, delay=delay,
                        copies=2 if duplicated else 1, reordered=reordered)

    def decide_sequence(self, frames: Sequence[Tuple[str, str, float]]
                        ) -> List[Decision]:
        """Decisions for a synthetic frame sequence (the property-suite
        entry point: no sockets, no runtime — just the pure pipeline)."""
        return [self.decide(sender, recipient, now)
                for sender, recipient, now in frames]

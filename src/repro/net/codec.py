"""Frame codec of the real-network backend.

The wire format is the one the shared-memory shard transport already
speaks (:mod:`repro.sim.sharded.shm`): a 12-byte ``<III`` header —

    magic (0x44525452, "DRTR") | payload length | CRC-32

— followed by ``length`` bytes of pickled payload (here: one
:class:`~repro.sim.messages.Message` envelope).  A header whose magic does
not match, an implausible length, or a CRC mismatch means the byte stream
is torn and raises a typed :class:`~repro.net.faults.NetProtocolError`;
the codec never resynchronizes silently.

:class:`FrameDecoder` is incremental: feed it whatever chunk the socket
produced and it yields every complete message parsed out of its pending
buffer, keeping the remainder for the next chunk.  This is the same
"batched frame drain" idiom as the shm ring reader, and it is what the
tamper-detection property tests drive byte by byte.
"""

from __future__ import annotations

import pickle
import struct
import zlib
from typing import List

from repro.net.faults import NetProtocolError
from repro.sim.messages import Message

#: ``magic | payload length | CRC-32`` — identical to the shm transport.
FRAME_HEADER = struct.Struct("<III")

#: "DRTR" — shared with :data:`repro.sim.sharded.shm.FRAME_MAGIC`.
FRAME_MAGIC = 0x44525452

#: Upper bound on a single frame's payload; anything larger is a torn
#: stream, not a legitimate overlay message.
MAX_FRAME_BYTES = 1 << 30


def encode_frame(message: Message) -> bytes:
    """Serialize one message envelope into a framed byte string."""
    payload = pickle.dumps(message, protocol=pickle.HIGHEST_PROTOCOL)
    return FRAME_HEADER.pack(FRAME_MAGIC, len(payload),
                             zlib.crc32(payload)) + payload


class FrameDecoder:
    """Incremental frame parser over an unbounded byte stream."""

    def __init__(self) -> None:
        self._buffer = bytearray()

    def pending(self) -> int:
        """Bytes buffered but not yet parsed into a complete frame."""
        return len(self._buffer)

    def feed(self, chunk: bytes) -> List[Message]:
        """Absorb ``chunk`` and return every message it completed.

        Raises :class:`NetProtocolError` on a torn stream (bad magic,
        implausible length, CRC mismatch, or an unpicklable / non-Message
        payload); the caller must drop the connection.
        """
        self._buffer.extend(chunk)
        messages: List[Message] = []
        while True:
            if len(self._buffer) < FRAME_HEADER.size:
                return messages
            magic, length, crc = FRAME_HEADER.unpack_from(self._buffer)
            if magic != FRAME_MAGIC:
                raise NetProtocolError(
                    f"bad frame magic 0x{magic:08x} "
                    f"(expected 0x{FRAME_MAGIC:08x})")
            if length > MAX_FRAME_BYTES:
                raise NetProtocolError(
                    f"implausible frame length {length} "
                    f"(cap {MAX_FRAME_BYTES})")
            end = FRAME_HEADER.size + length
            if len(self._buffer) < end:
                return messages
            payload = bytes(self._buffer[FRAME_HEADER.size:end])
            del self._buffer[:end]
            if zlib.crc32(payload) != crc:
                raise NetProtocolError(
                    f"frame CRC mismatch for {length}-byte payload")
            try:
                message = pickle.loads(payload)
            except Exception as exc:  # noqa: BLE001 - any unpickle failure
                raise NetProtocolError(
                    f"frame payload does not deserialize: {exc!r}") from exc
            if not isinstance(message, Message):
                raise NetProtocolError(
                    f"frame payload is {type(message).__name__}, "
                    "expected Message")
            messages.append(message)


def decode_frames(data: bytes) -> List[Message]:
    """Parse a complete byte string of back-to-back frames.

    Raises :class:`NetProtocolError` if bytes are left over — a truncated
    trailing frame is a torn stream for a *complete* input.
    """
    decoder = FrameDecoder()
    messages = decoder.feed(data)
    if decoder.pending():
        raise NetProtocolError(
            f"{decoder.pending()} trailing byte(s) after the last "
            "complete frame")
    return messages
